"""Equivalence of the optimised LSTM/Conv1D kernels with the reference
formulations.

The time-major LSTM kernel (hoisted input projection, fused gate
activations, stacked-matmul BPTT) and the im2col Conv1D kernel replaced
straightforward loop-of-matmul implementations.  These tests pin the
contract the rewrite was done under:

* LSTM float64 **forward** output is bit-identical to the reference
  step loop (every op is either elementwise, a row-independent matmul,
  or an exact zero-state elision);
* LSTM gradients and the Conv1D forward/backward reorder float
  reductions (stacked matmuls, single-sweep im2col products), so they
  match the reference to float64 tolerance rather than bit-exactly;
* float32 compiled kernels track the float64 reference loosely;
* persistent scratch never leaks between calls: outputs are fresh
  arrays and repeated passes reproduce themselves bit-for-bit.

The reference implementations below are the seed versions of
``repro/nn/recurrent.py`` / ``repro/nn/conv.py``, reduced to pure
functions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.conv import Conv1D, GlobalAveragePool1D
from repro.nn.recurrent import LSTM

# --------------------------------------------------------------------------
# Reference kernels (the seed's loop-of-matmul formulations).
# --------------------------------------------------------------------------


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


def reference_lstm_forward(x, kernel, recurrent, bias, return_sequences):
    """Seed LSTM forward: one z-matmul pair per step, gates sliced out."""
    n, steps, _features = x.shape
    units = recurrent.shape[0]
    h = np.zeros((n, units), dtype=np.float64)
    c = np.zeros((n, units), dtype=np.float64)
    hs = np.zeros((n, steps, units), dtype=np.float64)
    cache = {
        key: np.zeros((n, steps, units))
        for key in ("i", "f", "g", "o", "c", "c_prev", "h_prev")
    }
    for t in range(steps):
        z = x[:, t, :] @ kernel + h @ recurrent + bias
        i = _sigmoid(z[:, 0 * units:1 * units])
        f = _sigmoid(z[:, 1 * units:2 * units])
        g = np.tanh(z[:, 2 * units:3 * units])
        o = _sigmoid(z[:, 3 * units:4 * units])
        cache["c_prev"][:, t, :] = c
        cache["h_prev"][:, t, :] = h
        c = f * c + i * g
        h = o * np.tanh(c)
        for key, val in (("i", i), ("f", f), ("g", g), ("o", o), ("c", c)):
            cache[key][:, t, :] = val
        hs[:, t, :] = h
    out = hs if return_sequences else hs[:, -1, :]
    return out, cache


def reference_lstm_backward(grad, x, kernel, recurrent, cache, return_sequences):
    """Seed LSTM BPTT: per-step accumulation of every weight gradient."""
    n, steps, _features = x.shape
    units = recurrent.shape[0]
    if return_sequences:
        grad_hs = grad
    else:
        grad_hs = np.zeros((n, steps, units), dtype=np.float64)
        grad_hs[:, -1, :] = grad
    kernel_grad = np.zeros_like(kernel)
    recurrent_grad = np.zeros_like(recurrent)
    bias_grad = np.zeros(4 * units, dtype=np.float64)
    x_grad = np.zeros_like(x)
    dh_next = np.zeros((n, units), dtype=np.float64)
    dc_next = np.zeros((n, units), dtype=np.float64)
    for t in range(steps - 1, -1, -1):
        i = cache["i"][:, t, :]
        f = cache["f"][:, t, :]
        g = cache["g"][:, t, :]
        o = cache["o"][:, t, :]
        c = cache["c"][:, t, :]
        dh = grad_hs[:, t, :] + dh_next
        tanh_c = np.tanh(c)
        do = dh * tanh_c
        dc = dh * o * (1.0 - tanh_c**2) + dc_next
        di = dc * g
        dg = dc * i
        df = dc * cache["c_prev"][:, t, :]
        dc_next = dc * f
        dz = np.concatenate(
            [
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g**2),
                do * o * (1.0 - o),
            ],
            axis=1,
        )
        kernel_grad += x[:, t, :].T @ dz
        recurrent_grad += cache["h_prev"][:, t, :].T @ dz
        bias_grad += dz.sum(axis=0)
        x_grad[:, t, :] = dz @ kernel.T
        dh_next = dz @ recurrent.T
    return x_grad, kernel_grad, recurrent_grad, bias_grad


def reference_conv1d_forward(x, kernel, bias, left, right):
    """Seed Conv1D forward: sum of per-offset batched matmuls."""
    if left or right:
        x = np.pad(x, ((0, 0), (left, right), (0, 0)))
    k = kernel.shape[0]
    out_steps = x.shape[1] - k + 1
    out = np.zeros((x.shape[0], out_steps, kernel.shape[2]), dtype=np.float64)
    for offset in range(k):
        out += x[:, offset:offset + out_steps, :] @ kernel[offset]
    if bias is not None:
        out += bias
    return out, x


def reference_conv1d_backward(grad, padded_x, kernel, left, right):
    """Seed Conv1D backward: per-offset tensordot / scatter-add."""
    k = kernel.shape[0]
    out_steps = grad.shape[1]
    kernel_grad = np.zeros_like(kernel)
    x_grad = np.zeros_like(padded_x)
    for offset in range(k):
        window = padded_x[:, offset:offset + out_steps, :]
        kernel_grad[offset] = np.tensordot(window, grad, axes=([0, 1], [0, 1]))
        x_grad[:, offset:offset + out_steps, :] += grad @ kernel[offset].T
    bias_grad = grad.sum(axis=(0, 1))
    if left or right:
        x_grad = x_grad[:, left:x_grad.shape[1] - right, :]
    return x_grad, kernel_grad, bias_grad


# --------------------------------------------------------------------------
# LSTM equivalence.
# --------------------------------------------------------------------------


def _built_lstm(rng, units=6, features=3, return_sequences=False):
    layer = LSTM(units, return_sequences=return_sequences)
    layer.build((None, features), rng)
    return layer


@pytest.mark.parametrize("return_sequences", [False, True])
@pytest.mark.parametrize("steps", [1, 4, 7])
class TestLSTMEquivalence:
    def test_forward_bit_identical_float64(self, rng, return_sequences, steps):
        layer = _built_lstm(rng, return_sequences=return_sequences)
        x = rng.normal(size=(5, steps, 3))
        expected, _ = reference_lstm_forward(
            x, *layer.params, return_sequences
        )
        got = layer.forward(x, training=True)
        assert got.dtype == np.float64
        assert np.array_equal(got, expected)

    def test_gradients_match_reference(self, rng, return_sequences, steps):
        layer = _built_lstm(rng, return_sequences=return_sequences)
        x = rng.normal(size=(5, steps, 3))
        out = layer.forward(x, training=True)
        grad = rng.normal(size=out.shape)
        x_grad = layer.backward(grad)
        _, cache = reference_lstm_forward(x, *layer.params, return_sequences)
        ref = reference_lstm_backward(
            grad, x, layer.params[0], layer.params[1], cache, return_sequences
        )
        np.testing.assert_allclose(x_grad, ref[0], rtol=1e-12, atol=1e-12)
        for got, want in zip(layer.grads, ref[1:]):
            np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_float32_tracks_reference(self, rng, return_sequences, steps):
        layer = _built_lstm(rng, return_sequences=return_sequences)
        x = rng.normal(size=(5, steps, 3))
        expected, _ = reference_lstm_forward(
            x, *layer.params, return_sequences
        )
        layer.set_dtype(np.float32)
        got = layer.forward(x.astype(np.float32), training=True)
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, expected, rtol=2e-3, atol=2e-3)


class TestLSTMKernelHygiene:
    def test_repeated_passes_reproduce(self, rng):
        layer = _built_lstm(rng, return_sequences=True)
        x = rng.normal(size=(4, 5, 3))
        grad = rng.normal(size=(4, 5, 6))
        first_out = layer.forward(x, training=True).copy()
        layer.backward(grad)
        first_grads = [g.copy() for g in layer.grads]
        # Different shapes in between force every scratch slot to cycle.
        other = rng.normal(size=(9, 2, 3))
        layer.forward(other, training=True)
        layer.backward(rng.normal(size=(9, 2, 6)))
        again = layer.forward(x, training=True)
        layer.backward(grad)
        assert np.array_equal(again, first_out)
        for got, want in zip(layer.grads, first_grads):
            np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_outputs_are_fresh_arrays(self, rng):
        layer = _built_lstm(rng, return_sequences=True)
        x = rng.normal(size=(4, 5, 3))
        first = layer.forward(x, training=False)
        snapshot = first.copy()
        layer.forward(rng.normal(size=(4, 5, 3)), training=False)
        assert np.array_equal(first, snapshot)

    def test_skip_input_grad_returns_none(self, rng):
        layer = _built_lstm(rng)
        layer.skip_input_grad = True
        out = layer.forward(rng.normal(size=(4, 5, 3)), training=True)
        assert layer.backward(rng.normal(size=out.shape)) is None


# --------------------------------------------------------------------------
# Conv1D equivalence.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("padding", ["valid", "same"])
@pytest.mark.parametrize("kernel_size", [1, 3, 4])
class TestConv1DEquivalence:
    def test_forward_backward_match_reference(self, rng, padding, kernel_size):
        layer = Conv1D(7, kernel_size, padding=padding)
        layer.build((10, 3), rng)
        left, right = layer._pad_amounts()
        x = rng.normal(size=(4, 10, 3))
        out = layer.forward(x, training=True)
        expected, padded = reference_conv1d_forward(
            x, layer.params[0], layer.params[1], left, right
        )
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-12)
        grad = rng.normal(size=out.shape)
        x_grad = layer.backward(grad)
        ref_x, ref_k, ref_b = reference_conv1d_backward(
            grad, padded, layer.params[0], left, right
        )
        np.testing.assert_allclose(x_grad, ref_x, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(layer.grads[0], ref_k, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(layer.grads[1], ref_b, rtol=1e-12, atol=1e-12)

    def test_float32_tracks_reference(self, rng, padding, kernel_size):
        layer = Conv1D(7, kernel_size, padding=padding)
        layer.build((10, 3), rng)
        left, right = layer._pad_amounts()
        expected, _ = reference_conv1d_forward(
            rng_x := rng.normal(size=(4, 10, 3)),
            layer.params[0],
            layer.params[1],
            left,
            right,
        )
        layer.set_dtype(np.float32)
        got = layer.forward(rng_x.astype(np.float32), training=False)
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, expected, rtol=2e-3, atol=2e-3)


class TestConvKernelHygiene:
    def test_repeated_passes_reproduce(self, rng):
        layer = Conv1D(5, 3, padding="same")
        layer.build((8, 4), rng)
        x = rng.normal(size=(3, 8, 4))
        grad = rng.normal(size=(3, 8, 5))
        first_out = layer.forward(x, training=True).copy()
        layer.backward(grad)
        first_grads = [g.copy() for g in layer.grads]
        layer.forward(rng.normal(size=(6, 8, 4)), training=True)
        layer.backward(rng.normal(size=(6, 8, 5)))
        again = layer.forward(x, training=True)
        layer.backward(grad)
        assert np.array_equal(again, first_out)
        for got, want in zip(layer.grads, first_grads):
            np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_global_average_pool_grad_is_broadcast_view(self, rng):
        layer = GlobalAveragePool1D()
        x = rng.normal(size=(3, 6, 4))
        layer.forward(x, training=True)
        grad = rng.normal(size=(3, 4))
        back = layer.backward(grad)
        assert back.shape == (3, 6, 4)
        np.testing.assert_allclose(back, np.repeat(
            (grad / 6)[:, np.newaxis, :], 6, axis=1
        ))
