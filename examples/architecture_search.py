"""Manual architecture search, as in the paper's Table 3 (§5.1).

Trains a configurable subset of the paper's ten networks (MLP I-VI,
LSTM I-II, CNN I-II) on the same Gimli-Cipher distinguisher dataset and
prints parameters / training time / accuracy side by side with the
paper's numbers.

The full ten networks at the paper's 2^17-sample budget is a GPU-scale
job; the defaults here (four representative networks, 6 total rounds,
8k samples) finish in about a minute on CPU and already show the
paper's qualitative findings: MLPs are the fastest and most accurate,
LSTMs cost roughly an order of magnitude more training time.

Usage::

    python examples/architecture_search.py
    python examples/architecture_search.py --networks "MLP I" "MLP III" \
        --rounds 8 --samples 131072
"""

import argparse

from repro.experiments.report import format_table
from repro.experiments.table3 import run_table3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--networks", nargs="+",
        default=["MLP II", "MLP III", "LSTM II", "CNN I"],
        help="Table 3 network names (quote them: 'MLP I')",
    )
    parser.add_argument("--rounds", type=int, default=6,
                        help="total Gimli-Cipher rounds before c0")
    parser.add_argument("--samples", type=int, default=8_000)
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    result = run_table3(
        networks=args.networks,
        total_rounds=args.rounds,
        num_samples=args.samples,
        epochs=args.epochs,
        rng=args.seed,
    )
    rows = [
        [row["network"], row["activation"], row["parameters"],
         f"{row['training_time_s']:.1f}", f"{row['measured']:.4f}",
         f"{row['paper']:.4f}"]
        for row in result["rows"]
    ]
    print(format_table(
        ["network", "activation", "params", "time (s)", "accuracy",
         "paper acc (8r, 2^17)"],
        rows,
        title=(f"architecture search on {args.rounds}-round Gimli-Cipher, "
               f"{result['num_samples']} samples, {result['epochs']} epochs"),
    ))


if __name__ == "__main__":
    main()
