"""Tests for SGD and Adam."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn.optimizers import SGD, Adam, get_optimizer


def quadratic_descent(optimizer, start, steps=200):
    """Minimise f(x) = x^2 with the given optimizer; return final |x|."""
    param = np.array([float(start)])
    for _ in range(steps):
        grad = 2.0 * param
        optimizer.update([param], [grad])
    return abs(float(param[0]))


class TestSGD:
    def test_plain_step(self):
        param = np.array([1.0])
        SGD(learning_rate=0.1).update([param], [np.array([2.0])])
        assert param[0] == pytest.approx(0.8)

    def test_converges_on_quadratic(self):
        assert quadratic_descent(SGD(learning_rate=0.1), 5.0) < 1e-3

    def test_momentum_accelerates(self):
        slow = quadratic_descent(SGD(learning_rate=0.01), 5.0, steps=50)
        fast = quadratic_descent(SGD(learning_rate=0.01, momentum=0.9), 5.0, steps=50)
        assert fast < slow

    def test_invalid_params(self):
        with pytest.raises(TrainingError):
            SGD(learning_rate=0)
        with pytest.raises(TrainingError):
            SGD(momentum=1.0)

    def test_mismatched_lists(self):
        with pytest.raises(TrainingError):
            SGD().update([np.zeros(2)], [])


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_descent(Adam(learning_rate=0.1), 5.0, steps=500) < 1e-3

    def test_first_step_magnitude(self):
        """Adam's bias correction makes the first step ~= learning rate."""
        param = np.array([1.0])
        Adam(learning_rate=0.01).update([param], [np.array([100.0])])
        assert abs(1.0 - param[0]) == pytest.approx(0.01, rel=1e-3)

    def test_per_parameter_state(self):
        opt = Adam(learning_rate=0.1)
        a, b = np.array([1.0]), np.array([1.0])
        opt.update([a, b], [np.array([1.0]), np.array([-1.0])])
        assert a[0] < 1.0 < b[0]

    def test_state_persists_across_steps(self):
        opt = Adam(learning_rate=0.1)
        param = np.array([1.0])
        opt.update([param], [np.array([1.0])])
        first = param.copy()
        opt.update([param], [np.array([1.0])])
        assert param[0] < first[0]

    def test_invalid_params(self):
        with pytest.raises(TrainingError):
            Adam(learning_rate=-1)
        with pytest.raises(TrainingError):
            Adam(beta_1=1.0)


class TestGetOptimizer:
    def test_by_name(self):
        assert isinstance(get_optimizer("adam"), Adam)
        assert isinstance(get_optimizer("sgd"), SGD)

    def test_instance_passthrough(self):
        opt = Adam()
        assert get_optimizer(opt) is opt

    def test_unknown(self):
        with pytest.raises(TrainingError):
            get_optimizer("rmsprop")
