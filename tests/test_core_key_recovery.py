"""Tests for the Gohr-style key recovery extension."""

import numpy as np
import pytest

from repro.ciphers.speck import encrypt_batch, expand_key_batch
from repro.core.key_recovery import (
    RecoveryResult,
    SpeckKeyRecovery,
    decrypt_last_round,
)
from repro.errors import DistinguisherError

KEY = (0x1918, 0x1110, 0x0908, 0x0100)


class TestDecryptLastRound:
    def test_inverts_one_round(self, rng):
        pts = rng.integers(0, 1 << 16, size=(32, 2), dtype=np.uint16)
        keys = rng.integers(0, 1 << 16, size=(32, 4), dtype=np.uint16)
        rounds = 5
        cts = encrypt_batch(pts, keys, rounds)
        prev = encrypt_batch(pts, keys, rounds - 1)
        last_keys = expand_key_batch(keys, rounds)[:, -1]
        recovered = decrypt_last_round(cts, last_keys)
        assert (recovered == prev).all()

    def test_wrong_key_does_not_invert(self, rng):
        pts = rng.integers(0, 1 << 16, size=(16, 2), dtype=np.uint16)
        keys = rng.integers(0, 1 << 16, size=(16, 4), dtype=np.uint16)
        cts = encrypt_batch(pts, keys, 4)
        prev = encrypt_batch(pts, keys, 3)
        wrong = expand_key_batch(keys, 4)[:, -1] ^ np.uint16(0x1234)
        recovered = decrypt_last_round(cts, wrong)
        assert (recovered != prev).any()


class TestLastRoundKeyHelper:
    def test_matches_schedule(self):
        expected = expand_key_batch(
            np.array([KEY], dtype=np.uint16), 7
        )[0, -1]
        assert SpeckKeyRecovery.last_round_key(KEY, 7) == int(expected)


class TestRecoveryResult:
    def test_rank_and_best(self):
        result = RecoveryResult(
            candidates=np.array([7, 3, 9], dtype=np.uint16),
            scores=np.array([0.9, 0.8, 0.1]),
            true_key=3,
        )
        assert result.best == 7
        assert result.rank_of(3) == 1
        assert result.true_key_rank == 1

    def test_unknown_key_raises(self):
        result = RecoveryResult(
            candidates=np.array([1], dtype=np.uint16),
            scores=np.array([0.5]),
        )
        with pytest.raises(DistinguisherError):
            result.rank_of(2)
        assert result.true_key_rank is None


class TestAttack:
    @pytest.fixture(scope="class")
    def trained(self):
        recovery = SpeckKeyRecovery(attack_rounds=4, epochs=3, rng=5)
        accuracy = recovery.train_distinguisher(20_000)
        return recovery, accuracy

    def test_distinguisher_learns(self, trained):
        _, accuracy = trained
        assert accuracy > 0.85

    def test_true_subkey_ranks_high(self, trained):
        recovery, _ = trained
        result = recovery.attack(KEY, n_pairs=192, candidate_bits=8, rng=3)
        assert result.true_key_rank is not None
        # Top 5% of a 256-candidate sweep.
        assert result.true_key_rank < 13

    def test_scores_sorted(self, trained):
        recovery, _ = trained
        result = recovery.attack(KEY, n_pairs=64, candidate_bits=6, rng=4)
        assert (np.diff(result.scores) <= 1e-12).all()

    def test_score_before_training_rejected(self):
        recovery = SpeckKeyRecovery(attack_rounds=4, rng=0)
        with pytest.raises(DistinguisherError):
            recovery.score_candidates(
                np.zeros((2, 2), dtype=np.uint16),
                np.zeros((2, 2), dtype=np.uint16),
                np.array([0], dtype=np.uint16),
            )

    def test_invalid_construction(self):
        with pytest.raises(DistinguisherError):
            SpeckKeyRecovery(attack_rounds=1)

    def test_invalid_candidate_bits(self, trained):
        recovery, _ = trained
        c0, c1 = recovery.collect_pairs(KEY, 8, rng=1)
        with pytest.raises(DistinguisherError):
            recovery.recover(c0, c1, candidate_bits=0)
