"""Tests for the Gimli permutation: spec conformance and batch parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.gimli import (
    GIMLI_ROUNDS,
    GimliPermutation,
    gimli_permute,
    gimli_permute_batch,
    gimli_round,
    spbox_column,
)
from repro.errors import CipherError, ShapeError

word = st.integers(0, 2**32 - 1)
state_strategy = st.lists(word, min_size=12, max_size=12)


class TestSpBox:
    def test_output_in_range(self):
        out = spbox_column(0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF)
        assert all(0 <= w < 2**32 for w in out)

    def test_zero_input(self):
        # All-zero column maps to all-zero (no constants inside the SP-box).
        assert spbox_column(0, 0, 0) == (0, 0, 0)

    def test_known_algebra(self):
        # x=1, y=0, z=0: z' = x = 1; y' = x ^ (x<<1) = 3; x' = 0.
        assert spbox_column(1, 0, 0) == (0, 3, 1)


class TestScalarPermutation:
    def test_full_rounds_changes_state(self):
        state = list(range(12))
        assert gimli_permute(state) != state

    def test_zero_rounds_is_identity(self):
        state = list(range(12))
        assert gimli_permute(state, rounds=0) == state

    def test_round_composition(self):
        state = [3 * i + 1 for i in range(12)]
        two = gimli_permute(state, rounds=2)
        one = gimli_permute(state, rounds=1)
        chained = gimli_permute(one, rounds=1, start_round=GIMLI_ROUNDS - 1)
        assert two == chained

    def test_round_constant_applied_at_multiples_of_four(self):
        state = [0] * 12
        out = gimli_round(state, 24)
        # SP-box of zero is zero; swap of zeros is zero; constant lands.
        assert out[0] == 0x9E377900 ^ 24
        assert out[1:] == [0] * 11

    def test_no_constant_at_other_rounds(self):
        out = gimli_round([0] * 12, 23)
        assert out == [0] * 12

    def test_wrong_state_size_raises(self):
        with pytest.raises(CipherError):
            gimli_permute([0] * 11)

    def test_invalid_round_window_raises(self):
        with pytest.raises(CipherError):
            gimli_permute([0] * 12, rounds=25)
        with pytest.raises(CipherError):
            gimli_permute([0] * 12, rounds=-1)
        with pytest.raises(CipherError):
            gimli_permute([0] * 12, rounds=1, start_round=30)


class TestBatchParity:
    @settings(max_examples=25, deadline=None)
    @given(state_strategy, st.integers(0, 24))
    def test_batch_matches_scalar(self, state, rounds):
        scalar = gimli_permute(state, rounds)
        batch = gimli_permute_batch(np.array(state, dtype=np.uint32), rounds)
        assert scalar == [int(w) for w in batch]

    @settings(max_examples=25, deadline=None)
    @given(state_strategy, st.integers(1, 24), st.integers(0, 24))
    def test_batch_matches_scalar_off_default_window(self, state, start, budget):
        """Parity must also hold for round windows not starting at 24 —
        the swap/constant schedule depends on the absolute round index."""
        rounds = min(budget, start)
        scalar = gimli_permute(state, rounds, start_round=start)
        batch = gimli_permute_batch(
            np.array(state, dtype=np.uint32), rounds, start_round=start
        )
        assert scalar == [int(w) for w in batch]

    def test_batch_rows_match_scalar_with_start_round(self, rng):
        states = rng.integers(0, 2**32, size=(6, 12), dtype=np.uint64).astype(
            np.uint32
        )
        for start, rounds in [(11, 5), (8, 8), (23, 4), (10, 3)]:
            batch = gimli_permute_batch(states, rounds, start_round=start)
            for i in range(states.shape[0]):
                scalar = gimli_permute(
                    states[i].tolist(), rounds, start_round=start
                )
                assert scalar == [int(w) for w in batch[i]]

    def test_batch_shape_preserved(self, rng):
        states = rng.integers(0, 2**32, size=(17, 12), dtype=np.uint64).astype(
            np.uint32
        )
        out = gimli_permute_batch(states, 8)
        assert out.shape == (17, 12)
        assert out.dtype == np.uint32

    def test_batch_rows_independent(self, rng):
        states = rng.integers(0, 2**32, size=(5, 12), dtype=np.uint64).astype(
            np.uint32
        )
        full = gimli_permute_batch(states, 6)
        for i in range(5):
            row = gimli_permute_batch(states[i], 6)
            assert (full[i] == row).all()

    def test_input_not_mutated(self, rng):
        states = rng.integers(0, 2**32, size=(3, 12), dtype=np.uint64).astype(
            np.uint32
        )
        copy = states.copy()
        gimli_permute_batch(states, 24)
        assert (states == copy).all()

    def test_bad_shape_raises(self):
        with pytest.raises(CipherError):
            gimli_permute_batch(np.zeros((2, 11), dtype=np.uint32), 8)


class TestPermutationBijectivity:
    def test_distinct_inputs_distinct_outputs(self, rng):
        states = rng.integers(0, 2**32, size=(256, 12), dtype=np.uint64).astype(
            np.uint32
        )
        out = gimli_permute_batch(states, 24)
        seen = {row.tobytes() for row in out}
        assert len(seen) == 256


class TestGimliPermutationClass:
    def test_call_matches_function(self, rng):
        perm = GimliPermutation(rounds=8)
        states = rng.integers(0, 2**32, size=(4, 12), dtype=np.uint64).astype(
            np.uint32
        )
        assert (perm(states) == gimli_permute_batch(states, 8)).all()

    def test_state_bits(self):
        assert GimliPermutation().state_bits == 384

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            GimliPermutation(8)(np.zeros((2, 5), dtype=np.uint32))

    def test_invalid_rounds(self):
        with pytest.raises(CipherError):
            GimliPermutation(rounds=25)


class TestDiffusion:
    def test_single_bit_difference_avalanche(self, rng):
        """After the full permutation, a 1-bit input difference flips
        roughly half the state bits."""
        states = rng.integers(0, 2**32, size=(64, 12), dtype=np.uint64).astype(
            np.uint32
        )
        flipped = states.copy()
        flipped[:, 0] ^= 1
        diff = gimli_permute_batch(states, 24) ^ gimli_permute_batch(flipped, 24)
        bits = np.unpackbits(diff.view(np.uint8), bitorder="little")
        density = bits.mean()
        assert 0.45 < density < 0.55
