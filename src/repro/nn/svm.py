"""Linear SVM classifier — the paper's suggested NN alternative (§6).

The conclusion notes that "since the work relies on a classification
problem at its core, a Support Vector Machine (SVM) can be used instead
of [a] neural network".  This module provides that alternative: a
one-vs-rest linear SVM trained by mini-batch sub-gradient descent on
the L2-regularised hinge loss.  It exposes the same ``fit`` /
``predict_classes`` / ``evaluate`` surface the distinguisher needs, so
:class:`~repro.core.distinguisher.MLDistinguisher` accepts it via the
``model`` parameter unchanged.

On the distinguisher's bit-vector features a linear model can only see
per-bit biases, not bit correlations — the ablation benchmark
(`benchmarks/bench_ablations.py`) quantifies how much accuracy that
costs against the MLP.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.nn.callbacks import History
from repro.utils.rng import make_rng


class LinearSVM:
    """One-vs-rest linear SVM with hinge loss and L2 regularisation."""

    def __init__(
        self,
        num_classes: int = 2,
        learning_rate: float = 0.05,
        regularization: float = 1e-4,
    ):
        if num_classes < 2:
            raise TrainingError(f"need at least 2 classes, got {num_classes}")
        if learning_rate <= 0:
            raise TrainingError(f"learning rate must be positive, got {learning_rate}")
        if regularization < 0:
            raise TrainingError(
                f"regularization must be non-negative, got {regularization}"
            )
        self.num_classes = int(num_classes)
        self.learning_rate = float(learning_rate)
        self.regularization = float(regularization)
        self.weights: Optional[np.ndarray] = None  # (features, classes)
        self.bias: Optional[np.ndarray] = None  # (classes,)
        self.loss = object()  # sentinel: tells MLDistinguisher we are compiled
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.layers = [self]  # non-empty marker for the distinguisher

    # -- model surface shared with Sequential --------------------------------

    def build(self, input_shape, rng=None) -> "LinearSVM":
        """Allocate zero weights for ``input_shape`` features."""
        if len(tuple(input_shape)) != 1:
            raise TrainingError("LinearSVM expects flat bit-vector inputs")
        features = int(input_shape[0])
        self.weights = np.zeros((features, self.num_classes), dtype=np.float64)
        self.bias = np.zeros(self.num_classes, dtype=np.float64)
        self.input_shape = (features,)
        return self

    def compile(self, **_kwargs) -> "LinearSVM":
        """No-op (kept for Sequential API compatibility)."""
        return self

    def count_params(self) -> int:
        """Weights plus biases."""
        if self.weights is None:
            raise TrainingError("build the model before counting parameters")
        return int(self.weights.size + self.bias.size)

    def _margins(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weights + self.bias

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 5,
        batch_size: int = 128,
        rng=None,
        verbose: bool = False,
        **_ignored,
    ) -> History:
        """Mini-batch sub-gradient descent on the hinge loss.

        ``y`` may be integer labels or one-hot rows (argmax is taken).
        """
        x = np.asarray(x, dtype=np.float64)
        labels = np.asarray(y)
        if labels.ndim == 2:
            labels = labels.argmax(axis=1)
        labels = labels.astype(np.int64)
        if self.weights is None:
            self.build(x.shape[1:])
        if x.shape[0] != labels.shape[0]:
            raise TrainingError(
                f"x has {x.shape[0]} samples but y has {labels.shape[0]}"
            )
        if epochs <= 0 or batch_size <= 0:
            raise TrainingError("epochs and batch_size must be positive")
        generator = make_rng(rng)
        # One-vs-rest targets in {-1, +1}.
        targets = -np.ones((x.shape[0], self.num_classes), dtype=np.float64)
        targets[np.arange(x.shape[0]), labels] = 1.0

        history = History()
        n = x.shape[0]
        for epoch in range(epochs):
            order = generator.permutation(n)
            total_loss = 0.0
            for begin in range(0, n, batch_size):
                idx = order[begin:begin + batch_size]
                xb, tb = x[idx], targets[idx]
                margins = self._margins(xb)
                slack = np.maximum(0.0, 1.0 - tb * margins)
                total_loss += slack.sum()
                active = (slack > 0).astype(np.float64) * tb
                grad_w = -(xb.T @ active) / len(idx)
                grad_w += self.regularization * self.weights
                grad_b = -active.mean(axis=0)
                self.weights -= self.learning_rate * grad_w
                self.bias -= self.learning_rate * grad_b
            predictions = self.predict_classes(x)
            accuracy = float((predictions == labels).mean())
            values: Dict[str, float] = {
                "loss": total_loss / (n * self.num_classes),
                "accuracy": accuracy,
            }
            history.append(epoch, values)
            if verbose:
                print(f"epoch {epoch + 1}/{epochs}: "
                      f"loss={values['loss']:.4f} acc={accuracy:.4f}")
        return history

    def predict(self, x: np.ndarray, batch_size: int = 0) -> np.ndarray:
        """Raw margins (analogous to Sequential's probabilities)."""
        del batch_size
        if self.weights is None:
            raise TrainingError("fit or build the model before predicting")
        return self._margins(np.asarray(x, dtype=np.float64))

    def predict_classes(self, x: np.ndarray, batch_size: int = 0) -> np.ndarray:
        """Argmax one-vs-rest decision."""
        return self.predict(x, batch_size).argmax(axis=1)

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 0
    ) -> Tuple[float, Dict[str, float]]:
        """Return ``(mean hinge loss, {"accuracy": ...})``."""
        x = np.asarray(x, dtype=np.float64)
        labels = np.asarray(y)
        if labels.ndim == 2:
            labels = labels.argmax(axis=1)
        labels = labels.astype(np.int64)
        targets = -np.ones((x.shape[0], self.num_classes), dtype=np.float64)
        targets[np.arange(x.shape[0]), labels] = 1.0
        margins = self._margins(x)
        loss = float(np.maximum(0.0, 1.0 - targets * margins).mean())
        accuracy = float((margins.argmax(axis=1) == labels).mean())
        return loss, {"accuracy": accuracy}
