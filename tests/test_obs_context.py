"""Tests for cross-process telemetry: context propagation, flush, merge.

The contract under test: a grid run with ``workers=N`` leaves the same
*set* of cell spans in the merged Chrome trace as ``workers=1`` (only
the owning process differs), and merging the same sink files twice is
byte-identical — the merge is a pure function of the sinks.
"""

import json
import time

from repro.core.parallel import run_grid
from repro.obs import agg as obs_agg
from repro.obs import context as obs_context
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


def _traced_cell(payload):
    with obs_trace.span("t.cell", cell=payload):
        obs_metrics.REGISTRY.counter("t_cells_total").inc()
        return payload * 2


def _run_grid_once(run_dir, workers):
    """One observed grid over three cells; returns the merge summary."""
    obs_trace.enable()
    obs_trace.drain()
    try:
        with obs_context.run_context(run_dir, trace=True) as ctx:
            results = run_grid(
                _traced_cell, [1, 2, 3], workers=workers, label="t"
            )
            obs_context.flush_main(obs_trace.drain(), ctx=ctx)
            summary = obs_agg.merge_run(run_dir)
    finally:
        obs_trace.drain()
        obs_trace.disable()
    return results, summary


def _cell_span_set(run_dir):
    doc = json.loads((run_dir / obs_agg.TRACE_MERGED).read_text())
    return {
        (event["name"], event["args"].get("cell"))
        for event in doc["traceEvents"]
        if event.get("ph") == "X" and event["name"] == "t.cell"
    }


class TestContext:
    def test_run_context_binds_and_restores(self, tmp_path):
        assert obs_context.current() is None
        with obs_context.run_context(tmp_path) as ctx:
            assert obs_context.current() is ctx
            assert ctx.origin_pid > 0
            with obs_context.run_context(tmp_path / "inner") as inner:
                assert obs_context.current() is inner
            assert obs_context.current() is ctx
        assert obs_context.current() is None

    def test_run_ids_are_unique(self, tmp_path):
        ids = {obs_context.new_run_id() for _ in range(32)}
        assert len(ids) == 32

    def test_ensure_worker_noop_in_origin_process(self, tmp_path):
        import os

        ctx = obs_context.RunContext(
            run_id="r", run_dir=str(tmp_path), origin_pid=os.getpid()
        )
        assert obs_context.ensure_worker(ctx) is False
        assert obs_context.ensure_worker(None) is False

    def test_flush_main_writes_spans_and_metrics(self, tmp_path):
        ctx = obs_context.RunContext(
            run_id="r", run_dir=str(tmp_path), origin_pid=0
        )
        registry = obs_metrics.MetricsRegistry()
        registry.counter("t_total").inc(3)
        spans = [{"name": "a.cell", "start_us": 1.0, "dur_us": 2.0}]
        obs_context._flush(ctx, "main", spans, registry)
        sink = obs_context.obs_dir(tmp_path)
        span_files = list(sink.glob("main-*.spans.jsonl"))
        metric_files = list(sink.glob("main-*.metrics.json"))
        assert len(span_files) == 1 and len(metric_files) == 1
        record = json.loads(span_files[0].read_text().splitlines()[0])
        assert record["name"] == "a.cell"
        assert record["role"] == "main"
        assert record["run_id"] == "r"
        dump = json.loads(metric_files[0].read_text())
        assert dump["series"][0]["name"] == "t_total"


class TestCrossProcessMerge:
    def test_worker_spans_reach_merged_trace(self, tmp_path):
        _, summary = _run_grid_once(tmp_path, workers=2)
        assert summary["spans"] >= 3
        roles = {label.split("-")[0] for label in summary["processes"]}
        assert "worker" in roles

    def test_workers1_and_workers2_same_cell_span_set(self, tmp_path):
        serial_dir = tmp_path / "serial"
        pool_dir = tmp_path / "pool"
        serial_dir.mkdir()
        pool_dir.mkdir()
        results_serial, _ = _run_grid_once(serial_dir, workers=1)
        results_pool, _ = _run_grid_once(pool_dir, workers=2)
        assert results_serial == results_pool == [2, 4, 6]
        assert _cell_span_set(serial_dir) == _cell_span_set(pool_dir) == {
            ("t.cell", 1), ("t.cell", 2), ("t.cell", 3)
        }

    def test_double_merge_is_byte_stable(self, tmp_path):
        _run_grid_once(tmp_path, workers=2)
        first_trace = (tmp_path / obs_agg.TRACE_MERGED).read_bytes()
        first_prom = (tmp_path / obs_agg.METRICS_MERGED).read_bytes()
        obs_agg.merge_run(tmp_path)
        assert (tmp_path / obs_agg.TRACE_MERGED).read_bytes() == first_trace
        assert (tmp_path / obs_agg.METRICS_MERGED).read_bytes() == first_prom


class TestMetricsMerge:
    def _write_dump(self, tmp_path, pid, build):
        registry = obs_metrics.MetricsRegistry()
        build(registry)
        dump = registry.dump()
        dump.update(pid=pid, role="worker", run_id="r")
        sink = obs_context.obs_dir(tmp_path)
        sink.mkdir(parents=True, exist_ok=True)
        (sink / f"worker-{pid}.metrics.json").write_text(
            json.dumps(dump, sort_keys=True) + "\n"
        )

    def test_counters_sum_gauges_max_histograms_sum(self, tmp_path):
        def build_a(registry):
            registry.counter("cells_total").inc(3)
            registry.gauge("depth").set(5)
            registry.histogram("cell_seconds").observe(0.1)

        def build_b(registry):
            registry.counter("cells_total").inc(4)
            registry.gauge("depth").set(2)
            registry.histogram("cell_seconds").observe(0.2)
            registry.histogram("cell_seconds").observe(0.3)

        self._write_dump(tmp_path, 100, build_a)
        self._write_dump(tmp_path, 200, build_b)
        _, series = obs_agg.merge_metrics(tmp_path)
        by_name = {entry["name"]: entry for entry in series}
        assert by_name["cells_total"]["value"] == 7.0
        assert by_name["depth"]["value"] == 5.0
        assert by_name["cell_seconds"]["count"] == 3
        assert abs(by_name["cell_seconds"]["sum"] - 0.6) < 1e-9
        text = (tmp_path / obs_agg.METRICS_MERGED).read_text()
        assert "cells_total 7" in text
        assert "cell_seconds_count 3" in text

    def test_kind_conflict_refuses_to_merge(self, tmp_path):
        import pytest

        from repro.errors import ReproError

        self._write_dump(
            tmp_path, 100, lambda r: r.counter("x_total").inc()
        )
        self._write_dump(
            tmp_path, 200, lambda r: r.gauge("x_total").set(1)
        )
        with pytest.raises(ReproError):
            obs_agg.merge_metrics(tmp_path)

    def test_torn_span_line_is_skipped(self, tmp_path):
        sink = obs_context.obs_dir(tmp_path)
        sink.mkdir(parents=True)
        good = json.dumps({"name": "ok.cell", "start_us": 1, "dur_us": 1,
                           "pid": 9, "role": "worker"})
        (sink / "worker-9.spans.jsonl").write_text(
            good + "\n" + '{"name": "torn'
        )
        spans = obs_agg.read_span_files(tmp_path)
        assert [s["name"] for s in spans] == ["ok.cell"]


def _slow_then_fast(seconds):
    time.sleep(seconds)
    return seconds


class TestStallDetection:
    def test_stall_event_emitted_for_outlier_cell(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_STALL_FACTOR", "2")
        monkeypatch.setenv("REPRO_OBS_STALL_POLL_S", "0.1")
        payloads = [0.02, 0.02, 0.02, 1.2]
        with obs_context.run_context(tmp_path, trace=False):
            run_grid(_slow_then_fast, payloads, workers=2, label="t")
        stalls = obs_events.read_events(tmp_path, event="cell.stall")
        assert stalls, "the 1.2s outlier cell should trip the detector"
        assert stalls[0]["label"] == "t"
        assert stalls[0]["waiting_s"] > 0

    def test_stall_factor_zero_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_STALL_FACTOR", "0")
        with obs_context.run_context(tmp_path, trace=False):
            results = run_grid(
                _slow_then_fast, [0.01, 0.01], workers=2, label="t"
            )
        assert results == [0.01, 0.01]
        assert obs_events.read_events(tmp_path, event="cell.stall") == []
