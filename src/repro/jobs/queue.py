"""A persistent, directory-based job queue for experiment grids.

One queue directory holds one logical grid (a table's cells, a search
sweep's scenarios).  Layout::

    <dir>/
      queue.json            queue-level metadata: experiment name, the
                            argument fingerprint and the pinned seed
      jobs/<job_id>.json    one atomic JSON record per job
      results/<job_id>.json the job's JSON result, written atomically

Every job is identified by a **spec fingerprint**: the SHA-256 of the
canonical JSON encoding of its spec dict (experiment name, cell keys,
sizes, seed).  Submitting the same spec twice is idempotent, which is
what makes resume work: a re-run of an interrupted grid re-submits every
cell, finds the completed ones already ``done`` on disk, and only
executes the remainder.

All writes go through temp-file-plus-:func:`os.replace`, so a killed
run can truncate nothing: a job record or result either exists with
valid JSON or does not exist at all.  Job state is owned by the parent
(runner) process — worker processes only compute payloads — so there
are no cross-process file races.

Job lifecycle::

    pending -> running -> done
                 |  ^
                 v  |            (crash: ``running`` records are reset
               failed             to ``pending`` at the next runner
                                  start, attempts preserved)

``attempts`` counts executions; ``error``/``error_type`` record the
last failure verbatim, so a grid that died on one cell is fully
auditable from the queue directory alone.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.errors import JobError
from repro.obs import log as obs_log

_log = obs_log.get_logger("repro.jobs")

#: Bump on incompatible queue-layout changes.
QUEUE_VERSION = 1

#: Job states.  ``PENDING`` includes never-run and retry-eligible jobs.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
STATUSES = (PENDING, RUNNING, DONE, FAILED)


def jsonify(value):
    """Project ``value`` onto plain JSON types, exactly.

    Numpy scalars map through ``.item()`` (lossless: a ``float64``
    becomes the identical Python float), arrays through ``tolist()``.
    Used for job specs, results and queue metadata so a JSON round-trip
    preserves every bit of a result row.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return jsonify(value.tolist())
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise JobError(
        f"value of type {type(value).__name__} is not JSON-serialisable "
        "for a job record"
    )


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory temp file + rename.

    ``os.replace`` is atomic on POSIX, so readers (and a resumed run)
    see either the previous content or the full new content, never a
    truncated file.
    """
    path = Path(path)
    handle, tmp = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path, payload) -> None:
    """Atomically write ``payload`` as indented JSON."""
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def spec_fingerprint(spec: Dict) -> str:
    """The job id: SHA-256 over the canonical JSON encoding of ``spec``."""
    canonical = json.dumps(jsonify(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


class JobQueue:
    """One grid's worth of persistent job state (see module docstring)."""

    def __init__(self, root):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        for directory in (self.root, self.jobs_dir, self.results_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- queue-level metadata ------------------------------------------------

    @property
    def meta_path(self) -> Path:
        return self.root / "queue.json"

    def bind(self, experiment: str, args: Dict, seed: Optional[int]) -> int:
        """Pin run-level metadata (and the seed) to this queue directory.

        The first bind writes ``queue.json``; later binds (resumed runs)
        validate that the experiment and arguments are unchanged and
        return the *stored* seed, so a resume with ``--seed`` omitted
        still derives exactly the original per-cell streams.  A
        mismatch raises :class:`~repro.errors.JobError` — completed
        results under different arguments must never be mixed.
        """
        args = jsonify(args)
        if self.meta_path.exists():
            meta = self._read_json(self.meta_path)
            if meta.get("experiment") != experiment or meta.get("args") != args:
                raise JobError(
                    f"queue directory {self.root} was created for "
                    f"{meta.get('experiment')!r} with args {meta.get('args')}; "
                    f"refusing to reuse it for {experiment!r} with args "
                    f"{args} — use a fresh directory"
                )
            stored = int(meta["seed"])
            if seed is not None and int(seed) != stored:
                raise JobError(
                    f"queue directory {self.root} pinned seed {stored}; "
                    f"refusing to resume with seed {seed} — use a fresh "
                    "directory"
                )
            return stored
        if seed is None:
            seed = int(np.random.SeedSequence().entropy) & (2**63 - 1)
        meta = {
            "queue_version": QUEUE_VERSION,
            "experiment": experiment,
            "args": args,
            "seed": int(seed),
            "created_unix": round(time.time(), 3),
        }
        atomic_write_json(self.meta_path, meta)
        return int(seed)

    def meta(self) -> Optional[Dict]:
        """The bound queue metadata, or ``None`` before the first bind."""
        if not self.meta_path.exists():
            return None
        return self._read_json(self.meta_path)

    # -- job records ---------------------------------------------------------

    def _record_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    @staticmethod
    def _read_json(path: Path) -> Dict:
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise JobError(f"unreadable job-queue file {path}: {exc}") from None

    def submit(self, spec: Dict, index: int = 0) -> str:
        """Register a job for ``spec``; idempotent on the fingerprint.

        Returns the job id.  An existing record (any status) is left
        untouched — that is the resume path.
        """
        spec = jsonify(spec)
        job_id = spec_fingerprint(spec)
        path = self._record_path(job_id)
        if not path.exists():
            record = {
                "job_id": job_id,
                "index": int(index),
                "spec": spec,
                "status": PENDING,
                "attempts": 0,
                "error": None,
                "error_type": None,
                "duration_s": None,
                "result_file": None,
                "submitted_unix": round(time.time(), 3),
                "updated_unix": round(time.time(), 3),
            }
            atomic_write_json(path, record)
            _log.debug("jobs.submit", job_id=job_id, index=index)
        return job_id

    def load(self, job_id: str) -> Dict:
        path = self._record_path(job_id)
        if not path.exists():
            raise JobError(f"no job {job_id!r} in queue {self.root}")
        return self._read_json(path)

    def update(self, job_id: str, **fields) -> Dict:
        """Merge ``fields`` into a job record and rewrite it atomically."""
        record = self.load(job_id)
        status = fields.get("status")
        if status is not None and status not in STATUSES:
            raise JobError(f"unknown job status {status!r}; known: {STATUSES}")
        record.update(fields)
        record["updated_unix"] = round(time.time(), 3)
        atomic_write_json(self._record_path(job_id), record)
        return record

    def mark_done(self, job_id: str, result, duration_s: float,
                  attempts: int) -> None:
        """Persist ``result`` atomically and flip the record to done."""
        result_path = self._result_path(job_id)
        atomic_write_json(result_path, {"job_id": job_id,
                                        "result": jsonify(result)})
        self.update(
            job_id,
            status=DONE,
            attempts=int(attempts),
            duration_s=float(duration_s),
            result_file=result_path.name,
            error=None,
            error_type=None,
        )

    def mark_failed(self, job_id: str, error: str, error_type: str,
                    duration_s: float, attempts: int) -> None:
        self.update(
            job_id,
            status=FAILED,
            attempts=int(attempts),
            duration_s=float(duration_s),
            error=str(error),
            error_type=str(error_type),
        )

    def result(self, job_id: str):
        """The stored result of a done job."""
        record = self.load(job_id)
        if record["status"] != DONE:
            raise JobError(
                f"job {job_id!r} is {record['status']}, not done; "
                f"last error: {record.get('error')!r}"
            )
        return self._read_json(self._result_path(job_id))["result"]

    def jobs(self) -> List[Dict]:
        """All job records, sorted by submission index then id."""
        records = [
            self._read_json(path)
            for path in sorted(self.jobs_dir.glob("*.json"))
        ]
        records.sort(key=lambda r: (r.get("index", 0), r.get("job_id", "")))
        return records

    def counts(self) -> Dict[str, int]:
        """Job counts by status (all four statuses always present)."""
        counts = {status: 0 for status in STATUSES}
        for record in self.jobs():
            counts[record.get("status", PENDING)] = (
                counts.get(record.get("status", PENDING), 0) + 1
            )
        return counts

    def reset_interrupted(self) -> int:
        """Flip ``running`` records (a killed run's leftovers) to pending.

        Returns how many were reset.  Attempt counts are preserved: an
        interrupted attempt still consumed budget.
        """
        reset = 0
        for record in self.jobs():
            if record["status"] == RUNNING:
                self.update(record["job_id"], status=PENDING)
                reset += 1
        if reset:
            _log.info("jobs.reset_interrupted", count=reset)
        return reset
