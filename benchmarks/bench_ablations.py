"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Classifier family** — the paper's conclusion claims an SVM can
  replace the neural network; measure the linear SVM against the
  "three layer" MLP on the same scenario.
* **Number of differences t** — Algorithm 2 requires ``t >= 2``; check
  the advantage (accuracy minus ``1/t``) persists as t grows.
* **Difference placement** — the paper picks message bytes 4 and 12
  (two different rate words); compare against two bytes in the *same*
  word.
* **Observation window** — full 384-bit permutation output vs the
  128-bit rate row only (what the sponge attacker actually sees).
"""

from conftest import run_once

from repro.core.distinguisher import MLDistinguisher
from repro.core.scenario import GimliHashScenario, GimliPermutationScenario
from repro.errors import DistinguisherAborted
from repro.experiments.report import format_table
from repro.nn.architectures import build_mlp
from repro.nn.svm import LinearSVM

ROUNDS = 6
SAMPLES = 10_000


def _train(scenario, model, seed, epochs=4):
    distinguisher = MLDistinguisher(scenario, model=model, epochs=epochs, rng=seed)
    try:
        report = distinguisher.train(num_samples=SAMPLES)
        return report.validation_accuracy
    except DistinguisherAborted:
        return 1.0 / scenario.num_classes


def test_ablation_svm_vs_mlp(benchmark):
    scenario = GimliHashScenario(rounds=ROUNDS)

    def run():
        mlp_acc = _train(scenario, build_mlp([128, 256], "relu"), seed=1)
        svm = LinearSVM(num_classes=2, learning_rate=0.1)
        svm.build((scenario.feature_bits,))
        svm_acc = _train(scenario, svm, seed=1)
        return mlp_acc, svm_acc

    mlp_acc, svm_acc = run_once(benchmark, run)
    print()
    print(format_table(
        ["classifier", "accuracy"],
        [["MLP (three layer)", mlp_acc], ["Linear SVM", svm_acc]],
        title=f"classifier family, {ROUNDS}-round Gimli-Hash",
    ))
    # Both distinguish; the MLP sees bit correlations a linear model can't.
    assert svm_acc > 0.55
    assert mlp_acc >= svm_acc - 0.02


def test_ablation_bias_baseline_vs_mlp(benchmark):
    """How much of the ML accuracy do marginal bit biases explain?

    A naive-Bayes classifier over independent output-difference bits is
    the no-learning classical baseline; the MLP's edge over it measures
    the bit-*correlation* information a neural model adds.
    """
    from repro.core.bias_baseline import BitBiasClassifier

    def run():
        rows = []
        for rounds in (5, 6, 7):
            scenario = GimliHashScenario(rounds=rounds)
            mlp_acc = _train(
                scenario, build_mlp([128, 256], "relu"), seed=8, epochs=4
            )
            baseline = BitBiasClassifier()
            baseline.build((scenario.feature_bits,))
            bias_acc = _train(scenario, baseline, seed=8, epochs=1)
            rows.append((rounds, bias_acc, mlp_acc))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["rounds", "bit-bias baseline", "MLP"],
        rows,
        title="first-order bias vs learned model, Gimli-Hash",
    ))
    for rounds, bias_acc, mlp_acc in rows:
        # The baseline explains much of the low-round signal...
        if rounds <= 6:
            assert bias_acc > 0.8
        # ...and the MLP never does meaningfully worse.
        assert mlp_acc >= bias_acc - 0.05, (rounds, bias_acc, mlp_acc)


def test_ablation_num_differences(benchmark):
    def run():
        results = []
        for diff_bytes in [(4, 12), (0, 4, 8), (0, 4, 8, 12)]:
            scenario = GimliHashScenario(rounds=ROUNDS, diff_bytes=diff_bytes)
            model = build_mlp(
                [128, 256], "relu", num_classes=scenario.num_classes
            )
            acc = _train(scenario, model, seed=2)
            results.append((len(diff_bytes), acc, acc - 1 / len(diff_bytes)))
        return results

    results = run_once(benchmark, run)
    print()
    print(format_table(
        ["t", "accuracy", "advantage over 1/t"],
        results,
        title=f"number of input differences, {ROUNDS}-round Gimli-Hash",
    ))
    for _t, _acc, adv in results:
        assert adv > 0.2


def test_ablation_difference_placement(benchmark):
    def run():
        separate = _train(
            GimliHashScenario(rounds=ROUNDS, diff_bytes=(4, 12)),
            build_mlp([128, 256], "relu"),
            seed=3,
        )
        same_word = _train(
            GimliHashScenario(rounds=ROUNDS, diff_bytes=(4, 5)),
            build_mlp([128, 256], "relu"),
            seed=3,
        )
        return separate, same_word

    separate, same_word = run_once(benchmark, run)
    print()
    print(format_table(
        ["placement", "accuracy"],
        [["bytes 4/12 (different words, paper)", separate],
         ["bytes 4/5 (same word)", same_word]],
        title=f"difference placement, {ROUNDS}-round Gimli-Hash",
    ))
    assert separate > 0.55
    assert same_word > 0.55


def test_ablation_observation_window(benchmark):
    def run():
        full = _train(
            GimliPermutationScenario(rounds=ROUNDS),
            build_mlp([128, 256], "relu"),
            seed=4,
        )
        rate_only = _train(
            GimliPermutationScenario(rounds=ROUNDS, observe_words=range(4)),
            build_mlp([128, 256], "relu"),
            seed=4,
        )
        return full, rate_only

    full, rate_only = run_once(benchmark, run)
    print()
    print(format_table(
        ["observation", "accuracy"],
        [["full 384-bit state", full], ["128-bit rate row", rate_only]],
        title=f"observation window, {ROUNDS}-round Gimli permutation",
    ))
    # Seeing more of the state can only help.
    assert full >= rate_only - 0.03
