"""Tests for the Markov-cipher analysis (§2.1)."""

import numpy as np
import pytest

from repro.ciphers.toygift import PAPER_TRAIL, ToyGift, nibbles_to_byte
from repro.diffcrypt.markov import (
    conditional_difference_distribution,
    figure1_demonstration,
    markov_violation,
    markov_violation_toygift,
)


class TestConditionalDistribution:
    def test_rows_are_distributions(self):
        toy = ToyGift()
        table = conditional_difference_distribution(toy.round1, 0x23, 8)
        assert table.shape == (256, 256)
        assert np.allclose(table.sum(axis=1), 1.0)

    def test_unkeyed_round_is_deterministic_per_gamma(self):
        toy = ToyGift()
        table = conditional_difference_distribution(toy.round1, 0x23, 8)
        # Each row is a point mass.
        assert np.allclose(table.max(axis=1), 1.0)


class TestMarkovViolation:
    def test_keyed_xor_round_is_markov(self):
        """A round that is pure key-XOR has zero violation: the output
        difference equals the input difference for every input."""

        def xor_round(x):
            return x ^ 0x5A

        assert markov_violation(xor_round, 0x23, 8) == 0.0

    def test_toygift_violation_large(self):
        violation = markov_violation_toygift()
        assert violation > 0.9

    def test_violation_bounded(self):
        assert markov_violation_toygift() <= 1.0

    def test_custom_delta(self):
        v = markov_violation_toygift(delta_in=0x01)
        assert 0.0 <= v <= 1.0


class TestFigure1Demonstration:
    def test_all_paper_numbers(self):
        demo = figure1_demonstration()
        assert demo["exact_probability"] == pytest.approx(2.0**-6)
        assert demo["markov_probability"] == pytest.approx(2.0**-9)
        assert demo["exact_weight"] == pytest.approx(6.0)
        assert demo["markov_weight"] == pytest.approx(9.0)
        assert demo["ratio"] == pytest.approx(8.0)

    def test_round1_probability_quoted(self):
        """§2.1: 'the probability of ΔY1 -> ΔW1 is 2^-5'."""
        demo = figure1_demonstration()
        assert demo["round1_probability"] == pytest.approx(2.0**-5)

    def test_trail_constants(self):
        assert nibbles_to_byte(PAPER_TRAIL["delta_y1"]) == 0x23
        assert nibbles_to_byte(PAPER_TRAIL["delta_w1"]) == 0x58
        assert nibbles_to_byte(PAPER_TRAIL["delta_y2"]) == 0x62
        assert nibbles_to_byte(PAPER_TRAIL["delta_w2"]) == 0x25
