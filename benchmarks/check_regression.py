"""Gate benchmark regressions against the committed baselines.

Re-runs the substrate benchmark suites (via ``run_benchmarks.run_suite``)
into a temporary directory and compares every benchmark that appears in
both the fresh run and the committed ``benchmarks/BENCH_<suite>.json``.
A benchmark whose fresh mean exceeds ``threshold`` times its committed
mean (default 2x — far outside the few-percent run-to-run noise of a
shared machine, so only a real regression trips it) fails the check and
the script exits non-zero.

Benchmarks present on only one side are reported but never fail the
check: adding a benchmark must not require regenerating every baseline
in the same commit, and renames surface visibly instead of silently
passing.

Every compared benchmark is reported with its percentage delta against
the baseline (``(fresh / baseline - 1) * 100``), so a PR's perf impact
is readable per metric even when nothing trips the gate.  After an
intentional perf change, ``--update-baselines`` re-measures and
rewrites the committed artefacts in place instead of gating.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py          # make bench-check
    PYTHONPATH=src python benchmarks/check_regression.py --quick  # noisy smoke mode
    PYTHONPATH=src python benchmarks/check_regression.py --update-baselines
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Tuple

BENCH_DIR = Path(__file__).resolve().parent

_spec = importlib.util.spec_from_file_location(
    "run_benchmarks", BENCH_DIR / "run_benchmarks.py"
)
run_benchmarks = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(run_benchmarks)

DEFAULT_THRESHOLD = 2.0


def _means(report: dict) -> Dict[str, float]:
    return {
        entry["name"]: float(entry["mean_s"]) for entry in report["benchmarks"]
    }


def compare_reports(
    baseline: dict, fresh: dict, threshold: float = DEFAULT_THRESHOLD
) -> Tuple[List[dict], List[str]]:
    """Compare two BENCH reports name-by-name.

    Returns ``(rows, unmatched)``: one row per benchmark present in both
    reports (``name``, ``baseline_s``, ``fresh_s``, ``ratio``,
    ``regressed``), plus the names present in only one of the two.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must exceed 1.0, got {threshold}")
    base = _means(baseline)
    new = _means(fresh)
    rows = []
    for name in sorted(base.keys() & new.keys()):
        ratio = new[name] / base[name]
        rows.append(
            {
                "name": name,
                "baseline_s": base[name],
                "fresh_s": new[name],
                "ratio": ratio,
                "delta_pct": (ratio - 1.0) * 100.0,
                "regressed": ratio > threshold,
            }
        )
    unmatched = sorted(base.keys() ^ new.keys())
    return rows, unmatched


def check_suite(
    suite: str, quick: bool, threshold: float, update: bool = False
) -> bool:
    """Run one suite and compare it against its committed baseline.

    With ``update`` the fresh measurements *replace* the committed
    baseline after the comparison is printed (the comparison itself
    never fails the check in that mode: the new numbers are the point).
    """
    committed_path = BENCH_DIR / f"BENCH_{suite}.json"
    with tempfile.TemporaryDirectory() as tmp:
        if not committed_path.exists():
            if not update:
                print(
                    f"[{suite}] no committed baseline at "
                    f"{committed_path.name}; skipping"
                )
                return True
            fresh_path = run_benchmarks.run_suite(
                suite, run_benchmarks.ALL_SUITES[suite], quick, Path(tmp)
            )
            run_benchmarks.validate_bench_file(fresh_path)
            committed_path.write_text(fresh_path.read_text())
            print(f"[{suite}] wrote new baseline {committed_path.name}")
            return True
        baseline = json.loads(committed_path.read_text())
        fresh_path = run_benchmarks.run_suite(
            suite, run_benchmarks.ALL_SUITES[suite], quick, Path(tmp)
        )
        run_benchmarks.validate_bench_file(fresh_path)
        fresh = json.loads(fresh_path.read_text())
        if update:
            committed_path.write_text(fresh_path.read_text())
    if baseline.get("quick"):
        print(
            f"[{suite}] warning: committed baseline was recorded in --quick "
            "mode; timings are noisy"
        )
    rows, unmatched = compare_reports(baseline, fresh, threshold)
    ok = True
    for row in rows:
        flag = "REGRESSED" if row["regressed"] else "ok"
        print(
            f"[{suite}] {row['name']}: baseline {row['baseline_s'] * 1e3:.2f} ms, "
            f"fresh {row['fresh_s'] * 1e3:.2f} ms "
            f"({row['delta_pct']:+.1f}%) {flag}"
        )
        ok = ok and not row["regressed"]
    for name in unmatched:
        print(f"[{suite}] {name}: present in only one report (not compared)")
    if update:
        print(f"[{suite}] baseline {committed_path.name} updated")
        return True
    if not rows:
        print(f"[{suite}] error: no benchmark names in common with the baseline")
        return False
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"fail when fresh mean > threshold * baseline mean "
        f"(default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="measure in one-round smoke mode (fast but noisy; pair with "
        "a generous --threshold)",
    )
    parser.add_argument(
        "--suite",
        choices=sorted(run_benchmarks.ALL_SUITES),
        action="append",
        help="check only this suite (repeatable; default: all)",
    )
    parser.add_argument(
        "--update-baselines",
        action="store_true",
        help="replace the committed BENCH_<suite>.json files with the "
        "fresh measurements instead of gating on them",
    )
    args = parser.parse_args(argv)
    suites = args.suite or sorted(run_benchmarks.ALL_SUITES)
    failed = [
        suite
        for suite in suites
        if not check_suite(
            suite, args.quick, args.threshold, update=args.update_baselines
        )
    ]
    if failed:
        print(f"regressions detected in: {', '.join(failed)}")
        return 1
    if args.update_baselines:
        print("baselines updated")
    else:
        print("no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
