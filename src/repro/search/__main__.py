"""Command-line entry point: ``python -m repro.search``.

Two spellings:

* a JSON scenario config (the declarative schema of
  :mod:`repro.search.config`)::

      python -m repro.search configs/toyspeck_r3.json --registry registry/

* inline flags for a quick search without a config file::

      python -m repro.search --scenario toyspeck --rounds 3 --generations 6

* a multi-config **sweep**, optionally resumable::

      python -m repro.search cfgs/a.json cfgs/b.json --resume runs/sweep1

  Each config file holds one scenario dict or a list of them; every
  scenario is an independent cell (``--workers N`` runs that many in
  parallel) and with ``--resume DIR`` each becomes a persistent job
  under ``DIR/queue/search`` — a re-run after an interruption skips the
  scenarios that already finished (see :mod:`repro.jobs`).

Without ``--registry`` the pipeline stops after training (``--search-only``
stops before it); with one, the trained distinguisher is registered and
its manifest records the discovered difference set, so
``python -m repro.serve --registry ...`` serves it immediately.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.search.config import SCENARIO_BUILDERS, ScenarioSpec
from repro.search.evolve import SearchConfig
from repro.search.pipeline import (
    load_sweep,
    run_search,
    run_search_pipeline,
    run_sweep,
)


def _spec_from_args(args) -> ScenarioSpec:
    if args.config:
        spec = ScenarioSpec.from_json(args.config[0])
    else:
        search = {}
        for key, value in (
            ("population_size", args.population),
            ("generations", args.generations),
            ("n_samples", args.samples),
            ("seed", args.seed),
        ):
            if value is not None:
                search[key] = value
        raw = {
            "name": args.name or f"{args.scenario}-r{args.rounds}-search",
            "scenario": args.scenario,
            "params": {"rounds": args.rounds},
            "search": search,
        }
        if args.train_samples is not None:
            raw["train"] = {"num_samples": args.train_samples}
        spec = ScenarioSpec.from_dict(raw)
    return spec


def _print_ranked(result) -> None:
    print(f"ranked differences (noise floor {result.noise_floor:.4f}, "
          f"{result.evaluations} candidates evaluated):")
    for rank, (mask, score) in enumerate(
        zip(result.ranked_masks, result.ranked_scores), start=1
    ):
        words = " ".join(f"{int(w):0{mask.dtype.itemsize * 2}x}" for w in mask)
        print(f"  #{rank}  [{words}]  score {score:.4f}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Automated input-difference search: "
        "search -> train -> register.",
    )
    parser.add_argument(
        "config", nargs="*", default=[],
        help="JSON scenario config(s) (see EXPERIMENTS.md for the schema); "
        "omit to use the inline flags.  More than one file — or a file "
        "holding a list of scenarios — runs as a sweep",
    )
    parser.add_argument(
        "--scenario", default="toyspeck",
        choices=sorted(SCENARIO_BUILDERS),
        help="scenario family for inline mode (default: toyspeck)",
    )
    parser.add_argument("--rounds", type=int, default=3,
                        help="round reduction for inline mode")
    parser.add_argument("--name", default=None,
                        help="experiment/model name (inline mode)")
    parser.add_argument("--population", type=int, default=None,
                        help=f"population size (default "
                        f"{SearchConfig.population_size})")
    parser.add_argument("--generations", type=int, default=None,
                        help=f"generations (default {SearchConfig.generations})")
    parser.add_argument("--samples", type=int, default=None,
                        help="oracle samples per candidate score "
                        f"(default {SearchConfig.n_samples})")
    parser.add_argument("--seed", type=int, default=None, help="search seed")
    parser.add_argument("--train-samples", type=int, default=None,
                        help=f"offline training samples")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (scores and results are "
                        "identical for any value)")
    parser.add_argument("--registry", default=None,
                        help="model-registry directory; registers the "
                        "trained distinguisher when given")
    parser.add_argument("--search-only", action="store_true",
                        help="stop after the search stage (no training)")
    parser.add_argument("--resume", metavar="DIR", default=None,
                        help="run the sweep resumably: persist each "
                        "scenario as a job under DIR/queue/search and "
                        "skip scenarios completed by earlier invocations")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the result as JSON on stdout")
    args = parser.parse_args(argv)

    if args.as_json:
        # keep stdout machine-readable: route console logs to stderr
        from repro.obs import log as obs_log

        obs_log.configure(stream=sys.stderr)

    try:
        sweep = args.resume is not None or len(args.config) > 1
        if not sweep and len(args.config) == 1:
            # a single file holding a list is a sweep too
            raws = load_sweep(args.config)
            sweep = len(raws) > 1
        if sweep:
            if args.search_only:
                parser.error("--search-only does not apply to sweeps")
            raws = load_sweep(args.config) if args.config else None
            if raws is None:
                parser.error("a sweep needs at least one config file")
            queue_dir = (
                Path(args.resume) / "queue" / "search"
                if args.resume is not None
                else None
            )
            summaries = run_sweep(
                raws,
                registry_dir=args.registry,
                workers=args.workers,
                queue_dir=queue_dir,
                verbose=not args.as_json,
            )
            if args.as_json:
                print(json.dumps(summaries, indent=2))
            else:
                for summary in summaries:
                    print(
                        f"[{summary['name']}] validation accuracy "
                        f"{summary['training']['validation_accuracy']:.4f}"
                        + (
                            f", registered v{summary['version']}"
                            if "version" in summary
                            else ""
                        )
                    )
            return 0
        spec = _spec_from_args(args)
        if args.search_only:
            result = run_search(spec, workers=args.workers)
            if args.as_json:
                print(json.dumps(result.summary(), indent=2))
            else:
                _print_ranked(result)
            return 0
        registry = None
        if args.registry is not None:
            from repro.serve import ModelRegistry

            registry = ModelRegistry(args.registry)
        summary = run_search_pipeline(
            spec, registry=registry, workers=args.workers,
            verbose=not args.as_json,
        )
        if args.as_json:
            print(json.dumps(summary, indent=2))
        else:
            if summary.get("search"):
                print(f"[{spec.name}] best score "
                      f"{summary['search']['ranked_scores'][0]:.4f} after "
                      f"{summary['search']['evaluations']} evaluations")
            print(f"[{spec.name}] differences: {summary['differences']}")
            print(f"[{spec.name}] validation accuracy "
                  f"{summary['training']['validation_accuracy']:.4f}")
            if "model_id" in summary:
                print(f"[{spec.name}] registered as "
                      f"{summary.get('name')} v{summary['version']} "
                      f"({summary['model_id'][:16]}...)")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
