"""Tests for the persistent job queue and runner (:mod:`repro.jobs`)."""

import json
import os

import numpy as np
import pytest

from repro.errors import JobError
from repro.jobs import JobQueue, bind_run, run_cells
from repro.jobs.queue import jsonify, spec_fingerprint


def _double(payload):
    return {"value": payload["value"] * 2}


def _flaky(payload):
    """Fail until a marker file exists (created on the first attempt)."""
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("attempted")
        raise RuntimeError("transient failure")
    return {"value": payload["value"]}


def _always_fails(payload):
    raise ValueError(f"cell {payload['value']} is broken")


class TestJsonify:
    def test_numpy_scalars_are_lossless(self):
        value = np.float64(0.1234567890123456789)
        assert jsonify(value) == value.item()
        assert json.loads(json.dumps(jsonify(value))) == value.item()

    def test_arrays_and_nesting(self):
        out = jsonify({"a": np.arange(3, dtype=np.uint8), "b": (1, np.int64(2))})
        assert out == {"a": [0, 1, 2], "b": [1, 2]}

    def test_unserialisable_rejected(self):
        with pytest.raises(JobError):
            jsonify({"fn": _double})


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = spec_fingerprint({"rounds": 3, "target": "hash"})
        b = spec_fingerprint({"target": "hash", "rounds": 3})
        assert a == b

    def test_distinct_specs_distinct_ids(self):
        a = spec_fingerprint({"rounds": 3})
        b = spec_fingerprint({"rounds": 4})
        assert a != b

    def test_numpy_values_fingerprint_like_python(self):
        a = spec_fingerprint({"rounds": np.int64(3)})
        b = spec_fingerprint({"rounds": 3})
        assert a == b


class TestQueue:
    def test_submit_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path)
        first = queue.submit({"rounds": 3}, index=0)
        queue.update(first, status="done")
        second = queue.submit({"rounds": 3}, index=0)
        assert first == second
        assert queue.load(first)["status"] == "done"

    def test_lifecycle_and_result_roundtrip(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit({"rounds": 3})
        assert queue.load(job_id)["status"] == "pending"
        queue.update(job_id, status="running")
        row = {"accuracy": 0.9171582031249999, "rounds": 3}
        queue.mark_done(job_id, row, duration_s=0.5, attempts=1)
        record = queue.load(job_id)
        assert record["status"] == "done"
        assert record["attempts"] == 1
        # exact float round-trip through JSON
        assert queue.result(job_id) == row

    def test_result_of_unfinished_job_refused(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit({"rounds": 3})
        with pytest.raises(JobError):
            queue.result(job_id)

    def test_unknown_status_rejected(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit({"rounds": 3})
        with pytest.raises(JobError):
            queue.update(job_id, status="exploded")

    def test_reset_interrupted(self, tmp_path):
        queue = JobQueue(tmp_path)
        job_id = queue.submit({"rounds": 3})
        queue.update(job_id, status="running", attempts=2)
        assert queue.reset_interrupted() == 1
        record = queue.load(job_id)
        assert record["status"] == "pending"
        assert record["attempts"] == 2  # interrupted attempts still count

    def test_counts(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit({"rounds": 3})
        done = queue.submit({"rounds": 4})
        queue.mark_done(done, {"x": 1}, 0.1, 1)
        assert queue.counts() == {
            "pending": 1, "running": 0, "done": 1, "failed": 0,
        }


class TestBind:
    def test_bind_pins_and_replays_seed(self, tmp_path):
        seed = bind_run(tmp_path, "table2", {"rounds": [3]}, 17)
        assert seed == 17
        # resume without a seed replays the pinned one
        assert bind_run(tmp_path, "table2", {"rounds": [3]}, None) == 17

    def test_bind_none_seed_pins_entropy(self, tmp_path):
        first = bind_run(tmp_path, "table2", {}, None)
        assert bind_run(tmp_path, "table2", {}, None) == first

    def test_arg_mismatch_refused(self, tmp_path):
        bind_run(tmp_path, "table2", {"rounds": [3]}, 17)
        with pytest.raises(JobError):
            bind_run(tmp_path, "table2", {"rounds": [4]}, 17)

    def test_experiment_mismatch_refused(self, tmp_path):
        bind_run(tmp_path, "table2", {}, 17)
        with pytest.raises(JobError):
            bind_run(tmp_path, "table3", {}, 17)

    def test_seed_mismatch_refused(self, tmp_path):
        bind_run(tmp_path, "table2", {}, 17)
        with pytest.raises(JobError):
            bind_run(tmp_path, "table2", {}, 18)

    def test_generator_rng_refused(self, tmp_path):
        with pytest.raises(JobError):
            bind_run(tmp_path, "table2", {}, np.random.default_rng(0))


class TestRunCells:
    def _specs(self, n):
        return [{"experiment": "demo", "value": i} for i in range(n)]

    def test_plain_path_without_queue(self):
        payloads = [{"value": i} for i in range(3)]
        rows = run_cells(_double, payloads, specs=None, workers=None)
        assert rows == [{"value": 0}, {"value": 2}, {"value": 4}]

    def test_queued_run_and_replay(self, tmp_path):
        payloads = [{"value": i} for i in range(3)]
        rows = run_cells(
            _double, payloads, specs=self._specs(3), queue_dir=tmp_path
        )
        assert rows == [{"value": 0}, {"value": 2}, {"value": 4}]
        # second invocation replays everything from disk
        replayed = run_cells(
            _double, payloads, specs=self._specs(3), queue_dir=tmp_path
        )
        assert replayed == rows
        assert all(r["attempts"] == 1 for r in JobQueue(tmp_path).jobs())

    def test_missing_specs_rejected(self, tmp_path):
        with pytest.raises(JobError):
            run_cells(_double, [{"value": 0}], specs=None, queue_dir=tmp_path)

    def test_duplicate_specs_rejected(self, tmp_path):
        payloads = [{"value": 0}, {"value": 1}]
        specs = [{"experiment": "demo"}, {"experiment": "demo"}]
        with pytest.raises(JobError):
            run_cells(_double, payloads, specs=specs, queue_dir=tmp_path)

    def test_retry_recovers_transient_failure(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS_RETRIES", "2")
        monkeypatch.setenv("REPRO_JOBS_BACKOFF", "0")
        marker = tmp_path / "marker"
        payloads = [{"value": 7, "marker": str(marker)}]
        rows = run_cells(
            _flaky, payloads, specs=self._specs(1),
            queue_dir=tmp_path / "q",
        )
        assert rows == [{"value": 7}]
        (record,) = JobQueue(tmp_path / "q").jobs()
        assert record["status"] == "done"
        assert record["attempts"] == 2

    def test_failing_cell_records_error_and_attempts(self, tmp_path,
                                                     monkeypatch):
        monkeypatch.setenv("REPRO_JOBS_RETRIES", "3")
        monkeypatch.setenv("REPRO_JOBS_BACKOFF", "0")
        payloads = [{"value": 0}, {"value": 1}]
        with pytest.raises(JobError, match="1 failed"):
            run_cells(
                lambda p: (_always_fails(p) if p["value"] == 1
                           else _double(p)),
                payloads, specs=self._specs(2), queue_dir=tmp_path,
            )
        records = {r["spec"]["value"]: r for r in JobQueue(tmp_path).jobs()}
        assert records[0]["status"] == "done"
        failed = records[1]
        assert failed["status"] == "failed"
        assert failed["attempts"] == 3
        assert failed["error_type"] == "ValueError"
        assert "cell 1 is broken" in failed["error"]

    def test_max_cells_caps_one_invocation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS_MAX_CELLS", "2")
        payloads = [{"value": i} for i in range(4)]
        with pytest.raises(JobError, match="2 not processed"):
            run_cells(_double, payloads, specs=self._specs(4),
                      queue_dir=tmp_path)
        assert JobQueue(tmp_path).counts()["done"] == 2
        monkeypatch.delenv("REPRO_JOBS_MAX_CELLS")
        rows = run_cells(_double, payloads, specs=self._specs(4),
                         queue_dir=tmp_path)
        assert rows == [{"value": 2 * i} for i in range(4)]

    def test_bad_env_knobs_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS_RETRIES", "zero")
        with pytest.raises(JobError):
            run_cells(_double, [{"value": 0}], specs=self._specs(1),
                      queue_dir=tmp_path)
        monkeypatch.setenv("REPRO_JOBS_RETRIES", "0")
        with pytest.raises(JobError):
            run_cells(_double, [{"value": 0}], specs=self._specs(1),
                      queue_dir=tmp_path / "q2")
