"""Weight initializers (Keras-compatible defaults).

``glorot_uniform`` is the Keras default for ``Dense``/``Conv``/``LSTM``
kernels, which is what the paper's models used; ``he_uniform`` suits the
ReLU-heavy MLPs and is available as an option.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _fans(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) the way Keras does for dense/conv kernels."""
    shape = tuple(int(s) for s in shape)
    if len(shape) < 1:
        raise ValueError("initializer shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[:-2]))
    return shape[-2] * receptive, shape[-1] * receptive


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Uniform on ``[-limit, limit]`` with ``limit = sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Uniform on ``[-limit, limit]`` with ``limit = sqrt(6 / fan_in)``."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def normal_init(
    shape: Sequence[int], rng: np.random.Generator, stddev: float = 0.05
) -> np.ndarray:
    """Zero-mean Gaussian initializer."""
    return rng.normal(0.0, stddev, size=shape).astype(np.float64)


def zeros_init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """All-zero initializer (biases)."""
    del rng
    return np.zeros(shape, dtype=np.float64)


INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "he_uniform": he_uniform,
    "normal": normal_init,
    "zeros": zeros_init,
}


def get_initializer(name: str):
    """Look up an initializer by name."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        known = ", ".join(sorted(INITIALIZERS))
        raise ValueError(f"unknown initializer {name!r}; known: {known}") from None
