"""The distinguisher game's oracle abstraction.

The attacker is handed ``ORACLE <- {CIPHER, RANDOM}`` and must decide
which it is (paper §1, "Our Contributions").  An oracle here is a
batched map from scenario inputs to outputs:

* :class:`CipherOracle` wraps the scenario's real pipeline;
* :class:`RandomOracle` returns uniform outputs — by default it
  memoises, so it behaves as a consistent random *function* (repeated
  inputs get repeated answers), matching the formal game.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

from repro.errors import DistinguisherError
from repro.utils.rng import make_rng


class Oracle(abc.ABC):
    """A batched query interface: ``(n, input_words) -> (n, output_words)``."""

    @abc.abstractmethod
    def query(self, inputs: np.ndarray, context: Optional[np.ndarray]) -> np.ndarray:
        """Answer a batch of queries.

        ``context`` carries per-sample material that is part of the
        experiment but not of the chosen difference (e.g. the AEAD keys
        in the nonce-respecting Gimli-Cipher scenario).
        """

    def __call__(self, inputs, context=None):
        return self.query(inputs, context)


class CipherOracle(Oracle):
    """The real primitive: delegates to the scenario's pipeline function."""

    def __init__(self, pipeline: Callable[[np.ndarray, Optional[np.ndarray]], np.ndarray]):
        self._pipeline = pipeline

    def query(self, inputs, context=None):
        return self._pipeline(inputs, context)


class RandomOracle(Oracle):
    """A uniformly random function with the same output geometry.

    With ``memoize=True`` (default) repeated queries on identical
    ``(input, context)`` pairs return identical answers, making this a
    true random function.  For the sample sizes of the paper (< 2^20)
    the memo table is small; pass ``memoize=False`` to trade exactness
    for speed when inputs are known to be distinct.
    """

    def __init__(
        self,
        output_words: int,
        word_width: int = 32,
        rng=None,
        memoize: bool = True,
    ):
        if output_words <= 0:
            raise DistinguisherError(
                f"output_words must be positive, got {output_words}"
            )
        if word_width not in (8, 16, 32, 64):
            raise DistinguisherError(f"unsupported word width {word_width}")
        self.output_words = int(output_words)
        self.word_width = int(word_width)
        self._rng = make_rng(rng)
        self._memoize = bool(memoize)
        self._memo = {}

    def _draw(self, n: int) -> np.ndarray:
        dtype = {8: np.uint8, 16: np.uint16, 32: np.uint32, 64: np.uint64}[
            self.word_width
        ]
        high = 1 << self.word_width
        if self.word_width == 64:
            return self._rng.integers(
                0, high, size=(n, self.output_words), dtype=np.uint64
            )
        return self._rng.integers(
            0, high, size=(n, self.output_words), dtype=np.uint64
        ).astype(dtype)

    def query(self, inputs, context=None):
        inputs = np.asarray(inputs)
        n = inputs.shape[0]
        if not self._memoize:
            return self._draw(n)
        out = np.empty((n, self.output_words), dtype=self._draw(1).dtype)
        for row in range(n):
            key = inputs[row].tobytes()
            if context is not None:
                key += np.asarray(context)[row].tobytes()
            cached = self._memo.get(key)
            if cached is None:
                cached = self._draw(1)[0]
                self._memo[key] = cached
            out[row] = cached
        return out
