"""A classical per-bit-bias distinguisher — the non-ML baseline.

A natural question about the paper's method is *what the network
learns*.  The cheapest classical competitor uses only the first-order
statistics the network could read off trivially: estimate, per class,
the probability of each output-difference bit being 1, and classify new
samples by naive-Bayes likelihood under independent bits.

Comparing this baseline against the MLP answers two things at once:

* how much of the ML accuracy is explained by marginal bit biases
  (at low rounds: nearly all of it), and
* where bit *correlations* start to matter (the residual gap at higher
  rounds — the part that justifies a neural model over a lookup table).

The baseline implements the same model surface as
:class:`~repro.nn.model.Sequential`, so it drops into
:class:`~repro.core.distinguisher.MLDistinguisher` unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import TrainingError
from repro.nn.callbacks import History


class BitBiasClassifier:
    """Naive-Bayes classifier over independent output-difference bits.

    Per class ``i`` and bit ``j`` it estimates ``p[i, j] = P(bit_j = 1 |
    class i)`` with Laplace smoothing, and classifies by maximum
    log-likelihood.  Training is a single counting pass — no epochs, no
    gradients — which is exactly the point of the baseline.
    """

    def __init__(self, num_classes: int = 2, smoothing: float = 1.0):
        if num_classes < 2:
            raise TrainingError(f"need at least 2 classes, got {num_classes}")
        if smoothing <= 0:
            raise TrainingError(f"smoothing must be positive, got {smoothing}")
        self.num_classes = int(num_classes)
        self.smoothing = float(smoothing)
        self.bit_probabilities: Optional[np.ndarray] = None  # (classes, bits)
        self.log_priors: Optional[np.ndarray] = None
        self.loss = object()  # compiled-model sentinel for MLDistinguisher
        self.input_shape: Optional[Tuple[int, ...]] = None
        self.layers = [self]

    def build(self, input_shape, rng=None) -> "BitBiasClassifier":
        """Record the feature width (counting needs no allocation)."""
        del rng
        self.input_shape = (int(input_shape[0]),)
        return self

    def compile(self, **_kwargs) -> "BitBiasClassifier":
        """No-op for API compatibility."""
        return self

    def count_params(self) -> int:
        """One Bernoulli parameter per (class, bit) plus priors."""
        if self.bit_probabilities is None:
            if self.input_shape is None:
                raise TrainingError("build or fit the classifier first")
            return self.num_classes * (self.input_shape[0] + 1)
        return int(self.bit_probabilities.size + self.num_classes)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 1,
        batch_size: int = 0,
        rng=None,
        verbose: bool = False,
        **_ignored,
    ) -> History:
        """Single counting pass (``epochs``/``batch_size`` ignored)."""
        del epochs, batch_size, rng
        x = np.asarray(x, dtype=np.float64)
        labels = np.asarray(y)
        if labels.ndim == 2:
            labels = labels.argmax(axis=1)
        labels = labels.astype(np.int64)
        if x.shape[0] != labels.shape[0]:
            raise TrainingError(
                f"x has {x.shape[0]} samples but y has {labels.shape[0]}"
            )
        if self.input_shape is None:
            self.build(x.shape[1:])
        bits = x.shape[1]
        probabilities = np.empty((self.num_classes, bits), dtype=np.float64)
        priors = np.empty(self.num_classes, dtype=np.float64)
        for cls in range(self.num_classes):
            members = x[labels == cls]
            count = members.shape[0]
            if count == 0:
                raise TrainingError(f"class {cls} has no training samples")
            probabilities[cls] = (members.sum(axis=0) + self.smoothing) / (
                count + 2 * self.smoothing
            )
            priors[cls] = count
        self.bit_probabilities = probabilities
        self.log_priors = np.log(priors / priors.sum())

        history = History()
        accuracy = float((self.predict_classes(x) == labels).mean())
        history.append(0, {"loss": 0.0, "accuracy": accuracy})
        if verbose:
            print(f"bit-bias baseline: training accuracy {accuracy:.4f}")
        return history

    def _log_likelihoods(self, x: np.ndarray) -> np.ndarray:
        if self.bit_probabilities is None:
            raise TrainingError("fit the classifier before predicting")
        p = self.bit_probabilities
        log_p = np.log(p)
        log_q = np.log1p(-p)
        x = np.asarray(x, dtype=np.float64)
        return x @ log_p.T + (1.0 - x) @ log_q.T + self.log_priors

    def predict(self, x: np.ndarray, batch_size: int = 0) -> np.ndarray:
        """Class posterior probabilities (softmax of log-likelihoods)."""
        del batch_size
        ll = self._log_likelihoods(x)
        shifted = ll - ll.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict_classes(self, x: np.ndarray, batch_size: int = 0) -> np.ndarray:
        """Maximum-likelihood class decisions."""
        return self._log_likelihoods(x).argmax(axis=1)

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 0
    ) -> Tuple[float, Dict[str, float]]:
        """Return ``(mean negative log-likelihood, {"accuracy": ...})``."""
        labels = np.asarray(y)
        if labels.ndim == 2:
            labels = labels.argmax(axis=1)
        labels = labels.astype(np.int64)
        ll = self._log_likelihoods(x)
        nll = float(-ll[np.arange(len(labels)), labels].mean())
        accuracy = float((ll.argmax(axis=1) == labels).mean())
        return nll, {"accuracy": accuracy}

    def bias_profile(self, class_a: int = 0, class_b: int = 1) -> np.ndarray:
        """Per-bit probability gap between two classes.

        The interpretable readout: which output-difference bits carry
        the signal (for Gimli scenarios, typically the neighbourhood of
        the flipped input byte's diffusion pattern).
        """
        if self.bit_probabilities is None:
            raise TrainingError("fit the classifier first")
        return self.bit_probabilities[class_a] - self.bit_probabilities[class_b]
