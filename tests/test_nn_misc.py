"""Tests for initializers, metrics, callbacks and the Table 3 factories."""

import numpy as np
import pytest

from repro.errors import ShapeError, TrainingError
from repro.nn.architectures import (
    SEQUENCE_SHAPE,
    TABLE3_NETWORKS,
    TABLE3_PAPER_PARAMS,
    build_mlp,
    get_table3_network,
    minimal_three_layer,
)
from repro.nn.callbacks import EarlyStopping, History
from repro.nn.initializers import (
    get_initializer,
    glorot_uniform,
    he_uniform,
    normal_init,
    zeros_init,
)
from repro.nn.metrics import categorical_accuracy, get_metric, prediction_accuracy


class TestInitializers:
    def test_glorot_limit(self, rng):
        w = glorot_uniform((100, 200), rng)
        limit = np.sqrt(6.0 / 300)
        assert np.abs(w).max() <= limit
        assert w.shape == (100, 200)

    def test_he_limit(self, rng):
        w = he_uniform((100, 50), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 100)

    def test_normal_std(self, rng):
        w = normal_init((10000,), rng, stddev=0.05)
        assert abs(w.std() - 0.05) < 0.005

    def test_zeros(self, rng):
        assert (zeros_init((3, 3), rng) == 0).all()

    def test_conv_fans(self, rng):
        # 3-D kernel shapes use receptive-field-scaled fans.
        w = glorot_uniform((3, 8, 16), rng)
        limit = np.sqrt(6.0 / (3 * 8 + 3 * 16))
        assert np.abs(w).max() <= limit

    def test_lookup(self):
        assert get_initializer("glorot_uniform") is glorot_uniform
        with pytest.raises(ValueError):
            get_initializer("unknown")


class TestMetrics:
    def test_categorical_accuracy(self):
        y = np.array([[1.0, 0.0], [0.0, 1.0]])
        pred = np.array([[0.9, 0.1], [0.6, 0.4]])
        assert categorical_accuracy(y, pred) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            categorical_accuracy(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_prediction_accuracy(self):
        assert prediction_accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == (
            pytest.approx(2 / 3)
        )

    def test_prediction_accuracy_empty(self):
        with pytest.raises(ShapeError):
            prediction_accuracy(np.array([]), np.array([]))

    def test_get_metric(self):
        assert get_metric("accuracy") is categorical_accuracy
        with pytest.raises(ShapeError):
            get_metric("f1")


class TestHistory:
    def test_append_and_access(self):
        h = History()
        h.append(0, {"loss": 1.0})
        h.append(1, {"loss": 0.5})
        assert h["loss"] == [1.0, 0.5]
        assert h.last("loss") == 0.5
        assert "loss" in h

    def test_missing_key(self):
        with pytest.raises(TrainingError):
            History().last("loss")


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(monitor="loss", patience=1)
        for epoch, loss in enumerate([1.0, 0.9, 0.95, 0.96]):
            stopper.on_epoch_end(epoch, {"loss": loss})
        assert stopper.stop_training

    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(monitor="loss", patience=1)
        for epoch, loss in enumerate([1.0, 1.1, 0.5, 0.6, 0.4]):
            stopper.on_epoch_end(epoch, {"loss": loss})
        assert not stopper.stop_training

    def test_max_mode(self):
        stopper = EarlyStopping(monitor="accuracy", patience=0, mode="max")
        stopper.on_epoch_end(0, {"accuracy": 0.9})
        stopper.on_epoch_end(1, {"accuracy": 0.8})
        assert stopper.stop_training

    def test_missing_monitor_raises(self):
        stopper = EarlyStopping(monitor="val_loss")
        with pytest.raises(TrainingError):
            stopper.on_epoch_end(0, {"loss": 1.0})

    def test_invalid_config(self):
        with pytest.raises(TrainingError):
            EarlyStopping(mode="sideways")
        with pytest.raises(TrainingError):
            EarlyStopping(patience=-1)


class TestArchitectures:
    @pytest.mark.parametrize(
        "name", ["MLP I", "MLP II", "MLP IV", "MLP V"]
    )
    def test_exact_paper_parameter_counts(self, name):
        model = get_table3_network(name)
        model.build((128,), rng=0)
        assert model.count_params() == TABLE3_PAPER_PARAMS[name]

    @pytest.mark.parametrize("name", ["MLP III", "MLP VI"])
    def test_mlp_iii_paper_off_by_two(self, name):
        """The paper prints 1,200,256; the layer arithmetic gives
        1,200,258 (see EXPERIMENTS.md)."""
        model = get_table3_network(name)
        model.build((128,), rng=0)
        assert model.count_params() == TABLE3_PAPER_PARAMS[name] + 2

    @pytest.mark.parametrize("name", sorted(TABLE3_NETWORKS))
    def test_all_networks_build_and_predict(self, name, rng):
        model = get_table3_network(name)
        model.build((128,), rng=1)
        model.compile()
        x = rng.random((4, 128))
        out = model.predict(x)
        assert out.shape == (4, 2)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_sequence_shape_covers_input(self):
        assert SEQUENCE_SHAPE[0] * SEQUENCE_SHAPE[1] == 128

    def test_minimal_three_layer(self):
        model = minimal_three_layer()
        model.build((128,), rng=0)
        # Dense(128) + Dense(1024) + Dense(2): the "three layer" network.
        dense_layers = [l for l in model.layers if type(l).__name__ == "Dense"]
        assert len(dense_layers) == 3

    def test_build_mlp_validation(self):
        with pytest.raises(Exception):
            build_mlp([])

    def test_unknown_network(self):
        with pytest.raises(Exception):
            get_table3_network("MLP X")
