"""Benchmark: regenerate Table 3 (architecture search, Gimli-Cipher).

Two parts:

* ``test_table3_all_networks`` — all ten networks on a 6-round,
  default-scale workload: reproduces the parameter-count column exactly
  (MLP I/II/IV/V; III/VI are off by the paper's own 2) and the
  training-time ordering (LSTMs an order of magnitude slower than
  MLPs).
* ``test_table3_8round_headline`` — representative networks at the
  paper's 8-round target with a 2^17-sample budget: reproduces the
  "MLPs distinguish 8-round Gimli-Cipher" accuracy row.

Known deviation (recorded in EXPERIMENTS.md): the paper's CNNs sit at
accuracy 0.5000; our Conv1D stack *does* learn the per-byte bias (the
paper does not specify its CNN topology, so exact reproduction of its
failure mode is not possible).
"""

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.table3 import run_table3


def _print_rows(result):
    rows = [
        [row["network"], row["activation"], row["parameters"],
         row["paper_parameters"], f"{row['training_time_s']:.1f}",
         row["measured"], row["paper"]]
        for row in result["rows"]
    ]
    print()
    print(format_table(
        ["network", "activation", "params", "paper params", "time (s)",
         "measured acc", "paper acc (8r)"],
        rows,
        title=(
            f"Table 3 (architecture search, {result['rounds']}-round "
            f"Gimli-Cipher, {result['num_samples']} samples, "
            f"{result['epochs']} epochs)"
        ),
    ))


def test_table3_all_networks(benchmark):
    result = run_once(benchmark, run_table3, total_rounds=6, rng=5)
    _print_rows(result)
    by_name = {row["network"]: row for row in result["rows"]}

    # Exact parameter-count reproduction for the fully-specified MLPs.
    for name in ("MLP I", "MLP II", "MLP IV", "MLP V"):
        assert by_name[name]["parameters"] == by_name[name]["paper_parameters"]
    # The paper's MLP III/VI figure is 2 below the layer arithmetic.
    for name in ("MLP III", "MLP VI"):
        assert by_name[name]["parameters"] == (
            by_name[name]["paper_parameters"] + 2
        )

    # MLPs distinguish comfortably at 6 rounds.
    for name in ("MLP II", "MLP III"):
        assert by_name[name]["measured"] > 0.55, name

    # LSTMs learn too, but train roughly an order of magnitude slower
    # than the comparable MLP (paper: ~10x on GPU).
    assert by_name["LSTM I"]["measured"] > 0.55
    mlp_time = by_name["MLP II"]["training_time_s"]
    lstm_time = by_name["LSTM I"]["training_time_s"]
    assert lstm_time > 3 * mlp_time


def test_table3_8round_headline(benchmark):
    result = run_once(
        benchmark,
        run_table3,
        networks=("MLP II", "MLP III"),
        total_rounds=8,
        num_samples=1 << 17,
        epochs=3,
        rng=5,
    )
    _print_rows(result)
    by_name = {row["network"]: row for row in result["rows"]}
    # The paper's headline: small MLPs distinguish 8-round Gimli-Cipher
    # (paper accuracies 0.5462 / 0.5654 at 2^17 samples, 5 epochs).
    for name in ("MLP II", "MLP III"):
        assert by_name[name]["measured"] > 0.505, name
