"""Cross-module integration tests: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro import (
    GimliHashScenario,
    GimliPermutationScenario,
    MLDistinguisher,
    ToySpeckScenario,
)
from repro.core.statistics import required_online_samples
from repro.diffcrypt.allinone import toyspeck_allinone
from repro.nn.architectures import build_mlp
from repro.nn.model import load_model


class TestFullAlgorithm2:
    """Algorithm 2 run exactly as the paper describes, on a fast scenario."""

    def test_offline_online_roundtrip_with_persistence(self, tmp_path):
        scenario = GimliHashScenario(rounds=5)
        distinguisher = MLDistinguisher(
            scenario, model=build_mlp([64, 128], "relu"), epochs=3, rng=31
        )
        report = distinguisher.train(num_samples=6000)
        assert report.validation_accuracy > 0.8

        # The paper stores the trained model in an .h5 file; ours is .npz.
        path = str(tmp_path / "distinguisher.npz")
        distinguisher.model.save(path)
        reloaded = load_model(path)
        x, y = scenario.generate_dataset(200, rng=17)
        assert np.allclose(
            distinguisher.model.predict(x), reloaded.predict(x)
        )

        # Online sizing from the offline accuracy.
        n_online = required_online_samples(
            report.validation_accuracy, 2, error_probability=0.01
        )
        n_online = max(n_online, 200)
        assert distinguisher.distinguish(
            scenario.cipher_oracle(), n_online, rng=18
        ) == "CIPHER"
        assert distinguisher.distinguish(
            scenario.random_oracle(rng=19, memoize=False), n_online, rng=20
        ) == "RANDOM"


class TestMLTracksBayesCeiling:
    """The ML distinguisher approximates the exact all-in-one classifier."""

    def test_toyspeck_accuracy_below_ceiling(self):
        deltas = (0x0040, 0x2000)
        rounds = 3
        exact = toyspeck_allinone(list(deltas), rounds, max_active=2048)
        ceiling = exact.bayes_accuracy()
        scenario = ToySpeckScenario(rounds=rounds, deltas=deltas)
        distinguisher = MLDistinguisher(
            scenario,
            model=build_mlp([32, 64], "relu"),
            epochs=6,
            rng=41,
        )
        report = distinguisher.train(num_samples=12000)
        measured = report.validation_accuracy
        assert measured <= ceiling + 0.03  # cannot beat Bayes
        assert measured > 0.5 + 0.5 * (ceiling - 0.5) * 0.5  # but gets close


class TestAccuracyDecaysWithRounds:
    """Table 2's qualitative shape on the raw permutation."""

    def test_monotone_decay(self):
        accuracies = {}
        for rounds in (3, 5):
            scenario = GimliPermutationScenario(
                rounds=rounds, observe_words=range(4)
            )
            distinguisher = MLDistinguisher(
                scenario, model=build_mlp([64, 64], "relu"), epochs=3, rng=rounds
            )
            report = distinguisher.train(num_samples=4000)
            accuracies[rounds] = report.validation_accuracy
        assert accuracies[3] >= accuracies[5] - 0.02


class TestCrossImplementationConsistency:
    def test_scenario_pipeline_equals_mode_reference(self, rng):
        """GimliHashScenario's batched pipeline equals the byte-level
        Gimli-Hash first squeeze for the same message."""
        import struct

        from repro.ciphers.gimli_hash import gimli_hash

        scenario = GimliHashScenario(rounds=24)
        inputs = scenario.sample_base_inputs(4, rng)
        out = scenario.pipeline(inputs, None)
        for i in range(4):
            message = inputs[i].astype("<u4").tobytes()[:15]
            expected = gimli_hash(message)[:16]
            got = b"".join(struct.pack("<I", int(w)) for w in out[i])
            assert got == expected
