"""Tests for SPECK-32/64: official test vector, batch parity, inverses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.speck import (
    FULL_ROUNDS,
    Speck3264,
    decrypt_block,
    encrypt_batch,
    encrypt_block,
    expand_key,
    expand_key_batch,
)
from repro.errors import CipherError, ShapeError

OFFICIAL_KEY = (0x1918, 0x1110, 0x0908, 0x0100)
OFFICIAL_PT = (0x6574, 0x694C)
OFFICIAL_CT = (0xA868, 0x42F2)

word16 = st.integers(0, 2**16 - 1)


class TestOfficialVector:
    def test_encrypt(self):
        assert encrypt_block(OFFICIAL_PT, OFFICIAL_KEY) == OFFICIAL_CT

    def test_decrypt(self):
        assert decrypt_block(OFFICIAL_CT, OFFICIAL_KEY) == OFFICIAL_PT

    def test_batch_agrees(self):
        pts = np.array([OFFICIAL_PT], dtype=np.uint16)
        keys = np.array([OFFICIAL_KEY], dtype=np.uint16)
        ct = encrypt_batch(pts, keys)
        assert (int(ct[0, 0]), int(ct[0, 1])) == OFFICIAL_CT


class TestKeySchedule:
    def test_length(self):
        assert len(expand_key(OFFICIAL_KEY, 22)) == 22

    def test_first_round_key_is_k0(self):
        assert expand_key(OFFICIAL_KEY, 22)[0] == 0x0100

    def test_batch_matches_scalar(self, rng):
        keys = rng.integers(0, 2**16, size=(10, 4), dtype=np.uint16)
        batch = expand_key_batch(keys, 22)
        for i in range(10):
            scalar = expand_key([int(w) for w in keys[i]], 22)
            assert scalar == [int(w) for w in batch[i]]

    def test_wrong_key_size_raises(self):
        with pytest.raises(CipherError):
            expand_key((1, 2, 3), 22)


class TestRoundtrip:
    @settings(max_examples=30, deadline=None)
    @given(word16, word16, st.tuples(word16, word16, word16, word16),
           st.integers(1, FULL_ROUNDS))
    def test_decrypt_inverts_encrypt(self, x, y, key, rounds):
        ct = encrypt_block((x, y), key, rounds)
        assert decrypt_block(ct, key, rounds) == (x, y)


class TestBatch:
    def test_matches_scalar(self, rng):
        pts = rng.integers(0, 2**16, size=(20, 2), dtype=np.uint16)
        keys = rng.integers(0, 2**16, size=(20, 4), dtype=np.uint16)
        for rounds in (1, 5, 22):
            batch = encrypt_batch(pts, keys, rounds)
            for i in range(20):
                scalar = encrypt_block(
                    (int(pts[i, 0]), int(pts[i, 1])),
                    [int(w) for w in keys[i]],
                    rounds,
                )
                assert scalar == (int(batch[i, 0]), int(batch[i, 1]))

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            encrypt_batch(
                np.zeros((2, 3), dtype=np.uint16), np.zeros((2, 4), dtype=np.uint16)
            )
        with pytest.raises(ShapeError):
            encrypt_batch(
                np.zeros((2, 2), dtype=np.uint16), np.zeros((3, 4), dtype=np.uint16)
            )


class TestSpeckClass:
    def test_encrypt(self, rng):
        cipher = Speck3264(rounds=5)
        pts = rng.integers(0, 2**16, size=(4, 2), dtype=np.uint16)
        keys = rng.integers(0, 2**16, size=(4, 4), dtype=np.uint16)
        assert (cipher.encrypt(pts, keys) == encrypt_batch(pts, keys, 5)).all()

    def test_block_bits(self):
        assert Speck3264().block_bits == 32

    def test_too_many_rounds(self):
        with pytest.raises(CipherError):
            Speck3264(rounds=23)

    def test_nonpositive_rounds(self):
        with pytest.raises(CipherError):
            Speck3264(rounds=0)


class TestDifferentialBehaviour:
    def test_gohr_delta_survives_one_round(self, rng):
        """Gohr's input difference 0x0040/0000 propagates deterministically
        through one round (the rotation aligns it past the addition)."""
        pts = rng.integers(0, 2**16, size=(64, 2), dtype=np.uint16)
        keys = rng.integers(0, 2**16, size=(64, 4), dtype=np.uint16)
        partner = pts.copy()
        partner[:, 0] ^= 0x0040
        a = encrypt_batch(pts, keys, 1)
        b = encrypt_batch(partner, keys, 1)
        diff = a ^ b
        unique = {(int(d[0]), int(d[1])) for d in diff}
        assert len(unique) == 1  # fully deterministic transition
