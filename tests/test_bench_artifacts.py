"""Tests for the committed benchmark artefacts and their validator.

``make bench`` regenerates ``benchmarks/BENCH_*.json``; these tests keep
the committed baselines well-formed and the validator honest about
rejecting garbage.
"""

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_runner():
    spec = importlib.util.spec_from_file_location(
        "run_benchmarks", BENCH_DIR / "run_benchmarks.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


runner = _load_runner()


@pytest.mark.parametrize("suite", ["nn_ops", "ciphers"])
class TestCommittedBaselines:
    def test_baseline_exists_and_validates(self, suite):
        path = BENCH_DIR / f"BENCH_{suite}.json"
        assert path.exists(), f"missing committed baseline {path.name}"
        runner.validate_bench_file(path)

    def test_baseline_names_cover_suite(self, suite):
        report = json.loads((BENCH_DIR / f"BENCH_{suite}.json").read_text())
        names = {entry["name"] for entry in report["benchmarks"]}
        expected = {
            "nn_ops": {
                "test_mlp_iii_train_step_dtype[float32]",
                "test_mlp_iii_train_step_dtype[float64]",
                "test_inference_throughput",
            },
            "ciphers": {"test_gimli_full_rounds", "test_gimli_8_rounds"},
        }[suite]
        assert expected <= names


class TestValidator:
    def _reject(self, tmp_path, payload, match):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(payload if isinstance(payload, str) else json.dumps(payload))
        with pytest.raises(ValueError, match=match):
            runner.validate_bench_file(path)

    def test_rejects_invalid_json(self, tmp_path):
        self._reject(tmp_path, "{not json", "invalid JSON")

    def test_rejects_missing_keys(self, tmp_path):
        self._reject(tmp_path, {"suite": "x", "quick": False}, "missing key")

    def test_rejects_empty_benchmarks(self, tmp_path):
        self._reject(
            tmp_path,
            {"suite": "x", "quick": False, "benchmarks": []},
            "non-empty",
        )

    def test_rejects_nonpositive_mean(self, tmp_path):
        self._reject(
            tmp_path,
            {
                "suite": "x",
                "quick": False,
                "benchmarks": [
                    {"name": "a", "mean_s": 0.0, "stddev_s": 0.0, "rounds": 1}
                ],
            },
            "non-positive mean_s",
        )

    def test_rejects_missing_entry_field(self, tmp_path):
        self._reject(
            tmp_path,
            {
                "suite": "x",
                "quick": False,
                "benchmarks": [{"name": "a", "mean_s": 1.0}],
            },
            "missing",
        )

    def test_accepts_wellformed(self, tmp_path):
        path = tmp_path / "BENCH_ok.json"
        path.write_text(
            json.dumps(
                {
                    "suite": "ok",
                    "quick": True,
                    "benchmarks": [
                        {
                            "name": "a",
                            "mean_s": 0.01,
                            "stddev_s": 0.001,
                            "rounds": 3,
                        }
                    ],
                }
            )
        )
        runner.validate_bench_file(path)
