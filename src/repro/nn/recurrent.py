"""LSTM layer with full backpropagation through time.

The paper's §5.1 compares LSTM networks against MLPs and CNNs for the
distinguisher task (they learn, but train roughly 10x slower than the
MLPs — a ratio this numpy implementation reproduces for free).

Gate layout follows Keras: one kernel ``W (features, 4*units)``, one
recurrent kernel ``U (units, 4*units)`` and one bias ``b (4*units,)``,
with gate order ``[input, forget, cell, output]``.  The forget-gate bias
is initialised to one (the Keras ``unit_forget_bias`` default).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import LayerError
from repro.nn.initializers import get_initializer
from repro.nn.layers import Layer


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


class LSTM(Layer):
    """Long Short-Term Memory layer over ``(batch, steps, features)`` input."""

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_initializer: str = "glorot_uniform",
    ):
        super().__init__()
        if units <= 0:
            raise LayerError(f"LSTM units must be positive, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.kernel_initializer = kernel_initializer
        self._cache: Optional[dict] = None

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise LayerError(
                f"LSTM expects (steps, features) inputs, got {input_shape}; "
                "use Reshape to shape flat bit vectors into sequences"
            )
        _steps, features = input_shape
        init = get_initializer(self.kernel_initializer)
        kernel = init((features, 4 * self.units), rng).astype(self.dtype, copy=False)
        recurrent = init((self.units, 4 * self.units), rng).astype(
            self.dtype, copy=False
        )
        bias = np.zeros(4 * self.units, dtype=self.dtype)
        bias[self.units:2 * self.units] = 1.0  # forget-gate bias
        self.params = [kernel, recurrent, bias]
        self.grads = [np.zeros_like(p) for p in self.params]
        self.built = True

    def forward(self, x, training=False):
        kernel, recurrent, bias = self.params
        n, steps, _features = x.shape
        units = self.units
        dtype = x.dtype
        h = np.zeros((n, units), dtype=dtype)
        c = np.zeros((n, units), dtype=dtype)
        hs = np.zeros((n, steps, units), dtype=dtype)
        cache = {
            "x": x,
            "i": np.zeros((n, steps, units), dtype=dtype),
            "f": np.zeros((n, steps, units), dtype=dtype),
            "g": np.zeros((n, steps, units), dtype=dtype),
            "o": np.zeros((n, steps, units), dtype=dtype),
            "c": np.zeros((n, steps, units), dtype=dtype),
            "c_prev": np.zeros((n, steps, units), dtype=dtype),
            "h_prev": np.zeros((n, steps, units), dtype=dtype),
        }
        for t in range(steps):
            z = x[:, t, :] @ kernel + h @ recurrent + bias
            i = _sigmoid(z[:, 0 * units:1 * units])
            f = _sigmoid(z[:, 1 * units:2 * units])
            g = np.tanh(z[:, 2 * units:3 * units])
            o = _sigmoid(z[:, 3 * units:4 * units])
            cache["c_prev"][:, t, :] = c
            cache["h_prev"][:, t, :] = h
            c = f * c + i * g
            h = o * np.tanh(c)
            cache["i"][:, t, :] = i
            cache["f"][:, t, :] = f
            cache["g"][:, t, :] = g
            cache["o"][:, t, :] = o
            cache["c"][:, t, :] = c
            hs[:, t, :] = h
        self._cache = cache if training else None
        return hs if self.return_sequences else hs[:, -1, :]

    def backward(self, grad):
        if self._cache is None:
            raise LayerError("backward called without a training forward pass")
        kernel, recurrent, _bias = self.params
        cache = self._cache
        x = cache["x"]
        n, steps, features = x.shape
        units = self.units

        dtype = x.dtype
        if self.return_sequences:
            grad_hs = grad
        else:
            grad_hs = np.zeros((n, steps, units), dtype=dtype)
            grad_hs[:, -1, :] = grad

        kernel_grad = np.zeros_like(kernel)
        recurrent_grad = np.zeros_like(recurrent)
        bias_grad = np.zeros(4 * units, dtype=dtype)
        x_grad = np.zeros_like(x)
        dh_next = np.zeros((n, units), dtype=dtype)
        dc_next = np.zeros((n, units), dtype=dtype)

        for t in range(steps - 1, -1, -1):
            i = cache["i"][:, t, :]
            f = cache["f"][:, t, :]
            g = cache["g"][:, t, :]
            o = cache["o"][:, t, :]
            c = cache["c"][:, t, :]
            c_prev = cache["c_prev"][:, t, :]
            h_prev = cache["h_prev"][:, t, :]

            dh = grad_hs[:, t, :] + dh_next
            tanh_c = np.tanh(c)
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c**2) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f

            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g**2),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            kernel_grad += x[:, t, :].T @ dz
            recurrent_grad += h_prev.T @ dz
            bias_grad += dz.sum(axis=0)
            x_grad[:, t, :] = dz @ kernel.T
            dh_next = dz @ recurrent.T

        self.grads[0] = kernel_grad
        self.grads[1] = recurrent_grad
        self.grads[2] = bias_grad
        return x_grad

    def output_shape(self, input_shape):
        steps, _features = input_shape
        if self.return_sequences:
            return (steps, self.units)
        return (self.units,)

    def get_config(self):
        return {
            "units": self.units,
            "return_sequences": self.return_sequences,
            "kernel_initializer": self.kernel_initializer,
        }
