"""Tests for the HTTP serving endpoint, client, and the end-to-end game."""

import numpy as np
import pytest

from repro import GimliHashScenario, MLDistinguisher
from repro.core.statistics import required_online_samples
from repro.errors import ServeError
from repro.nn import Dense, ReLU, Sequential, Softmax
from repro.nn import quantize_model
from repro.nn.architectures import build_mlp
from repro.serve import (
    ModelRegistry,
    ServeClient,
    ServeClientError,
    ServeServer,
)


def make_model(rng, features=6, classes=2):
    model = Sequential([Dense(8), ReLU(), Dense(classes), Softmax()])
    return model.build((features,), rng).compile(dtype="float32")


@pytest.fixture
def served(rng, tmp_path):
    """A running server over a registry with one registered model."""
    registry = ModelRegistry(str(tmp_path))
    model = make_model(rng)
    record = registry.register(
        model,
        "unit",
        report={
            "validation_accuracy": 0.8,
            "training_accuracy": 0.8,
            "num_samples": 100,
            "num_classes": 2,
        },
    )
    with ServeServer(registry, max_wait_ms=1.0) as server:
        yield ServeClient(server.url), model, record


class TestEndpoints:
    def test_healthz(self, served):
        client, _, _ = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["models"] == 1

    def test_models_listing(self, served):
        client, _, record = served
        models = client.models()
        assert len(models) == 1
        assert models[0]["model_id"] == record.model_id
        assert models[0]["name"] == "unit"
        assert models[0]["threshold"] == pytest.approx(0.65)

    def test_classify_matches_local_predictions(self, served, rng_factory):
        client, model, record = served
        x = rng_factory(9).random((12, 6)).astype(np.float32)
        response = client.classify(record.model_id, x)
        local = model.predict_proba(x, batch_size=12)
        assert response["labels"] == local.argmax(axis=1).tolist()
        assert np.allclose(
            np.asarray(response["probabilities"]), local, atol=1e-6
        )

    def test_classify_by_name(self, served, rng_factory):
        client, _, _ = served
        x = rng_factory(9).random((3, 6)).astype(np.float32)
        assert len(client.classify("unit", x)["labels"]) == 3

    def test_unknown_model_404(self, served):
        client, _, _ = served
        with pytest.raises(ServeClientError) as excinfo:
            client.classify("ghost", [[0.0] * 6])
        assert excinfo.value.status == 404

    def test_wrong_feature_width_400(self, served):
        client, _, _ = served
        with pytest.raises(ServeClientError) as excinfo:
            client.classify("unit", [[0.0] * 3])
        assert excinfo.value.status == 400

    def test_malformed_body_400(self, served):
        client, _, _ = served
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/v1/classify", {"model": "unit"})
        assert excinfo.value.status == 400

    def test_unknown_path_404(self, served):
        client, _, _ = served
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404

    def test_metrics_snapshot_shape(self, served, rng_factory):
        client, _, _ = served
        client.classify("unit", rng_factory(1).random((2, 6)).tolist())
        snapshot = client.metrics()
        assert snapshot["requests"]["count"] >= 1
        assert snapshot["batches"]["count"] >= 1


class TestPrometheusEndpoint:
    @staticmethod
    def _fetch_text(client, path):
        import urllib.request

        with urllib.request.urlopen(
            f"{client.base_url}{path}", timeout=10.0
        ) as response:
            return response.headers.get("Content-Type"), response.read().decode()

    def test_prometheus_exposition(self, served, rng_factory):
        client, _, _ = served
        client.classify("unit", rng_factory(1).random((2, 6)).tolist())
        content_type, text = self._fetch_text(
            client, "/v1/metrics?format=prometheus"
        )
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        lines = text.splitlines()
        assert "# TYPE repro_serve_requests_total counter" in lines
        assert any(
            line.startswith("repro_serve_batch_latency_seconds_bucket")
            for line in lines
        )
        # A sample value line, parseable as "name value".
        (value_line,) = [
            line for line in lines if line.startswith("repro_serve_requests_total ")
        ]
        assert float(value_line.split()[-1]) >= 1.0

    def test_per_route_http_series_recorded(self, served, rng_factory):
        client, _, _ = served
        client.classify("unit", rng_factory(1).random((2, 6)).tolist())
        client.healthz()
        _, text = self._fetch_text(client, "/v1/metrics?format=prometheus")
        assert (
            'repro_http_requests_total{method="POST",'
            'route="/v1/classify",status="200"} 1'
        ) in text.splitlines()
        assert any(
            'route="/healthz"' in line and "repro_http_requests_total" in line
            for line in text.splitlines()
        )
        assert any(
            line.startswith("repro_http_request_duration_seconds_bucket")
            and 'route="/v1/classify"' in line
            for line in text.splitlines()
        )

    def test_unknown_route_collapses_to_other_label(self, served):
        client, _, _ = served
        with pytest.raises(ServeClientError):
            client._request("GET", "/v1/nope")
        _, text = self._fetch_text(client, "/v1/metrics?format=prometheus")
        assert (
            'repro_http_requests_total{method="GET",route="other",status="404"} 1'
        ) in text.splitlines()

    def test_unknown_format_400(self, served):
        client, _, _ = served
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/v1/metrics?format=xml")
        assert excinfo.value.status == 400

    def test_json_format_matches_snapshot_route(self, served):
        client, _, _ = served
        explicit = client._request("GET", "/v1/metrics?format=json")
        assert set(explicit) == {"uptime_s", "requests", "batches", "queue"}


class TestDistinguishEndpoint:
    def test_session_lifecycle(self, served, rng_factory):
        client, model, _ = served
        state = client.open_session("unit", target_samples=8)
        assert state["samples"] == 0 and state["verdict"] is None
        x = rng_factory(4).random((8, 6)).astype(np.float32)
        labels = model.predict_classes(x)  # feed its own predictions:
        state = client.distinguish_batch("unit", x, labels, state["session"])
        assert state["samples"] == 8
        assert state["done"] is True
        assert state["accuracy"] == pytest.approx(1.0)
        assert state["verdict"] == "CIPHER"  # accuracy 1.0 > 0.65

    def test_unknown_session_404(self, served):
        client, _, _ = served
        with pytest.raises(ServeClientError) as excinfo:
            client.distinguish_batch("unit", [[0.0] * 6], [0], session="s999")
        assert excinfo.value.status == 404

    def test_update_without_labels_400(self, served):
        client, _, _ = served
        state = client.open_session("unit", target_samples=8)
        with pytest.raises(ServeClientError) as excinfo:
            client._request(
                "POST",
                "/v1/distinguish",
                {
                    "model": "unit",
                    "session": state["session"],
                    "features": [[0.0] * 6],
                },
            )
        assert excinfo.value.status == 400

    def test_untrained_model_needs_explicit_accuracy(self, rng, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        registry.register(make_model(rng), "bare")
        with ServeServer(registry, max_wait_ms=1.0) as server:
            client = ServeClient(server.url)
            with pytest.raises(ServeClientError) as excinfo:
                client.open_session("bare")
            assert excinfo.value.status == 400
            state = client.open_session(
                "bare", training_accuracy=0.9, target_samples=4
            )
            assert state["threshold"] == pytest.approx((0.9 + 0.5) / 2)


class TestShutdown:
    def test_graceful_shutdown_then_unreachable(self, rng, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        registry.register(make_model(rng), "unit")
        server = ServeServer(registry, max_wait_ms=1.0).start()
        client = ServeClient(server.url, timeout_s=5.0)
        assert client.healthz()["status"] == "ok"
        server.stop()
        with pytest.raises(ServeError):
            client.healthz()
        server.stop()  # idempotent


class TestEndToEndGame:
    """ISSUE acceptance: train → register → serve → distinguish over HTTP."""

    def test_online_phase_over_http_reaches_both_verdicts(self, tmp_path):
        scenario = GimliHashScenario(rounds=5)
        distinguisher = MLDistinguisher(
            scenario, model=build_mlp([64, 128], "relu"), epochs=3, rng=31
        )
        report = distinguisher.train(num_samples=6000)
        assert report.validation_accuracy > 0.8

        registry = ModelRegistry(str(tmp_path))
        record = registry.register(
            distinguisher.model,
            "gimli-hash-r5",
            scenario=scenario,
            report=report,
        )
        n_online = max(
            200,
            required_online_samples(
                report.validation_accuracy, 2, error_probability=0.01
            ),
        )
        with ServeServer(registry) as server:
            client = ServeClient(server.url)
            assert client.models()[0]["model_id"] == record.model_id

            cipher_state = client.run_online_phase(
                "gimli-hash-r5",
                scenario,
                scenario.cipher_oracle(),
                n_online,
                rng=18,
            )
            random_state = client.run_online_phase(
                "gimli-hash-r5",
                scenario,
                scenario.random_oracle(rng=19, memoize=False),
                n_online,
                rng=20,
            )
        assert cipher_state["verdict"] == "CIPHER"
        assert random_state["verdict"] == "RANDOM"
        assert cipher_state["accuracy"] > cipher_state["threshold"]
        assert random_state["accuracy"] <= random_state["threshold"]
        # The server-side accuracy estimate must agree with a local
        # online phase through the very same model.
        local = distinguisher.test(
            scenario.cipher_oracle(), n_online, rng=18
        )
        assert cipher_state["accuracy"] == pytest.approx(
            local.accuracy, abs=0.05
        )

    def test_quantized_variant_reaches_same_verdicts_as_parent(self, tmp_path):
        """ISSUE acceptance: serving the int8 variant of the Gimli-Hash
        r5 distinguisher over ``/v1/classify`` reaches the same verdicts
        as its float parent on both oracles."""
        scenario = GimliHashScenario(rounds=5)
        distinguisher = MLDistinguisher(
            scenario, model=build_mlp([64, 128], "relu"), epochs=3, rng=31
        )
        report = distinguisher.train(num_samples=6000)

        registry = ModelRegistry(str(tmp_path))
        registry.register(
            distinguisher.model, "gimli-hash-r5", scenario=scenario, report=report
        )
        holdout, labels = scenario.generate_dataset(500, rng=41)
        quantized = quantize_model(
            distinguisher.model, "int8", min_weight_elems=0
        )
        record = registry.register_quantized(
            quantized, "gimli-hash-r5", holdout=(holdout, labels)
        )
        assert record.name == "gimli-hash-r5-int8"
        # Weight rounding must not move the held-out accuracy by more
        # than half a percentage point.
        assert abs(record.manifest["quantization"]["accuracy_delta_pp"]) <= 0.5

        n_online = max(
            200,
            required_online_samples(
                report.validation_accuracy, 2, error_probability=0.01
            ),
        )
        with ServeServer(registry) as server:
            client = ServeClient(server.url)
            verdicts = {}
            for name in ("gimli-hash-r5", "gimli-hash-r5-int8"):
                cipher_state = client.run_online_phase(
                    name, scenario, scenario.cipher_oracle(), n_online, rng=18
                )
                random_state = client.run_online_phase(
                    name,
                    scenario,
                    scenario.random_oracle(rng=19, memoize=False),
                    n_online,
                    rng=20,
                )
                verdicts[name] = (
                    cipher_state["verdict"], random_state["verdict"]
                )
        assert verdicts["gimli-hash-r5"] == ("CIPHER", "RANDOM")
        assert verdicts["gimli-hash-r5-int8"] == verdicts["gimli-hash-r5"]
