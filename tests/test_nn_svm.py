"""Tests for the linear SVM (the paper's suggested NN alternative)."""

import numpy as np
import pytest

from repro.core.distinguisher import MLDistinguisher
from repro.core.scenario import GimliHashScenario
from repro.errors import TrainingError
from repro.nn.svm import LinearSVM


def linearly_separable(rng, n=400, features=6):
    w = rng.normal(size=features)
    x = rng.normal(size=(n, features))
    y = (x @ w > 0).astype(np.int64)
    return x, y


class TestBasics:
    def test_invalid_construction(self):
        with pytest.raises(TrainingError):
            LinearSVM(num_classes=1)
        with pytest.raises(TrainingError):
            LinearSVM(learning_rate=0)
        with pytest.raises(TrainingError):
            LinearSVM(regularization=-1)

    def test_build_shapes(self):
        svm = LinearSVM(num_classes=3).build((10,))
        assert svm.weights.shape == (10, 3)
        assert svm.bias.shape == (3,)
        assert svm.count_params() == 33

    def test_count_before_build(self):
        with pytest.raises(TrainingError):
            LinearSVM().count_params()

    def test_predict_before_fit(self):
        with pytest.raises(TrainingError):
            LinearSVM().predict(np.zeros((2, 4)))


class TestLearning:
    def test_separable_problem(self, rng):
        x, y = linearly_separable(rng)
        svm = LinearSVM()
        history = svm.fit(x, y, epochs=20, rng=rng)
        assert history.last("accuracy") > 0.95

    def test_evaluate(self, rng):
        x, y = linearly_separable(rng)
        svm = LinearSVM()
        svm.fit(x, y, epochs=20, rng=rng)
        loss, metrics = svm.evaluate(x, y)
        assert metrics["accuracy"] > 0.95
        assert loss >= 0.0

    def test_onehot_labels_accepted(self, rng):
        x, y = linearly_separable(rng, n=100)
        onehot = np.eye(2)[y]
        svm = LinearSVM()
        svm.fit(x, onehot, epochs=5, rng=rng)
        assert set(svm.predict_classes(x)).issubset({0, 1})

    def test_multiclass(self, rng):
        """Three linearly separable clusters."""
        centers = np.array([[4.0, 0.0], [-4.0, 0.0], [0.0, 4.0]])
        x = np.concatenate(
            [rng.normal(loc=c, scale=0.5, size=(60, 2)) for c in centers]
        )
        y = np.repeat(np.arange(3), 60)
        svm = LinearSVM(num_classes=3)
        svm.fit(x, y, epochs=30, rng=rng)
        _, metrics = svm.evaluate(x, y)
        assert metrics["accuracy"] > 0.9

    def test_mismatched_sizes(self, rng):
        svm = LinearSVM()
        with pytest.raises(TrainingError):
            svm.fit(np.zeros((4, 3)), np.zeros(5, dtype=int), rng=rng)

    def test_invalid_epochs(self, rng):
        x, y = linearly_separable(rng, n=20)
        with pytest.raises(TrainingError):
            LinearSVM().fit(x, y, epochs=0, rng=rng)


class TestAsDistinguisherModel:
    def test_drop_in_for_mldistinguisher(self):
        """§6: 'an SVM can be used instead of neural network' — the SVM
        plugs into Algorithm 2 unchanged and distinguishes a low-round
        scenario."""
        scenario = GimliHashScenario(rounds=4)
        svm = LinearSVM(num_classes=2, learning_rate=0.1)
        svm.build((scenario.feature_bits,))
        distinguisher = MLDistinguisher(scenario, model=svm, epochs=5, rng=9)
        report = distinguisher.train(num_samples=6000)
        assert report.validation_accuracy > 0.7
        assert distinguisher.distinguish(
            scenario.cipher_oracle(), 1000, rng=10
        ) == "CIPHER"
        assert distinguisher.distinguish(
            scenario.random_oracle(rng=11, memoize=False), 1000, rng=12
        ) == "RANDOM"
