"""Tests for the incremental online-phase session layer."""

import numpy as np
import pytest

from repro.core.distinguisher import OnlineResult
from repro.core.statistics import required_online_samples
from repro.errors import ServeError
from repro.serve import OnlineSession, SessionStore


def make_session(**overrides):
    kwargs = dict(
        training_accuracy=0.8, num_classes=2, target_samples=100
    )
    kwargs.update(overrides)
    return OnlineSession(**kwargs)


class TestRunningAccuracy:
    def test_accuracy_accumulates_across_updates(self):
        session = make_session()
        session.update(np.array([0, 1, 1, 0]), np.array([0, 1, 0, 0]))  # 3/4
        assert session.accuracy == pytest.approx(0.75)
        session.update(np.array([1, 1]), np.array([0, 0]))  # 3/6
        assert session.accuracy == pytest.approx(0.5)
        assert session.samples_seen == 6

    def test_empty_session_has_no_accuracy(self):
        session = make_session()
        assert session.accuracy is None
        assert session.verdict is None
        assert not session.done

    def test_mismatched_batch_rejected(self):
        session = make_session()
        with pytest.raises(ServeError, match="entries"):
            session.update(np.array([0, 1]), np.array([0]))
        with pytest.raises(ServeError, match="empty"):
            session.update(np.array([]), np.array([]))


class TestVerdictGating:
    def test_no_verdict_before_budget(self):
        session = make_session(target_samples=10)
        session.update(np.zeros(9), np.zeros(9))
        assert session.verdict is None
        with pytest.raises(ServeError, match="incomplete"):
            session.result()

    def test_cipher_verdict_above_threshold(self):
        session = make_session(target_samples=10)
        # Threshold is (0.8 + 0.5) / 2 = 0.65; feed 9/10 correct.
        session.update(np.zeros(10), np.r_[np.zeros(9), np.ones(1)])
        assert session.done
        assert session.verdict == "CIPHER"

    def test_random_verdict_below_threshold(self):
        session = make_session(target_samples=10)
        session.update(np.zeros(10), np.r_[np.zeros(5), np.ones(5)])
        assert session.verdict == "RANDOM"

    def test_default_budget_matches_paper_sizing(self):
        session = OnlineSession(training_accuracy=0.8, num_classes=2)
        assert session.target_samples == required_online_samples(0.8, 2, 0.01)

    def test_explicit_threshold_override(self):
        session = make_session(target_samples=4, threshold=0.9)
        session.update(np.zeros(4), np.r_[np.zeros(3), np.ones(1)])  # 0.75
        assert session.verdict == "RANDOM"


class TestResult:
    def test_result_is_core_online_result(self):
        session = make_session(target_samples=20)
        session.update(np.zeros(20), np.r_[np.zeros(17), np.ones(3)])
        result = session.result()
        assert isinstance(result, OnlineResult)
        assert result.accuracy == pytest.approx(0.85)
        assert result.num_samples == 20
        assert result.is_cipher
        assert result.verdict == "CIPHER"
        assert 0.0 <= result.p_value <= 1.0

    def test_state_is_json_ready(self):
        session = make_session(target_samples=8)
        state = session.update(np.zeros(4), np.zeros(4))
        assert state["samples"] == 4
        assert state["progress"] == pytest.approx(0.5)
        assert state["done"] is False
        assert state["verdict"] is None
        assert state["threshold"] == pytest.approx(0.65)


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ServeError):
            OnlineSession(training_accuracy=0.8, num_classes=1)
        with pytest.raises(ServeError):
            make_session(target_samples=0)


class TestSessionStore:
    def test_create_get_drop_roundtrip(self):
        store = SessionStore()
        session = store.create(
            training_accuracy=0.8, num_classes=2, target_samples=10
        )
        assert store.get(session.session_id) is session
        assert len(store) == 1
        store.drop(session.session_id)
        assert len(store) == 0
        with pytest.raises(ServeError, match="unknown session"):
            store.get(session.session_id)

    def test_ids_are_unique(self):
        store = SessionStore()
        ids = {
            store.create(
                training_accuracy=0.8, num_classes=2, target_samples=10
            ).session_id
            for _ in range(10)
        }
        assert len(ids) == 10

    def test_capacity_bound(self):
        store = SessionStore(max_sessions=2)
        for _ in range(2):
            store.create(
                training_accuracy=0.8, num_classes=2, target_samples=10
            )
        with pytest.raises(ServeError, match="full"):
            store.create(
                training_accuracy=0.8, num_classes=2, target_samples=10
            )
