"""All-in-one differentials (Albrecht–Leander, SAC 2012).

The all-in-one approach considers the *whole* distribution of output
differences under one input difference.  For small-state Markov ciphers
the distribution is exactly computable; the paper's point is that a
neural network can *simulate* it when the state is large or the cipher
is non-Markov.  This module provides the exact baselines the ML
distinguishers are compared against:

* :func:`toyspeck_markov_distribution` — propagates the difference
  distribution of :class:`~repro.ciphers.toyspeck.ToySpeck` round by
  round under the Markov assumption (key-XOR makes the one-round kernel
  key-independent and exactly enumerable).
* :func:`gift16_markov_distribution` — exact propagation for the scaled
  GIFT-like SPN via per-nibble DDT tensor products and wiring
  re-indexing.
* :class:`AllInOneDistribution` — turns distributions into distinguisher
  numbers: Bayes-optimal classification accuracy for the paper's
  ``t``-class game and cipher-vs-random advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.ciphers.gift import GIFT16_PERM, GIFT_SBOX
from repro.ciphers.toyspeck import BLOCK_BITS as TOYSPECK_BITS
from repro.ciphers.toyspeck import round_difference_kernel
from repro.diffcrypt.sbox import SBox
from repro.errors import CipherError


def toyspeck_markov_distribution(
    delta: int,
    rounds: int,
    prune_below: float = 0.0,
    max_active: Optional[int] = None,
) -> np.ndarray:
    """Exact-under-Markov output-difference distribution for ToySpeck.

    Starting from the point mass on ``delta``, applies the exact
    one-round kernel to every difference carrying probability mass.
    ``prune_below`` drops differences below a mass threshold (the lost
    mass is redistributed uniformly so the result stays a distribution);
    ``max_active`` keeps only the heaviest differences per round.
    With both disabled the result is exact.
    """
    size = 1 << TOYSPECK_BITS
    if not 0 <= delta < size:
        raise CipherError(f"difference must fit in {TOYSPECK_BITS} bits")
    if rounds < 0:
        raise CipherError(f"rounds must be non-negative, got {rounds}")
    dist = np.zeros(size, dtype=np.float64)
    dist[delta] = 1.0
    kernel_cache: Dict[int, np.ndarray] = {}
    for _ in range(rounds):
        active = np.nonzero(dist)[0]
        if prune_below > 0.0:
            active = active[dist[active] >= prune_below]
        if max_active is not None and len(active) > max_active:
            order = np.argsort(dist[active])[::-1]
            active = active[order[:max_active]]
        new_dist = np.zeros(size, dtype=np.float64)
        for diff in active:
            diff = int(diff)
            if diff not in kernel_cache:
                kernel_cache[diff] = round_difference_kernel(diff)
            new_dist += dist[diff] * kernel_cache[diff]
        lost = 1.0 - new_dist.sum()
        if lost > 0.0:
            new_dist += lost / size
        dist = new_dist
    return dist


def gift16_markov_distribution(delta: int, rounds: int) -> np.ndarray:
    """Exact all-in-one distribution for the 16-bit GIFT-like SPN.

    The S-box layer factors over nibbles, so one round of difference
    propagation is four tensor-mode products with the 16x16 DDT
    probability matrix followed by a bit-permutation re-indexing.  The
    round-key XOR leaves differences untouched (Markov holds exactly
    here, with independent uniform round keys).
    """
    if not 0 <= delta < 1 << 16:
        raise CipherError("difference must fit in 16 bits")
    sbox = SBox(GIFT_SBOX)
    ddt_prob = sbox.ddt.astype(np.float64) / 16.0

    # Permutation of difference indices induced by the wiring.
    values = np.arange(1 << 16, dtype=np.uint32)
    permuted = np.zeros(1 << 16, dtype=np.int64)
    for i, target in enumerate(GIFT16_PERM):
        permuted |= ((values >> np.uint32(i)) & np.uint32(1)).astype(np.int64) << int(
            target
        )

    dist = np.zeros(1 << 16, dtype=np.float64)
    dist[delta] = 1.0
    for _ in range(rounds):
        tensor = dist.reshape(16, 16, 16, 16)
        # Nibble j occupies bits 4j..4j+3; with LSB-first packing the
        # *last* tensor axis is nibble 0.  Apply the DDT along each axis.
        for axis in range(4):
            tensor = np.moveaxis(
                np.tensordot(ddt_prob.T, tensor, axes=([1], [axis])), 0, axis
            )
        flat = tensor.reshape(-1)
        new_dist = np.zeros_like(flat)
        np.add.at(new_dist, permuted, flat)
        dist = new_dist
    return dist


@dataclass(frozen=True)
class AllInOneDistribution:
    """Output-difference distributions for ``t`` input differences.

    ``distributions`` has shape ``(t, n_diffs)``; row ``i`` is the
    distribution of output differences for input difference class ``i``.
    """

    distributions: np.ndarray

    def __post_init__(self):
        arr = np.asarray(self.distributions, dtype=np.float64)
        if arr.ndim != 2:
            raise CipherError("distributions must be a (t, n) matrix")
        sums = arr.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise CipherError("each row must be a probability distribution")
        object.__setattr__(self, "distributions", arr)

    @property
    def num_classes(self) -> int:
        """The paper's ``t``."""
        return self.distributions.shape[0]

    def bayes_accuracy(self) -> float:
        """Accuracy of the Bayes-optimal classifier on balanced classes.

        ``(1/t) * sum over Δ of max_i D_i(Δ)`` — the information-theoretic
        ceiling any ML model trained on output differences can reach.
        """
        return float(self.distributions.max(axis=0).sum() / self.num_classes)

    def random_accuracy(self) -> float:
        """Expected accuracy against a random oracle (``1/t``)."""
        return 1.0 / self.num_classes

    def advantage_vs_random(self) -> float:
        """Mean total-variation distance of each class from uniform."""
        n = self.distributions.shape[1]
        uniform = 1.0 / n
        tv = 0.5 * np.abs(self.distributions - uniform).sum(axis=1)
        return float(tv.mean())

    def classify(self, diffs: Sequence[int]) -> np.ndarray:
        """Bayes-optimal class prediction for observed output differences."""
        idx = np.asarray(diffs, dtype=np.int64)
        return np.argmax(self.distributions[:, idx], axis=0)


def bayes_accuracy(distributions: np.ndarray) -> float:
    """Convenience wrapper: Bayes accuracy of a ``(t, n)`` distribution set."""
    return AllInOneDistribution(distributions).bayes_accuracy()


def empirical_distribution(
    output_diffs: np.ndarray, num_diffs: int
) -> np.ndarray:
    """Histogram an array of observed output differences into a distribution."""
    idx = np.asarray(output_diffs, dtype=np.int64)
    if idx.size == 0:
        raise CipherError("cannot build a distribution from zero samples")
    counts = np.bincount(idx, minlength=num_diffs).astype(np.float64)
    return counts / counts.sum()


def toyspeck_allinone(
    deltas: Sequence[int], rounds: int, **kwargs
) -> AllInOneDistribution:
    """All-in-one distribution set for ToySpeck under ``t`` input diffs."""
    rows = [toyspeck_markov_distribution(d, rounds, **kwargs) for d in deltas]
    return AllInOneDistribution(np.stack(rows))


def gift16_allinone(deltas: Sequence[int], rounds: int) -> AllInOneDistribution:
    """All-in-one distribution set for Gift16 under ``t`` input diffs."""
    rows = [gift16_markov_distribution(d, rounds) for d in deltas]
    return AllInOneDistribution(np.stack(rows))
