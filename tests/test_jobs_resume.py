"""Resume semantics end-to-end: interrupted grids replay bit-identically."""

import pytest

from repro.errors import JobError
from repro.jobs import JobQueue
from repro.experiments.table2 import run_table2

#: Smallest table2 grid that still has multiple cells to interrupt.
TINY = dict(
    rounds=(3,),
    targets=("hash", "cipher"),
    offline_samples=1000,
    online_samples=300,
    epochs=1,
)


class TestTable2Resume:
    def test_queued_rows_match_plain_rows(self, tmp_path):
        plain = run_table2(rng=13, **TINY)
        queued = run_table2(rng=13, queue_dir=tmp_path, **TINY)
        assert queued["rows"] == plain["rows"]

    def test_interrupt_then_resume_is_bit_identical(self, tmp_path,
                                                    monkeypatch):
        uninterrupted = run_table2(rng=13, **TINY)

        monkeypatch.setenv("REPRO_JOBS_MAX_CELLS", "1")
        with pytest.raises(JobError, match="1 not processed"):
            run_table2(rng=13, queue_dir=tmp_path, **TINY)
        counts = JobQueue(tmp_path).counts()
        assert counts["done"] == 1 and counts["pending"] == 1

        monkeypatch.delenv("REPRO_JOBS_MAX_CELLS")
        resumed = run_table2(rng=13, queue_dir=tmp_path, **TINY)
        assert resumed["rows"] == uninterrupted["rows"]
        # the completed cell was replayed, not recomputed
        assert all(r["attempts"] == 1 for r in JobQueue(tmp_path).jobs())

    def test_resume_without_seed_replays_pinned_seed(self, tmp_path):
        first = run_table2(rng=13, queue_dir=tmp_path, **TINY)
        replayed = run_table2(rng=None, queue_dir=tmp_path, **TINY)
        assert replayed["rows"] == first["rows"]

    def test_changed_args_refused(self, tmp_path):
        run_table2(rng=13, queue_dir=tmp_path, **TINY)
        changed = dict(TINY, epochs=2)
        with pytest.raises(JobError, match="refusing to reuse"):
            run_table2(rng=13, queue_dir=tmp_path, **changed)

    def test_generator_rng_refused_for_queued_run(self, tmp_path):
        import numpy as np

        with pytest.raises(JobError, match="integer seed"):
            run_table2(
                rng=np.random.default_rng(0), queue_dir=tmp_path, **TINY
            )

    def test_interrupted_running_records_reset(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS_MAX_CELLS", "1")
        with pytest.raises(JobError):
            run_table2(rng=13, queue_dir=tmp_path, **TINY)
        # simulate a kill mid-cell: force a record back to running
        queue = JobQueue(tmp_path)
        pending = [r for r in queue.jobs() if r["status"] == "pending"]
        queue.update(pending[0]["job_id"], status="running")

        monkeypatch.delenv("REPRO_JOBS_MAX_CELLS")
        resumed = run_table2(rng=13, queue_dir=tmp_path, **TINY)
        assert len(resumed["rows"]) == 2
        assert JobQueue(tmp_path).counts()["done"] == 2
