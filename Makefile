# Convenience targets; everything assumes the repo root as CWD.

PYTHON ?= python

.PHONY: test bench bench-full bench-check serve check

REGISTRY ?= registry

# Tier-1 test suite.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Quick-mode engineering benchmarks: one round each, writes and
# validates benchmarks/BENCH_nn_ops.json and benchmarks/BENCH_ciphers.json
# (fails if either artefact is malformed).
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/run_benchmarks.py --quick

# Full benchmarks (slower, stable timings) — use this to refresh the
# committed baselines.
bench-full:
	PYTHONPATH=src $(PYTHON) benchmarks/run_benchmarks.py

# Re-measure and fail if any benchmark regressed by more than 2x against
# the committed BENCH_*.json baselines.
bench-check:
	PYTHONPATH=src $(PYTHON) benchmarks/check_regression.py

# Start the online-phase serving endpoint over the on-disk registry
# (REGISTRY=dir to point elsewhere; REPRO_SERVE_MAX_BATCH /
# REPRO_SERVE_MAX_WAIT_MS tune micro-batching, see EXPERIMENTS.md).
serve:
	PYTHONPATH=src $(PYTHON) -m repro.serve --registry $(REGISTRY)

# Everything a PR must pass: the tier-1 suite plus the benchmark
# regression gate.
check: test bench-check
