"""SPECK-32/64 (Beaulieu et al., 2013) — Gohr's CRYPTO'19 target.

The paper's §2.3 background reproduces Gohr's setting: a 32-bit block
ARX cipher with 16-bit words, 22 rounds, rotations ``(7, 2)``.  The
implementation is verified against the designers' official test vector
(key ``1918 1110 0908 0100``, plaintext ``6574 694c``, ciphertext
``a868 42f2``).

Both a scalar reference and a fully vectorised batch encryptor are
provided; key schedules are expanded per sample so the Gohr-style data
pipeline (fresh random key per pair) runs at numpy speed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.ciphers.base import BlockCipher
from repro.errors import CipherError, ShapeError

WORD_BITS = 16
_MASK = 0xFFFF
ALPHA = 7
BETA = 2
FULL_ROUNDS = 22
KEY_WORDS = 4


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (WORD_BITS - amount))) & _MASK


def _rotr(value: int, amount: int) -> int:
    return ((value >> amount) | (value << (WORD_BITS - amount))) & _MASK


def expand_key(key: Sequence[int], rounds: int) -> List[int]:
    """Expand a 4-word key into ``rounds`` round keys.

    ``key`` is given most-significant word first, matching the test
    vector notation ``(K3, K2, K1, K0) = 1918 1110 0908 0100``.
    """
    if len(key) != KEY_WORDS:
        raise CipherError(f"SPECK-32/64 key must have {KEY_WORDS} words")
    l_words = [int(key[2]) & _MASK, int(key[1]) & _MASK, int(key[0]) & _MASK]
    k_words = [int(key[3]) & _MASK]
    for i in range(rounds - 1):
        l_words.append((k_words[i] + _rotr(l_words[i], ALPHA)) & _MASK ^ i)
        k_words.append(_rotl(k_words[i], BETA) ^ l_words[i + KEY_WORDS - 1])
    return k_words


def encrypt_block(
    plaintext: Tuple[int, int], key: Sequence[int], rounds: int = FULL_ROUNDS
) -> Tuple[int, int]:
    """Scalar reference encryption of one ``(x, y)`` word pair."""
    x, y = int(plaintext[0]) & _MASK, int(plaintext[1]) & _MASK
    for k in expand_key(key, rounds):
        x = (_rotr(x, ALPHA) + y) & _MASK ^ k
        y = _rotl(y, BETA) ^ x
    return x, y


def decrypt_block(
    ciphertext: Tuple[int, int], key: Sequence[int], rounds: int = FULL_ROUNDS
) -> Tuple[int, int]:
    """Scalar reference decryption (inverse of :func:`encrypt_block`)."""
    x, y = int(ciphertext[0]) & _MASK, int(ciphertext[1]) & _MASK
    for k in reversed(expand_key(key, rounds)):
        y = _rotr(y ^ x, BETA)
        x = _rotl((x ^ k) - y & _MASK, ALPHA)
    return x, y


def _rotl_arr(arr: np.ndarray, amount: int) -> np.ndarray:
    return ((arr << np.uint16(amount)) | (arr >> np.uint16(WORD_BITS - amount))).astype(
        np.uint16
    )


def _rotr_arr(arr: np.ndarray, amount: int) -> np.ndarray:
    return ((arr >> np.uint16(amount)) | (arr << np.uint16(WORD_BITS - amount))).astype(
        np.uint16
    )


def expand_key_batch(keys: np.ndarray, rounds: int) -> np.ndarray:
    """Vectorised key schedule: ``(n, 4)`` keys to ``(n, rounds)`` round keys."""
    arr = np.asarray(keys, dtype=np.uint16)
    if arr.ndim != 2 or arr.shape[1] != KEY_WORDS:
        raise ShapeError(f"expected (n, {KEY_WORDS}) keys, got shape {arr.shape}")
    n = arr.shape[0]
    l_words = [arr[:, 2].copy(), arr[:, 1].copy(), arr[:, 0].copy()]
    round_keys = np.empty((n, rounds), dtype=np.uint16)
    round_keys[:, 0] = arr[:, 3]
    for i in range(rounds - 1):
        new_l = (round_keys[:, i] + _rotr_arr(l_words[i], ALPHA)) ^ np.uint16(i)
        l_words.append(new_l.astype(np.uint16))
        round_keys[:, i + 1] = _rotl_arr(round_keys[:, i], BETA) ^ l_words[-1]
    return round_keys


def encrypt_batch(
    plaintexts: np.ndarray, keys: np.ndarray, rounds: int = FULL_ROUNDS
) -> np.ndarray:
    """Vectorised encryption: ``(n, 2)`` blocks with per-sample ``(n, 4)`` keys."""
    pts = np.asarray(plaintexts, dtype=np.uint16)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ShapeError(f"expected (n, 2) plaintexts, got shape {pts.shape}")
    round_keys = expand_key_batch(keys, rounds)
    if round_keys.shape[0] != pts.shape[0]:
        raise ShapeError(
            f"plaintext batch ({pts.shape[0]}) and key batch "
            f"({round_keys.shape[0]}) sizes differ"
        )
    x = pts[:, 0].copy()
    y = pts[:, 1].copy()
    for r in range(rounds):
        x = (_rotr_arr(x, ALPHA) + y).astype(np.uint16) ^ round_keys[:, r]
        y = _rotl_arr(y, BETA) ^ x
    return np.stack([x, y], axis=1)


class Speck3264(BlockCipher):
    """SPECK-32/64 as a :class:`BlockCipher` (optionally round-reduced)."""

    block_words = 2
    key_words = KEY_WORDS
    word_width = WORD_BITS

    def __init__(self, rounds: int = FULL_ROUNDS):
        if rounds > FULL_ROUNDS:
            raise CipherError(
                f"SPECK-32/64 has {FULL_ROUNDS} rounds, requested {rounds}"
            )
        super().__init__(rounds)

    def encrypt(self, plaintexts: np.ndarray, keys: np.ndarray) -> np.ndarray:
        return encrypt_batch(plaintexts, keys, self.rounds)
