"""Tests for the complexity accounting (§4 / §6)."""

import math

import pytest

from repro.core.complexity import (
    DistinguisherComplexity,
    classical_trail_complexity,
    cube_root_summary,
    gimli8_paper_complexity,
    log2_samples,
)
from repro.errors import DistinguisherError


class TestLog2Samples:
    def test_powers(self):
        assert log2_samples(1024) == 10.0

    def test_invalid(self):
        with pytest.raises(DistinguisherError):
            log2_samples(0)


class TestPaperComplexity:
    def test_quoted_exponents(self):
        c = gimli8_paper_complexity()
        assert c.offline_log2 == pytest.approx(17.6)
        assert c.online_log2 == pytest.approx(14.3)

    def test_speedup_over_8_round_trail(self):
        """§6: 2^52 classical vs ~2^14.3 online — a ~2^37.7 saving."""
        c = gimli8_paper_complexity()
        assert c.speedup_over_trail(52) == pytest.approx(37.7)

    def test_cube_root_claim(self):
        """The online exponent is close to a third of the trail weight."""
        c = gimli8_paper_complexity()
        ratio = c.complexity_exponent_ratio(52)
        assert 0.2 < ratio < 0.4

    def test_invalid_weight(self):
        with pytest.raises(DistinguisherError):
            gimli8_paper_complexity().complexity_exponent_ratio(0)


class TestClassicalComplexity:
    def test_8_rounds(self):
        assert classical_trail_complexity(8) == 2.0**52

    def test_2_rounds_free(self):
        assert classical_trail_complexity(2) == 1.0

    def test_unknown_rounds(self):
        with pytest.raises(DistinguisherError):
            classical_trail_complexity(9)


class TestCubeRootSummary:
    def test_fields(self):
        summary = cube_root_summary(8)
        assert summary["classical_log2"] == 52.0
        assert summary["cube_root_log2"] == pytest.approx(52 / 3)
        assert summary["online_exponent_ratio"] == pytest.approx(14.3 / 52)


class TestDataclass:
    def test_custom_values(self):
        c = DistinguisherComplexity(offline_samples=1 << 20, online_samples=1 << 10)
        assert c.offline_log2 == 20.0
        assert c.online_log2 == 10.0

    def test_invalid_counts(self):
        c = DistinguisherComplexity(offline_samples=0, online_samples=1)
        with pytest.raises(DistinguisherError):
            _ = c.offline_log2
