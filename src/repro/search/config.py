"""Declarative scenario configs: one JSON dict = one experiment.

The paper's scenarios are constructed in code, one hand-written class
instantiation at a time.  This module makes *any* registered cipher ×
rounds × difference-set a one-line experiment::

    {
      "name": "toyspeck-r3-auto",
      "scenario": "toyspeck",
      "params": {"rounds": 3},
      "search": {"generations": 6, "population_size": 24, "seed": 7},
      "train": {"num_samples": 16000, "epochs": 3, "seed": 11}
    }

``scenario`` names a builder in :data:`SCENARIO_BUILDERS`; ``params``
are its constructor knobs (everything *except* the differences);
``differences`` optionally fixes the ``(t, input_words)`` masks by hand
(the paper's scenarios are all expressible this way); ``search``
instead discovers them with :func:`repro.search.evolve.evolve_differences`
(hand-given ``differences`` are then injected as seeds, so search can
only match or beat them).  ``train``/``register`` parameterise the
downstream :class:`~repro.core.distinguisher.MLDistinguisher` fit and
:class:`~repro.serve.ModelRegistry` registration.

Builders deliberately construct *scenario objects* (not raw pipelines):
a built scenario carries its difference set in its fingerprint, so the
dataset cache and the registry manifest both see exactly what was
searched or specified.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.core.extra_scenarios import (
    Gift16Scenario,
    Gift64Scenario,
    SalsaScenario,
    ToyGiftScenario,
    TriviumScenario,
)
from repro.core.related_key import (
    SpeckRelatedKeyScenario,
    ToySpeckRelatedKeyScenario,
)
from repro.core.scenario import (
    DifferentialScenario,
    GimliCipherScenario,
    GimliHashScenario,
    GimliPermutationScenario,
    ToySpeckScenario,
)
from repro.errors import SearchError


@dataclass(frozen=True)
class ScenarioBuilder:
    """One entry of the builder registry.

    ``build(masks, **params)`` returns a scenario whose difference set
    is exactly ``masks``; ``probe`` returns a minimal 2-class mask set
    used to instantiate the *prototype* the bias oracle samples from;
    ``allowed`` (optional) returns the per-word bit mask of searchable
    positions — bits the difference may legally touch.
    """

    name: str
    build: Callable[..., DifferentialScenario]
    probe: Callable[..., np.ndarray]
    allowed: Optional[Callable[..., Optional[np.ndarray]]] = None

    def prototype(self, **params) -> DifferentialScenario:
        """A scenario instance for oracle sampling (masks are probes)."""
        return self.build(self.probe(**params), **params)

    def allowed_bits(self, **params) -> Optional[np.ndarray]:
        return self.allowed(**params) if self.allowed is not None else None


def _single_bit_masks(rows: Sequence[int], words: int, dtype) -> np.ndarray:
    masks = np.zeros((len(rows), words), dtype=dtype)
    for index, (word, bit) in enumerate(rows):
        masks[index, word] = dtype(1 << bit)
    return masks


# -- builders ---------------------------------------------------------------


def _build_gimli_hash(masks, rounds: int = 8, block_len: int = 15):
    return GimliHashScenario(rounds=rounds, block_len=block_len, masks=masks)


def _probe_gimli_hash(rounds: int = 8, block_len: int = 15):
    del rounds, block_len
    return _single_bit_masks([(1, 0), (3, 0)], 4, np.uint32)  # bytes 4 / 12


def _allowed_gimli_hash(rounds: int = 8, block_len: int = 15):
    del rounds
    allowed = np.zeros(4, dtype=np.uint32)
    for byte in range(block_len):
        word, offset = divmod(byte, 4)
        allowed[word] |= np.uint32(0xFF << (8 * offset))
    return allowed


def _build_gimli_cipher(masks, total_rounds: int = 8):
    return GimliCipherScenario(
        total_rounds=total_rounds, masks=np.asarray(masks, dtype=np.uint32)
    )


def _probe_gimli_cipher(total_rounds: int = 8):
    del total_rounds
    return _single_bit_masks([(1, 0), (3, 0)], 4, np.uint32)  # bytes 4 / 12


# No ``allowed`` for gimli-cipher: the whole 16-byte nonce is
# attacker-controlled, so every bit of all four words is searchable.


def _build_trivium(masks, warmup: int = 384, output_bits: int = 64):
    return TriviumScenario(
        warmup=warmup,
        output_bits=output_bits,
        masks=np.asarray(masks, dtype=np.uint8),
    )


def _probe_trivium(warmup: int = 384, output_bits: int = 64):
    del warmup, output_bits
    return _single_bit_masks([(0, 0), (5, 0)], 10, np.uint8)  # IV bits 0 / 40


def _build_toygift(masks):
    return ToyGiftScenario(masks=np.asarray(masks, dtype=np.uint8))


def _probe_toygift():
    return np.array([[0x23], [0x01]], dtype=np.uint8)


def _build_gimli_permutation(masks, rounds: int = 8, observe_words=None):
    return GimliPermutationScenario(
        rounds=rounds, differences=masks, observe_words=observe_words
    )


def _probe_gimli_permutation(rounds: int = 8, observe_words=None):
    del rounds, observe_words
    return _single_bit_masks([(1, 0), (3, 0)], 12, np.uint32)


def _build_toyspeck(masks, rounds: int = 4):
    masks = np.asarray(masks, dtype=np.uint8)
    deltas = [(int(row[0]) << 8) | int(row[1]) for row in masks]
    return ToySpeckScenario(rounds=rounds, deltas=deltas)


def _probe_toyspeck(rounds: int = 4):
    del rounds
    return np.array([[0x00, 0x40], [0x20, 0x00]], dtype=np.uint8)


def _build_gift16(masks, rounds: int = 4):
    masks = np.asarray(masks, dtype=np.uint16)
    return Gift16Scenario(rounds=rounds, deltas=[int(row[0]) for row in masks])


def _probe_gift16(rounds: int = 4):
    del rounds
    return np.array([[0x0001], [0x0010]], dtype=np.uint16)


def _build_gift64(masks, rounds: int = 4):
    masks = np.asarray(masks, dtype=np.uint32)
    deltas = [
        int(row[0]) | (int(row[1]) << 32) for row in masks
    ]
    return Gift64Scenario(rounds=rounds, deltas=deltas)


def _probe_gift64(rounds: int = 4):
    del rounds
    return _single_bit_masks([(0, 0), (1, 0)], 2, np.uint32)


def _build_salsa(masks, rounds: int = 2):
    return SalsaScenario(rounds=rounds, differences=masks)


def _probe_salsa(rounds: int = 2):
    del rounds
    return _single_bit_masks([(6, 0), (7, 0)], 16, np.uint32)


def _build_speck_related_key(masks, rounds: int = 7):
    return SpeckRelatedKeyScenario(rounds=rounds, masks=np.asarray(masks, np.uint16))


def _probe_speck_related_key(rounds: int = 7):
    del rounds
    probe = np.zeros((2, 6), dtype=np.uint16)
    probe[0, 0] = 0x0040  # Gohr's plaintext difference, key half zero
    probe[1, 5] = 0x0001  # pure key difference in the first round key
    return probe


def _build_toyspeck_related_key(masks, rounds: int = 4):
    return ToySpeckRelatedKeyScenario(
        rounds=rounds, masks=np.asarray(masks, np.uint8)
    )


def _probe_toyspeck_related_key(rounds: int = 4):
    del rounds
    probe = np.zeros((2, 6), dtype=np.uint8)
    probe[0, 1] = 0x40
    probe[1, 5] = 0x01
    return probe


SCENARIO_BUILDERS: Dict[str, ScenarioBuilder] = {}


def register_scenario_builder(builder: ScenarioBuilder) -> None:
    """Add a builder to the declarative-config registry."""
    if builder.name in SCENARIO_BUILDERS:
        raise SearchError(f"scenario builder {builder.name!r} already registered")
    SCENARIO_BUILDERS[builder.name] = builder


def get_scenario_builder(name: str) -> ScenarioBuilder:
    try:
        return SCENARIO_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_BUILDERS))
        raise SearchError(
            f"unknown scenario {name!r}; known: {known}"
        ) from None


for _builder in (
    ScenarioBuilder("gimli-hash", _build_gimli_hash, _probe_gimli_hash,
                    _allowed_gimli_hash),
    ScenarioBuilder("gimli-cipher", _build_gimli_cipher, _probe_gimli_cipher),
    ScenarioBuilder("gimli-permutation", _build_gimli_permutation,
                    _probe_gimli_permutation),
    ScenarioBuilder("trivium", _build_trivium, _probe_trivium),
    ScenarioBuilder("toygift", _build_toygift, _probe_toygift),
    ScenarioBuilder("toyspeck", _build_toyspeck, _probe_toyspeck),
    ScenarioBuilder("gift16", _build_gift16, _probe_gift16),
    ScenarioBuilder("gift64", _build_gift64, _probe_gift64),
    ScenarioBuilder("salsa", _build_salsa, _probe_salsa),
    ScenarioBuilder("speck-related-key", _build_speck_related_key,
                    _probe_speck_related_key),
    ScenarioBuilder("toyspeck-related-key", _build_toyspeck_related_key,
                    _probe_toyspeck_related_key),
):
    register_scenario_builder(_builder)


# -- the declarative spec ---------------------------------------------------

_TOP_LEVEL_KEYS = {
    "name",
    "scenario",
    "params",
    "differences",
    "num_differences",
    "search",
    "train",
    "register",
}
_SEARCH_KEYS = {
    "population_size",
    "generations",
    "elite",
    "mutation_bits",
    "top_k",
    "n_samples",
    "seed",
}
_TRAIN_KEYS = {
    "num_samples",
    "epochs",
    "batch_size",
    "hidden",
    "seed",
    "significance",
}


@dataclass
class ScenarioSpec:
    """A validated declarative scenario config."""

    name: str
    scenario: str
    params: dict = field(default_factory=dict)
    differences: Optional[np.ndarray] = None
    num_differences: int = 2
    search: Optional[dict] = None
    train: dict = field(default_factory=dict)
    register: dict = field(default_factory=dict)

    @property
    def builder(self) -> ScenarioBuilder:
        return get_scenario_builder(self.scenario)

    @classmethod
    def from_dict(cls, raw: dict) -> "ScenarioSpec":
        if not isinstance(raw, dict):
            raise SearchError(f"scenario config must be a dict, got {type(raw)}")
        unknown = set(raw) - _TOP_LEVEL_KEYS
        if unknown:
            raise SearchError(
                f"unknown scenario-config keys {sorted(unknown)}; "
                f"known: {sorted(_TOP_LEVEL_KEYS)}"
            )
        for key in ("scenario",):
            if key not in raw:
                raise SearchError(f"scenario config is missing {key!r}")
        builder = get_scenario_builder(str(raw["scenario"]))
        params = dict(raw.get("params") or {})
        differences = raw.get("differences")
        search = raw.get("search")
        if differences is None and search is None:
            raise SearchError(
                "scenario config needs 'differences', a 'search' section, "
                "or both"
            )
        if search is not None:
            if not isinstance(search, dict):
                raise SearchError("'search' must be a dict of SearchConfig knobs")
            unknown = set(search) - _SEARCH_KEYS
            if unknown:
                raise SearchError(
                    f"unknown search keys {sorted(unknown)}; "
                    f"known: {sorted(_SEARCH_KEYS)}"
                )
        train = dict(raw.get("train") or {})
        unknown = set(train) - _TRAIN_KEYS
        if unknown:
            raise SearchError(
                f"unknown train keys {sorted(unknown)}; known: {sorted(_TRAIN_KEYS)}"
            )
        register = dict(raw.get("register") or {})
        if differences is not None:
            try:
                differences = np.asarray(differences, dtype=np.uint64)
            except (TypeError, ValueError, OverflowError):
                raise SearchError(
                    "'differences' must be a (t, input_words) list of "
                    "non-negative word values"
                ) from None
            if differences.ndim != 2:
                raise SearchError(
                    f"'differences' must be 2-D (t, input_words), got shape "
                    f"{differences.shape}"
                )
        num_differences = int(raw.get("num_differences", 2))
        if num_differences < 2:
            raise SearchError(
                f"num_differences must be >= 2, got {num_differences}"
            )
        name = str(raw.get("name") or raw["scenario"])
        return cls(
            name=name,
            scenario=str(raw["scenario"]),
            params=params,
            differences=differences,
            num_differences=num_differences,
            search=dict(search) if search is not None else None,
            train=train,
            register=register,
        )

    @classmethod
    def from_json(cls, path: str) -> "ScenarioSpec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except FileNotFoundError:
            raise SearchError(f"no scenario config at {path!r}") from None
        except json.JSONDecodeError as exc:
            raise SearchError(f"invalid JSON in {path!r}: {exc}") from None
        return cls.from_dict(raw)

    def build_scenario(self, masks) -> DifferentialScenario:
        """Instantiate the scenario with an explicit difference set."""
        try:
            return self.builder.build(masks, **self.params)
        except TypeError as exc:
            raise SearchError(
                f"bad params for scenario {self.scenario!r}: {exc}"
            ) from None

    def prototype(self) -> DifferentialScenario:
        """The oracle-sampling prototype for this spec."""
        try:
            return self.builder.prototype(**self.params)
        except TypeError as exc:
            raise SearchError(
                f"bad params for scenario {self.scenario!r}: {exc}"
            ) from None
