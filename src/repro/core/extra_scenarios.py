"""Extension scenarios: the paper's future-work targets.

§6 proposes experimenting with "other non-Markov ciphers and Markov
ciphers like GIFT".  These scenarios wire the framework to the
remaining primitives in :mod:`repro.ciphers`:

* :class:`SalsaScenario` — the sub-key-free Salsa20 double-round
  iteration (named in §2.1 as a non-Markov example);
* :class:`TriviumScenario` — IV differences against round-reduced
  (reduced warm-up) Trivium keystream (the other §2.1 example);
* :class:`Gift16Scenario` — the scaled GIFT-like SPN, whose exact
  all-in-one distribution (:func:`repro.diffcrypt.allinone.gift16_markov_distribution`)
  provides the Bayes ceiling for the ML accuracy.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ciphers.gift import (
    GIFT16_ROUNDS,
    GIFT64_ROUNDS,
    Gift16,
    encrypt_batch as gift64_encrypt_batch,
)
from repro.ciphers.salsa import SalsaPermutation
from repro.ciphers.toygift import ToyGift
from repro.ciphers.trivium import IV_BITS, KEY_BITS, Trivium
from repro.core.scenario import DifferentialScenario
from repro.errors import DistinguisherError


class SalsaScenario(DifferentialScenario):
    """Chosen-difference game on the round-reduced Salsa double-round.

    ``rounds`` counts double rounds; differences default to single bits
    in words 6 and 7 (two of the nonce words in the Salsa20 stream
    cipher's state layout).
    """

    input_words = 16
    output_words = 16
    word_width = 32

    def __init__(self, rounds: int = 2, differences: Optional[np.ndarray] = None):
        if differences is None:
            differences = np.zeros((2, 16), dtype=np.uint32)
            differences[0, 6] = 1
            differences[1, 7] = 1
        super().__init__(np.asarray(differences, dtype=np.uint32))
        self.permutation = SalsaPermutation(rounds)
        self.rounds = int(rounds)

    def sample_base_inputs(self, n, rng):
        return rng.integers(0, 1 << 32, size=(n, 16), dtype=np.uint64).astype(
            np.uint32
        )

    def pipeline(self, inputs, context=None):
        del context
        return self.permutation(inputs)


class TriviumScenario(DifferentialScenario):
    """IV-difference game on reduced-warm-up Trivium.

    Inputs are the 10 IV bytes; per-sample 80-bit keys are context;
    the observable is ``output_bits`` keystream bits packed into bytes.
    ``warmup`` is the round-reduction knob (full Trivium uses 1152).
    """

    input_words = 10  # IV bytes
    word_width = 8

    def __init__(
        self,
        warmup: int = 384,
        diff_bits: Sequence[int] = (0, 40),
        output_bits: int = 64,
        masks: Optional[np.ndarray] = None,
    ):
        if output_bits <= 0 or output_bits % 8:
            raise DistinguisherError(
                f"output_bits must be a positive multiple of 8, got {output_bits}"
            )
        if masks is not None:
            # The whole 80-bit IV is attacker-chosen, so any byte
            # pattern is a legal difference — the search layer hands
            # multi-bit masks through here.
            masks = np.asarray(masks, dtype=np.uint8)
            if masks.ndim != 2 or masks.shape[1] != 10:
                raise DistinguisherError(
                    f"Trivium masks must have shape (t, 10), got {masks.shape}"
                )
        else:
            masks = np.zeros((len(diff_bits), 10), dtype=np.uint8)
            for row, bit in enumerate(diff_bits):
                if not 0 <= bit < IV_BITS:
                    raise DistinguisherError(
                        f"IV difference bit {bit} outside [0, {IV_BITS})"
                    )
                masks[row, bit // 8] = 1 << (bit % 8)
        self.output_words = output_bits // 8
        super().__init__(masks)
        self.trivium = Trivium(warmup)
        self.output_bits = int(output_bits)

    def sample_base_inputs(self, n, rng):
        return rng.integers(0, 256, size=(n, 10), dtype=np.uint8)

    def sample_context(self, n, rng):
        return rng.integers(0, 256, size=(n, 10), dtype=np.uint8)

    def pipeline(self, inputs, context=None):
        if context is None:
            raise DistinguisherError("TriviumScenario needs per-sample keys")
        iv_bits = np.unpackbits(
            np.asarray(inputs, dtype=np.uint8), axis=1, bitorder="little"
        )[:, :IV_BITS]
        key_bits = np.unpackbits(
            np.asarray(context, dtype=np.uint8), axis=1, bitorder="little"
        )[:, :KEY_BITS]
        stream = self.trivium.keystream_batch(key_bits, iv_bits, self.output_bits)
        return np.packbits(stream, axis=1, bitorder="little")


class Gift64Scenario(DifferentialScenario):
    """Chosen-difference game on round-reduced GIFT-64.

    The paper's conclusion names GIFT as the next (Markov) target for
    the method.  Fresh 128-bit keys per sample (eight 16-bit words as
    context); differences default to single bits in nibbles 0 and 8.
    Blocks travel as pairs of 32-bit words for the feature encoding.
    """

    input_words = 2
    output_words = 2
    word_width = 32

    def __init__(self, rounds: int = 4, deltas: Sequence[int] = (0x1, 0x1 << 32)):
        if not 1 <= rounds <= GIFT64_ROUNDS:
            raise DistinguisherError(
                f"rounds must be in [1, {GIFT64_ROUNDS}], got {rounds}"
            )
        masks = np.zeros((len(deltas), 2), dtype=np.uint32)
        for row, delta in enumerate(deltas):
            if not 0 < delta < 1 << 64:
                raise DistinguisherError(
                    f"difference must be a non-zero 64-bit value, got {delta:#x}"
                )
            masks[row, 0] = delta & 0xFFFFFFFF
            masks[row, 1] = delta >> 32
        super().__init__(masks)
        self.rounds = int(rounds)
        self.deltas = tuple(int(d) for d in deltas)

    def sample_base_inputs(self, n, rng):
        blocks = rng.integers(0, 1 << 63, size=n, dtype=np.uint64)
        blocks |= rng.integers(0, 2, size=n, dtype=np.uint64) << np.uint64(63)
        return np.stack(
            [
                (blocks & np.uint64(0xFFFFFFFF)).astype(np.uint32),
                (blocks >> np.uint64(32)).astype(np.uint32),
            ],
            axis=1,
        )

    def sample_context(self, n, rng):
        return rng.integers(0, 1 << 16, size=(n, 8), dtype=np.uint16)

    def pipeline(self, inputs, context=None):
        if context is None:
            raise DistinguisherError("Gift64Scenario needs per-sample keys")
        arr = np.asarray(inputs, dtype=np.uint32)
        blocks = arr[:, 0].astype(np.uint64) | (
            arr[:, 1].astype(np.uint64) << np.uint64(32)
        )
        out = gift64_encrypt_batch(blocks, context, self.rounds)
        return np.stack(
            [
                (out & np.uint64(0xFFFFFFFF)).astype(np.uint32),
                (out >> np.uint64(32)).astype(np.uint32),
            ],
            axis=1,
        )


class Gift16Scenario(DifferentialScenario):
    """Chosen-difference game on the scaled GIFT-like SPN.

    A Markov cipher with an exactly computable all-in-one distribution —
    the extension experiment the paper's conclusion suggests for GIFT,
    at a scale where ML and exact baselines can be compared directly.
    """

    input_words = 1
    output_words = 1
    word_width = 16

    def __init__(self, rounds: int = 4, deltas: Sequence[int] = (0x0001, 0x0010)):
        if not 1 <= rounds <= GIFT16_ROUNDS:
            raise DistinguisherError(
                f"rounds must be in [1, {GIFT16_ROUNDS}], got {rounds}"
            )
        masks = np.zeros((len(deltas), 1), dtype=np.uint16)
        for row, delta in enumerate(deltas):
            if not 0 < delta < 1 << 16:
                raise DistinguisherError(
                    f"difference must be a non-zero 16-bit value, got {delta:#x}"
                )
            masks[row, 0] = delta
        super().__init__(masks)
        self.cipher = Gift16(rounds)
        self.rounds = int(rounds)
        self.deltas = tuple(int(d) for d in deltas)

    def sample_base_inputs(self, n, rng):
        return rng.integers(0, 1 << 16, size=(n, 1), dtype=np.uint16)

    def sample_context(self, n, rng):
        return rng.integers(0, 1 << 16, size=(n, self.rounds), dtype=np.uint16)

    def pipeline(self, inputs, context=None):
        if context is None:
            raise DistinguisherError("Gift16Scenario needs per-sample round keys")
        return self.cipher.encrypt(inputs, context)


class ToyGiftScenario(DifferentialScenario):
    """Chosen-difference game on the Figure 1 toy cipher (§2.1).

    The 8-bit, 2-round, *unkeyed* ToyGift is the paper's didactic
    non-Markov example; as a scenario it is the smallest possible
    search target — 255 candidate differences, exhaustively coverable —
    which makes it the canonical smoke-test family for the search
    pipeline.  Being unkeyed, the cipher is a fixed 8-bit permutation:
    the whole pipeline is one 256-entry lookup table, so dataset
    generation is a single vectorised gather.
    """

    input_words = 1
    output_words = 1
    word_width = 8

    def __init__(
        self,
        deltas: Sequence[int] = (0x23, 0x01),
        masks: Optional[np.ndarray] = None,
        wiring: Optional[Sequence[int]] = None,
    ):
        if masks is not None:
            masks = np.asarray(masks, dtype=np.uint8)
            if masks.ndim != 2 or masks.shape[1] != 1:
                raise DistinguisherError(
                    f"ToyGift masks must have shape (t, 1), got {masks.shape}"
                )
        else:
            masks = np.zeros((len(deltas), 1), dtype=np.uint8)
            for row, delta in enumerate(deltas):
                if not 0 < delta < 256:
                    raise DistinguisherError(
                        f"ToyGift difference must be a non-zero 8-bit value, "
                        f"got {delta:#x}"
                    )
                masks[row, 0] = delta
        super().__init__(masks)
        toy = ToyGift(wiring)
        self._table = np.array(
            [toy.encrypt(value) for value in range(256)], dtype=np.uint8
        )

    def sample_base_inputs(self, n, rng):
        return rng.integers(0, 256, size=(n, 1), dtype=np.uint8)

    def pipeline(self, inputs, context=None):
        del context  # unkeyed: the permutation is public and fixed
        return self._table[np.asarray(inputs, dtype=np.uint8)]
