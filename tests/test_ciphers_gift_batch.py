"""Tests for the vectorised GIFT-64 (table-driven batch encryption)."""

import numpy as np
import pytest

from repro.ciphers.gift import (
    GIFT64_ROUNDS,
    Gift64,
    encrypt_batch,
    expand_key_batch,
)
from repro.errors import ShapeError


def _key_int(words: np.ndarray) -> int:
    value = 0
    for j in range(8):
        value |= int(words[j]) << (16 * j)
    return value


class TestKeyScheduleBatch:
    def test_matches_scalar(self, rng):
        keys = rng.integers(0, 1 << 16, size=(8, 8), dtype=np.uint16)
        masks = expand_key_batch(keys, 10)
        for i in range(8):
            scalar = Gift64(rounds=10).round_keys(_key_int(keys[i]))
            assert scalar == [int(m) for m in masks[i]]

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            expand_key_batch(np.zeros((2, 7), dtype=np.uint16), 4)


class TestEncryptBatch:
    @pytest.mark.parametrize("rounds", [1, 4, 12, GIFT64_ROUNDS])
    def test_matches_scalar(self, rounds, rng):
        n = 12
        pts = rng.integers(0, 1 << 63, size=n, dtype=np.uint64)
        keys = rng.integers(0, 1 << 16, size=(n, 8), dtype=np.uint16)
        batch = encrypt_batch(pts, keys, rounds)
        cipher = Gift64(rounds)
        for i in range(n):
            assert cipher.encrypt(int(pts[i]), _key_int(keys[i])) == int(batch[i])

    def test_rows_independent(self, rng):
        pts = rng.integers(0, 1 << 63, size=6, dtype=np.uint64)
        keys = rng.integers(0, 1 << 16, size=(6, 8), dtype=np.uint16)
        full = encrypt_batch(pts, keys, 6)
        row = encrypt_batch(pts[2:3], keys[2:3], 6)
        assert full[2] == row[0]

    def test_bijective_sample(self, rng):
        pts = rng.integers(0, 1 << 63, size=512, dtype=np.uint64)
        pts = np.unique(pts)
        keys = np.tile(
            rng.integers(0, 1 << 16, size=(1, 8), dtype=np.uint16), (len(pts), 1)
        )
        out = encrypt_batch(pts, keys, GIFT64_ROUNDS)
        assert len(np.unique(out)) == len(pts)

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            encrypt_batch(
                np.zeros((2, 2), dtype=np.uint64),
                np.zeros((2, 8), dtype=np.uint16),
            )
        with pytest.raises(ShapeError):
            encrypt_batch(
                np.zeros(2, dtype=np.uint64), np.zeros((3, 8), dtype=np.uint16)
            )

    def test_avalanche_at_full_rounds(self, rng):
        n = 128
        pts = rng.integers(0, 1 << 63, size=n, dtype=np.uint64)
        keys = rng.integers(0, 1 << 16, size=(n, 8), dtype=np.uint16)
        a = encrypt_batch(pts, keys, GIFT64_ROUNDS)
        b = encrypt_batch(pts ^ np.uint64(1), keys, GIFT64_ROUNDS)
        bits = np.unpackbits((a ^ b).view(np.uint8), bitorder="little")
        assert 0.4 < bits.mean() < 0.6


class TestGift64Scenario:
    def test_dataset_shapes(self, rng):
        from repro.core.extra_scenarios import Gift64Scenario

        scenario = Gift64Scenario(rounds=3)
        x, y = scenario.generate_dataset(20, rng=rng)
        assert x.shape == (40, 64)
        assert scenario.feature_bits == 64

    def test_pipeline_matches_batch_encrypt(self, rng):
        from repro.core.extra_scenarios import Gift64Scenario

        scenario = Gift64Scenario(rounds=5)
        inputs = scenario.sample_base_inputs(6, rng)
        keys = scenario.sample_context(6, rng)
        out = scenario.pipeline(inputs, keys)
        blocks = inputs[:, 0].astype(np.uint64) | (
            inputs[:, 1].astype(np.uint64) << np.uint64(32)
        )
        expected = encrypt_batch(blocks, keys, 5)
        got = out[:, 0].astype(np.uint64) | (
            out[:, 1].astype(np.uint64) << np.uint64(32)
        )
        assert (got == expected).all()

    def test_low_rounds_distinguishable(self):
        from repro.core.distinguisher import MLDistinguisher
        from repro.core.extra_scenarios import Gift64Scenario
        from repro.nn.architectures import build_mlp

        scenario = Gift64Scenario(rounds=2)
        d = MLDistinguisher(
            scenario, model=build_mlp([64, 64], "relu"), epochs=3, rng=9
        )
        report = d.train(num_samples=4000)
        assert report.validation_accuracy > 0.9

    def test_invalid_construction(self):
        from repro.core.extra_scenarios import Gift64Scenario
        from repro.errors import DistinguisherError

        with pytest.raises(DistinguisherError):
            Gift64Scenario(rounds=0)
        with pytest.raises(DistinguisherError):
            Gift64Scenario(deltas=(0, 1))
