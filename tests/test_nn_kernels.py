"""Kernel-equivalence tests for the hot-path rewrites.

The fused softmax+CCE backward, the in-place optimizers and the Dense
``out=`` backward are pure performance work: each must match its
reference formulation — the optimizers bit-for-bit (their arithmetic
order is preserved), the fused gradient to float tolerance (it is
algebraically identical but rounds differently).
"""

import numpy as np
import pytest

from repro.nn.layers import Dense, Dropout, ReLU, Softmax
from repro.nn.losses import CategoricalCrossentropy, one_hot
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam


def _toy_batch(seed=0, n=32, features=16, classes=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, features))
    y = one_hot(rng.integers(0, classes, n), classes)
    return x, y


def _toy_model(classes=3, seed=7):
    model = Sequential([Dense(24), ReLU(), Dense(classes), Softmax()])
    model.build((16,), rng=seed)
    return model


class TestFusedSoftmaxCCE:
    def test_fused_flag_detection(self):
        model = _toy_model()
        model.compile()
        assert model._fused_softmax_cce()
        model.compile(loss=CategoricalCrossentropy(from_logits=True))
        assert not model._fused_softmax_cce()
        no_softmax = Sequential([Dense(3)])
        no_softmax.build((16,), rng=0)
        no_softmax.compile()
        assert not no_softmax._fused_softmax_cce()

    def test_fused_gradient_matches_jacobian_path(self):
        x, y = _toy_batch()
        loss = CategoricalCrossentropy()
        fused = _toy_model()
        unfused = _toy_model()
        pred_f = fused.forward(x, training=True)
        pred_u = unfused.forward(x, training=True)
        assert np.array_equal(pred_f, pred_u)
        # Fused: (p - y) / n straight into the layer below the softmax.
        grad = (pred_f - y) / y.shape[0]
        for layer in reversed(fused.layers[:-1]):
            grad = layer.backward(grad)
        # Reference: CCE gradient through the softmax Jacobian.
        _, grad_u = loss(y, pred_u)
        unfused.backward(grad_u)
        for pf, pu in zip(fused._gather()[1], unfused._gather()[1]):
            np.testing.assert_allclose(pf, pu, rtol=1e-9, atol=1e-12)

    def test_fused_loss_value_matches_unfused(self):
        x, y = _toy_batch(seed=3)
        model = _toy_model()
        pred = model.forward(x)
        loss = CategoricalCrossentropy()
        reference, _ = loss(y, pred)
        assert loss.value(y, pred) == pytest.approx(reference, rel=1e-12)

    def test_fit_trains_identically_to_manual_unfused_loop(self):
        """End to end: `fit` (fused) reaches the same weights, to float
        tolerance, as the explicit unfused loop with the same streams."""
        x, y = _toy_batch(seed=5, n=64)
        fused = _toy_model()
        fused.compile(optimizer=Adam())
        fused.fit(x, y, epochs=3, batch_size=16, shuffle=False, rng=0)
        manual = _toy_model()
        loss = CategoricalCrossentropy()
        optimizer = Adam()
        for _ in range(3):
            for begin in range(0, 64, 16):
                xb, yb = x[begin:begin + 16], y[begin:begin + 16]
                pred = manual.forward(xb, training=True)
                _, grad = loss(yb, pred)
                manual.backward(grad)
                params, grads = manual._gather()
                optimizer.update(params, grads)
        for pf, pm in zip(fused._gather()[0], manual._gather()[0]):
            np.testing.assert_allclose(pf, pm, rtol=1e-8, atol=1e-10)


def _reference_sgd_step(params, grads, velocities, lr, momentum):
    out = []
    for i, (param, grad) in enumerate(zip(params, grads)):
        if momentum:
            velocities[i] = momentum * velocities[i] - lr * grad
            out.append(param + velocities[i])
        else:
            out.append(param - lr * grad)
    return out


class TestInPlaceOptimizers:
    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    def test_sgd_bit_identical_to_reference(self, momentum):
        rng = np.random.default_rng(1)
        shapes = [(5, 4), (4,), (4, 2)]
        params = [rng.normal(size=s) for s in shapes]
        reference = [p.copy() for p in params]
        velocities = [np.zeros_like(p) for p in reference]
        sgd = SGD(learning_rate=0.05, momentum=momentum)
        for step in range(25):
            grads = [rng.normal(size=s) for s in shapes]
            sgd.update(params, grads)
            reference = _reference_sgd_step(
                reference, grads, velocities, 0.05, momentum
            )
            for p, r in zip(params, reference):
                assert np.array_equal(p, r), f"diverged at step {step}"

    def test_adam_bit_identical_to_reference(self):
        rng = np.random.default_rng(2)
        shapes = [(6, 3), (3,)]
        params = [rng.normal(size=s) for s in shapes]
        reference = [p.copy() for p in params]
        adam = Adam(learning_rate=0.01)
        ms = [np.zeros_like(p) for p in reference]
        vs = [np.zeros_like(p) for p in reference]
        for step in range(1, 31):
            grads = [rng.normal(size=s) for s in shapes]
            adam.update(params, grads)
            bias_1 = 1.0 - adam.beta_1**step
            bias_2 = 1.0 - adam.beta_2**step
            for i, grad in enumerate(grads):
                ms[i] = adam.beta_1 * ms[i] + (1.0 - adam.beta_1) * grad
                vs[i] = adam.beta_2 * vs[i] + (1.0 - adam.beta_2) * grad * grad
                denom = np.sqrt(vs[i] / bias_2) + adam.epsilon
                reference[i] = reference[i] - adam.learning_rate * (
                    ms[i] / bias_1
                ) / denom
            for p, r in zip(params, reference):
                assert np.array_equal(p, r), f"diverged at step {step}"

    def test_adam_step_allocates_no_new_state_after_first(self):
        rng = np.random.default_rng(3)
        params = [rng.normal(size=(8, 8))]
        adam = Adam()
        adam.update(params, [rng.normal(size=(8, 8))])
        buffers = [adam._m[0], adam._v[0], adam._num[0], adam._den[0]]
        adam.update(params, [rng.normal(size=(8, 8))])
        assert adam._m[0] is buffers[0]
        assert adam._v[0] is buffers[1]
        assert adam._num[0] is buffers[2]
        assert adam._den[0] is buffers[3]


class TestDenseOutBackward:
    def test_grads_written_into_persistent_buffers(self):
        dense = Dense(4)
        dense.build((6,), np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(10, 6))
        dense.forward(x, training=True)
        before = (dense.grads[0], dense.grads[1])
        dense.backward(np.random.default_rng(2).normal(size=(10, 4)))
        assert dense.grads[0] is before[0]
        assert dense.grads[1] is before[1]

    def test_backward_matches_reference_matmuls(self):
        dense = Dense(4)
        dense.build((6,), np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(10, 6))
        grad = np.random.default_rng(2).normal(size=(10, 4))
        dense.forward(x, training=True)
        out = dense.backward(grad)
        assert np.array_equal(dense.grads[0], x.T @ grad)
        assert np.array_equal(dense.grads[1], grad.sum(axis=0))
        assert np.array_equal(out, grad @ dense.params[0].T)


class TestDropoutRngRouting:
    def test_fit_rng_reaches_dropout(self):
        """Two fits from the same seed must agree *through* Dropout —
        the masks now come from fit's generator, not hidden state."""
        x, y = _toy_batch(seed=9, n=48)

        def train():
            model = Sequential(
                [Dense(24), ReLU(), Dropout(0.5), Dense(3), Softmax()]
            )
            model.build((16,), rng=4)
            model.compile()
            model.fit(x, y, epochs=2, batch_size=16, rng=11)
            return model._gather()[0]

        for a, b in zip(train(), train()):
            assert np.array_equal(a, b)

    def test_explicit_seed_overrides_fit_rng(self):
        drop = Dropout(0.5, seed=13)
        x = np.ones((4, 50))
        a = drop.forward(x, training=True, rng=np.random.default_rng(1))
        drop_again = Dropout(0.5, seed=13)
        b = drop_again.forward(x, training=True, rng=np.random.default_rng(2))
        assert np.array_equal(a, b)

    def test_fit_rng_used_when_no_seed(self):
        x = np.ones((4, 200))
        drop = Dropout(0.5)
        a = drop.forward(x, training=True, rng=np.random.default_rng(21))
        b = drop.forward(x, training=True, rng=np.random.default_rng(21))
        assert np.array_equal(a, b)
        c = drop.forward(x, training=True, rng=np.random.default_rng(22))
        assert not np.array_equal(a, c)
