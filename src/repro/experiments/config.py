"""Experiment scaling and hot-path knobs.

The paper trained on ``2^17.6 ≈ 199,000`` samples for 20 epochs on an
RTX 8000; the same numbers on CPU numpy take minutes per table row.  All
experiments therefore take explicit sizes, with defaults derived from
the paper's sizes times ``REPRO_SCALE`` (``0.0 < scale <= 1.0``).
``REPRO_SCALE=1.0`` reproduces the paper's data budget exactly.

Two further environment knobs tune the engine without changing any
experiment's semantics:

* ``REPRO_WORKERS`` — dataset-generation worker count.  Unset keeps the
  historical single-stream generator; any integer ``>= 1`` switches to
  the sharded generator of :mod:`repro.core.parallel`, which is
  bit-identical across worker counts.
* ``REPRO_DTYPE`` — compute dtype for the neural networks (``float32``
  or ``float64``; unset keeps the float64 default).
* ``REPRO_DATASET_CACHE`` — directory for the content-addressed dataset
  cache (:mod:`repro.core.cache`); unset disables caching.  Cache hits
  are bit-identical to fresh generation, so this knob, like the others,
  never changes results.

``REPRO_WORKERS`` also controls experiment-grid parallelism: the table
runners train independent (cipher, rounds, network) cells in that many
worker processes, with per-cell seed material derived up front so the
results are identical for every worker count.

The automated input-difference search has its own budget knobs
(``REPRO_SEARCH_POPULATION`` / ``_GENERATIONS`` / ``_SAMPLES`` /
``_SEED`` / ``_TOP_K`` — see :mod:`repro.search.evolve` and the
EXPERIMENTS.md table); run manifests capture them with every other
``REPRO_*`` variable automatically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ExperimentError

#: The paper's offline sample count (§4: "we generate 2^17.6 samples").
PAPER_OFFLINE_SAMPLES = int(round(2.0**17.6))
#: The paper's online sample count (§4: "2^14.3 valid samples").
PAPER_ONLINE_SAMPLES = int(round(2.0**14.3))
#: Table 2 epochs ("training was run for 20 epochs").
PAPER_TABLE2_EPOCHS = 20
#: Table 3 epochs ("number of epochs was set to 5").
PAPER_TABLE3_EPOCHS = 5
#: Table 3 offline samples ("2^17 of training data samples").
PAPER_TABLE3_SAMPLES = 1 << 17

DEFAULT_SCALE = 0.05


def get_scale() -> float:
    """Read ``REPRO_SCALE`` from the environment (default 0.05)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return DEFAULT_SCALE
    try:
        scale = float(raw)
    except ValueError:
        raise ExperimentError(
            f"REPRO_SCALE must be a float in (0, 1], got {raw!r}"
        ) from None
    if not 0.0 < scale <= 1.0:
        raise ExperimentError(
            f"REPRO_SCALE must be in (0, 1], got {scale}"
        )
    return scale


def get_workers() -> Optional[int]:
    """Read ``REPRO_WORKERS`` (unset -> ``None``: single-stream path)."""
    raw = os.environ.get("REPRO_WORKERS", "")
    if not raw:
        return None
    try:
        workers = int(raw)
    except ValueError:
        raise ExperimentError(
            f"REPRO_WORKERS must be a positive integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ExperimentError(
            f"REPRO_WORKERS must be a positive integer, got {workers}"
        )
    return workers


def get_dataset_cache():
    """The :class:`~repro.core.cache.DatasetCache` named by
    ``REPRO_DATASET_CACHE``, or ``None`` when caching is disabled."""
    from repro.core.cache import DatasetCache

    return DatasetCache.from_env()


def get_dtype() -> Optional[str]:
    """Read ``REPRO_DTYPE`` (unset -> ``None``: keep the float64 default)."""
    raw = os.environ.get("REPRO_DTYPE", "")
    if not raw:
        return None
    if raw not in ("float32", "float64"):
        raise ExperimentError(
            f"REPRO_DTYPE must be 'float32' or 'float64', got {raw!r}"
        )
    return raw


@dataclass(frozen=True)
class ExperimentScale:
    """Concrete sample/epoch budget derived from a scale factor."""

    scale: float

    def __post_init__(self):
        if not 0.0 < self.scale <= 1.0:
            raise ExperimentError(f"scale must be in (0, 1], got {self.scale}")

    @property
    def offline_samples(self) -> int:
        """Scaled Table 2 offline sample count (min 2,000)."""
        return max(2_000, int(PAPER_OFFLINE_SAMPLES * self.scale))

    @property
    def online_samples(self) -> int:
        """Scaled online sample count (min 500)."""
        return max(500, int(PAPER_ONLINE_SAMPLES * self.scale))

    @property
    def table2_epochs(self) -> int:
        """Scaled Table 2 epochs (min 3)."""
        return max(3, int(round(PAPER_TABLE2_EPOCHS * self.scale * 4)))

    @property
    def table3_samples(self) -> int:
        """Scaled Table 3 sample count (min 2,000)."""
        return max(2_000, int(PAPER_TABLE3_SAMPLES * self.scale))

    @property
    def table3_epochs(self) -> int:
        """Table 3 epochs (the paper's 5; never scaled below 2)."""
        return max(2, int(round(PAPER_TABLE3_EPOCHS * max(self.scale * 4, 0.4))))


def default_scale() -> ExperimentScale:
    """The :class:`ExperimentScale` from the environment."""
    return ExperimentScale(get_scale())
