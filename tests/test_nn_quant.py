"""Tests for int8/float16 quantized inference and its serving path.

The load-bearing properties:

* the compiled VNNI kernel and the numpy fallback are **bit-identical**
  (``REPRO_QUANT`` flips between them);
* fully-quantized inference is **batch-size invariant** bitwise, so the
  micro-batching engine's coalescing guarantee survives quantization;
* save -> register -> load -> serve round-trips preserve content
  (digest and array bytes) and predictions exactly;
* the registry manifest pins the held-out accuracy delta of a variant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import (
    Conv1D,
    Dense,
    Flatten,
    QuantizedSequential,
    ReLU,
    Reshape,
    Sequential,
    Softmax,
    quantize_model,
)
from repro.nn.backend import qkernel
from repro.nn.quant import (
    INT8_MIN_WEIGHT_ELEMS,
    _Int8Linear,
    int8_affine,
    is_quantized_artifact,
    quantize_rows,
    quantize_weight,
)
from repro.serve import MicroBatchEngine, ModelRegistry


def make_model(rng, features=12, classes=3):
    model = Sequential(
        [Dense(16), ReLU(), Dense(classes), Softmax()]
    )
    return model.build((features,), rng).compile(dtype="float32")


def make_cnn(rng, classes=2):
    model = Sequential(
        [
            Reshape((8, 2)),
            Conv1D(6, 3),
            ReLU(),
            Flatten(),
            Dense(classes),
            Softmax(),
        ]
    )
    return model.build((16,), rng).compile(dtype="float32")


def make_report(accuracy=0.8, t=2):
    return {
        "validation_accuracy": accuracy,
        "training_accuracy": accuracy + 0.02,
        "num_samples": 1000,
        "num_classes": t,
    }


def bits(rng, n, features):
    return (rng.random((n, features)) < 0.5).astype(np.float32)


# -- primitives -------------------------------------------------------------


class TestPrimitives:
    def test_quantize_weight_roundtrip_error_bounded(self, rng):
        w = rng.normal(size=(64, 32)).astype(np.float32)
        q, scale = quantize_weight(w)
        assert q.dtype == np.int8
        assert np.abs(q.astype(np.float64) * scale - w).max() <= scale / 2 + 1e-9

    def test_quantize_weight_zero_tensor(self):
        q, scale = quantize_weight(np.zeros((4, 4)))
        assert scale == 1.0
        assert not q.any()

    def test_quantize_rows_is_per_row(self, rng):
        x = rng.normal(size=(6, 20)).astype(np.float32)
        q_all, scale_all, zp_all = quantize_rows(x)
        for i in range(x.shape[0]):
            q_one, scale_one, zp_one = quantize_rows(x[i:i + 1])
            assert q_one.tobytes() == q_all[i:i + 1].tobytes()
            assert scale_one[0] == scale_all[i]
            assert zp_one[0] == zp_all[i]

    def test_quantize_rows_zero_row_is_exact(self):
        q, scale, zp = quantize_rows(np.zeros((1, 8), dtype=np.float32))
        assert scale[0] == 0.0
        assert (q == zp[0]).all()

    def test_quantize_rows_keeps_exact_zero(self, rng):
        x = np.abs(rng.normal(size=(3, 16))).astype(np.float32)
        x[:, 0] = 0.0
        q, _scale, zp = quantize_rows(x)
        assert (q[:, 0] == zp).all()

    def test_bit_inputs_quantize_losslessly(self, rng):
        # {0, 1} rows hit the uint8 grid exactly: zp = 0 and each bit
        # lands on level 0 or 255 with no rounding.
        x = bits(rng, 5, 32)
        q, _scale, zp = quantize_rows(x)
        assert (zp == 0).all()
        assert np.array_equal(q, (x * 255).astype(np.uint8))


# -- kernel vs numpy fallback ----------------------------------------------


class TestKernelParity:
    def test_kernel_and_numpy_paths_bit_identical(self, rng, monkeypatch):
        if not qkernel.available():
            pytest.skip("compiled kernel unavailable on this host")
        w = rng.normal(size=(96, 33)).astype(np.float32)
        q, scale = quantize_weight(w)
        linear = _Int8Linear(q, scale, rng.normal(size=33).astype(np.float32))
        x = rng.normal(size=(17, 96)).astype(np.float32)
        x[3] = 0.0  # all-zero row: scale-0 edge case on both paths
        monkeypatch.setenv("REPRO_QUANT", "kernel")
        via_kernel = int8_affine(x, linear)
        monkeypatch.setenv("REPRO_QUANT", "numpy")
        via_numpy = int8_affine(x, linear)
        assert via_kernel.dtype == via_numpy.dtype == np.float32
        assert via_kernel.tobytes() == via_numpy.tobytes()

    def test_quant_mode_validates(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUANT", "fast")
        with pytest.raises(TrainingError, match="REPRO_QUANT"):
            qkernel.quant_mode()

    def test_kernel_mode_numpy_disables_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUANT", "numpy")
        assert not qkernel.kernel_in_use()

    def test_pack_weights_pads_to_lanes(self, rng):
        q = rng.integers(-127, 128, size=(10, 5)).astype(np.int8)
        packed, kp, mp = qkernel.pack_weights(q)
        assert kp % 4 == 0 and kp >= 10
        assert mp % 16 == 0 and mp >= 5
        assert packed.shape == (kp // 4, mp, 4)


# -- quantize_model and the quantized model --------------------------------


class TestQuantizeModel:
    def test_unknown_scheme_rejected(self, rng):
        with pytest.raises(TrainingError, match="scheme"):
            quantize_model(make_model(rng), scheme="int4")

    def test_unbuilt_model_rejected(self):
        with pytest.raises(TrainingError, match="build"):
            quantize_model(Sequential([Dense(4)]))

    def test_parent_model_unchanged(self, rng):
        model = make_model(rng)
        before = [p.copy() for layer in model.layers for p in layer.params]
        quantize_model(model, "int8", min_weight_elems=0)
        after = [p for layer in model.layers for p in layer.params]
        for a, b in zip(before, after):
            assert a.tobytes() == b.tobytes()

    def test_small_weights_stay_float_by_default(self, rng):
        model = make_model(rng)  # largest kernel is 16x3 << 2^15
        quantized = quantize_model(model, "int8")
        assert not any(key.endswith("_q") for key in quantized.arrays)
        x = bits(np.random.default_rng(1), 8, 12)
        assert (
            quantized.predict_proba(x).tobytes()
            == model.predict_proba(x).tobytes()
        )

    def test_min_weight_elems_zero_quantizes_matrices(self, rng):
        quantized = quantize_model(make_model(rng), "int8", min_weight_elems=0)
        assert "layer0_param0_q" in quantized.arrays
        assert quantized.arrays["layer0_param0_q"].dtype == np.int8
        assert "layer0_param1" in quantized.arrays  # bias stays float32

    def test_gate_threshold_is_two_to_fifteen(self):
        assert INT8_MIN_WEIGHT_ELEMS == 1 << 15

    def test_float16_stores_half_precision(self, rng):
        model = make_model(rng)
        quantized = quantize_model(model, "float16")
        assert all(a.dtype == np.float16 for a in quantized.arrays.values())

    def test_float16_predictions_close_to_parent(self, rng):
        model = make_model(rng)
        quantized = quantize_model(model, "float16")
        x = bits(np.random.default_rng(2), 64, 12)
        a = model.predict_proba(x)
        b = quantized.predict_proba(x)
        assert np.abs(a - b).max() < 1e-2

    def test_int8_predictions_close_to_parent(self, rng):
        model = make_model(rng)
        quantized = quantize_model(model, "int8", min_weight_elems=0)
        x = bits(np.random.default_rng(3), 64, 12)
        a = model.predict_proba(x)
        b = quantized.predict_proba(x)
        assert np.abs(a - b).max() < 0.05

    def test_conv_model_quantizes(self, rng):
        model = make_cnn(rng)
        quantized = quantize_model(model, "int8", min_weight_elems=0)
        assert "layer1_param0_q" in quantized.arrays
        x = bits(np.random.default_rng(4), 32, 16)
        a = model.predict_proba(x)
        b = quantized.predict_proba(x)
        assert np.argmax(a, axis=1).tolist() == np.argmax(b, axis=1).tolist()

    def test_quantized_layers_are_inference_only(self, rng):
        quantized = quantize_model(make_model(rng), "int8", min_weight_elems=0)
        x = bits(np.random.default_rng(5), 4, 12)
        with pytest.raises(TrainingError, match="inference-only"):
            quantized._exec.forward(x, training=True)

    def test_count_params_matches_parent(self, rng):
        model = make_model(rng)
        for scheme in ("int8", "float16"):
            quantized = quantize_model(model, scheme, min_weight_elems=0)
            assert quantized.count_params() == model.count_params()


class TestBatchInvariance:
    def test_fully_quantized_predict_is_batch_size_invariant(self, rng):
        quantized = quantize_model(make_model(rng), "int8", min_weight_elems=0)
        x = bits(np.random.default_rng(6), 40, 12)
        fused = quantized.predict_proba(x, batch_size=40)
        for batch_size in (1, 7, 16):
            chunked = quantized.predict_proba(x, batch_size=batch_size)
            assert chunked.tobytes() == fused.tobytes()

    def test_row_results_independent_of_neighbours(self, rng):
        quantized = quantize_model(make_model(rng), "int8", min_weight_elems=0)
        x = bits(np.random.default_rng(7), 10, 12)
        fused = quantized.predict_proba(x, batch_size=10)
        for i in range(10):
            single = quantized.predict_proba(x[i:i + 1], batch_size=1)
            assert single.tobytes() == fused[i:i + 1].tobytes()


# -- persistence and registry ----------------------------------------------


class TestRoundtrip:
    @pytest.mark.parametrize("scheme", ["int8", "float16"])
    def test_save_load_preserves_content_and_predictions(
        self, rng, tmp_path, scheme
    ):
        quantized = quantize_model(
            make_model(rng), scheme, min_weight_elems=0
        )
        path = str(tmp_path / "variant.npz")
        quantized.save(path)
        assert is_quantized_artifact(path)
        loaded = QuantizedSequential.load(path)
        assert loaded.scheme == scheme
        assert loaded.digest() == quantized.digest()
        assert sorted(loaded.arrays) == sorted(quantized.arrays)
        for key, array in quantized.arrays.items():
            assert loaded.arrays[key].dtype == array.dtype
            assert loaded.arrays[key].tobytes() == array.tobytes()
        x = bits(np.random.default_rng(8), 16, 12)
        assert (
            loaded.predict_proba(x).tobytes()
            == quantized.predict_proba(x).tobytes()
        )

    def test_float_artifact_rejected(self, rng, tmp_path):
        path = str(tmp_path / "float.npz")
        make_model(rng).save(path)
        assert not is_quantized_artifact(path)
        with pytest.raises(TrainingError, match="quantized"):
            QuantizedSequential.load(path)


class TestRegistry:
    def _register_parent(self, rng, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        model = make_model(rng, classes=2)
        # Train on a separable task (label = first bit) so decision
        # margins are wide, as they are for a real distinguisher —
        # the accuracy-delta criterion targets trained models, not
        # random initializations whose ties flip under any rounding.
        data_rng = np.random.default_rng(0xFEED)
        x = bits(data_rng, 512, 12)
        model.fit(x, x[:, 0].astype(int), epochs=4, batch_size=64, rng=1)
        record = registry.register(model, "toy", report=make_report())
        return registry, model, record

    def test_register_load_serve_roundtrip(self, rng, tmp_path):
        registry, model, parent = self._register_parent(rng, tmp_path)
        quantized = quantize_model(model, "int8", min_weight_elems=0)
        record = registry.register_quantized(quantized, "toy")
        assert record.name == "toy-int8"
        assert record.model_id == quantized.digest()
        assert record.manifest["quantization"]["parent_id"] == parent.model_id
        assert record.manifest["threshold"] == parent.manifest["threshold"]
        loaded, loaded_record = registry.load("toy-int8")
        assert isinstance(loaded, QuantizedSequential)
        assert loaded.digest() == quantized.digest()
        x = bits(np.random.default_rng(9), 24, 12)
        direct = quantized.predict_proba(x, batch_size=24)
        assert loaded.predict_proba(x, batch_size=24).tobytes() == direct.tobytes()
        with MicroBatchEngine(loaded) as engine:
            assert engine.classify(x).tobytes() == direct.tobytes()

    def test_register_quantized_is_idempotent(self, rng, tmp_path):
        registry, model, _parent = self._register_parent(rng, tmp_path)
        quantized = quantize_model(model, "int8", min_weight_elems=0)
        first = registry.register_quantized(quantized, "toy")
        second = registry.register_quantized(quantized, "toy")
        assert first.model_id == second.model_id
        assert first.version == second.version == 1

    def test_manifest_records_accuracy_delta(self, rng, tmp_path):
        registry, model, _parent = self._register_parent(rng, tmp_path)
        data_rng = np.random.default_rng(10)
        features = bits(data_rng, 400, 12)
        labels = model.predict_classes(features)
        quantized = quantize_model(model, "int8", min_weight_elems=0)
        record = registry.register_quantized(
            quantized, "toy", holdout=(features, labels)
        )
        section = record.manifest["quantization"]
        assert section["parent_holdout_accuracy"] == 1.0
        assert abs(section["accuracy_delta_pp"]) <= 0.5
        assert record.summary()["quantization"] == "int8"

    def test_float16_delta_is_zero_on_agreeing_labels(self, rng, tmp_path):
        registry, model, _parent = self._register_parent(rng, tmp_path)
        data_rng = np.random.default_rng(11)
        features = bits(data_rng, 200, 12)
        labels = model.predict_classes(features)
        quantized = quantize_model(model, "float16")
        record = registry.register_quantized(
            quantized, "toy", holdout=(features, labels)
        )
        assert record.manifest["quantization"]["accuracy_delta_pp"] == pytest.approx(
            0.0, abs=0.5
        )


# -- the micro-batching engine on quantized models -------------------------


class TestEngineCoalescing:
    @pytest.mark.parametrize("scheme", ["int8", "float16"])
    def test_coalesced_batch_bitwise_equals_fused_predict(self, rng, scheme):
        quantized = quantize_model(
            make_model(rng), scheme, min_weight_elems=0
        )
        data_rng = np.random.default_rng(12)
        batches = [bits(data_rng, rows, 12) for rows in (3, 1, 4, 2, 5)]
        engine = MicroBatchEngine(
            quantized, max_batch=64, max_wait_ms=5.0, autostart=False
        )
        futures = [engine.submit(batch) for batch in batches]
        engine.start()
        results = [future.result(timeout=10.0) for future in futures]
        engine.stop()
        fused = quantized.predict_proba(
            np.concatenate(batches, axis=0), batch_size=sum(b.shape[0] for b in batches)
        )
        offset = 0
        for batch, result in zip(batches, results):
            rows = batch.shape[0]
            assert result.tobytes() == fused[offset:offset + rows].tobytes()
            offset += rows
