"""Tests for Gimli-Cipher: AEAD correctness and the reduced c0 pipeline."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.gimli_cipher import (
    GimliAead,
    gimli_aead_decrypt,
    gimli_aead_encrypt,
    gimli_aead_reduced_c0_batch,
    split_round_budget,
)
from repro.errors import CipherError

KEY = bytes(range(32))
NONCE = bytes(range(100, 116))


class TestEncryptDecrypt:
    @settings(max_examples=15, deadline=None)
    @given(st.binary(max_size=80), st.binary(max_size=40))
    def test_roundtrip(self, message, ad):
        ct, tag = gimli_aead_encrypt(message, ad, NONCE, KEY)
        assert len(ct) == len(message)
        assert len(tag) == 16
        assert gimli_aead_decrypt(ct, tag, ad, NONCE, KEY) == message

    def test_empty_everything(self):
        ct, tag = gimli_aead_encrypt(b"", b"", NONCE, KEY)
        assert ct == b""
        assert gimli_aead_decrypt(b"", tag, b"", NONCE, KEY) == b""

    def test_block_boundaries(self):
        for n in (15, 16, 17, 32, 33):
            msg = bytes(range(n % 256)) * 1 if n < 256 else b""
            msg = (b"x" * n)
            ct, tag = gimli_aead_encrypt(msg, b"", NONCE, KEY)
            assert gimli_aead_decrypt(ct, tag, b"", NONCE, KEY) == msg

    def test_bad_tag_rejected(self):
        ct, tag = gimli_aead_encrypt(b"secret", b"", NONCE, KEY)
        bad = bytes([tag[0] ^ 1]) + tag[1:]
        assert gimli_aead_decrypt(ct, bad, b"", NONCE, KEY) is None

    def test_wrong_ad_rejected(self):
        ct, tag = gimli_aead_encrypt(b"secret", b"ad", NONCE, KEY)
        assert gimli_aead_decrypt(ct, tag, b"da", NONCE, KEY) is None

    def test_wrong_nonce_rejected(self):
        ct, tag = gimli_aead_encrypt(b"secret", b"", NONCE, KEY)
        other = bytes(16)
        assert gimli_aead_decrypt(ct, tag, b"", other, KEY) is None

    def test_tampered_ciphertext_rejected(self):
        ct, tag = gimli_aead_encrypt(b"secret msg here!", b"", NONCE, KEY)
        bad = bytes([ct[0] ^ 1]) + ct[1:]
        assert gimli_aead_decrypt(bad, tag, b"", NONCE, KEY) is None

    def test_key_size_validated(self):
        with pytest.raises(CipherError):
            gimli_aead_encrypt(b"", b"", NONCE, b"short")

    def test_nonce_size_validated(self):
        with pytest.raises(CipherError):
            gimli_aead_encrypt(b"", b"", b"short", KEY)

    def test_nonce_matters(self):
        ct1, _ = gimli_aead_encrypt(b"same message", b"", NONCE, KEY)
        ct2, _ = gimli_aead_encrypt(b"same message", b"", bytes(16), KEY)
        assert ct1 != ct2


class TestGimliAeadClass:
    def test_roundtrip(self):
        aead = GimliAead(KEY)
        ct, tag = aead.encrypt(b"hello", NONCE, b"ad")
        assert aead.decrypt(ct, tag, NONCE, b"ad") == b"hello"

    def test_reduced_rounds_differ(self):
        full = GimliAead(KEY, rounds=24).encrypt(b"msg", NONCE)[0]
        reduced = GimliAead(KEY, rounds=8).encrypt(b"msg", NONCE)[0]
        assert full != reduced

    def test_invalid_construction(self):
        with pytest.raises(CipherError):
            GimliAead(b"short")
        with pytest.raises(CipherError):
            GimliAead(KEY, rounds=99)


class TestSplitRoundBudget:
    @pytest.mark.parametrize(
        "total,expected", [(0, (0, 0)), (1, (1, 0)), (7, (4, 3)), (8, (4, 4)),
                           (48, (24, 24))]
    )
    def test_split(self, total, expected):
        assert split_round_budget(total) == expected

    def test_negative_raises(self):
        with pytest.raises(CipherError):
            split_round_budget(-1)


class TestReducedC0Pipeline:
    def test_full_rounds_match_reference(self):
        """With 48 total rounds (24 + 24) the pipeline equals the real
        AEAD's first ciphertext block for empty AD and zero m0."""
        nonces = np.frombuffer(NONCE, dtype="<u4").astype(np.uint32)[None, :]
        keys = np.frombuffer(KEY, dtype="<u4").astype(np.uint32)[None, :]
        c0 = gimli_aead_reduced_c0_batch(nonces, keys, 48)
        ct, _ = gimli_aead_encrypt(bytes(16), b"", NONCE, KEY, rounds=24)
        got = b"".join(struct.pack("<I", int(w)) for w in c0[0])
        assert got == ct[:16]

    def test_batched_rows_independent(self, rng):
        nonces = rng.integers(0, 2**32, size=(6, 4), dtype=np.uint64).astype(
            np.uint32
        )
        keys = rng.integers(0, 2**32, size=(6, 8), dtype=np.uint64).astype(
            np.uint32
        )
        full = gimli_aead_reduced_c0_batch(nonces, keys, 8)
        for i in range(6):
            row = gimli_aead_reduced_c0_batch(nonces[i:i + 1], keys[i:i + 1], 8)
            assert (full[i] == row[0]).all()

    def test_round_budget_matters(self, rng):
        nonces = rng.integers(0, 2**32, size=(4, 4), dtype=np.uint64).astype(
            np.uint32
        )
        keys = rng.integers(0, 2**32, size=(4, 8), dtype=np.uint64).astype(
            np.uint32
        )
        a = gimli_aead_reduced_c0_batch(nonces, keys, 6)
        b = gimli_aead_reduced_c0_batch(nonces, keys, 8)
        assert (a != b).any()

    def test_shape_validation(self):
        with pytest.raises(CipherError):
            gimli_aead_reduced_c0_batch(
                np.zeros((2, 3), dtype=np.uint32),
                np.zeros((2, 8), dtype=np.uint32),
                8,
            )
        with pytest.raises(CipherError):
            gimli_aead_reduced_c0_batch(
                np.zeros((2, 4), dtype=np.uint32),
                np.zeros((3, 8), dtype=np.uint32),
                8,
            )
