"""Tests for the content-addressed model registry."""

import json

import numpy as np
import pytest

from repro import GimliHashScenario
from repro.errors import RegistryError
from repro.nn import Dense, ReLU, Sequential, Softmax
from repro.serve import ModelRegistry, model_digest


def make_model(rng, widths=(8, 4)):
    model = Sequential([Dense(widths[0]), ReLU(), Dense(widths[1]), Softmax()])
    return model.build((6,), rng).compile()


def make_report(accuracy=0.8, t=2):
    return {
        "validation_accuracy": accuracy,
        "training_accuracy": accuracy + 0.02,
        "num_samples": 1000,
        "num_classes": t,
    }


class TestDigest:
    def test_digest_is_stable(self, rng_factory):
        a = make_model(rng_factory(1))
        b = make_model(rng_factory(1))
        assert model_digest(a) == model_digest(b)

    def test_digest_sees_weights(self, rng_factory):
        a = make_model(rng_factory(1))
        b = make_model(rng_factory(2))
        assert model_digest(a) != model_digest(b)

    def test_unbuilt_model_rejected(self):
        with pytest.raises(RegistryError):
            model_digest(Sequential([Dense(4)]))


class TestRegistration:
    def test_register_writes_weights_and_manifest(self, rng, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        record = registry.register(
            make_model(rng), "m", report=make_report()
        )
        manifest = json.loads(open(record.manifest_path).read())
        assert manifest["model_id"] == record.model_id
        assert manifest["training"]["validation_accuracy"] == 0.8
        # The paper's decision threshold (a + 1/t) / 2.
        assert record.threshold == pytest.approx((0.8 + 0.5) / 2)
        model, loaded_record = registry.load(record.model_id)
        assert loaded_record.model_id == record.model_id

    def test_register_is_idempotent(self, rng, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        model = make_model(rng)
        first = registry.register(model, "m")
        second = registry.register(model, "m")
        assert first.model_id == second.model_id
        assert second.version == 1
        assert len(registry.list()) == 1

    def test_versions_count_up_per_name(self, rng_factory, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        v1 = registry.register(make_model(rng_factory(1)), "m")
        v2 = registry.register(make_model(rng_factory(2)), "m")
        other = registry.register(make_model(rng_factory(3)), "other")
        assert (v1.version, v2.version, other.version) == (1, 2, 1)
        assert registry.latest("m").model_id == v2.model_id

    def test_scenario_manifest_fields(self, rng, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        scenario = GimliHashScenario(rounds=5)
        record = registry.register(make_model(rng), "m", scenario=scenario)
        facts = record.manifest["scenario"]
        assert facts["class"] == "GimliHashScenario"
        assert facts["num_classes"] == 2
        assert facts["feature_bits"] == 128
        masks = np.asarray(facts["input_differences"])
        assert np.array_equal(masks, scenario.difference_masks)

    def test_untrained_manifest_has_no_threshold(self, rng, tmp_path):
        record = ModelRegistry(str(tmp_path)).register(make_model(rng), "m")
        assert record.threshold is None
        assert record.manifest["training"] is None

    def test_invalid_name_rejected(self, rng, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        for name in ("", "a/b", " padded "):
            with pytest.raises(RegistryError):
                registry.register(make_model(rng), name)

    def test_bad_report_dict_rejected(self, rng, tmp_path):
        with pytest.raises(RegistryError, match="validation_accuracy"):
            ModelRegistry(str(tmp_path)).register(
                make_model(rng), "m", report={"num_classes": 2}
            )


class TestLookup:
    def test_get_unknown_id(self, tmp_path):
        with pytest.raises(RegistryError, match="no model"):
            ModelRegistry(str(tmp_path)).get("deadbeef")

    def test_latest_unknown_name(self, tmp_path):
        with pytest.raises(RegistryError, match="no model registered"):
            ModelRegistry(str(tmp_path)).latest("ghost")

    def test_resolve_prefers_exact_id(self, rng_factory, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        v1 = registry.register(make_model(rng_factory(1)), "m")
        registry.register(make_model(rng_factory(2)), "m")
        assert registry.resolve(v1.model_id).model_id == v1.model_id

    def test_pin_overrides_latest(self, rng_factory, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        v1 = registry.register(make_model(rng_factory(1)), "m")
        v2 = registry.register(make_model(rng_factory(2)), "m")
        assert registry.resolve("m").model_id == v2.model_id
        registry.pin("m", v1.model_id)
        assert registry.resolve("m").model_id == v1.model_id
        registry.unpin("m")
        assert registry.resolve("m").model_id == v2.model_id

    def test_pin_unknown_model_rejected(self, rng, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        registry.register(make_model(rng), "m")
        with pytest.raises(RegistryError):
            registry.pin("m", "not-an-id")
        with pytest.raises(RegistryError):
            registry.unpin("never-pinned")


class TestLoadedModel:
    def test_loaded_model_predicts_bit_identically(self, rng, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        model = make_model(rng)
        record = registry.register(model, "m")
        loaded, _ = registry.load(record.model_id)
        x = np.random.default_rng(3).random((32, 6))
        assert np.array_equal(model.predict(x), loaded.predict(x))

    def test_loaded_model_is_compiled(self, rng, tmp_path):
        registry = ModelRegistry(str(tmp_path))
        record = registry.register(make_model(rng), "m")
        loaded, _ = registry.load(record.model_id)
        x = np.random.default_rng(3).random((16, 6))
        y = np.zeros(16, dtype=np.int64)
        loss, metrics = loaded.evaluate(x, y)  # would raise if uncompiled
        assert "accuracy" in metrics
