"""Tests for ToySpeck: batch parity, kernel exactness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.toyspeck import (
    FULL_ROUNDS,
    ToySpeck,
    encrypt_batch,
    encrypt_block,
    expand_key,
    round_difference_kernel,
)
from repro.errors import CipherError, ShapeError

byte = st.integers(0, 255)


class TestScalar:
    def test_deterministic(self):
        assert encrypt_block((1, 2), (3, 4, 5, 6)) == encrypt_block(
            (1, 2), (3, 4, 5, 6)
        )

    def test_key_matters(self):
        assert encrypt_block((1, 2), (3, 4, 5, 6)) != encrypt_block(
            (1, 2), (3, 4, 5, 7)
        )

    def test_rounds_matter(self):
        assert encrypt_block((1, 2), (3, 4, 5, 6), 2) != encrypt_block(
            (1, 2), (3, 4, 5, 6), 3
        )

    def test_wrong_key_size(self):
        with pytest.raises(CipherError):
            expand_key((1, 2), 4)


class TestBatchParity:
    @settings(max_examples=20, deadline=None)
    @given(byte, byte, st.tuples(byte, byte, byte, byte), st.integers(1, FULL_ROUNDS))
    def test_batch_matches_scalar(self, x, y, key, rounds):
        batch = encrypt_batch(
            np.array([[x, y]], dtype=np.uint8),
            np.array([key], dtype=np.uint8),
            rounds,
        )
        assert encrypt_block((x, y), key, rounds) == (
            int(batch[0, 0]),
            int(batch[0, 1]),
        )

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            encrypt_batch(
                np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8)
            )


class TestBijectivity:
    def test_permutation_over_full_domain(self):
        """For a fixed key the 16-bit block map is a bijection."""
        values = np.arange(1 << 16, dtype=np.uint32)
        pts = np.stack(
            [(values >> 8).astype(np.uint8), (values & 0xFF).astype(np.uint8)],
            axis=1,
        )
        keys = np.tile(np.array([7, 11, 13, 17], dtype=np.uint8), (1 << 16, 1))
        ct = encrypt_batch(pts, keys, 6)
        out = (ct[:, 0].astype(np.uint32) << 8) | ct[:, 1]
        assert len(np.unique(out)) == 1 << 16


class TestDifferenceKernel:
    def test_is_distribution(self):
        kernel = round_difference_kernel(0x0001)
        assert kernel.shape == (1 << 16,)
        assert abs(kernel.sum() - 1.0) < 1e-12
        assert (kernel >= 0).all()

    def test_zero_diff_is_fixed_point(self):
        kernel = round_difference_kernel(0)
        assert kernel[0] == 1.0

    def test_matches_empirical(self, rng):
        """The exact kernel must agree with sampled single-round
        difference propagation under random keys."""
        delta = 0x0340
        kernel = round_difference_kernel(delta)
        n = 1 << 14
        pts = rng.integers(0, 256, size=(n, 2), dtype=np.uint8)
        keys = rng.integers(0, 256, size=(n, 4), dtype=np.uint8)
        partner = pts.copy()
        partner[:, 0] ^= (delta >> 8) & 0xFF
        partner[:, 1] ^= delta & 0xFF
        a = encrypt_batch(pts, keys, 1)
        b = encrypt_batch(partner, keys, 1)
        observed = (
            (a[:, 0].astype(np.int64) ^ b[:, 0]) << 8
        ) | (a[:, 1].astype(np.int64) ^ b[:, 1])
        # Every observed difference must have non-zero exact probability.
        assert (kernel[observed] > 0).all()
        # The most likely exact difference should appear among samples.
        top = int(kernel.argmax())
        assert (observed == top).any()

    def test_invalid_delta(self):
        with pytest.raises(CipherError):
            round_difference_kernel(1 << 16)


class TestToySpeckClass:
    def test_class_encrypt(self, rng):
        cipher = ToySpeck(rounds=3)
        pts = rng.integers(0, 256, size=(5, 2), dtype=np.uint8)
        keys = rng.integers(0, 256, size=(5, 4), dtype=np.uint8)
        assert (cipher.encrypt(pts, keys) == encrypt_batch(pts, keys, 3)).all()

    def test_too_many_rounds(self):
        with pytest.raises(CipherError):
            ToySpeck(rounds=FULL_ROUNDS + 1)
