"""Deterministic aggregation of per-process telemetry into run files.

The flush protocol (:mod:`repro.obs.context`) leaves a run directory
holding one span JSONL and one metrics dump per process that produced
telemetry::

    <run_dir>/obs/main-<pid>.spans.jsonl
    <run_dir>/obs/worker-<pid>.spans.jsonl
    <run_dir>/obs/{main,worker}-<pid>.metrics.json

:func:`merge_run` collates them into two run-level artefacts:

* ``trace_merged.json`` — one Chrome-trace file whose events carry the
  *writing* process's pid (so Perfetto renders the parent and every
  worker as separate process tracks), plus ``process_name`` metadata
  events naming each track ``main-<pid>`` / ``worker-<pid>``;
* ``metrics_merged.prom`` — one Prometheus text exposition aggregating
  every process's registry dump: counters sum, gauges take the maximum
  (a per-process "current value" has no meaningful cross-process sum),
  histograms sum counts, sums and per-bucket tallies.

Both writers are **deterministic**: events sort by ``(start, pid, tid,
name, args)``, series by ``(name, labels)``, JSON keys are sorted, and
no timestamp or environment detail is embedded — merging the same
sink files twice produces byte-identical output, which is what the
merge tests pin.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.obs.context import obs_dir
from repro.obs.metrics import _format_labels, _format_number, _NAME_RE

#: Merged artefact names, written at the run-dir root.
TRACE_MERGED = "trace_merged.json"
METRICS_MERGED = "metrics_merged.prom"


def atomic_write_text(path, text: str) -> None:
    """Same-directory temp file + ``os.replace`` (readers never see a
    truncated file).  Local copy: :mod:`repro.jobs` imports the obs
    layer, so the obs layer cannot import it back."""
    path = Path(path)
    handle, tmp = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# -- reading the per-process sinks ------------------------------------------


def read_span_files(run_dir) -> List[dict]:
    """Every span record flushed under ``run_dir``, file order stable.

    Tolerant of a torn final line (a worker killed mid-append): lines
    that fail to parse are skipped, everything before them is kept.
    """
    records: List[dict] = []
    sink = obs_dir(run_dir)
    if not sink.is_dir():
        return records
    for path in sorted(sink.glob("*.spans.jsonl")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def read_metric_dumps(run_dir) -> List[dict]:
    """Every per-process registry dump under ``run_dir``, path order."""
    dumps: List[dict] = []
    sink = obs_dir(run_dir)
    if not sink.is_dir():
        return dumps
    for path in sorted(sink.glob("*.metrics.json")):
        try:
            dump = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(dump, dict) and isinstance(dump.get("series"), list):
            dumps.append(dump)
    return dumps


# -- Chrome-trace merge -----------------------------------------------------


def _event_sort_key(event: dict):
    return (
        event.get("ts", 0.0),
        event.get("pid", 0),
        event.get("tid", 0),
        event.get("name", ""),
        json.dumps(event.get("args", {}), sort_keys=True, default=str),
    )


def merged_chrome_trace(spans: List[dict]) -> Dict:
    """Span records (from any number of processes) as one Chrome trace."""
    processes: Dict[int, str] = {}
    events: List[dict] = []
    for record in spans:
        pid = int(record.get("pid", 0))
        role = str(record.get("role", "main"))
        processes.setdefault(pid, f"{role}-{pid}")
        args = dict(record.get("attrs", {}))
        if "error" in record:
            args["error"] = record["error"]
        events.append(
            {
                "name": record.get("name", "?"),
                "cat": "repro",
                "ph": "X",
                "ts": record.get("start_us", 0.0),
                "dur": record.get("dur_us", 0.0),
                "pid": pid,
                "tid": record.get("thread", 0),
                "args": args,
            }
        )
    events.sort(key=_event_sort_key)
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": label},
        }
        for pid, label in sorted(processes.items())
    ]
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def merge_chrome_trace(run_dir, out_path=None) -> Tuple[Path, Dict]:
    """Write ``trace_merged.json`` for ``run_dir``; returns (path, trace)."""
    run_dir = Path(run_dir)
    trace = merged_chrome_trace(read_span_files(run_dir))
    path = Path(out_path) if out_path is not None else run_dir / TRACE_MERGED
    atomic_write_text(path, json.dumps(trace, sort_keys=True) + "\n")
    return path, trace


# -- metrics merge ----------------------------------------------------------


def _merge_series(dumps: List[dict]) -> List[dict]:
    """Aggregate per-process series dumps into one sorted series list."""
    merged: Dict[Tuple[str, tuple], dict] = {}
    for dump in dumps:
        for entry in dump.get("series", []):
            name = entry.get("name")
            kind = entry.get("kind")
            labels = entry.get("labels") or {}
            key = (name, tuple(sorted(labels.items())))
            slot = merged.get(key)
            if slot is None:
                slot = merged[key] = {
                    "name": name,
                    "kind": kind,
                    "labels": dict(labels),
                    "value": 0.0,
                    "max": 0.0,
                    "count": 0,
                    "sum": 0.0,
                    "buckets": {},
                }
            if slot["kind"] != kind:
                raise ReproError(
                    f"metric {name!r} dumped as both {slot['kind']} and "
                    f"{kind}; refusing to merge"
                )
            if kind == "counter":
                slot["value"] += float(entry.get("value", 0.0))
            elif kind == "gauge":
                slot["value"] = max(slot["value"], float(entry.get("value", 0.0)))
                slot["max"] = max(slot["max"], float(entry.get("max", 0.0)))
            else:
                slot["count"] += int(entry.get("count", 0))
                slot["sum"] += float(entry.get("sum", 0.0))
                for upper, count in (entry.get("buckets") or {}).items():
                    slot["buckets"][upper] = (
                        slot["buckets"].get(upper, 0) + int(count)
                    )
    return [
        merged[key]
        for key in sorted(merged, key=lambda k: (k[0], k[1]))
    ]


def render_prometheus(series: List[dict]) -> str:
    """Merged series as Prometheus text exposition 0.0.4 (deterministic)."""
    lines: List[str] = []
    seen_types = set()
    for entry in series:
        name = _NAME_RE.sub("_", entry["name"])
        labels = tuple(sorted(
            (str(k), str(v)) for k, v in entry["labels"].items()
        ))
        if entry["name"] not in seen_types:
            seen_types.add(entry["name"])
            lines.append(f"# TYPE {name} {entry['kind']}")
        if entry["kind"] in ("counter", "gauge"):
            lines.append(
                f"{name}{_format_labels(labels)} "
                f"{_format_number(entry['value'])}"
            )
        else:
            cumulative = 0
            for upper, count in sorted(
                entry["buckets"].items(), key=lambda item: float(item[0])
            ):
                cumulative += count
                bucket_labels = labels + (("le", upper),)
                lines.append(
                    f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                )
            inf_labels = labels + (("le", "+Inf"),)
            lines.append(
                f"{name}_bucket{_format_labels(inf_labels)} {entry['count']}"
            )
            lines.append(
                f"{name}_sum{_format_labels(labels)} "
                f"{_format_number(entry['sum'])}"
            )
            lines.append(
                f"{name}_count{_format_labels(labels)} {entry['count']}"
            )
    return "\n".join(lines) + "\n"


def merge_metrics(run_dir, out_path=None) -> Tuple[Path, List[dict]]:
    """Write ``metrics_merged.prom`` for ``run_dir``; returns (path, series)."""
    run_dir = Path(run_dir)
    series = _merge_series(read_metric_dumps(run_dir))
    path = Path(out_path) if out_path is not None else run_dir / METRICS_MERGED
    atomic_write_text(path, render_prometheus(series))
    return path, series


def merge_run(run_dir) -> Dict:
    """Merge every per-process sink under ``run_dir`` into run artefacts.

    Returns a summary dict: artefact paths, span/series totals, and the
    set of contributing process labels (``main-<pid>``/``worker-<pid>``)
    — handy for asserting that worker spans actually crossed the
    process boundary.
    """
    run_dir = Path(run_dir)
    spans = read_span_files(run_dir)
    trace = merged_chrome_trace(spans)
    trace_path = run_dir / TRACE_MERGED
    atomic_write_text(trace_path, json.dumps(trace, sort_keys=True) + "\n")
    metrics_path, series = merge_metrics(run_dir)
    processes = sorted(
        {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event.get("ph") == "M" and event.get("name") == "process_name"
        }
    )
    return {
        "trace_path": trace_path,
        "metrics_path": metrics_path,
        "spans": len(spans),
        "series": len(series),
        "processes": processes,
    }
