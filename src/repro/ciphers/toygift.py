"""The two-S-box toy cipher of the paper's Figure 1 (§2.1).

The paper illustrates why unkeyed (sub-key-free) iterated ciphers are
not Markov with a 2-round, 8-bit toy built from two GIFT S-boxes per
round and a bit-permutation wiring between rounds.  For the
characteristic

    ``ΔY1 = (2, 3) → ΔW1 = (5, 8) → ΔY2 = (6, 2) → ΔW2 = (2, 5)``

the Markov-assumption product (paper Eq. 2) gives probability ``2^-9``,
while exhaustive enumeration gives the true probability ``2^-6`` — the
round-1 output *values* are correlated with the round-2 transition.

The figure does not print the exact wiring, so :func:`find_wiring`
searches the (small) space of bit permutations consistent with the
quoted characteristic and probabilities; the first solution is cached as
the default.  All quoted numbers are re-derived, not hardcoded.

State convention: an 8-bit integer ``(upper << 4) | lower`` where
*upper* is the first S-box of the figure.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

from repro.ciphers.gift import GIFT_SBOX
from repro.errors import CipherError, SearchError

#: The characteristic quoted in §2.1, as (upper, lower) nibble pairs.
PAPER_TRAIL = {
    "delta_y1": (2, 3),
    "delta_w1": (5, 8),
    "delta_y2": (6, 2),
    "delta_w2": (2, 5),
}


def nibbles_to_byte(pair: Sequence[int]) -> int:
    """Pack an ``(upper, lower)`` nibble pair into a byte."""
    upper, lower = pair
    return ((int(upper) & 0xF) << 4) | (int(lower) & 0xF)


def byte_to_nibbles(value: int) -> Tuple[int, int]:
    """Split a byte into its ``(upper, lower)`` nibble pair."""
    return (int(value) >> 4) & 0xF, int(value) & 0xF


def sbox_layer(state: int) -> int:
    """Apply the GIFT S-box to both nibbles of the 8-bit state."""
    upper, lower = byte_to_nibbles(state)
    return nibbles_to_byte((GIFT_SBOX[upper], GIFT_SBOX[lower]))


def apply_wiring(state: int, wiring: Sequence[int]) -> int:
    """Move bit ``i`` of ``state`` to position ``wiring[i]``."""
    out = 0
    for i in range(8):
        out |= ((state >> i) & 1) << wiring[i]
    return out


class ToyGift:
    """The unkeyed 2-round toy cipher: S-layer, wiring, S-layer.

    No sub-keys enter between rounds — precisely the property that
    breaks the Markov assumption.
    """

    def __init__(self, wiring: Optional[Sequence[int]] = None):
        if wiring is None:
            wiring = default_wiring()
        wiring = tuple(int(w) for w in wiring)
        if sorted(wiring) != list(range(8)):
            raise CipherError(f"wiring must be a permutation of 0..7, got {wiring}")
        self.wiring = wiring

    def encrypt(self, plaintext: int) -> int:
        """Run the two unkeyed rounds on an 8-bit value."""
        if not 0 <= plaintext < 256:
            raise CipherError(f"state must be an 8-bit value, got {plaintext}")
        w1 = sbox_layer(plaintext)
        y2 = apply_wiring(w1, self.wiring)
        return sbox_layer(y2)

    def round1(self, plaintext: int) -> int:
        """First S-box layer only (the ``W1`` tap of Figure 1)."""
        return sbox_layer(plaintext)

    def characteristic_probability_exact(self) -> float:
        """Exact probability of the paper's characteristic by enumeration.

        Counts inputs ``Y1`` for which *all four* intermediate
        differences of :data:`PAPER_TRAIL` hold simultaneously.
        """
        dy1 = nibbles_to_byte(PAPER_TRAIL["delta_y1"])
        dw1 = nibbles_to_byte(PAPER_TRAIL["delta_w1"])
        dy2 = nibbles_to_byte(PAPER_TRAIL["delta_y2"])
        dw2 = nibbles_to_byte(PAPER_TRAIL["delta_w2"])
        count = 0
        for y1 in range(256):
            w1 = sbox_layer(y1)
            w1_pair = sbox_layer(y1 ^ dy1)
            if w1 ^ w1_pair != dw1:
                continue
            y2 = apply_wiring(w1, self.wiring)
            y2_pair = apply_wiring(w1_pair, self.wiring)
            if y2 ^ y2_pair != dy2:
                continue
            if sbox_layer(y2) ^ sbox_layer(y2_pair) == dw2:
                count += 1
        return count / 256.0

    def characteristic_probability_markov(self) -> float:
        """The (wrong) Markov-assumption product for the same characteristic.

        Multiplies the per-S-box DDT probabilities of both rounds, as
        Eq. 2 of the paper would.
        """
        prob = 1.0
        transitions = [
            (PAPER_TRAIL["delta_y1"], PAPER_TRAIL["delta_w1"]),
            (PAPER_TRAIL["delta_y2"], PAPER_TRAIL["delta_w2"]),
        ]
        for (din, dout) in transitions:
            for a, b in zip(din, dout):
                prob *= _sbox_ddt_probability(a, b)
        return prob


def _sbox_ddt_probability(delta_in: int, delta_out: int) -> float:
    count = sum(
        1 for x in range(16) if GIFT_SBOX[x] ^ GIFT_SBOX[x ^ delta_in] == delta_out
    )
    return count / 16.0


_WIRING_CACHE: Optional[Tuple[int, ...]] = None


def find_wiring() -> Tuple[int, ...]:
    """Search for a wiring consistent with the paper's Figure 1 numbers.

    Constraints:

    * the wiring maps ``ΔW1 = (5, 8)`` to ``ΔY2 = (6, 2)`` (linearity
      makes this a support-set condition on bit positions);
    * the exact characteristic probability is ``2^-6`` while the Markov
      product is ``2^-9``.

    Only the images of the three active bit positions interact with the
    probability computation (inactive bits may be wired arbitrarily), so
    the search enumerates assignments of active positions first and
    completes the permutation canonically.
    """
    dw1 = nibbles_to_byte(PAPER_TRAIL["delta_w1"])
    dy2 = nibbles_to_byte(PAPER_TRAIL["delta_y2"])
    src_bits = [i for i in range(8) if (dw1 >> i) & 1]
    dst_bits = [i for i in range(8) if (dy2 >> i) & 1]
    if len(src_bits) != len(dst_bits):
        raise SearchError(
            "active-bit counts of ΔW1 and ΔY2 differ; no linear wiring exists"
        )
    other_src = [i for i in range(8) if i not in src_bits]
    other_dst = [i for i in range(8) if i not in dst_bits]
    for active_image in itertools.permutations(dst_bits):
        for passive_image in itertools.permutations(other_dst):
            wiring = [0] * 8
            for s, d in zip(src_bits, active_image):
                wiring[s] = d
            for s, d in zip(other_src, passive_image):
                wiring[s] = d
            toy = ToyGift(wiring)
            if (
                abs(toy.characteristic_probability_exact() - 2.0**-6) < 1e-12
                and abs(toy.characteristic_probability_markov() - 2.0**-9) < 1e-12
            ):
                return tuple(wiring)
    raise SearchError("no wiring reproduces the paper's Figure 1 probabilities")


def default_wiring() -> Tuple[int, ...]:
    """The cached first solution of :func:`find_wiring`."""
    global _WIRING_CACHE
    if _WIRING_CACHE is None:
        _WIRING_CACHE = find_wiring()
    return _WIRING_CACHE
