"""Tests for the Sequential model: training, evaluation, persistence."""

import os

import numpy as np
import pytest

from repro.errors import LayerError, TrainingError
from repro.nn import (
    LSTM,
    Conv1D,
    Dense,
    Dropout,
    EarlyStopping,
    Flatten,
    ReLU,
    Sequential,
    Softmax,
    load_model,
)
from repro.nn.model import _layer_class


def make_blob_data(rng, n=400):
    """Two separable Gaussian blobs in 4 dimensions."""
    x0 = rng.normal(loc=-2.0, size=(n // 2, 4))
    x1 = rng.normal(loc=+2.0, size=(n // 2, 4))
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n // 2, dtype=int), np.ones(n // 2, dtype=int)])
    order = rng.permutation(n)
    return x[order], y[order]


def make_model():
    return Sequential([Dense(16), ReLU(), Dense(2), Softmax()])


class TestBuildAndParams:
    def test_build_assigns_shapes(self, rng):
        model = make_model().build((4,), rng)
        assert model.count_params() == (4 * 16 + 16) + (16 * 2 + 2)

    def test_summary_mentions_layers(self, rng):
        summary = make_model().build((4,), rng).summary()
        assert "Dense" in summary and "Total params" in summary

    def test_empty_model_rejected(self):
        with pytest.raises(TrainingError):
            Sequential().build((4,))

    def test_add_after_build_rejected(self, rng):
        model = make_model().build((4,), rng)
        with pytest.raises(TrainingError):
            model.add(Dense(3))

    def test_count_before_build_rejected(self):
        with pytest.raises(TrainingError):
            make_model().count_params()


class TestTraining:
    def test_learns_separable_blobs(self, rng):
        x, y = make_blob_data(rng)
        model = make_model().build((4,), rng).compile()
        model.fit(x, y, epochs=10, batch_size=32, rng=rng)
        _, metrics = model.evaluate(x, y)
        assert metrics["accuracy"] > 0.95

    def test_loss_decreases(self, rng):
        x, y = make_blob_data(rng)
        model = make_model().build((4,), rng).compile()
        history = model.fit(x, y, epochs=8, batch_size=32, rng=rng)
        assert history["loss"][-1] < history["loss"][0]

    def test_history_keys(self, rng):
        x, y = make_blob_data(rng, n=64)
        model = make_model().build((4,), rng).compile()
        history = model.fit(x, y, epochs=2, rng=rng, validation_split=0.25)
        for key in ("loss", "accuracy", "val_loss", "val_accuracy", "time"):
            assert key in history

    def test_validation_data(self, rng):
        x, y = make_blob_data(rng, n=128)
        model = make_model().build((4,), rng).compile()
        history = model.fit(
            x[:96], y[:96], epochs=2, validation_data=(x[96:], y[96:]), rng=rng
        )
        assert "val_accuracy" in history

    def test_both_validation_specs_rejected(self, rng):
        x, y = make_blob_data(rng, n=64)
        model = make_model().build((4,), rng).compile()
        with pytest.raises(TrainingError):
            model.fit(
                x, y, validation_split=0.5, validation_data=(x, y), rng=rng
            )

    def test_fit_before_compile_rejected(self, rng):
        x, y = make_blob_data(rng, n=32)
        with pytest.raises(TrainingError):
            make_model().build((4,), rng).fit(x, y)

    def test_onehot_targets_accepted(self, rng):
        x, y = make_blob_data(rng, n=64)
        onehot = np.eye(2)[y]
        model = make_model().build((4,), rng).compile()
        model.fit(x, onehot, epochs=1, rng=rng)

    def test_mismatched_sample_counts(self, rng):
        model = make_model().build((4,), rng).compile()
        with pytest.raises(TrainingError):
            model.fit(np.zeros((4, 4)), np.zeros(5, dtype=int), rng=rng)

    def test_early_stopping(self, rng):
        x, y = make_blob_data(rng)
        model = make_model().build((4,), rng).compile()
        stopper = EarlyStopping(monitor="loss", patience=0, min_delta=10.0)
        history = model.fit(x, y, epochs=20, rng=rng, callbacks=[stopper])
        # min_delta=10 means "never improves" -> stops after epoch 2.
        assert len(history.epochs) == 2

    def test_deterministic_given_seed(self, rng_factory):
        results = []
        for _ in range(2):
            gen = rng_factory(11)
            x, y = make_blob_data(gen, n=64)
            model = make_model().build((4,), rng_factory(5)).compile()
            model.fit(x, y, epochs=2, rng=rng_factory(6))
            results.append(model.predict(x))
        assert np.allclose(results[0], results[1])

    def test_invalid_epochs_and_batch(self, rng):
        x, y = make_blob_data(rng, n=16)
        model = make_model().build((4,), rng).compile()
        with pytest.raises(TrainingError):
            model.fit(x, y, epochs=0, rng=rng)
        with pytest.raises(TrainingError):
            model.fit(x, y, batch_size=0, rng=rng)


class TestInference:
    def test_predict_batched_consistent(self, rng):
        x, y = make_blob_data(rng, n=64)
        model = make_model().build((4,), rng).compile()
        model.fit(x, y, epochs=1, rng=rng)
        assert np.allclose(model.predict(x, batch_size=7), model.predict(x))

    def test_predict_classes(self, rng):
        x, _ = make_blob_data(rng, n=32)
        model = make_model().build((4,), rng).compile()
        classes = model.predict_classes(x)
        assert set(classes).issubset({0, 1})

    def test_evaluate_before_compile(self, rng):
        x, y = make_blob_data(rng, n=16)
        with pytest.raises(TrainingError):
            make_model().build((4,), rng).evaluate(x, y)


class TestPredictProba:
    def test_softmax_model_proba_is_predict(self, rng):
        x, _ = make_blob_data(rng, n=32)
        model = make_model().build((4,), rng).compile()
        assert np.array_equal(model.predict_proba(x), model.predict(x))

    def test_non_softmax_model_gets_normalised(self, rng):
        x, _ = make_blob_data(rng, n=32)
        model = Sequential([Dense(8), ReLU(), Dense(3)]).build((4,), rng)
        proba = model.predict_proba(x)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()
        # Softmax is monotone, so class decisions match the raw argmax.
        assert np.array_equal(
            proba.argmax(axis=1), model.predict(x).argmax(axis=1)
        )

    def test_non_2d_output_rejected(self, rng):
        model = Sequential([Conv1D(3, 2)]).build((8, 2), rng)
        with pytest.raises(TrainingError, match="classes"):
            model.predict_proba(np.zeros((4, 8, 2)))

    def test_predict_classes_tie_breaks_to_lowest_index(self):
        """Exact probability ties resolve to the smallest class index."""
        model = Sequential([Softmax()]).build((3,))
        x = np.zeros((5, 3))  # uniform softmax: a three-way tie per row
        assert np.array_equal(model.predict_classes(x), np.zeros(5, dtype=int))


class TestPersistence:
    def test_save_load_roundtrip(self, rng, tmp_path):
        x, y = make_blob_data(rng, n=64)
        model = make_model().build((4,), rng).compile()
        model.fit(x, y, epochs=1, rng=rng)
        path = os.path.join(tmp_path, "model.npz")
        model.save(path)
        loaded = load_model(path)
        assert np.allclose(model.predict(x), loaded.predict(x))
        assert loaded.count_params() == model.count_params()

    def test_save_before_build_rejected(self, tmp_path):
        with pytest.raises(TrainingError):
            make_model().save(os.path.join(tmp_path, "m.npz"))

    def test_unknown_layer_class(self):
        with pytest.raises(LayerError):
            _layer_class("NotALayer")


#: Every persistable layer family: (stack factory, input shape).
_ROUNDTRIP_STACKS = {
    "dense": (lambda: [Dense(16), ReLU(), Dense(2), Softmax()], (10,)),
    "conv1d": (
        lambda: [Conv1D(4, 3), ReLU(), Flatten(), Dense(2), Softmax()],
        (12, 2),
    ),
    "lstm": (lambda: [LSTM(6), Dense(2), Softmax()], (8, 4)),
    "dropout": (
        lambda: [Dense(16), ReLU(), Dropout(0.5), Dense(2), Softmax()],
        (10,),
    ),
}


class TestRoundtripEveryLayerFamily:
    """save/load must be bit-exact for every layer type and dtype."""

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    @pytest.mark.parametrize("family", sorted(_ROUNDTRIP_STACKS))
    def test_predict_bit_identical_after_roundtrip(
        self, family, dtype, rng, tmp_path
    ):
        layers, input_shape = _ROUNDTRIP_STACKS[family]
        model = Sequential(layers()).build(input_shape, rng).compile(dtype=dtype)
        x = np.random.default_rng(5).random((16,) + input_shape)
        path = os.path.join(tmp_path, f"{family}-{dtype}.npz")
        model.save(path)
        loaded = load_model(path)
        assert loaded.dtype == np.dtype(dtype)
        assert np.array_equal(model.predict(x), loaded.predict(x))
        assert loaded.count_params() == model.count_params()


class TestCompileStatePersistence:
    def test_loaded_model_is_compiled(self, rng, tmp_path):
        x, y = make_blob_data(rng, n=64)
        model = make_model().build((4,), rng).compile(
            loss="categorical_crossentropy", optimizer="sgd",
            metrics=("accuracy",),
        )
        model.fit(x, y, epochs=1, rng=rng)
        path = os.path.join(tmp_path, "m.npz")
        model.save(path)
        loaded = load_model(path)
        assert type(loaded.loss).__name__ == "CategoricalCrossentropy"
        assert type(loaded.optimizer).__name__ == "SGD"
        assert loaded.metric_names == ["accuracy"]
        # evaluate and further fitting work without recompiling.
        loss, metrics = loaded.evaluate(x, y)
        assert "accuracy" in metrics
        loaded.fit(x, y, epochs=1, rng=rng)

    def test_legacy_file_without_compile_info(self, rng, tmp_path):
        """Files saved before compile persistence load but say why they
        cannot evaluate."""
        x, y = make_blob_data(rng, n=32)
        model = make_model().build((4,), rng)  # never compiled
        path = os.path.join(tmp_path, "legacy.npz")
        model.save(path)
        loaded = load_model(path)
        assert loaded.loss is None
        with pytest.raises(TrainingError, match="loaded model before evaluating"):
            loaded.evaluate(x, y)
        with pytest.raises(TrainingError, match="loaded model before fitting"):
            loaded.fit(x, y, rng=rng)
        # Compiling clears the hint and restores full function.
        loaded.compile()
        loaded.evaluate(x, y)

    def test_uncompiled_fresh_model_message_unchanged(self, rng):
        x, y = make_blob_data(rng, n=16)
        with pytest.raises(TrainingError, match="compile the model before"):
            make_model().build((4,), rng).fit(x, y)

    def test_dtype_survives_roundtrip_with_compile(self, rng, tmp_path):
        model = make_model().build((4,), rng).compile(dtype="float32")
        path = os.path.join(tmp_path, "f32.npz")
        model.save(path)
        loaded = load_model(path)
        assert loaded.dtype == np.dtype("float32")
        assert all(
            param.dtype == np.dtype("float32")
            for layer in loaded.layers
            for param in layer.params
        )
