"""Engineering benchmarks: throughput of the numpy NN substrate.

Not a paper artefact — these time the building blocks that dominate the
table reproductions (Dense forward/backward at the paper's layer sizes,
one LSTM step stack, one Conv1D stack) so regressions in the substrate
are visible independently of the experiments.
"""

import numpy as np
import pytest

from repro.nn import Adam, CategoricalCrossentropy
from repro.nn.architectures import cnn_i, lstm_i, mlp_iii
from repro.nn.losses import one_hot

BATCH = 256
INPUT_BITS = 128


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(1)
    x = (rng.random((BATCH, INPUT_BITS)) > 0.5).astype(np.float64)
    y = one_hot(rng.integers(0, 2, BATCH), 2)
    return x, y


def _train_step(model, x, y, loss, optimizer):
    pred = model.forward(x, training=True)
    _, grad = loss(y, pred)
    model.backward(grad)
    params, grads = model._gather()
    optimizer.update(params, grads)


@pytest.mark.parametrize(
    "factory", [mlp_iii, lstm_i, cnn_i], ids=["MLP III", "LSTM I", "CNN I"]
)
def test_train_step_throughput(benchmark, factory, batch):
    x, y = batch
    model = factory()
    model.build((INPUT_BITS,), rng=0)
    loss = CategoricalCrossentropy()
    optimizer = Adam()
    benchmark(_train_step, model, x, y, loss, optimizer)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_mlp_iii_train_step_dtype(benchmark, batch, dtype):
    """The compiled hot path (fused softmax+CCE, in-place Adam) per dtype.

    The float32 row is the headline number: it should beat the float64
    row by well over 1.5x on the paper's MLP III at batch 256.
    """
    x, y = batch
    model = mlp_iii()
    model.build((INPUT_BITS,), rng=0)
    model.compile(
        loss=CategoricalCrossentropy(), optimizer=Adam(), dtype=dtype
    )
    x = x.astype(dtype)
    y = y.astype(dtype)
    benchmark(model.train_on_batch, x, y)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("factory", [lstm_i, cnn_i], ids=["LSTM I", "CNN I"])
def test_seq_train_step_dtype(benchmark, batch, factory, dtype):
    """The sequence models on the compiled hot path, per dtype.

    The float64 rows time the time-major LSTM / im2col Conv1D kernels
    at full precision; the float32 rows are the fast path (the LSTM I
    float64 step is pinned near its BLAS GEMM floor, so float32 is
    where the remaining headroom lives).
    """
    x, y = batch
    model = factory()
    model.build((INPUT_BITS,), rng=0)
    model.compile(
        loss=CategoricalCrossentropy(), optimizer=Adam(), dtype=dtype
    )
    x = x.astype(dtype)
    y = y.astype(dtype)
    benchmark(model.train_on_batch, x, y)


def test_inference_throughput(benchmark, batch):
    x, _ = batch
    model = mlp_iii()
    model.build((INPUT_BITS,), rng=0)
    result = benchmark(model.predict, x)
    assert result.shape == (BATCH, 2)
