"""Content-addressed on-disk cache for generated datasets.

Repeated table/figure runs regenerate identical datasets from scratch —
for the paper's full-scale ``2^17.6``-sample grids that is minutes of
cipher kernels per cell.  This module caches the output of the sharded
generator (:func:`repro.core.parallel.generate_dataset_sharded`) on
disk, keyed by a hash of everything that determines the result:

* a structural fingerprint of the scenario (class name plus every
  constructor-reachable attribute, arrays included byte-for-byte);
* the generation parameters (``n_per_class``, ``shard_size``,
  ``shuffle``) and the sharded-generator protocol version;
* the root :class:`~numpy.random.SeedSequence` entropy and spawn key.

Because the key covers the seed material itself, a cache hit returns
bit-identical arrays to what the generator would have produced, and two
configs that differ in any input hash to different keys.  Entries are
``.npz`` files written atomically (temp file + :func:`os.replace`), so
concurrent workers racing on the same key at worst both compute it.

The cache is off unless the ``REPRO_DATASET_CACHE`` environment
variable names a directory (created on demand) or a
:class:`DatasetCache` is passed explicitly.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Optional, Tuple
from zipfile import BadZipFile

import numpy as np

from repro.errors import DistinguisherError

#: Bump when the sharded-generation protocol changes (shard layout,
#: regroup order, ...) so stale entries can never be returned.
#: 2: the scenario fingerprint carries the difference set explicitly
#: (not only via ``__dict__``), so scenarios that compute their masks
#: lazily or hold them behind properties can never alias.
CACHE_PROTOCOL = 2

#: Environment variable naming the cache directory; unset/empty disables
#: caching.
CACHE_ENV_VAR = "REPRO_DATASET_CACHE"


def _canonical(value):
    """A deterministic, picklable projection of ``value`` for hashing."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, np.ndarray):
        return ("ndarray", str(value.dtype), value.shape, value.tobytes())
    if isinstance(value, np.generic):
        return ("npscalar", str(value.dtype), value.item())
    if isinstance(value, (list, tuple)):
        return (type(value).__name__, tuple(_canonical(v) for v in value))
    if isinstance(value, dict):
        return (
            "dict",
            tuple(
                (str(k), _canonical(v)) for k, v in sorted(value.items())
            ),
        )
    if hasattr(value, "__dict__"):
        return (
            "object",
            type(value).__module__,
            type(value).__qualname__,
            _canonical(vars(value)),
        )
    return ("repr", repr(value))


def scenario_fingerprint(scenario) -> tuple:
    """Structural fingerprint of a scenario (class + all attributes).

    The chosen difference set is folded in *explicitly* (byte-for-byte,
    on top of whatever ``__dict__`` carries): two scenarios that agree
    on every constructor parameter except one difference bit must hash
    apart, or a search-discovered scenario could collide with a paper
    scenario in ``REPRO_DATASET_CACHE`` and silently return the wrong
    dataset.
    """
    masks = getattr(scenario, "difference_masks", None)
    return (
        type(scenario).__module__,
        type(scenario).__qualname__,
        _canonical(getattr(scenario, "__dict__", {})),
        ("difference_masks", _canonical(np.asarray(masks)) if masks is not None else None),
    )


def dataset_cache_key(
    scenario,
    n_per_class: int,
    shard_size: int,
    shuffle: bool,
    seed_seq: np.random.SeedSequence,
) -> str:
    """Hex digest addressing one sharded-generation result."""
    payload = (
        CACHE_PROTOCOL,
        scenario_fingerprint(scenario),
        int(n_per_class),
        int(shard_size),
        bool(shuffle),
        tuple(int(e) for e in np.atleast_1d(seed_seq.entropy)),
        tuple(int(k) for k in seed_seq.spawn_key),
    )
    return hashlib.sha256(pickle.dumps(payload, protocol=4)).hexdigest()


class DatasetCache:
    """A directory of content-addressed ``(features, labels)`` entries."""

    def __init__(self, root: str):
        if not root:
            raise DistinguisherError("dataset cache root must be a path")
        self.root = os.path.abspath(root)

    @classmethod
    def from_env(cls) -> Optional["DatasetCache"]:
        """The cache named by ``REPRO_DATASET_CACHE``, or ``None``."""
        root = os.environ.get(CACHE_ENV_VAR, "")
        return cls(root) if root else None

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.npz")

    def load(self, key: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """The cached ``(x, y)`` for ``key``, or ``None`` on a miss.

        A corrupt entry (e.g. a torn write from a crashed process, which
        the atomic rename makes all but impossible) is treated as a miss
        and removed.
        """
        path = self._path(key)
        try:
            with np.load(path) as archive:
                return archive["x"], archive["y"]
        except FileNotFoundError:
            return None
        except (OSError, KeyError, ValueError, BadZipFile):
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def store(self, key: str, x: np.ndarray, y: np.ndarray) -> None:
        """Atomically persist ``(x, y)`` under ``key``."""
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".npz.tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, x=x, y=y)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
