"""Tests for repro.utils.bitops: rotations, shifts, weights, parity."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit,
    flip_bit,
    hamming_weight,
    mask,
    parity,
    rotl,
    rotl32,
    rotr,
    rotr32,
    set_bit,
    shl,
    shr,
    word_dtype,
)


class TestMask:
    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(8) == 0xFF
        assert mask(32) == 0xFFFFFFFF

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            mask(0)
        with pytest.raises(ValueError):
            mask(-3)


class TestWordDtype:
    @pytest.mark.parametrize(
        "width,dtype",
        [(8, np.uint8), (16, np.uint16), (32, np.uint32), (64, np.uint64)],
    )
    def test_supported(self, width, dtype):
        assert word_dtype(width) is dtype

    def test_unsupported_raises(self):
        with pytest.raises(ValueError):
            word_dtype(12)


class TestRotations:
    def test_scalar_rotl_known(self):
        assert rotl(0x80000000, 1, 32) == 1
        assert rotl(1, 1, 32) == 2
        assert rotl(0x12345678, 8, 32) == 0x34567812

    def test_scalar_rotr_known(self):
        assert rotr(1, 1, 32) == 0x80000000
        assert rotr(0x12345678, 8, 32) == 0x78123456

    def test_rotl_amount_mod_width(self):
        assert rotl(0xAB, 8, 8) == 0xAB
        assert rotl(0xAB, 10, 8) == rotl(0xAB, 2, 8)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 64))
    def test_rotl_rotr_inverse(self, value, amount):
        assert rotr(rotl(value, amount, 32), amount, 32) == value

    @given(st.integers(0, 2**16 - 1), st.integers(0, 16))
    def test_rotation_preserves_weight(self, value, amount):
        assert hamming_weight(rotl(value, amount, 16)) == hamming_weight(value)

    def test_array_matches_scalar(self, rng):
        values = rng.integers(0, 2**32, size=64, dtype=np.uint64).astype(np.uint32)
        for amount in (0, 1, 9, 24, 31):
            rotated = rotl(values, amount, 32)
            for v, r in zip(values, rotated):
                assert rotl(int(v), amount, 32) == int(r)

    def test_rot32_aliases(self):
        assert rotl32(1, 31) == 0x80000000
        assert rotr32(1, 1) == 0x80000000


class TestShifts:
    def test_shl_discards_high_bits(self):
        assert shl(0xFF, 4, 8) == 0xF0
        assert shl(1, 8, 8) == 0

    def test_shr(self):
        assert shr(0xF0, 4, 8) == 0x0F
        assert shr(1, 1, 8) == 0

    def test_negative_amount_raises(self):
        with pytest.raises(ValueError):
            shl(1, -1, 8)
        with pytest.raises(ValueError):
            shr(1, -1, 8)

    def test_array_shifts(self):
        arr = np.array([0xFF, 0x01], dtype=np.uint8)
        assert list(shl(arr, 4, 8)) == [0xF0, 0x10]
        assert list(shr(arr, 4, 8)) == [0x0F, 0x00]

    def test_overshift_returns_zero(self):
        assert shl(0xFF, 8, 8) == 0
        arr = np.array([0xFF], dtype=np.uint8)
        assert shr(arr, 9, 8)[0] == 0


class TestHammingWeight:
    @pytest.mark.parametrize(
        "value,weight", [(0, 0), (1, 1), (0xFF, 8), (0x80000001, 2)]
    )
    def test_scalar(self, value, weight):
        assert hamming_weight(value) == weight

    def test_array(self):
        arr = np.array([0, 1, 3, 0xFF], dtype=np.uint32)
        assert list(hamming_weight(arr)) == [0, 1, 2, 8]

    @given(st.integers(0, 2**32 - 1))
    def test_matches_bin_count(self, value):
        assert hamming_weight(value) == bin(value).count("1")


class TestParity:
    @given(st.integers(0, 2**32 - 1))
    def test_parity_is_weight_mod_2(self, value):
        assert parity(value) == hamming_weight(value) % 2

    def test_array(self):
        arr = np.array([0, 1, 3, 7], dtype=np.uint8)
        assert list(parity(arr)) == [0, 1, 0, 1]


class TestBitHelpers:
    def test_bit(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0

    def test_set_bit(self):
        assert set_bit(0, 3) == 8
        assert set_bit(0xFF, 0, 0) == 0xFE

    def test_set_bit_invalid_value(self):
        with pytest.raises(ValueError):
            set_bit(0, 0, 2)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 15))
    def test_flip_twice_is_identity(self, value, index):
        assert flip_bit(flip_bit(value, index), index) == value
