"""Markov-cipher definitions (paper §2.1) made executable.

Lai–Massey–Murphy's Definition 2 says a cipher is Markov when
``P(ΔY = β | ΔX = α, X = γ)`` does not depend on ``γ`` once the sub-key
is uniform.  For a *sub-key-free* round (the paper's Gimli/Salsa/Trivium
point) there is nothing to average over and the conditional probability
is 0/1 for each ``γ`` — maximally ``γ``-dependent.  This module measures
that dependence exactly on the toy ciphers, and reproduces the Figure 1
numbers (true characteristic probability ``2^-6`` vs the Eq. 2 product
``2^-9``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.ciphers.toygift import PAPER_TRAIL, ToyGift, nibbles_to_byte


def conditional_difference_distribution(
    round_function: Callable[[int], int],
    delta_in: int,
    input_bits: int,
) -> np.ndarray:
    """``P(ΔY = β | ΔX = delta_in, X = γ)`` for every ``γ`` (exact).

    For an unkeyed round this is a 0/1 indicator matrix of shape
    ``(2^input_bits, 2^input_bits)`` indexed ``[γ, β]``.
    """
    size = 1 << input_bits
    table = np.zeros((size, size), dtype=np.float64)
    for gamma in range(size):
        beta = round_function(gamma) ^ round_function(gamma ^ delta_in)
        table[gamma, beta] = 1.0
    return table


def markov_violation(
    round_function: Callable[[int], int],
    delta_in: int,
    input_bits: int,
) -> float:
    """Total-variation spread of the ``γ``-conditioned distributions.

    Returns ``max over γ of TV(P(ΔY | ΔX, X=γ), P(ΔY | ΔX))``; zero iff
    the round satisfies Definition 2 for this input difference.
    """
    table = conditional_difference_distribution(round_function, delta_in, input_bits)
    marginal = table.mean(axis=0)
    tv_per_gamma = 0.5 * np.abs(table - marginal[np.newaxis, :]).sum(axis=1)
    return float(tv_per_gamma.max())


def markov_violation_toygift(delta_in: Optional[int] = None) -> float:
    """Markov violation of the Figure 1 toy's first round.

    Defaults to the paper's input difference ``ΔY1 = (2, 3)``.  The
    result is far from zero — the unkeyed S-box layer is deterministic
    given ``γ``, so conditioning on the input value changes the output
    difference distribution completely.
    """
    if delta_in is None:
        delta_in = nibbles_to_byte(PAPER_TRAIL["delta_y1"])
    toy = ToyGift()
    return markov_violation(toy.round1, delta_in, input_bits=8)


def figure1_demonstration() -> Dict[str, float]:
    """Reproduce every number of the paper's Figure 1 discussion.

    Returns the exact characteristic probability (``2^-6``), the Markov
    product (``2^-9``), their ratio, and the per-round DDT probabilities
    quoted in §2.1.
    """
    toy = ToyGift()
    exact = toy.characteristic_probability_exact()
    markov = toy.characteristic_probability_markov()
    from repro.diffcrypt.sbox import SBox
    from repro.ciphers.gift import GIFT_SBOX

    sbox = SBox(GIFT_SBOX)
    dy1 = PAPER_TRAIL["delta_y1"]
    dw1 = PAPER_TRAIL["delta_w1"]
    round1 = sbox.differential_probability(dy1[0], dw1[0]) * (
        sbox.differential_probability(dy1[1], dw1[1])
    )
    return {
        "exact_probability": exact,
        "markov_probability": markov,
        "exact_weight": -float(np.log2(exact)),
        "markov_weight": -float(np.log2(markov)),
        "round1_probability": round1,
        "ratio": exact / markov,
    }
