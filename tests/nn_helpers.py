"""Shared helpers for neural-network tests: numerical gradient checking."""

from __future__ import annotations

import numpy as np


def layer_gradient_check(
    layer,
    x: np.ndarray,
    rng: np.random.Generator,
    samples: int = 6,
    eps: float = 1e-6,
) -> float:
    """Worst relative error between analytic and numerical gradients.

    Uses a random linear readout ``L = sum(R * forward(x))`` so the
    upstream gradient is the constant ``R``; checks both input gradients
    and every parameter gradient.
    """
    if not layer.built:
        layer.build(x.shape[1:], rng)
    out = layer.forward(x, training=True)
    readout = rng.normal(size=out.shape)
    grad_in = layer.backward(readout)

    def loss() -> float:
        return float((layer.forward(x, training=True) * readout).sum())

    worst = 0.0

    def check(array: np.ndarray, grads: np.ndarray, perturb) -> None:
        nonlocal worst
        flat_indices = rng.integers(0, array.size, size=min(samples, array.size))
        for flat in flat_indices:
            idx = np.unravel_index(int(flat), array.shape)
            original = array[idx]
            perturb(idx, original + eps)
            plus = loss()
            perturb(idx, original - eps)
            minus = loss()
            perturb(idx, original)
            numerical = (plus - minus) / (2 * eps)
            analytic = grads[idx]
            scale = max(1e-6, abs(numerical) + abs(analytic))
            worst = max(worst, abs(numerical - analytic) / scale)

    # Input gradient.
    check(x, grad_in, lambda idx, v: x.__setitem__(idx, v))
    # Parameter gradients.
    for param, grad in zip(layer.params, layer.grads):
        check(param, grad, lambda idx, v, p=param: p.__setitem__(idx, v))
    return worst
