"""Tests for BatchNorm, ResidualBlock, Transpose12 and Gohr's resnet."""

import numpy as np
import pytest

from nn_helpers import layer_gradient_check
from repro.errors import LayerError
from repro.nn.blocks import BatchNorm, ResidualBlock, Transpose12, gohr_resnet
from repro.nn.layers import Dense, ReLU


class TestBatchNorm:
    def test_training_normalises(self, rng):
        layer = BatchNorm()
        layer.build((5,), rng)
        x = rng.normal(loc=3.0, scale=2.0, size=(256, 5))
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_statistics_converge(self, rng):
        layer = BatchNorm(momentum=0.5)
        layer.build((3,), rng)
        for _ in range(50):
            layer.forward(rng.normal(loc=2.0, size=(64, 3)), training=True)
        assert np.allclose(layer.running_mean, 2.0, atol=0.3)

    def test_inference_uses_running_stats(self, rng):
        layer = BatchNorm()
        layer.build((3,), rng)
        layer.forward(rng.normal(size=(64, 3)), training=True)
        x = rng.normal(size=(4, 3))
        a = layer.forward(x, training=False)
        b = layer.forward(x, training=False)
        assert np.allclose(a, b)

    def test_gamma_beta_learned_shape(self, rng):
        layer = BatchNorm()
        layer.build((7,), rng)
        assert layer.count_params() == 14

    def test_gradients_2d(self, rng):
        x = rng.normal(size=(8, 5))
        assert layer_gradient_check(BatchNorm(), x, rng) < 1e-6

    def test_gradients_3d(self, rng):
        x = rng.normal(size=(4, 6, 3))
        assert layer_gradient_check(BatchNorm(), x, rng) < 1e-6

    def test_invalid_config(self):
        with pytest.raises(LayerError):
            BatchNorm(momentum=1.0)
        with pytest.raises(LayerError):
            BatchNorm(epsilon=0.0)

    def test_backward_without_training_forward(self, rng):
        layer = BatchNorm()
        layer.build((3,), rng)
        layer.forward(np.zeros((2, 3)), training=False)
        with pytest.raises(LayerError):
            layer.backward(np.zeros((2, 3)))


class TestResidualBlock:
    def test_identity_plus_inner(self, rng):
        block = ResidualBlock([Dense(4)])
        block.build((4,), rng)
        block.inner[0].params[0][...] = 0.0
        block.inner[0].params[1][...] = 0.0
        x = rng.normal(size=(3, 4))
        assert np.allclose(block.forward(x), x)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(LayerError):
            ResidualBlock([Dense(5)]).build((4,), rng)

    def test_empty_inner_rejected(self):
        with pytest.raises(LayerError):
            ResidualBlock([])

    def test_params_aggregated(self, rng):
        block = ResidualBlock([Dense(4), ReLU(), Dense(4)])
        block.build((4,), rng)
        assert block.count_params() == 2 * (4 * 4 + 4)
        assert len(block.params) == 4

    def test_gradients(self, rng):
        block = ResidualBlock([Dense(5), ReLU(), Dense(5)])
        x = rng.normal(size=(6, 5)) + 0.1
        assert layer_gradient_check(block, x, rng) < 1e-6

    def test_output_shape(self):
        assert ResidualBlock([Dense(3)]).output_shape((3,)) == (3,)


class TestTranspose:
    def test_forward_backward(self, rng):
        layer = Transpose12()
        x = rng.normal(size=(2, 3, 5))
        out = layer.forward(x)
        assert out.shape == (2, 5, 3)
        assert layer.backward(out).shape == x.shape

    def test_output_shape(self):
        assert Transpose12().output_shape((3, 5)) == (5, 3)


class TestGohrResnet:
    def test_builds_and_predicts(self, rng):
        model = gohr_resnet(depth=1, filters=8, dense_units=16)
        model.build((64,), rng=1)
        model.compile()
        out = model.predict(rng.random((4, 64)))
        assert out.shape == (4, 2)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_sigmoid_head(self, rng):
        model = gohr_resnet(depth=1, filters=8, dense_units=16, num_classes=1)
        model.build((64,), rng=1)
        out = model.forward(rng.random((3, 64)))
        assert out.shape == (3, 1)
        assert ((out > 0) & (out < 1)).all()

    def test_learns_speck_5_rounds(self):
        from repro.core.scenario import SpeckRealOrRandomScenario

        scenario = SpeckRealOrRandomScenario(rounds=5)
        x, y = scenario.generate_dataset(3000, rng=1)
        model = gohr_resnet(depth=2, filters=16, dense_units=32)
        model.build((64,), rng=2)
        model.compile()
        model.fit(x[:5000], y[:5000], epochs=3, batch_size=128, rng=3)
        _, metrics = model.evaluate(x[5000:], y[5000:])
        assert metrics["accuracy"] > 0.6

    def test_invalid_depth(self):
        with pytest.raises(LayerError):
            gohr_resnet(depth=0)
