"""Parallel, shard-deterministic dataset generation.

Generating the paper's ``2^17.6``-sample training sets is embarrassingly
parallel — every base input is independent — but a naive fork-join over
one RNG stream would make the dataset depend on the worker count.  This
module shards the work instead:

* ``n_per_class`` is cut into fixed-size shards (:data:`DEFAULT_SHARD_SIZE`
  base inputs each) **independent of the worker count**;
* a root :class:`numpy.random.SeedSequence` derived from the caller's
  ``rng`` spec is ``spawn``-ed into one child per shard plus one reserved
  child for the final shuffle;
* each shard runs the ordinary
  :meth:`~repro.core.scenario.DifferentialScenario.generate_dataset`
  (unshuffled) on its own child stream;
* shard outputs are re-grouped by class and concatenated in shard order,
  then shuffled once with the reserved stream.

Because the shard plan and every stream are functions of the seed alone,
``workers=1`` and ``workers=N`` produce bit-identical ``(x, y)`` arrays;
the worker count only decides how many shards run concurrently.  The
scenario object must be picklable (all built-in scenarios are); shards
are dispatched over a :mod:`multiprocessing` pool when ``workers > 1``
and run in-process otherwise.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import DatasetCache, dataset_cache_key
from repro.errors import DistinguisherError
from repro.obs import log as obs_log
from repro.obs.trace import span
from repro.utils.rng import RngLike

_log = obs_log.get_logger("repro.parallel")

#: Base inputs per shard.  Chosen so one shard is large enough to keep
#: the vectorised cipher kernels efficient but small enough that a
#: typical worker pool stays busy; part of the determinism contract —
#: changing it changes the generated dataset.
DEFAULT_SHARD_SIZE = 4096


def seed_sequence_from(rng: RngLike) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` for any accepted seed form.

    Integers and seed sequences map deterministically; a generator
    contributes entropy drawn from its stream (so repeated calls
    differ, matching :func:`repro.utils.rng.derive_rng`); ``None``
    pulls OS entropy.
    """
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, np.random.Generator):
        entropy = [int(s) for s in rng.integers(0, 2**63 - 1, size=4)]
        return np.random.SeedSequence(entropy)
    return np.random.SeedSequence(rng)


def shard_sizes(n: int, shard_size: int = DEFAULT_SHARD_SIZE) -> List[int]:
    """Split ``n`` base inputs into full shards plus one remainder shard."""
    if n <= 0:
        raise DistinguisherError(f"n must be positive, got {n}")
    if shard_size <= 0:
        raise DistinguisherError(f"shard_size must be positive, got {shard_size}")
    full, remainder = divmod(n, shard_size)
    sizes = [shard_size] * full
    if remainder:
        sizes.append(remainder)
    return sizes


def _run_shard(job) -> Tuple[np.ndarray, np.ndarray]:
    scenario, shard_n, seed_seq = job
    shard_rng = np.random.Generator(np.random.PCG64(seed_seq))
    return scenario.generate_dataset(shard_n, rng=shard_rng, shuffle=False)


def generate_dataset_sharded(
    scenario,
    n_per_class: int,
    rng: RngLike = None,
    shuffle: bool = True,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    cache: Optional[DatasetCache] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shard-deterministic ``(features, labels)`` for ``scenario``.

    Bit-identical for every ``workers`` value given the same seed and
    ``shard_size``; see the module docstring for the construction.

    ``cache`` defaults to the directory named by the
    ``REPRO_DATASET_CACHE`` environment variable (no caching when
    unset).  The key covers the scenario fingerprint, every generation
    parameter and the root seed material, so a hit is bit-identical to a
    fresh run; when ``rng`` is a live generator its entropy draw happens
    before the lookup, leaving the caller's stream state independent of
    hit or miss.
    """
    workers = int(workers)
    if workers < 1:
        raise DistinguisherError(f"workers must be >= 1, got {workers}")
    sizes = shard_sizes(n_per_class, shard_size)
    root = seed_sequence_from(rng)
    if cache is None:
        cache = DatasetCache.from_env()
    key = None
    if cache is not None:
        key = dataset_cache_key(scenario, n_per_class, shard_size, shuffle, root)
        cached = cache.load(key)
        if cached is not None:
            _log.debug(
                "data.cache_hit", n_per_class=n_per_class, key=key[:12]
            )
            return cached
    children = root.spawn(len(sizes) + 1)
    jobs = [(scenario, size, child) for size, child in zip(sizes, children)]
    with span("data.generate", shards=len(jobs), n_per_class=n_per_class,
              workers=workers):
        results = []
        if workers == 1 or len(jobs) == 1:
            for index, job in enumerate(jobs):
                results.append(_run_shard(job))
                _log.debug("data.shard", done=index + 1, total=len(jobs))
        else:
            # ``imap`` (order-preserving, like ``map``) so each shard's
            # completion surfaces as a liveness heartbeat as it lands.
            with multiprocessing.get_context().Pool(
                processes=min(workers, len(jobs))
            ) as pool:
                for index, result in enumerate(pool.imap(_run_shard, jobs)):
                    results.append(result)
                    _log.debug("data.shard", done=index + 1, total=len(jobs))
    # Each unshuffled shard is grouped by class (t blocks of shard_n
    # rows); regroup so the full dataset has the same class-major layout
    # regardless of how the shards were scheduled.
    features: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    for class_index in range(scenario.num_classes):
        for (x, y), shard_n in zip(results, sizes):
            rows = slice(class_index * shard_n, (class_index + 1) * shard_n)
            features.append(x[rows])
            labels.append(y[rows])
    x = np.concatenate(features, axis=0)
    y = np.concatenate(labels, axis=0)
    if shuffle:
        shuffler = np.random.Generator(np.random.PCG64(children[-1]))
        order = shuffler.permutation(x.shape[0])
        x, y = x[order], y[order]
    if cache is not None and key is not None:
        cache.store(key, x, y)
    return x, y


def run_grid(
    fn: Callable,
    payloads: Sequence,
    workers: Optional[int] = None,
    label: str = "grid",
) -> List:
    """Map ``fn`` over independent grid cells, optionally in worker
    processes.

    The experiment tables train one model per (cipher, rounds, network)
    cell; every cell is handed its own pre-derived seed material, so the
    cells are independent and their results order-preserving —
    ``run_grid`` is then an order-preserving ``pool.imap`` (with an
    in-process fallback) that logs a heartbeat as each cell completes.
    ``fn`` and each payload must be picklable (module-level functions
    and plain tuples).  Unlike dataset sharding, the worker count is not
    clamped to the CPU count: cells spend much of their wall-clock in
    BLAS and cipher kernels, so modest oversubscription is harmless and
    keeps ``workers=N`` semantics identical across machines.

    Cells run inside pool workers must not spawn pools of their own
    (``multiprocessing`` daemonic children cannot fork grandchildren),
    so grid-parallel table runners generate their datasets with
    ``workers=1``.
    """
    payloads = list(payloads)
    if workers is None:
        workers = 1
    workers = int(workers)
    if workers < 1:
        raise DistinguisherError(f"workers must be >= 1, got {workers}")
    # Per-cell completion heartbeats (``label`` names the grid in the
    # event stream) give long table runs visible liveness; ``imap`` is
    # order-preserving like ``map``, so results are unchanged.
    results: List = []
    with span(f"{label}.run", cells=len(payloads), workers=workers):
        if workers == 1 or len(payloads) <= 1:
            for index, payload in enumerate(payloads):
                results.append(fn(payload))
                _log.info(
                    f"{label}.cell", done=index + 1, total=len(payloads)
                )
        else:
            with multiprocessing.get_context().Pool(
                processes=min(workers, len(payloads))
            ) as pool:
                for index, result in enumerate(pool.imap(fn, payloads)):
                    results.append(result)
                    _log.info(
                        f"{label}.cell", done=index + 1, total=len(payloads)
                    )
    return results


def resolve_workers(workers: Optional[int] = None) -> int:
    """Clamp a requested worker count to the machine (``None`` -> 1)."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 1:
        raise DistinguisherError(f"workers must be >= 1, got {workers}")
    return min(workers, multiprocessing.cpu_count())
