"""Experiment harness: one module per table/figure of the paper.

Every experiment is a plain function returning a result dict, with
sample sizes scaled by the ``REPRO_SCALE`` environment variable
(``1.0`` = the paper's sizes; default ``0.05`` for laptop-scale runs).
``python -m repro.experiments <name>`` runs one from the command line;
the pytest benchmarks in ``benchmarks/`` call the same functions.
"""

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.figure1 import run_figure1
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.speck_baseline import run_speck_baseline, run_toyspeck_allinone
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

__all__ = [
    "EXPERIMENTS",
    "ExperimentScale",
    "get_experiment",
    "get_scale",
    "run_experiment",
    "run_figure1",
    "run_speck_baseline",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_toyspeck_allinone",
]
