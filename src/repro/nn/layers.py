"""Core layers: Dense, activations, Dropout, shape utilities.

Every layer implements the same small contract:

* ``build(input_shape, rng)`` — allocate parameters; ``input_shape``
  excludes the batch axis;
* ``forward(x, training)`` — compute outputs, caching whatever the
  backward pass needs;
* ``backward(grad)`` — given ``dL/d(output)`` return ``dL/d(input)``
  and fill ``self.grads`` (aligned with ``self.params``);
* ``output_shape(input_shape)`` and ``get_config()`` for model
  persistence.

Gradients are exact (validated against numerical differentiation in the
tests).  Compute precision is a per-layer ``dtype`` policy (default
float64 for exact-gradient tests; float32 opt-in via
``Sequential.compile(..., dtype="float32")`` roughly halves both memory
traffic and matmul wall-clock on the training hot path).

Every hot kernel (matmuls, activations) is executed through the layer's
``backend`` (:mod:`repro.nn.backend`), defaulting to the reference
``NumpyBackend`` whose ops are the exact pre-refactor expressions —
``tests/test_nn_backend.py`` pins the routing bit-identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import LayerError
from repro.nn.backend import Backend, get_backend
from repro.nn.initializers import get_initializer


def scratch_buffer(store: dict, name: str, shape, dtype) -> np.ndarray:
    """A persistent uninitialised scratch array, re-allocated only when
    the requested shape or dtype changes (one slot per name)."""
    shape = tuple(shape)
    buf = store.get(name)
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        buf = np.empty(shape, dtype=dtype)
        store[name] = buf
    return buf


def scratch_zeros(store: dict, name: str, shape, dtype) -> np.ndarray:
    """Like :func:`scratch_buffer` but zero-filled on allocation.

    Callers must treat the returned array as read-only — it is zeroed
    only when (re)allocated.
    """
    shape = tuple(shape)
    buf = store.get(name)
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        buf = np.zeros(shape, dtype=dtype)
        store[name] = buf
    return buf


class Layer:
    """Base class for all layers."""

    #: Layers that draw randomness during ``forward`` (e.g. Dropout) set
    #: this so the model can route the fit-time generator through them.
    stochastic = False

    #: Set by ``Sequential.build`` on the bottom-most parameterised layer
    #: when nothing below it has parameters: the input gradient would be
    #: discarded, so ``backward`` may return ``None`` instead of
    #: computing it.  Honoured by Dense, LSTM and Conv1D.
    skip_input_grad = False

    def __init__(self):
        self.params: List[np.ndarray] = []
        self.grads: List[np.ndarray] = []
        self.built = False
        self.trainable = True
        self.dtype: np.dtype = np.dtype(np.float64)
        self.backend: Backend = get_backend()

    def set_backend(self, backend) -> None:
        """Route this layer's compute through ``backend`` (name or instance)."""
        self.backend = get_backend(backend)

    def set_dtype(self, dtype) -> None:
        """Switch the compute dtype, casting any existing parameters."""
        dtype = np.dtype(dtype)
        if dtype.kind != "f":
            raise LayerError(f"layer dtype must be a float type, got {dtype}")
        self.dtype = dtype
        self.params = [p.astype(dtype, copy=False) for p in self.params]
        self.grads = [g.astype(dtype, copy=False) for g in self.grads]

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters for the given input shape (sans batch axis)."""
        del input_shape, rng
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch ``x``."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate ``dL/d(output)`` to ``dL/d(input)``; fill ``self.grads``."""
        raise NotImplementedError

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the output (sans batch axis) for a given input shape."""
        return input_shape

    def count_params(self) -> int:
        """Total number of trainable scalars in this layer."""
        return int(sum(p.size for p in self.params))

    def get_config(self) -> dict:
        """JSON-serialisable constructor arguments (for persistence)."""
        return {}

    @property
    def name(self) -> str:
        """Class name, used in summaries and persistence."""
        return type(self).__name__


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        units: int,
        use_bias: bool = True,
        kernel_initializer: str = "glorot_uniform",
    ):
        super().__init__()
        if units <= 0:
            raise LayerError(f"Dense units must be positive, got {units}")
        self.units = int(units)
        self.use_bias = bool(use_bias)
        self.kernel_initializer = kernel_initializer
        self._x: Optional[np.ndarray] = None

    def build(self, input_shape, rng):
        if len(input_shape) != 1:
            raise LayerError(
                f"Dense expects flat inputs, got shape {input_shape}; "
                "add a Flatten layer first"
            )
        init = get_initializer(self.kernel_initializer)
        weight = init((input_shape[0], self.units), rng).astype(self.dtype, copy=False)
        self.params = [weight]
        if self.use_bias:
            self.params.append(np.zeros(self.units, dtype=self.dtype))
        self.grads = [np.zeros_like(p) for p in self.params]
        self.built = True

    def forward(self, x, training=False):
        self._x = x if training else None
        return self.backend.affine(
            x, self.params[0], self.params[1] if self.use_bias else None
        )

    def backward(self, grad):
        if self._x is None:
            raise LayerError("backward called without a training forward pass")
        # Write straight into the persistent gradient buffers instead of
        # allocating fresh arrays every step.
        self.backend.matmul(self._x.T, grad, out=self.grads[0])
        if self.use_bias:
            self.backend.colsum(grad, out=self.grads[1])
        if self.skip_input_grad:
            return None
        return self.backend.matmul(grad, self.params[0].T)

    def output_shape(self, input_shape):
        return (self.units,)

    def get_config(self):
        return {
            "units": self.units,
            "use_bias": self.use_bias,
            "kernel_initializer": self.kernel_initializer,
        }


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self):
        super().__init__()
        self._mask: Optional[np.ndarray] = None
        self._scratch: dict = {}

    def forward(self, x, training=False):
        mask = scratch_buffer(self._scratch, "mask", x.shape, np.bool_)
        out = self.backend.relu(x, mask)
        self._mask = mask if training else None
        return out

    def backward(self, grad):
        if self._mask is None:
            raise LayerError("backward called without a training forward pass")
        return self.backend.relu_backward(grad, self._mask)


class LeakyReLU(Layer):
    """Leaky ReLU with slope ``alpha`` on the negative side (paper §5.1)."""

    def __init__(self, alpha: float = 0.3):
        super().__init__()
        if alpha < 0:
            raise LayerError(f"LeakyReLU alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x, training=False):
        out, mask = self.backend.leaky_relu(x, self.alpha)
        self._mask = mask if training else None
        return out

    def backward(self, grad):
        if self._mask is None:
            raise LayerError("backward called without a training forward pass")
        return self.backend.leaky_relu_backward(grad, self._mask, self.alpha)

    def get_config(self):
        return {"alpha": self.alpha}


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self):
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x, training=False):
        out = self.backend.sigmoid(x)
        self._out = out if training else None
        return out

    def backward(self, grad):
        if self._out is None:
            raise LayerError("backward called without a training forward pass")
        return self.backend.sigmoid_backward(grad, self._out)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self):
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x, training=False):
        out = self.backend.tanh(x)
        self._out = out if training else None
        return out

    def backward(self, grad):
        if self._out is None:
            raise LayerError("backward called without a training forward pass")
        return self.backend.tanh_backward(grad, self._out)


class Softmax(Layer):
    """Softmax over the last axis (the paper's output layer)."""

    def __init__(self):
        super().__init__()
        self._out: Optional[np.ndarray] = None

    def forward(self, x, training=False):
        out = self.backend.softmax(x)
        self._out = out if training else None
        return out

    def backward(self, grad):
        if self._out is None:
            raise LayerError("backward called without a training forward pass")
        return self.backend.softmax_backward(grad, self._out)


class Dropout(Layer):
    """Inverted dropout; identity at inference time.

    Randomness comes from the generator passed to ``forward`` (routed
    from ``Sequential.fit``'s ``rng`` so one seed reproduces a whole
    run).  An explicit ``seed`` overrides that routing with a private
    stream, and is also the fallback when no generator is supplied.
    """

    stochastic = True

    def __init__(self, rate: float, seed: Optional[int] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise LayerError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x, training=False, rng=None):
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        generator = self._rng if (rng is None or self.seed is not None) else rng
        keep = 1.0 - self.rate
        mask = (generator.random(x.shape) < keep).astype(x.dtype)
        mask /= np.asarray(keep, dtype=x.dtype)
        self._mask = mask
        return x * mask

    def backward(self, grad):
        if self._mask is None:
            return grad
        return grad * self._mask

    def get_config(self):
        return {"rate": self.rate, "seed": self.seed}


class Flatten(Layer):
    """Collapse all non-batch axes into one."""

    def __init__(self):
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x, training=False):
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad):
        if self._shape is None:
            raise LayerError("backward called without a forward pass")
        return grad.reshape(self._shape)

    def output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)


class Reshape(Layer):
    """Reshape the non-batch axes (e.g. 128 bits to ``(16, 8)`` for Conv/LSTM)."""

    def __init__(self, target_shape: Sequence[int]):
        super().__init__()
        self.target_shape = tuple(int(s) for s in target_shape)
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x, training=False):
        self._shape = x.shape
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad):
        if self._shape is None:
            raise LayerError("backward called without a forward pass")
        return grad.reshape(self._shape)

    def output_shape(self, input_shape):
        if int(np.prod(input_shape)) != int(np.prod(self.target_shape)):
            raise LayerError(
                f"cannot reshape {input_shape} into {self.target_shape}"
            )
        return self.target_shape

    def get_config(self):
        return {"target_shape": list(self.target_shape)}
