"""Tests for the committed benchmark artefacts and their validator.

``make bench`` regenerates ``benchmarks/BENCH_*.json``; these tests keep
the committed baselines well-formed and the validator honest about
rejecting garbage.
"""

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_module(name):
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


runner = _load_module("run_benchmarks")
checker = _load_module("check_regression")


def _report(**means):
    return {
        "suite": "x",
        "quick": False,
        "benchmarks": [
            {"name": name, "mean_s": mean, "stddev_s": 0.0, "rounds": 3}
            for name, mean in means.items()
        ],
    }


@pytest.mark.parametrize(
    "suite", ["nn_ops", "ciphers", "serve", "obs", "quant", "jobs"]
)
class TestCommittedBaselines:
    def test_baseline_exists_and_validates(self, suite):
        path = BENCH_DIR / f"BENCH_{suite}.json"
        assert path.exists(), f"missing committed baseline {path.name}"
        runner.validate_bench_file(path)

    def test_baseline_names_cover_suite(self, suite):
        report = json.loads((BENCH_DIR / f"BENCH_{suite}.json").read_text())
        names = {entry["name"] for entry in report["benchmarks"]}
        expected = {
            "nn_ops": {
                "test_mlp_iii_train_step_dtype[float32]",
                "test_mlp_iii_train_step_dtype[float64]",
                "test_inference_throughput",
            },
            "ciphers": {"test_gimli_full_rounds", "test_gimli_8_rounds"},
            "serve": {
                "serve_engine_classify[rows=8,threads=8]",
                "serve_http_classify[rows=8,threads=8]",
                "serve_http_distinguish[rows=8,threads=8]",
            },
            "obs": {
                "obs_off_mlp_iii_train_step[batch=256,float32]",
                "obs_on_mlp_iii_train_step[batch=256,float32]",
                "obs_span_disabled",
                "obs_span_enabled",
                "obs_log_json_line",
                "obs_counter_inc",
                "obs_histogram_observe",
            },
            "quant": {
                "predict_mlp_iii_f32_rows1",
                "predict_mlp_iii_int8_rows1",
                "predict_mlp_iii_f32_rows512",
                "predict_mlp_iii_int8_rows512",
                "predict_cnn_ii_int8_rows512",
                "predict_lstm_ii_int8_rows512",
                "serve_mlp_iii_int8_rows32",
                "serve_mlp_iii_int8_rows256",
            },
            "jobs": {
                "grid_bare_16cells",
                "queue_run_16cells",
                "queue_replay_16cells",
                "fit_data_parallel_1",
                "fit_data_parallel_2",
            },
        }[suite]
        assert expected <= names


class TestQuantBaseline:
    """The committed BENCH_quant.json is also the acceptance record."""

    def test_int8_mlp_iii_speedup_at_least_2x(self):
        report = json.loads((BENCH_DIR / "BENCH_quant.json").read_text())
        means = {
            entry["name"]: entry["mean_s"] for entry in report["benchmarks"]
        }
        for rows in (1, 512):
            f32 = means[f"predict_mlp_iii_f32_rows{rows}"]
            int8 = means[f"predict_mlp_iii_int8_rows{rows}"]
            assert f32 / int8 >= 2.0, (
                f"int8 MLP III at rows={rows}: {f32 / int8:.2f}x < 2x"
            )

    def test_speedup_extras_match_means(self):
        report = json.loads((BENCH_DIR / "BENCH_quant.json").read_text())
        means = {
            entry["name"]: entry["mean_s"] for entry in report["benchmarks"]
        }
        for entry in report["benchmarks"]:
            speedup = entry.get("speedup_vs_f32")
            if speedup is None:
                continue
            scheme = entry["scheme"]
            f32_name = entry["name"].replace(f"_{scheme}_", "_f32_")
            assert speedup == pytest.approx(
                means[f32_name] / entry["mean_s"], rel=1e-6
            )


class TestValidator:
    def _reject(self, tmp_path, payload, match):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(payload if isinstance(payload, str) else json.dumps(payload))
        with pytest.raises(ValueError, match=match):
            runner.validate_bench_file(path)

    def test_rejects_invalid_json(self, tmp_path):
        self._reject(tmp_path, "{not json", "invalid JSON")

    def test_rejects_missing_keys(self, tmp_path):
        self._reject(tmp_path, {"suite": "x", "quick": False}, "missing key")

    def test_rejects_empty_benchmarks(self, tmp_path):
        self._reject(
            tmp_path,
            {"suite": "x", "quick": False, "benchmarks": []},
            "non-empty",
        )

    def test_rejects_nonpositive_mean(self, tmp_path):
        self._reject(
            tmp_path,
            {
                "suite": "x",
                "quick": False,
                "benchmarks": [
                    {"name": "a", "mean_s": 0.0, "stddev_s": 0.0, "rounds": 1}
                ],
            },
            "non-positive mean_s",
        )

    def test_rejects_missing_entry_field(self, tmp_path):
        self._reject(
            tmp_path,
            {
                "suite": "x",
                "quick": False,
                "benchmarks": [{"name": "a", "mean_s": 1.0}],
            },
            "missing",
        )

    def test_compare_flags_only_real_regressions(self):
        rows, unmatched = checker.compare_reports(
            _report(a=0.10, b=0.10, c=0.10),
            _report(a=0.15, b=0.25, c=0.05),
            threshold=2.0,
        )
        by_name = {row["name"]: row for row in rows}
        assert not by_name["a"]["regressed"]  # 1.5x: inside the budget
        assert by_name["b"]["regressed"]  # 2.5x: fails
        assert not by_name["c"]["regressed"]  # speedup: fine
        assert unmatched == []

    def test_compare_reports_percentage_deltas(self):
        rows, _ = checker.compare_reports(
            _report(a=0.10, b=0.20), _report(a=0.15, b=0.10)
        )
        by_name = {row["name"]: row for row in rows}
        assert by_name["a"]["delta_pct"] == pytest.approx(50.0)
        assert by_name["b"]["delta_pct"] == pytest.approx(-50.0)

    def test_compare_reports_unmatched_names(self):
        rows, unmatched = checker.compare_reports(
            _report(old=0.1, shared=0.1), _report(new=0.1, shared=0.1)
        )
        assert [row["name"] for row in rows] == ["shared"]
        assert unmatched == ["new", "old"]

    def test_compare_rejects_silly_threshold(self):
        with pytest.raises(ValueError):
            checker.compare_reports(_report(a=1.0), _report(a=1.0), threshold=0.5)

    def test_accepts_wellformed(self, tmp_path):
        path = tmp_path / "BENCH_ok.json"
        path.write_text(
            json.dumps(
                {
                    "suite": "ok",
                    "quick": True,
                    "benchmarks": [
                        {
                            "name": "a",
                            "mean_s": 0.01,
                            "stddev_s": 0.001,
                            "rounds": 3,
                        }
                    ],
                }
            )
        )
        runner.validate_bench_file(path)
