"""Table 3: manual architecture search on 8-round Gimli-Cipher.

Ten networks (MLP I-VI, LSTM I-II, CNN I-II) trained on the same
distinguisher data; the paper reports parameter counts, training time
(on an RTX 8000) and accuracy.  Absolute seconds are hardware-bound —
what reproduces is the ordering: MLPs fastest and most accurate, LSTMs
roughly an order of magnitude slower, CNNs stuck at accuracy 0.5.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.core.scenario import GimliCipherScenario
from repro.experiments.config import default_scale, get_dtype, get_workers
from repro.jobs import bind_run, run_cells
from repro.nn.architectures import (
    TABLE3_NETWORKS,
    TABLE3_PAPER_ACCURACY,
    TABLE3_PAPER_PARAMS,
    get_table3_network,
)
from repro.obs.trace import span
from repro.utils.rng import derive_rng, make_rng


def _run_table3_cell(payload: Dict) -> Dict:
    """Build, train and evaluate one network on the shared dataset.

    Module-level and payload-complete so it can run in a
    :func:`~repro.core.parallel.run_grid` worker process; the training
    data and both seed-derived generators travel in the payload, making
    the row independent of which process computes it (``training_time_s``
    is wall-clock and machine-dependent, everything else deterministic).
    """
    name = payload["network"]
    with span("table3.cell", network=name):
        return _table3_cell_body(payload, name)


def _table3_cell_body(payload: Dict, name: str) -> Dict:
    x_train, y_train = payload["x_train"], payload["y_train"]
    model = get_table3_network(name)
    model.build((x_train.shape[1],), rng=payload["weights_rng"])
    model.compile(dtype=payload["dtype"])
    start = time.perf_counter()
    model.fit(
        x_train,
        y_train,
        epochs=payload["epochs"],
        batch_size=payload["batch_size"],
        rng=payload["batches_rng"],
    )
    elapsed = time.perf_counter() - start
    _, metrics = model.evaluate(payload["x_val"], payload["y_val"])
    return {
        "network": name,
        "activation": TABLE3_NETWORKS[name]["activation"],
        "parameters": model.count_params(),
        "paper_parameters": TABLE3_PAPER_PARAMS[name],
        "training_time_s": elapsed,
        "measured": metrics["accuracy"],
        "paper": TABLE3_PAPER_ACCURACY[name],
    }


def run_table3(
    networks: Optional[Sequence[str]] = None,
    total_rounds: int = 8,
    num_samples: Optional[int] = None,
    epochs: Optional[int] = None,
    batch_size: int = 256,
    rng=None,
    workers: Optional[int] = None,
    dtype: Optional[str] = None,
    queue_dir=None,
) -> Dict:
    """Regenerate Table 3: per-network parameters, training time, accuracy.

    All networks see the *same* dataset (fresh per invocation), as in a
    manual architecture search.  ``networks`` defaults to all ten;
    ``workers``/``dtype`` default to ``REPRO_WORKERS``/``REPRO_DTYPE``.

    The shared dataset is generated once in the parent (sharded across
    ``workers`` processes when set); each network then trains as an
    independent grid cell, in ``workers`` processes via
    :func:`~repro.core.parallel.run_grid`.  Per-network seed material
    is derived up front in list order, so every worker count — and the
    historical serial runner — produces identical rows (modulo the
    wall-clock ``training_time_s``).

    ``queue_dir`` makes the grid resumable through :mod:`repro.jobs`:
    the shared dataset is regenerated from the pinned seed on every
    invocation (cheap via the dataset cache), completed networks replay
    from disk, and only the missing cells train.  ``rng`` must then be
    an integer seed or ``None``.
    """
    scale = default_scale()
    n_samples = num_samples if num_samples is not None else scale.table3_samples
    n_epochs = epochs if epochs is not None else scale.table3_epochs
    names = list(networks) if networks is not None else list(TABLE3_NETWORKS)
    workers = workers if workers is not None else get_workers()
    dtype = dtype if dtype is not None else get_dtype()
    if queue_dir is not None:
        rng = bind_run(
            queue_dir,
            "table3",
            {
                "networks": names,
                "total_rounds": total_rounds,
                "num_samples": num_samples,
                "epochs": epochs,
                "batch_size": batch_size,
                "dtype": dtype,
            },
            rng,
        )
    generator = make_rng(rng)

    scenario = GimliCipherScenario(total_rounds=total_rounds)
    n_per_class = max(1, n_samples // scenario.num_classes)
    x, y = scenario.generate_dataset(
        n_per_class, rng=derive_rng(generator, "data"), workers=workers
    )
    cut = int(round(x.shape[0] * 0.9))
    x_train, y_train = x[:cut], y[:cut]
    x_val, y_val = x[cut:], y[cut:]

    payloads = [
        {
            "network": name,
            "x_train": x_train,
            "y_train": y_train,
            "x_val": x_val,
            "y_val": y_val,
            "epochs": n_epochs,
            "batch_size": batch_size,
            "dtype": dtype,
            "weights_rng": derive_rng(generator, "weights", name),
            "batches_rng": derive_rng(generator, "batches", name),
        }
        for name in names
    ]
    specs = [
        {
            "experiment": "table3",
            "network": name,
            "total_rounds": total_rounds,
            "num_samples": x.shape[0],
            "epochs": n_epochs,
            "batch_size": batch_size,
            "dtype": dtype,
            "seed": rng if queue_dir is not None else None,
        }
        for name in names
    ]
    rows = run_cells(
        _run_table3_cell, payloads, specs=specs, workers=workers,
        label="table3", queue_dir=queue_dir,
    )
    return {
        "experiment": "table3",
        "num_samples": x.shape[0],
        "epochs": n_epochs,
        "rounds": total_rounds,
        "rows": rows,
    }
