"""Engineering benchmarks: cipher substrate throughput.

The paper's data pipeline evaluates hundreds of thousands of
round-reduced permutations; these benches time the batched primitives
(states per second) that bound experiment wall-clock.
"""

import numpy as np
import pytest

from repro.ciphers.gimli import gimli_permute_batch
from repro.ciphers.gimli_cipher import gimli_aead_reduced_c0_batch
from repro.ciphers.speck import encrypt_batch as speck_encrypt
from repro.ciphers.toyspeck import encrypt_batch as toyspeck_encrypt
from repro.core.scenario import GimliHashScenario

BATCH = 1 << 14


@pytest.fixture(scope="module")
def gimli_states():
    rng = np.random.default_rng(2)
    return rng.integers(0, 1 << 32, size=(BATCH, 12), dtype=np.uint64).astype(
        np.uint32
    )


def test_gimli_full_rounds(benchmark, gimli_states):
    out = benchmark(gimli_permute_batch, gimli_states, 24)
    assert out.shape == gimli_states.shape


def test_gimli_8_rounds(benchmark, gimli_states):
    out = benchmark(gimli_permute_batch, gimli_states, 8)
    assert out.shape == gimli_states.shape


def test_gimli_aead_c0_pipeline(benchmark):
    rng = np.random.default_rng(3)
    nonces = rng.integers(0, 1 << 32, size=(BATCH, 4), dtype=np.uint64).astype(
        np.uint32
    )
    keys = rng.integers(0, 1 << 32, size=(BATCH, 8), dtype=np.uint64).astype(
        np.uint32
    )
    out = benchmark(gimli_aead_reduced_c0_batch, nonces, keys, 8)
    assert out.shape == (BATCH, 4)


def test_speck_encrypt(benchmark):
    rng = np.random.default_rng(4)
    pts = rng.integers(0, 1 << 16, size=(BATCH, 2), dtype=np.uint16)
    keys = rng.integers(0, 1 << 16, size=(BATCH, 4), dtype=np.uint16)
    out = benchmark(speck_encrypt, pts, keys, 22)
    assert out.shape == (BATCH, 2)


def test_toyspeck_encrypt(benchmark):
    rng = np.random.default_rng(5)
    pts = rng.integers(0, 256, size=(BATCH, 2), dtype=np.uint8)
    keys = rng.integers(0, 256, size=(BATCH, 4), dtype=np.uint8)
    out = benchmark(toyspeck_encrypt, pts, keys, 8)
    assert out.shape == (BATCH, 2)


def test_scenario_dataset_generation(benchmark):
    scenario = GimliHashScenario(rounds=8)
    x, y = benchmark(scenario.generate_dataset, 2048, 9)
    assert x.shape == (4096, 128)
