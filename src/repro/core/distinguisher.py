"""Algorithm 2 of the paper: the ML-assisted differential distinguisher.

Offline phase: generate labelled output-difference samples from the
(round-reduced) cipher, train the classifier, and *abort* if the
training accuracy does not exceed the random baseline ``1/t``
significantly.  Online phase: query the unknown oracle the same way,
measure the class-prediction accuracy ``a'``, and decide CIPHER when
``a'`` is closer to the training accuracy ``a`` than to ``1/t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.oracle import Oracle
from repro.core.scenario import DifferentialScenario
from repro.core.statistics import (
    advantage,
    binomial_pvalue,
    decision_threshold,
)
from repro.errors import DistinguisherAborted, DistinguisherError
from repro.nn.architectures import minimal_three_layer
from repro.nn.callbacks import History
from repro.nn.model import Sequential
from repro.utils.rng import derive_rng, make_rng


@dataclass
class TrainingReport:
    """Outcome of the offline phase."""

    training_accuracy: float
    validation_accuracy: float
    num_samples: int
    num_classes: int
    history: History = field(repr=False)
    aborted: bool = False

    @property
    def baseline(self) -> float:
        """The random-guessing accuracy ``1/t``."""
        return 1.0 / self.num_classes

    @property
    def advantage(self) -> float:
        """Validation accuracy over the baseline."""
        return self.validation_accuracy - self.baseline

    @property
    def offline_log2(self) -> float:
        """``log2`` of the offline data complexity."""
        return float(np.log2(self.num_samples))


@dataclass
class OnlineResult:
    """Outcome of the online phase against one oracle."""

    accuracy: float
    num_samples: int
    num_classes: int
    training_accuracy: float
    threshold: float
    p_value: float
    is_cipher: bool

    @property
    def verdict(self) -> str:
        """``"CIPHER"`` or ``"RANDOM"``."""
        return "CIPHER" if self.is_cipher else "RANDOM"

    @property
    def online_log2(self) -> float:
        """``log2`` of the online data complexity."""
        return float(np.log2(self.num_samples))


class MLDistinguisher:
    """The paper's distinguisher, bound to a scenario and a classifier.

    ``model`` defaults to the paper's "three layer neural network"
    conclusion (Dense 128 - Dense 1024 - softmax); any
    :class:`~repro.nn.model.Sequential` with a ``t``-way softmax output
    works.

    ``workers`` shards offline dataset generation across processes
    (``None`` keeps the historical single-stream generator; see
    :mod:`repro.core.parallel`).  ``dtype`` selects the network compute
    precision (``"float32"`` or ``"float64"``; ``None`` keeps the
    model's own default).  ``data_parallel`` spreads each training batch
    over that many gradient-shard threads (bit-identical for any count;
    see :meth:`repro.nn.model.Sequential.fit`); ``None`` defers to the
    ``REPRO_DATA_PARALLEL`` knob.
    """

    def __init__(
        self,
        scenario: DifferentialScenario,
        model: Optional[Sequential] = None,
        epochs: int = 5,
        batch_size: int = 128,
        rng=None,
        workers: Optional[int] = None,
        dtype=None,
        data_parallel: Optional[int] = None,
    ):
        if epochs <= 0:
            raise DistinguisherError(f"epochs must be positive, got {epochs}")
        self.scenario = scenario
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.workers = workers
        self.dtype = dtype
        self.data_parallel = data_parallel
        self._rng = make_rng(rng)
        if model is None:
            model = minimal_three_layer(num_classes=scenario.num_classes)
        self.model = model
        self.report: Optional[TrainingReport] = None

    # -- offline phase -------------------------------------------------------

    def train(
        self,
        num_samples: int,
        validation_split: float = 0.1,
        significance: float = 1e-3,
        verbose: bool = False,
    ) -> TrainingReport:
        """Run the offline phase on ``num_samples`` total samples.

        Aborts (raising :class:`DistinguisherAborted`) when the
        validation accuracy is not significantly above ``1/t`` at the
        ``significance`` level — the paper's "if a = 1/t: abort" step,
        made statistical.
        """
        t = self.scenario.num_classes
        n_per_class = max(1, num_samples // t)
        data_rng = derive_rng(self._rng, "offline-data")
        x, y = self.scenario.generate_dataset(
            n_per_class, rng=data_rng, workers=self.workers
        )
        if not self.model.layers or self.model.input_shape is None:
            self.model.build(x.shape[1:], derive_rng(self._rng, "weights"))
        if self.model.loss is None:
            self.model.compile(dtype=self.dtype)
        elif self.dtype is not None:
            self.model.set_dtype(self.dtype)
        cut = int(round(x.shape[0] * (1.0 - validation_split)))
        if cut <= 0 or cut >= x.shape[0]:
            raise DistinguisherError(
                "validation split leaves an empty train or validation set"
            )
        history = self.model.fit(
            x[:cut],
            y[:cut],
            epochs=self.epochs,
            batch_size=self.batch_size,
            rng=derive_rng(self._rng, "batches"),
            verbose=verbose,
            data_parallel=self.data_parallel,
        )
        _, metrics = self.model.evaluate(x[cut:], y[cut:])
        val_accuracy = metrics["accuracy"]
        val_n = x.shape[0] - cut
        p_value = binomial_pvalue(
            int(round(val_accuracy * val_n)), val_n, 1.0 / t
        )
        aborted = p_value >= significance
        self.report = TrainingReport(
            training_accuracy=history.last("accuracy"),
            validation_accuracy=val_accuracy,
            num_samples=x.shape[0],
            num_classes=t,
            history=history,
            aborted=aborted,
        )
        if aborted:
            raise DistinguisherAborted(
                f"training accuracy {val_accuracy:.4f} is not significantly "
                f"above 1/t = {1.0 / t:.4f} (p = {p_value:.3f}); "
                "Algorithm 2 aborts"
            )
        return self.report

    # -- online phase --------------------------------------------------------

    def test(
        self, oracle: Oracle, num_samples: int, rng=None
    ) -> OnlineResult:
        """Run the online phase against ``oracle`` and decide its identity."""
        if self.report is None or self.report.aborted:
            raise DistinguisherError(
                "run a successful offline phase before testing an oracle"
            )
        t = self.scenario.num_classes
        n_per_class = max(1, num_samples // t)
        data_rng = make_rng(rng) if rng is not None else derive_rng(
            self._rng, "online-data"
        )
        x, y = self.scenario.generate_dataset(
            n_per_class, rng=data_rng, oracle=oracle
        )
        predictions = self.model.predict_classes(x)
        accuracy = float((predictions == y).mean())
        reference = self.report.validation_accuracy
        threshold = decision_threshold(reference, t)
        p_value = binomial_pvalue(
            int(round(accuracy * x.shape[0])), x.shape[0], 1.0 / t
        )
        return OnlineResult(
            accuracy=accuracy,
            num_samples=x.shape[0],
            num_classes=t,
            training_accuracy=reference,
            threshold=threshold,
            p_value=p_value,
            is_cipher=accuracy > threshold,
        )

    def distinguish(self, oracle: Oracle, num_samples: int, rng=None) -> str:
        """Convenience wrapper returning ``"CIPHER"`` or ``"RANDOM"``."""
        return self.test(oracle, num_samples, rng).verdict

    @property
    def training_advantage(self) -> float:
        """Validation advantage over ``1/t`` from the offline phase."""
        if self.report is None:
            raise DistinguisherError("no offline phase has been run")
        return advantage(
            self.report.validation_accuracy, self.scenario.num_classes
        )
