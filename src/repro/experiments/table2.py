"""Table 2: neural distinguisher accuracy on round-reduced Gimli.

The paper reports, for ``2^17.6`` offline samples and 20 epochs:

=======  ==========  ============
Rounds   Gimli-Hash  Gimli-Cipher
=======  ==========  ============
6        0.9689      0.9528
7        0.7229      0.6340
8        0.5219      0.5099
=======  ==========  ============

This experiment retrains both scenario families for the same round
counts and additionally runs the *online* phase against both a cipher
and a random oracle (the part of Algorithm 2 Table 2 doesn't show),
reporting the verdicts.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.distinguisher import MLDistinguisher
from repro.core.scenario import GimliCipherScenario, GimliHashScenario
from repro.errors import DistinguisherAborted
from repro.experiments.config import default_scale, get_dtype, get_workers
from repro.jobs import bind_run, run_cells
from repro.nn.architectures import mlp_ii
from repro.obs.trace import span
from repro.utils.rng import derive_rng, make_rng

#: Accuracies printed in the paper's Table 2.
PAPER_TABLE2 = {
    ("hash", 6): 0.9689,
    ("hash", 7): 0.7229,
    ("hash", 8): 0.5219,
    ("cipher", 6): 0.9528,
    ("cipher", 7): 0.6340,
    ("cipher", 8): 0.5099,
}

#: Minimum offline samples per round count.  The 8-round signal is a
#: ~1% accuracy edge; certifying it needs close to the paper's own
#: 2^17.6 budget, so scaled-down runs are floored here (an 8-round run
#: with 10k samples would not be the paper's experiment at all).
#: An explicit ``offline_samples`` argument overrides the floor.
ROUND_MIN_SAMPLES = {8: 180_000}

#: Minimum online samples and epochs per round count, same rationale
#: (the paper's own online budget is 2^14.3 ≈ 20k).
ROUND_MIN_ONLINE = {8: 1 << 14}
ROUND_MIN_EPOCHS = {8: 5}


def _make_scenario(target: str, rounds: int):
    if target == "hash":
        return GimliHashScenario(rounds=rounds)
    if target == "cipher":
        return GimliCipherScenario(total_rounds=rounds)
    raise ValueError(f"unknown target {target!r}; expected 'hash' or 'cipher'")


def _run_table2_cell(payload: Dict) -> Dict:
    """Train and test one ``(target, rounds)`` cell.

    Module-level (so it pickles into :func:`~repro.core.parallel.run_grid`
    worker processes) and fully self-contained: every size and
    seed-derived generator arrives pre-resolved in ``payload``, so the
    cell computes the same row no matter which process runs it.
    """
    target, r = payload["target"], payload["rounds"]
    with span("table2.cell", target=target, rounds=r):
        return _table2_cell_body(payload, target, r)


def _table2_cell_body(payload: Dict, target: str, r: int) -> Dict:
    scenario = _make_scenario(target, r)
    distinguisher = MLDistinguisher(
        scenario,
        model=mlp_ii(),
        epochs=payload["epochs"],
        batch_size=256,
        rng=payload["cell_rng"],
        workers=payload["data_workers"],
        dtype=payload["dtype"],
    )
    row = {
        "target": target,
        "rounds": r,
        "paper": PAPER_TABLE2.get((target, r)),
        "offline_samples": payload["offline_samples"],
    }
    try:
        report = distinguisher.train(
            num_samples=payload["offline_samples"], significance=0.05
        )
    except DistinguisherAborted:
        row.update({"measured": 0.5, "aborted": True})
        return row
    row.update({"measured": report.validation_accuracy, "aborted": False})
    if payload["run_online"]:
        row_online = payload["online_samples"]
        cipher_result = distinguisher.test(scenario.cipher_oracle(), row_online)
        random_result = distinguisher.test(
            scenario.random_oracle(rng=payload["ro_rng"]), row_online
        )
        row.update(
            {
                "online_samples": row_online,
                "cipher_accuracy": cipher_result.accuracy,
                "cipher_verdict": cipher_result.verdict,
                "random_accuracy": random_result.accuracy,
                "random_verdict": random_result.verdict,
            }
        )
    return row


def run_table2(
    rounds: Sequence[int] = (6, 7, 8),
    targets: Sequence[str] = ("hash", "cipher"),
    offline_samples: Optional[int] = None,
    online_samples: Optional[int] = None,
    epochs: Optional[int] = None,
    run_online: bool = True,
    rng=None,
    workers: Optional[int] = None,
    dtype: Optional[str] = None,
    queue_dir=None,
) -> Dict:
    """Regenerate Table 2 (accuracy per round count and target).

    Defaults come from ``REPRO_SCALE``; pass explicit sizes to override.
    ``workers``/``dtype`` default to ``REPRO_WORKERS``/``REPRO_DTYPE``.
    Each row reports the offline validation accuracy plus — when
    ``run_online`` — the online accuracies and verdicts against the
    cipher and a random oracle.

    Cells of the (target, rounds) grid are independent models; with
    ``workers`` set they train in that many worker processes.  All
    seed material is derived up front, in the grid's serial iteration
    order, so the rows are identical for every worker count (and, for
    ``workers=None``, identical to the historical serial runner —
    except after an aborted cell, whose online-oracle derivation the
    old runner skipped; deriving it unconditionally is what makes the
    stream independent of cell outcomes).
    Cells inside pool workers generate their datasets with one sharded
    worker (daemonic processes cannot fork grandchildren); sharded
    generation is worker-count-invariant, so this doesn't change rows.

    ``queue_dir`` makes the grid resumable: every cell becomes a
    persistent job (see :mod:`repro.jobs`), completed cells are skipped
    on re-runs, and the seed is pinned in the queue so an interrupted +
    resumed grid returns rows bit-identical to an uninterrupted one.
    ``rng`` must then be an integer seed or ``None``.
    """
    scale = default_scale()
    offline = offline_samples if offline_samples is not None else scale.offline_samples
    online = online_samples if online_samples is not None else scale.online_samples
    n_epochs = epochs if epochs is not None else scale.table2_epochs
    workers = workers if workers is not None else get_workers()
    dtype = dtype if dtype is not None else get_dtype()
    if queue_dir is not None:
        rng = bind_run(
            queue_dir,
            "table2",
            {
                "rounds": list(rounds),
                "targets": list(targets),
                "offline_samples": offline_samples,
                "online_samples": online_samples,
                "epochs": epochs,
                "run_online": run_online,
                "dtype": dtype,
            },
            rng,
        )
    generator = make_rng(rng)
    # ``workers=None`` keeps the legacy single-stream dataset path;
    # any integer switches every cell to the sharded generator.
    data_workers = None if workers is None else 1
    payloads = []
    specs = []
    for target in targets:
        if target not in ("hash", "cipher"):
            raise ValueError(
                f"unknown target {target!r}; expected 'hash' or 'cipher'"
            )
        for r in rounds:
            cell_rng = derive_rng(generator, target, r)
            row_offline = offline
            row_online = online
            row_epochs = n_epochs
            if offline_samples is None:
                row_offline = max(offline, ROUND_MIN_SAMPLES.get(r, 0))
            if online_samples is None:
                row_online = max(online, ROUND_MIN_ONLINE.get(r, 0))
            if epochs is None:
                row_epochs = max(n_epochs, ROUND_MIN_EPOCHS.get(r, 0))
            ro_rng = (
                derive_rng(generator, "ro", target, r) if run_online else None
            )
            payloads.append(
                {
                    "target": target,
                    "rounds": r,
                    "offline_samples": row_offline,
                    "online_samples": row_online,
                    "epochs": row_epochs,
                    "run_online": run_online,
                    "cell_rng": cell_rng,
                    "ro_rng": ro_rng,
                    "data_workers": data_workers,
                    "dtype": dtype,
                }
            )
            specs.append(
                {
                    "experiment": "table2",
                    "target": target,
                    "rounds": r,
                    "offline_samples": row_offline,
                    "online_samples": row_online if run_online else None,
                    "epochs": row_epochs,
                    "run_online": run_online,
                    "dtype": dtype,
                    "seed": rng if queue_dir is not None else None,
                }
            )
    rows = run_cells(
        _run_table2_cell, payloads, specs=specs, workers=workers,
        label="table2", queue_dir=queue_dir,
    )
    return {
        "experiment": "table2",
        "offline_samples": offline,
        "epochs": n_epochs,
        "rows": rows,
    }
