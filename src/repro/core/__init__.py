"""The paper's contribution: ML-assisted differential distinguishers.

``scenario`` defines the chosen-difference experiments (which primitive,
which ``t`` input differences, what is observed), ``oracle`` the
CIPHER-vs-RANDOM game, ``distinguisher`` Algorithm 2 itself, and
``statistics``/``complexity`` the supporting analysis (expected random
accuracy, hypothesis tests, data-complexity accounting).
"""

from repro.core.complexity import (
    DistinguisherComplexity,
    gimli8_paper_complexity,
    log2_samples,
)
from repro.core.distinguisher import (
    MLDistinguisher,
    OnlineResult,
    TrainingReport,
)
from repro.core.key_recovery import RecoveryResult, SpeckKeyRecovery
from repro.core.extra_scenarios import (
    Gift16Scenario,
    Gift64Scenario,
    SalsaScenario,
    TriviumScenario,
)
from repro.core.oracle import CipherOracle, Oracle, RandomOracle
from repro.core.related_key import (
    RelatedKeyScenario,
    SpeckRelatedKeyScenario,
    ToySpeckRelatedKeyScenario,
)
from repro.core.scenario import (
    DifferentialScenario,
    GimliCipherScenario,
    GimliHashScenario,
    GimliPermutationScenario,
    SpeckRealOrRandomScenario,
    ToySpeckScenario,
)
from repro.core.statistics import (
    advantage,
    binomial_pvalue,
    decision_threshold,
    expected_random_accuracy,
    required_online_samples,
)

__all__ = [
    "CipherOracle",
    "DifferentialScenario",
    "DistinguisherComplexity",
    "Gift16Scenario",
    "Gift64Scenario",
    "SalsaScenario",
    "TriviumScenario",
    "GimliCipherScenario",
    "GimliHashScenario",
    "GimliPermutationScenario",
    "MLDistinguisher",
    "OnlineResult",
    "Oracle",
    "RandomOracle",
    "RecoveryResult",
    "RelatedKeyScenario",
    "SpeckRelatedKeyScenario",
    "ToySpeckRelatedKeyScenario",
    "SpeckKeyRecovery",
    "SpeckRealOrRandomScenario",
    "ToySpeckScenario",
    "TrainingReport",
    "advantage",
    "binomial_pvalue",
    "decision_threshold",
    "expected_random_accuracy",
    "gimli8_paper_complexity",
    "log2_samples",
    "required_online_samples",
]
