"""Job-queue orchestration harness: writes ``BENCH_jobs.json``.

Times the overhead the persistent queue adds on top of the bare grid
runner (submit + atomic state writes + JSON result round-trip per
cell), the replay path a resumed run takes (all cells already done on
disk), and the data-parallel ``fit`` against the plain single-stream
fit on the same workload.  Entries follow the shared
``BENCH_<suite>.json`` schema (``name`` / ``mean_s`` / ``stddev_s`` /
``rounds``), so ``check_regression.py`` gates on the means exactly as
it does for the other suites.

Usage::

    PYTHONPATH=src python benchmarks/bench_jobs.py [--quick] [--output-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro.core.parallel import run_grid  # noqa: E402
from repro.jobs import run_cells  # noqa: E402
from repro.nn import Dense, ReLU, Sequential, Softmax  # noqa: E402
from repro.obs import log as obs_log  # noqa: E402

GRID_CELLS = 16
FIT_SAMPLES = 2048
FIT_EPOCHS = 2


def _time(fn, rounds, warmup):
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return samples


def _entry(name, samples, **extras):
    entry = {
        "name": name,
        "mean_s": statistics.fmean(samples),
        "stddev_s": statistics.pstdev(samples),
        "rounds": len(samples),
    }
    entry.update(extras)
    return entry


def _cell(payload):
    # a near-free cell: what remains is the orchestration overhead
    return {"value": payload["value"] * 2}


def _payloads():
    return [{"value": i} for i in range(GRID_CELLS)]


def _specs():
    return [{"experiment": "bench", "value": i} for i in range(GRID_CELLS)]


def _queued_run():
    with tempfile.TemporaryDirectory() as tmp:
        run_cells(_cell, _payloads(), specs=_specs(), queue_dir=tmp)


def _queued_replay_factory():
    # one persistent directory, pre-completed: each round is pure replay
    tmp = tempfile.TemporaryDirectory()
    run_cells(_cell, _payloads(), specs=_specs(), queue_dir=tmp.name)

    def replay():
        run_cells(_cell, _payloads(), specs=_specs(), queue_dir=tmp.name)

    return replay, tmp


def _fit_data(seed=7):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(FIT_SAMPLES, 16)).astype(np.float64)
    y = (x.sum(axis=1) > 0).astype(int)
    return x, y


def _fit_once(data_parallel):
    x, y = _fit_data()
    model = Sequential([Dense(32), ReLU(), Dense(2), Softmax()])
    model.build((16,), np.random.default_rng(5)).compile()
    model.fit(
        x, y, epochs=FIT_EPOCHS, batch_size=256,
        rng=np.random.default_rng(6), data_parallel=data_parallel,
    )


def run(quick: bool) -> dict:
    # Quick mode cuts rounds, never shapes: entry names must match the
    # committed full-mode baseline so check_regression compares them.
    grid_rounds = 3 if quick else 15
    fit_rounds = 2 if quick else 6
    warmup = 1
    entries = []

    samples = _time(lambda: run_grid(_cell, _payloads()), grid_rounds, warmup)
    grid_mean = statistics.fmean(samples)
    entries.append(_entry("grid_bare_16cells", samples, cells=GRID_CELLS))

    samples = _time(_queued_run, grid_rounds, warmup)
    queued_mean = statistics.fmean(samples)
    entries.append(
        _entry(
            "queue_run_16cells",
            samples,
            cells=GRID_CELLS,
            overhead_ms_per_cell=(queued_mean - grid_mean) / GRID_CELLS * 1e3,
        )
    )

    replay, tmp = _queued_replay_factory()
    try:
        samples = _time(replay, grid_rounds, warmup)
    finally:
        tmp.cleanup()
    entries.append(_entry("queue_replay_16cells", samples, cells=GRID_CELLS))

    for n in (1, 2):
        samples = _time(lambda n=n: _fit_once(n), fit_rounds, warmup)
        entries.append(
            _entry(
                f"fit_data_parallel_{n}",
                samples,
                samples_per_fit=FIT_SAMPLES,
                epochs=FIT_EPOCHS,
            )
        )

    return {
        "suite": "jobs",
        "quick": bool(quick),
        "grid_cells": GRID_CELLS,
        "benchmarks": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="few-round smoke timings"
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=BENCH_DIR,
        help="where to write BENCH_jobs.json (default: benchmarks/)",
    )
    args = parser.parse_args(argv)
    obs_log.configure(level="warning")  # timings, not heartbeats
    report = run(args.quick)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    out_path = args.output_dir / "BENCH_jobs.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    for entry in report["benchmarks"]:
        overhead = entry.get("overhead_ms_per_cell")
        note = f"  ({overhead:.3f} ms/cell overhead)" if overhead else ""
        print(f"{entry['name']}: {entry['mean_s'] * 1e3:.3f} ms{note}")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
