"""Tests for the content-addressed dataset cache."""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.parallel as parallel
from repro.core.cache import (
    CACHE_ENV_VAR,
    DatasetCache,
    dataset_cache_key,
    scenario_fingerprint,
)
from repro.core.parallel import generate_dataset_sharded, seed_sequence_from
from repro.core.scenario import GimliHashScenario, ToySpeckScenario
from repro.errors import DistinguisherError


@pytest.fixture
def cache(tmp_path):
    return DatasetCache(str(tmp_path / "cache"))


class TestCacheKey:
    def test_deterministic(self):
        a = dataset_cache_key(
            ToySpeckScenario(), 100, 64, True, np.random.SeedSequence(7)
        )
        b = dataset_cache_key(
            ToySpeckScenario(), 100, 64, True, np.random.SeedSequence(7)
        )
        assert a == b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_per_class": 101},
            {"shard_size": 32},
            {"shuffle": False},
            {"seed_seq": np.random.SeedSequence(8)},
            {"seed_seq": np.random.SeedSequence(7).spawn(1)[0]},
            {"scenario": GimliHashScenario(rounds=4)},
            {"scenario": ToySpeckScenario(rounds=3)},
        ],
    )
    def test_any_input_changes_key(self, kwargs):
        base = dict(
            scenario=ToySpeckScenario(),
            n_per_class=100,
            shard_size=64,
            shuffle=True,
            seed_seq=np.random.SeedSequence(7),
        )
        assert dataset_cache_key(**base) != dataset_cache_key(**{**base, **kwargs})

    def test_fingerprint_sees_nested_objects(self):
        # GimliHashScenario holds a permutation *object*; its attributes
        # must reach the fingerprint (two round counts must differ).
        a = scenario_fingerprint(GimliHashScenario(rounds=4))
        b = scenario_fingerprint(GimliHashScenario(rounds=6))
        assert a != b


class TestDatasetCache:
    def test_store_then_load_roundtrip(self, cache, rng):
        x = rng.normal(size=(8, 5)).astype(np.float32)
        y = rng.integers(0, 2, size=8)
        cache.store("k" * 64, x, y)
        loaded = cache.load("k" * 64)
        assert loaded is not None
        assert np.array_equal(loaded[0], x) and np.array_equal(loaded[1], y)

    def test_miss_returns_none(self, cache):
        assert cache.load("0" * 64) is None

    def test_corrupt_entry_is_removed(self, cache, tmp_path):
        cache.store("c" * 64, np.zeros(3), np.zeros(3))
        path = cache._path("c" * 64)
        with open(path, "wb") as handle:
            handle.write(b"not a zip file")
        assert cache.load("c" * 64) is None
        import os

        assert not os.path.exists(path)

    def test_empty_root_rejected(self):
        with pytest.raises(DistinguisherError):
            DatasetCache("")

    def test_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert DatasetCache.from_env() is None
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        assert DatasetCache.from_env().root == str(tmp_path)


class TestShardedGenerationCaching:
    def test_hit_is_bit_identical_and_skips_generation(self, cache, monkeypatch):
        scenario = ToySpeckScenario()
        fresh = generate_dataset_sharded(
            scenario, 200, rng=5, shard_size=64, cache=cache
        )
        # Second run must be served from disk: make actual generation blow up.
        def boom(job):
            raise AssertionError("cache hit should not regenerate shards")

        monkeypatch.setattr(parallel, "_run_shard", boom)
        hit = generate_dataset_sharded(
            scenario, 200, rng=5, shard_size=64, cache=cache
        )
        assert np.array_equal(fresh[0], hit[0])
        assert np.array_equal(fresh[1], hit[1])

    def test_hit_matches_uncached_result(self, cache):
        scenario = ToySpeckScenario()
        plain = generate_dataset_sharded(scenario, 150, rng=9, shard_size=64)
        generate_dataset_sharded(scenario, 150, rng=9, shard_size=64, cache=cache)
        cached = generate_dataset_sharded(
            scenario, 150, rng=9, shard_size=64, cache=cache
        )
        assert np.array_equal(plain[0], cached[0])
        assert np.array_equal(plain[1], cached[1])

    def test_live_generator_stream_independent_of_hit(self, cache):
        scenario = ToySpeckScenario()
        # Miss then hit: the caller's generator must advance identically,
        # so follow-up draws agree between the two runs.
        rng_a = np.random.default_rng(3)
        generate_dataset_sharded(scenario, 100, rng=rng_a, shard_size=64, cache=cache)
        after_miss = rng_a.integers(0, 1 << 30)

        rng_b = np.random.default_rng(3)
        generate_dataset_sharded(scenario, 100, rng=rng_b, shard_size=64, cache=cache)
        after_hit = rng_b.integers(0, 1 << 30)
        assert after_miss == after_hit

    def test_env_var_enables_caching(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "env-cache"))
        scenario = ToySpeckScenario()
        generate_dataset_sharded(scenario, 100, rng=2, shard_size=64)
        entries = list((tmp_path / "env-cache").glob("*.npz"))
        assert len(entries) == 1

    def test_disabled_without_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        scenario = ToySpeckScenario()
        generate_dataset_sharded(scenario, 100, rng=2, shard_size=64)
        assert not list(tmp_path.glob("*.npz"))

    def test_seed_sequence_entropy_reaches_key(self, cache):
        # Same params, different seeds: two distinct cache entries.
        scenario = ToySpeckScenario()
        generate_dataset_sharded(scenario, 100, rng=1, shard_size=64, cache=cache)
        generate_dataset_sharded(scenario, 100, rng=2, shard_size=64, cache=cache)
        import os

        assert len([f for f in os.listdir(cache.root) if f.endswith(".npz")]) == 2


class TestDifferenceSetInKey:
    """The fingerprint must carry the full difference set (search PR)."""

    def test_single_bit_mask_change_changes_fingerprint(self):
        a = ToySpeckScenario(deltas=(0x0040, 0x2000))
        b = ToySpeckScenario(deltas=(0x0041, 0x2000))
        assert scenario_fingerprint(a) != scenario_fingerprint(b)

    def test_single_bit_mask_change_changes_cache_key(self):
        a = ToySpeckScenario(deltas=(0x0040, 0x2000))
        b = ToySpeckScenario(deltas=(0x0041, 0x2000))
        seed = np.random.SeedSequence(3)
        key_a = dataset_cache_key(a, 100, 64, True, seed)
        key_b = dataset_cache_key(b, 100, 64, True, seed)
        assert key_a != key_b

    def test_mask_order_changes_fingerprint(self):
        a = ToySpeckScenario(deltas=(0x0040, 0x2000))
        b = ToySpeckScenario(deltas=(0x2000, 0x0040))
        assert scenario_fingerprint(a) != scenario_fingerprint(b)

    def test_gimli_hash_searched_masks_change_fingerprint(self):
        base = GimliHashScenario(rounds=2)
        searched = np.array(base.difference_masks, copy=True)
        searched[0, 0] ^= np.uint32(0x2)  # second bit of byte 0
        moved = GimliHashScenario(rounds=2, masks=searched)
        assert scenario_fingerprint(base) != scenario_fingerprint(moved)

    def test_no_collision_in_dataset_cache(self, cache):
        # two scenarios differing only in one difference bit must hit
        # different REPRO_DATASET_CACHE entries
        a = ToySpeckScenario(deltas=(0x0040, 0x2000))
        b = ToySpeckScenario(deltas=(0x0041, 0x2000))
        Xa, ya = generate_dataset_sharded(a, 100, rng=1, shard_size=64, cache=cache)
        Xb, yb = generate_dataset_sharded(b, 100, rng=1, shard_size=64, cache=cache)
        import os

        entries = [f for f in os.listdir(cache.root) if f.endswith(".npz")]
        assert len(entries) == 2
        assert not np.array_equal(Xa, Xb)

    def test_related_key_and_plain_never_collide(self):
        from repro.core.related_key import ToySpeckRelatedKeyScenario

        plain = ToySpeckScenario(rounds=2)
        related = ToySpeckRelatedKeyScenario(rounds=2)
        assert scenario_fingerprint(plain) != scenario_fingerprint(related)
