"""Exact all-in-one differentials vs the neural distinguisher.

The paper's thesis is that a neural network *simulates* the
Albrecht-Leander all-in-one differential when the exact distribution is
out of reach.  On the 16-bit ToySpeck the exact distribution *is* in
reach, so this example computes the Bayes-optimal classification
accuracy (the information-theoretic ceiling) and shows the trained MLP
approaching it round by round.

Usage::

    python examples/allinone_vs_ml.py [--rounds 2 3 4] [--samples 30000]
"""

import argparse
import time

from repro.experiments.report import format_table
from repro.experiments.speck_baseline import run_toyspeck_allinone


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, nargs="+", default=[2, 3, 4])
    parser.add_argument("--samples", type=int, default=30_000)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    start = time.perf_counter()
    result = run_toyspeck_allinone(
        rounds=tuple(args.rounds),
        num_samples=args.samples,
        epochs=args.epochs,
        rng=args.seed,
    )
    rows = [
        [row["rounds"], f"{row['bayes_accuracy']:.4f}",
         f"{row['measured']:.4f}",
         f"{row['measured'] / row['bayes_accuracy']:.1%}"]
        for row in result["rows"]
    ]
    print(format_table(
        ["rounds", "Bayes ceiling (exact)", "ML accuracy", "fraction of ceiling"],
        rows,
        title=(f"ToySpeck all-in-one vs ML, differences "
               f"{[hex(d) for d in result['deltas']]}"),
    ))
    print(f"\n({time.perf_counter() - start:.1f}s; the ML model approaches "
          f"but never exceeds the exact all-in-one classifier — the "
          f"relationship the paper exploits where the exact computation "
          f"is infeasible)")


if __name__ == "__main__":
    main()
