"""Low-level substrate: bit manipulation, encodings and reproducible RNG."""

from repro.utils.bitops import (
    hamming_weight,
    mask,
    parity,
    rotl,
    rotl32,
    rotr,
    rotr32,
)
from repro.utils.encoding import (
    bits_to_bytes,
    bytes_to_bits,
    bytes_to_words,
    state_to_bits,
    words_to_bytes,
)
from repro.utils.rng import derive_rng, make_rng

__all__ = [
    "bits_to_bytes",
    "bytes_to_bits",
    "bytes_to_words",
    "derive_rng",
    "hamming_weight",
    "make_rng",
    "mask",
    "parity",
    "rotl",
    "rotl32",
    "rotr",
    "rotr32",
    "state_to_bits",
    "words_to_bytes",
]
