"""Tests for repro.utils.rng: deterministic, independent streams."""

import numpy as np
import pytest

from repro.utils.rng import (
    derive_rng,
    make_rng,
    random_bytes,
    random_words,
    spawn_seed,
)


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 2**32, size=8)
        b = make_rng(42).integers(0, 2**32, size=8)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = make_rng(seq).integers(0, 100, size=4)
        b = make_rng(np.random.SeedSequence(7)).integers(0, 100, size=4)
        assert (a == b).all()


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(5, "data").integers(0, 2**32, size=8)
        b = derive_rng(5, "data").integers(0, 2**32, size=8)
        assert (a == b).all()

    def test_different_labels_different_streams(self):
        a = derive_rng(5, "data").integers(0, 2**32, size=8)
        b = derive_rng(5, "weights").integers(0, 2**32, size=8)
        assert (a != b).any()

    def test_int_labels(self):
        a = derive_rng(5, 1, 2).integers(0, 2**32, size=4)
        b = derive_rng(5, 1, 3).integers(0, 2**32, size=4)
        assert (a != b).any()

    def test_generator_parent_advances(self):
        parent = np.random.default_rng(9)
        a = derive_rng(parent, "x")
        b = derive_rng(parent, "x")
        # Same label but the parent advanced, so streams differ.
        assert (
            a.integers(0, 2**32, size=8) != b.integers(0, 2**32, size=8)
        ).any()


class TestHelpers:
    def test_random_bytes_length(self):
        assert len(random_bytes(make_rng(0), 31)) == 31

    def test_random_bytes_deterministic(self):
        assert random_bytes(make_rng(3), 16) == random_bytes(make_rng(3), 16)

    def test_spawn_seed_range(self):
        seed = spawn_seed(make_rng(1))
        assert 0 <= seed < 2**63


class TestRandomWords:
    @pytest.mark.parametrize(
        "width,dtype",
        [(8, np.uint8), (16, np.uint16), (32, np.uint32), (64, np.uint64)],
    )
    def test_native_dtype_and_shape(self, width, dtype):
        words = random_words(make_rng(0), (5, 3), width=width)
        assert words.dtype == dtype
        assert words.shape == (5, 3)

    def test_deterministic(self):
        a = random_words(make_rng(11), (4, 12))
        b = random_words(make_rng(11), (4, 12))
        assert np.array_equal(a, b)

    def test_covers_high_bits(self):
        # Over 1000 draws the top bit of a uniform 32-bit word must show up.
        words = random_words(make_rng(2), 1000)
        assert (words >> np.uint32(31)).any()

    def test_rejects_unknown_width(self):
        with pytest.raises(ValueError, match="width"):
            random_words(make_rng(0), 4, width=12)
