"""Tests for the exact Gimli SP-box differential probability engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.gimli import spbox_column
from repro.diffcrypt.spbox import (
    spbox_apply,
    spbox_deterministic_output,
    spbox_differential_probability,
    spbox_monte_carlo_probability,
)
from repro.errors import CipherError
from repro.utils.bitops import rotl32

word = st.integers(0, 2**32 - 1)
sparse_bit = st.integers(0, 31)


class TestSpboxApply:
    @given(word, word, word)
    def test_matches_cipher_implementation(self, a, b, c):
        """spbox_apply must equal the SP-box used inside gimli_round."""
        expected = spbox_column(rotl32(a, 24), rotl32(b, 9), c)
        assert spbox_apply((a, b, c)) == expected


class TestExactProbability:
    def test_zero_to_zero(self):
        assert spbox_differential_probability((0, 0, 0), (0, 0, 0)) == 1.0

    def test_zero_to_nonzero_impossible(self):
        assert spbox_differential_probability((0, 0, 0), (1, 0, 0)) == 0.0

    def test_probability_range(self):
        p = spbox_differential_probability((1, 2, 3), (3, 2, 1))
        assert 0.0 <= p <= 1.0

    def test_observed_transition_has_positive_probability(self, rng):
        """A difference observed on a real pair cannot be impossible."""
        for _ in range(5):
            din = tuple(int(x) for x in rng.integers(0, 2**32, 3))
            col = tuple(int(x) for x in rng.integers(0, 2**32, 3))
            o1 = spbox_apply(col)
            o2 = spbox_apply(tuple(c ^ d for c, d in zip(col, din)))
            dout = tuple(a ^ b for a, b in zip(o1, o2))
            assert spbox_differential_probability(din, dout) > 0.0

    @pytest.mark.parametrize("bit", [0, 5, 13, 21, 31])
    def test_matches_monte_carlo_sparse(self, bit, rng):
        din = (1 << bit, 0, 0)
        col = tuple(int(x) for x in rng.integers(0, 2**32, 3))
        o1 = spbox_apply(col)
        o2 = spbox_apply(tuple(c ^ d for c, d in zip(col, din)))
        dout = tuple(a ^ b for a, b in zip(o1, o2))
        exact = spbox_differential_probability(din, dout)
        estimate = spbox_monte_carlo_probability(din, dout, samples=1 << 16, rng=rng)
        assert abs(exact - estimate) < 0.02

    def test_probabilities_sum_over_observed_outputs(self, rng):
        """For a sparse input diff, summing the exact DP over all outputs
        observed in sampling must not exceed 1."""
        din = (1 << 3, 0, 0)
        outputs = set()
        for _ in range(200):
            col = tuple(int(x) for x in rng.integers(0, 2**32, 3))
            o1 = spbox_apply(col)
            o2 = spbox_apply(tuple(c ^ d for c, d in zip(col, din)))
            outputs.add(tuple(a ^ b for a, b in zip(o1, o2)))
        total = sum(spbox_differential_probability(din, d) for d in outputs)
        assert total <= 1.0 + 1e-9

    def test_invalid_shapes(self):
        with pytest.raises(CipherError):
            spbox_differential_probability((0, 0), (0, 0, 0))


class TestDeterministicOutput:
    @pytest.mark.parametrize(
        "diff",
        [
            (1 << 7, 0, 0),
            (0, 1 << 21, 0),
            (0, 1 << 22, 0),
            (0, 0, 1 << 31),
            (1 << 7, (1 << 21) | (1 << 22), 1 << 31),
        ],
    )
    def test_safe_bits_deterministic(self, diff):
        out = spbox_deterministic_output(diff)
        assert out is not None
        assert spbox_differential_probability(diff, out) == 1.0

    def test_deterministic_matches_real_pairs(self, rng):
        diff = (1 << 7, 0, 0)
        out = spbox_deterministic_output(diff)
        for _ in range(20):
            col = tuple(int(x) for x in rng.integers(0, 2**32, 3))
            o1 = spbox_apply(col)
            o2 = spbox_apply(tuple(c ^ d for c, d in zip(col, diff)))
            assert tuple(a ^ b for a, b in zip(o1, o2)) == out

    def test_unsafe_bit_not_deterministic(self):
        assert spbox_deterministic_output((1, 0, 0)) is None

    def test_zero_diff_deterministic_to_zero(self):
        assert spbox_deterministic_output((0, 0, 0)) == (0, 0, 0)


class TestMonteCarlo:
    def test_zero_diff(self, rng):
        p = spbox_monte_carlo_probability((0, 0, 0), (0, 0, 0), samples=256, rng=rng)
        assert p == 1.0

    def test_impossible(self, rng):
        p = spbox_monte_carlo_probability((0, 0, 0), (1, 0, 0), samples=256, rng=rng)
        assert p == 0.0
