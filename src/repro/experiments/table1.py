"""Table 1: optimal differential trail weights for round-reduced Gimli.

The designers obtained the optimal weights (0, 0, 2, 6, 12, 22, 36, 52
for 1-8 rounds) with SAT/SMT solvers.  This experiment *exhibits* trails
with our own search machinery:

* a complete probability-1 search over the "safe" difference set for
  the weight-0 entries (rounds 1-2);
* beam search with exact SP-box differential probabilities for rounds
  3+, giving upper bounds on the optimum;
* Monte-Carlo verification of the exhibited low-round trails on the
  real permutation.

Reference weights for all 8 rounds are carried from the paper and
reported next to what the search exhibits.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.ciphers.gimli import gimli_permute_batch
from repro.diffcrypt.trail import GIMLI_OPTIMAL_WEIGHTS, DifferentialTrail
from repro.diffcrypt.trail_search import (
    beam_search_trail,
    default_seeds,
    find_weight_zero_trails,
)
from repro.experiments.config import get_workers
from repro.jobs import bind_run, run_cells
from repro.obs.trace import span
from repro.utils.rng import derive_rng, make_rng, random_words


def verify_trail_empirically(
    trail: DifferentialTrail,
    samples: int = 1 << 14,
    rng=None,
    start_round: int = 24,
) -> float:
    """Monte-Carlo probability that the trail's input/output differences
    hold on the real round-reduced permutation (ignores inner rounds)."""
    generator = make_rng(rng)
    states = random_words(generator, (samples, 12))
    delta_in = np.array(trail.input_difference, dtype=np.uint32)
    delta_out = np.array(trail.output_difference, dtype=np.uint32)
    out_a = gimli_permute_batch(states, trail.rounds, start_round)
    out_b = gimli_permute_batch(states ^ delta_in, trail.rounds, start_round)
    hits = ((out_a ^ out_b) == delta_out).all(axis=1)
    return float(hits.mean())


def _run_table1_cell(payload: Dict) -> Dict:
    """Search (and possibly verify) one round count.

    Module-level and payload-complete for
    :func:`~repro.core.parallel.run_grid`: the search itself is
    deterministic, and the Monte-Carlo verification draws only from the
    pre-derived per-round generator in the payload, so the row is
    identical no matter which process computes it.
    """
    rounds = payload["rounds"]
    with span("table1.cell", rounds=rounds, search=payload["search"]):
        return _table1_cell_body(payload, rounds)


def _table1_cell_body(payload: Dict, rounds: int) -> Dict:
    exhibited: Optional[float] = None
    empirical: Optional[float] = None
    trail: Optional[DifferentialTrail] = None
    if payload["search"]:
        weight_zero = find_weight_zero_trails(rounds)
        if weight_zero:
            trail = weight_zero[0]
            exhibited = 0.0
        else:
            trail = beam_search_trail(
                default_seeds(),
                rounds,
                beam_width=payload["beam_width"],
                variants=payload["variants"],
            )
            exhibited = trail.weight
        if trail is not None and exhibited <= 16:
            empirical = verify_trail_empirically(
                trail,
                samples=payload["verify_samples"],
                rng=payload["verify_rng"],
            )
    return {
        "rounds": rounds,
        "paper": payload["reference"],
        "measured": exhibited,
        "trail_probability": None if trail is None else trail.probability,
        "empirical_probability": empirical,
    }


def run_table1(
    max_search_rounds: int = 4,
    beam_width: int = 24,
    variants: int = 3,
    verify_samples: int = 1 << 13,
    rng=None,
    workers: Optional[int] = None,
    queue_dir=None,
) -> Dict:
    """Regenerate Table 1's rows: designers' weight vs exhibited weight.

    For rounds beyond ``max_search_rounds`` only the reference weight is
    reported (the beam search cost grows with rounds while its bound
    quality degrades — recorded honestly as ``None``).

    Each round count is an independent grid cell; ``workers`` (default
    ``REPRO_WORKERS``) runs them in that many processes.  A verification
    generator is derived per searched round *before* dispatch — not
    consumed sequentially as rows complete — so the Monte-Carlo
    estimates are identical for every worker count.

    ``queue_dir`` makes the grid resumable through :mod:`repro.jobs`
    (``rng`` must then be an integer seed or ``None``; the seed is
    pinned in the queue).
    """
    if queue_dir is not None:
        rng = bind_run(
            queue_dir,
            "table1",
            {
                "max_search_rounds": max_search_rounds,
                "beam_width": beam_width,
                "variants": variants,
                "verify_samples": verify_samples,
            },
            rng,
        )
    generator = make_rng(rng)
    workers = workers if workers is not None else get_workers()
    payloads = []
    specs = []
    for rounds in sorted(GIMLI_OPTIMAL_WEIGHTS):
        search = rounds <= max_search_rounds
        payloads.append(
            {
                "rounds": rounds,
                "reference": GIMLI_OPTIMAL_WEIGHTS[rounds],
                "search": search,
                "beam_width": beam_width,
                "variants": variants,
                "verify_samples": verify_samples,
                "verify_rng": (
                    derive_rng(generator, "verify", rounds) if search else None
                ),
            }
        )
        specs.append(
            {
                "experiment": "table1",
                "rounds": rounds,
                "search": search,
                "beam_width": beam_width,
                "variants": variants,
                "verify_samples": verify_samples,
                "seed": rng if queue_dir is not None else None,
            }
        )
    rows = run_cells(
        _run_table1_cell, payloads, specs=specs, workers=workers,
        label="table1", queue_dir=queue_dir,
    )
    return {"experiment": "table1", "rows": rows}
