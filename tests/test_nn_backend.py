"""Tests for the pluggable compute-backend seam.

Two concerns:

* **Selection** — ``get_backend`` resolution order (instance, name,
  ``REPRO_BACKEND``, default), the registry, and ``compile(backend=...)``.
* **Bit-identity** — routing the layers and losses through
  :class:`NumpyBackend` must be *bitwise* identical to computing the
  same ops with independently spelled plain-numpy expressions.  The
  reference here is a test-local :class:`RefBackend` whose ops are
  written differently (explicit ufuncs instead of operators) but round
  identically; forward passes, backward passes and whole ``fit`` runs
  are compared in float32 and float64.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import (
    LSTM,
    Conv1D,
    Dense,
    Flatten,
    LeakyReLU,
    ReLU,
    Reshape,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.backend import (
    BACKEND_ENV_VAR,
    Backend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)


class RefBackend(Backend):
    """Plain-numpy ops, spelled independently of :class:`NumpyBackend`.

    Every op uses explicit ufunc calls where NumpyBackend uses operators
    (and vice versa).  The spellings are chosen to round identically, so
    any bitwise divergence between a model on this backend and one on
    NumpyBackend means the seam itself perturbed the numerics.
    """

    name = "ref"

    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out) if out is not None else np.matmul(a, b)

    def affine(self, x, w, b=None, out=None):
        if out is None:
            out = np.matmul(x, w)
        else:
            np.matmul(x, w, out=out)
        if b is not None:
            np.add(out, b, out=out)
        return out

    def colsum(self, a, out=None):
        if out is None:
            return np.add.reduce(a, axis=0)
        return np.sum(a, axis=0, out=out)

    def relu(self, x, mask_out):
        mask_out[...] = np.greater(x, 0)
        return np.multiply(x, mask_out)

    def relu_backward(self, grad, mask):
        return np.multiply(grad, mask)

    def leaky_relu(self, x, alpha):
        mask = np.greater(x, 0)
        return np.where(mask, x, np.multiply(alpha, x)), mask

    def leaky_relu_backward(self, grad, mask, alpha):
        return np.where(mask, grad, np.multiply(alpha, grad))

    def sigmoid(self, x):
        return np.reciprocal(np.add(np.exp(np.negative(np.clip(x, -500, 500))), 1.0))

    def sigmoid_into(self, x, out):
        out[...] = self.sigmoid(x)
        return out

    def sigmoid_backward(self, grad, out):
        return np.multiply(np.multiply(grad, out), np.subtract(1.0, out))

    def tanh(self, x, out=None):
        return np.tanh(x, out=out) if out is not None else np.tanh(x)

    def tanh_backward(self, grad, out):
        return np.multiply(grad, np.subtract(1.0, np.square(out)))

    def softmax(self, x):
        exp = np.exp(np.subtract(x, np.max(x, axis=-1, keepdims=True)))
        return np.divide(exp, np.sum(exp, axis=-1, keepdims=True))

    def softmax_backward(self, grad, out):
        inner = np.sum(np.multiply(grad, out), axis=-1, keepdims=True)
        return np.multiply(out, np.subtract(grad, inner))

    def clip(self, x, lo, hi):
        return np.clip(x, lo, hi)

    def log(self, x):
        return np.log(x)

    def exp(self, x):
        return np.exp(x)

    def lstm_gates(self, z, gates_t, units):
        u = units
        self.sigmoid_into(z[:, :u], gates_t[0])
        self.sigmoid_into(z[:, u:2 * u], gates_t[1])
        np.tanh(z[:, 2 * u:3 * u], out=gates_t[2])
        self.sigmoid_into(z[:, 3 * u:], gates_t[3])
        return gates_t


# -- selection and registry ------------------------------------------------


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(get_backend(), NumpyBackend)

    def test_instance_resolves_to_itself(self):
        backend = RefBackend()
        assert get_backend(backend) is backend

    def test_named_backend_is_a_singleton(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_env_knob_selects_backend(self, monkeypatch):
        register_backend("test-ref", RefBackend)
        try:
            monkeypatch.setenv(BACKEND_ENV_VAR, "test-ref")
            assert isinstance(get_backend(), RefBackend)
        finally:
            from repro.nn.backend import _INSTANCES, _REGISTRY

            _REGISTRY.pop("test-ref", None)
            _INSTANCES.pop("test-ref", None)

    def test_unknown_backend_rejected(self):
        with pytest.raises(TrainingError, match="unknown backend"):
            get_backend("no-such-backend")

    def test_empty_registration_name_rejected(self):
        with pytest.raises(TrainingError):
            register_backend("", RefBackend)

    def test_available_backends_lists_numpy(self):
        assert "numpy" in available_backends()

    def test_compile_accepts_backend_instance(self, rng):
        backend = RefBackend()
        model = Sequential([Dense(4), Softmax()]).build((3,), rng)
        model.compile(backend=backend)
        assert model.backend is backend
        assert all(layer.backend is backend for layer in model.layers)
        assert model.loss.backend is backend

    def test_set_backend_reaches_future_layers(self, rng):
        backend = RefBackend()
        model = Sequential([Dense(4), Softmax()]).set_backend(backend)
        model.build((3,), rng)
        assert all(layer.backend is backend for layer in model.layers)


# -- bit-identity pins ------------------------------------------------------


def _mlp(classes=3):
    return [Dense(16), ReLU(), Dense(8), Sigmoid(), Dense(classes), Softmax()]


def _cnn(classes=3):
    return [
        Reshape((8, 2)),
        Conv1D(6, 3, padding="same"),
        Tanh(),
        Conv1D(4, 3),
        LeakyReLU(0.1),
        Flatten(),
        Dense(classes),
        Softmax(),
    ]


def _lstm(classes=3):
    return [Reshape((4, 4)), LSTM(7), Dense(classes), Softmax()]


ARCHES = {"mlp": _mlp, "cnn": _cnn, "lstm": _lstm}


def _pair(arch, dtype, rng_factory, backend):
    """The same architecture built twice from one seed, on two backends."""
    models = []
    for spec in ("numpy", backend):
        model = Sequential(ARCHES[arch]())
        model.build((16,), rng_factory(7))
        model.compile(dtype=dtype, backend=spec)
        models.append(model)
    return models


@pytest.mark.parametrize("arch", sorted(ARCHES))
@pytest.mark.parametrize("dtype", ["float32", "float64"])
class TestBitIdentity:
    def test_forward_bitwise(self, arch, dtype, rng_factory):
        reference, routed = _pair(arch, dtype, rng_factory, RefBackend())
        x = rng_factory(11).random((32, 16)).astype(dtype)
        a = reference.predict_proba(x, batch_size=32)
        b = routed.predict_proba(x, batch_size=32)
        assert a.dtype == b.dtype
        assert a.tobytes() == b.tobytes()

    def test_backward_bitwise(self, arch, dtype, rng_factory):
        reference, routed = _pair(arch, dtype, rng_factory, RefBackend())
        x = rng_factory(12).random((16, 16)).astype(dtype)
        y = np.eye(3, dtype=dtype)[rng_factory(13).integers(0, 3, size=16)]
        for model in (reference, routed):
            out = model.forward(x, training=True)
            _loss, grad = model.loss(y, out)
            model.backward(grad)
        for layer_a, layer_b in zip(reference.layers, routed.layers):
            for grad_a, grad_b in zip(layer_a.grads, layer_b.grads):
                assert grad_a.tobytes() == grad_b.tobytes()

    def test_full_fit_bitwise(self, arch, dtype, rng_factory):
        reference, routed = _pair(arch, dtype, rng_factory, RefBackend())
        x = rng_factory(14).random((48, 16)).astype(dtype)
        labels = rng_factory(15).integers(0, 3, size=48)
        for model in (reference, routed):
            model.fit(x, labels, epochs=2, batch_size=16, shuffle=True, rng=5)
        probe = rng_factory(16).random((8, 16)).astype(dtype)
        a = reference.predict_proba(probe)
        b = routed.predict_proba(probe)
        assert a.tobytes() == b.tobytes()
        for layer_a, layer_b in zip(reference.layers, routed.layers):
            for param_a, param_b in zip(layer_a.params, layer_b.params):
                assert param_a.tobytes() == param_b.tobytes()


class TestOpContracts:
    """Spot checks of individual NumpyBackend ops against raw numpy."""

    def test_affine_matches_matmul_plus_bias(self, rng):
        backend = get_backend("numpy")
        x = rng.random((5, 7)).astype(np.float32)
        w = rng.random((7, 3)).astype(np.float32)
        b = rng.random(3).astype(np.float32)
        expected = x @ w
        expected += b
        assert backend.affine(x, w, b).tobytes() == expected.tobytes()

    def test_sigmoid_into_matches_sigmoid(self, rng):
        backend = get_backend("numpy")
        x = rng.normal(scale=200.0, size=(4, 9))
        out = np.empty_like(x)
        backend.sigmoid_into(x, out)
        assert out.tobytes() == backend.sigmoid(x).tobytes()

    def test_softmax_rows_sum_to_one(self, rng):
        backend = get_backend("numpy")
        x = rng.normal(size=(6, 4))
        out = backend.softmax(x)
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_lstm_gates_layout(self, rng):
        backend = get_backend("numpy")
        units = 3
        z = rng.normal(size=(5, 4 * units))
        gates = np.empty((4, 5, units))
        backend.lstm_gates(z, gates, units)
        assert gates[0].tobytes() == backend.sigmoid(z[:, :units]).tobytes()
        assert (
            gates[2].tobytes()
            == np.tanh(z[:, 2 * units:3 * units]).tobytes()
        )
