"""Salsa20 (Bernstein, 2007) — a non-Markov example cited by the paper.

The paper (§2.1) names Salsa among the sub-key-free iterated primitives
to which Markov-chain trail accounting does not apply; the distinguisher
framework treats its (round-reduced) permutation like any other, so we
provide it as an extension target.

The 512-bit state is 16 32-bit words; a *double round* is a column
round followed by a row round, and the Salsa20 core runs 10 double
rounds with a final feed-forward addition.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.ciphers.base import Permutation
from repro.errors import CipherError

_MASK32 = 0xFFFFFFFF

FULL_DOUBLE_ROUNDS = 10

#: Word indices of the four quarter-rounds of a column round.
COLUMN_QUARTERS = ((0, 4, 8, 12), (5, 9, 13, 1), (10, 14, 2, 6), (15, 3, 7, 11))
#: Word indices of the four quarter-rounds of a row round.
ROW_QUARTERS = ((0, 1, 2, 3), (5, 6, 7, 4), (10, 11, 8, 9), (15, 12, 13, 14))


def _rotl32(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def quarterround(a: int, b: int, c: int, d: int) -> tuple:
    """The Salsa20 quarter-round on four words (spec §3)."""
    b ^= _rotl32((a + d) & _MASK32, 7)
    c ^= _rotl32((b + a) & _MASK32, 9)
    d ^= _rotl32((c + b) & _MASK32, 13)
    a ^= _rotl32((d + c) & _MASK32, 18)
    return a, b, c, d


def doubleround(state: Sequence[int]) -> List[int]:
    """One Salsa20 double round (column round then row round), scalar."""
    s = [int(w) & _MASK32 for w in state]
    if len(s) != 16:
        raise CipherError(f"Salsa state must have 16 words, got {len(s)}")
    for quarter in COLUMN_QUARTERS + ROW_QUARTERS:
        i, j, k, l = quarter
        s[i], s[j], s[k], s[l] = quarterround(s[i], s[j], s[k], s[l])
    return s


def salsa20_core(state: Sequence[int], double_rounds: int = FULL_DOUBLE_ROUNDS) -> List[int]:
    """The Salsa20 core: ``double_rounds`` double rounds + feed-forward."""
    start = [int(w) & _MASK32 for w in state]
    s = list(start)
    for _ in range(double_rounds):
        s = doubleround(s)
    return [(a + b) & _MASK32 for a, b in zip(s, start)]


def _rotl_arr(arr: np.ndarray, amount: int) -> np.ndarray:
    return ((arr << np.uint32(amount)) | (arr >> np.uint32(32 - amount))).astype(
        np.uint32
    )


def doubleround_batch(states: np.ndarray, double_rounds: int = 1) -> np.ndarray:
    """Vectorised double rounds over a ``(n, 16)`` uint32 batch."""
    arr = np.array(states, dtype=np.uint32, copy=True)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[1] != 16:
        raise CipherError(f"Salsa batch must have shape (n, 16), got {arr.shape}")
    for _ in range(double_rounds):
        for quarter in COLUMN_QUARTERS + ROW_QUARTERS:
            i, j, k, l = quarter
            a, b, c, d = arr[:, i], arr[:, j], arr[:, k], arr[:, l]
            b = b ^ _rotl_arr(a + d, 7)
            c = c ^ _rotl_arr(b + a, 9)
            d = d ^ _rotl_arr(c + b, 13)
            a = a ^ _rotl_arr(d + c, 18)
            arr[:, i], arr[:, j], arr[:, k], arr[:, l] = a, b, c, d
    return arr[0] if squeeze else arr


class SalsaPermutation(Permutation):
    """Round-reduced Salsa20 double-round iteration as a :class:`Permutation`.

    ``rounds`` counts *double rounds* (the full core uses 10).  The
    feed-forward addition is intentionally omitted — the distinguisher
    operates on the unkeyed permutation, as with Gimli.
    """

    state_words = 16
    word_width = 32

    def __init__(self, rounds: int = FULL_DOUBLE_ROUNDS):
        super().__init__(rounds)

    def __call__(self, states: np.ndarray) -> np.ndarray:
        batch = self._check_batch(np.asarray(states, dtype=np.uint32))
        return doubleround_batch(batch, self.rounds)
