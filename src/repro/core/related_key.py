"""Related-key differential scenarios (SPECK / ToySpeck).

The paper's scenarios fix the key per sample and choose *plaintext*
differences only.  The related-key setting (Lu et al.'s SIMON/SIMECK
neural distinguishers, see PAPERS.md) lets each class difference span
the key as well: class ``i`` queries the oracle on
``(P ⊕ δP_i, K ⊕ δK_i)`` and the attacker observes the ciphertext
difference against the base query ``(P, K)``.

Rather than growing a second oracle protocol, these scenarios fold the
key into the *input* of the differential game: a query input is the
concatenation ``(plaintext words || key words)`` and the difference
masks span both halves.  Everything downstream — ``apply_difference``,
:class:`~repro.core.oracle.CipherOracle`/``RandomOracle``,
``generate_dataset`` (including the sharded parallel path and the
dataset cache), :class:`~repro.core.distinguisher.MLDistinguisher`, and
the ``repro.search`` bias oracle — works unchanged, because none of
them assume the input is "only" a plaintext.

A mask whose key half is zero reduces to the ordinary single-key game
(with the key re-randomised per sample), so the classic chosen-plaintext
differences remain expressible inside the related-key scenario.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ciphers.speck import FULL_ROUNDS as SPECK_FULL_ROUNDS
from repro.ciphers.speck import encrypt_batch as speck_encrypt_batch
from repro.ciphers.toyspeck import FULL_ROUNDS as TOYSPECK_FULL_ROUNDS
from repro.ciphers.toyspeck import encrypt_batch as toyspeck_encrypt_batch
from repro.core.scenario import DifferentialScenario
from repro.errors import DistinguisherError


class RelatedKeyScenario(DifferentialScenario):
    """Base class: inputs are ``(block_words || key_words)`` vectors.

    Subclasses set ``block_words`` / ``key_words`` / ``word_width`` and
    implement :meth:`encrypt` on the split halves.  ``input_words`` is
    the concatenated width; the observable is the ciphertext block.
    """

    #: words in the plaintext block (the first half of an input)
    block_words: int
    #: words in the key (the second half of an input)
    key_words: int

    def __init__(self, difference_masks: np.ndarray):
        self.input_words = self.block_words + self.key_words
        self.output_words = self.block_words
        super().__init__(difference_masks)

    def encrypt(self, plaintexts: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Batched encryption of the split input halves."""
        raise NotImplementedError

    def sample_base_inputs(self, n, rng):
        high = 1 << self.word_width
        dtype = {8: np.uint8, 16: np.uint16, 32: np.uint32}[self.word_width]
        return rng.integers(0, high, size=(n, self.input_words), dtype=dtype)

    def pipeline(self, inputs, context=None):
        del context
        arr = np.asarray(inputs)
        return self.encrypt(arr[:, : self.block_words], arr[:, self.block_words :])

    def split_masks(self):
        """The ``(plaintext, key)`` halves of every class difference."""
        return (
            self.difference_masks[:, : self.block_words],
            self.difference_masks[:, self.block_words :],
        )


def _masks_from_deltas(
    deltas: Sequence[Sequence[int]],
    block_words: int,
    key_words: int,
    word_width: int,
) -> np.ndarray:
    """Build ``(t, block+key)`` masks from ``(plaintext, key)`` int pairs.

    Each entry of ``deltas`` is ``(plaintext_delta, key_delta)`` with the
    plaintext difference packed most-significant word first (matching
    the test-vector notation of the SPECK family) and the key difference
    packed the same way across ``key_words`` words.
    """
    masks = np.zeros(
        (len(deltas), block_words + key_words),
        dtype={8: np.uint8, 16: np.uint16, 32: np.uint32}[word_width],
    )
    mask_value = (1 << word_width) - 1
    for row, (p_delta, k_delta) in enumerate(deltas):
        p_delta, k_delta = int(p_delta), int(k_delta)
        if not 0 <= p_delta < 1 << (block_words * word_width):
            raise DistinguisherError(
                f"plaintext difference {p_delta:#x} does not fit "
                f"{block_words * word_width} bits"
            )
        if not 0 <= k_delta < 1 << (key_words * word_width):
            raise DistinguisherError(
                f"key difference {k_delta:#x} does not fit "
                f"{key_words * word_width} bits"
            )
        for word in range(block_words):
            shift = (block_words - 1 - word) * word_width
            masks[row, word] = (p_delta >> shift) & mask_value
        for word in range(key_words):
            shift = (key_words - 1 - word) * word_width
            masks[row, block_words + word] = (k_delta >> shift) & mask_value
    return masks


class SpeckRelatedKeyScenario(RelatedKeyScenario):
    """Related-key ``t``-difference game on round-reduced SPECK-32/64.

    ``deltas`` is a sequence of ``(plaintext_delta, key_delta)`` pairs —
    32-bit and 64-bit integers, most-significant word first.  The
    defaults pit Gohr's plaintext difference ``0x0040/0000`` against a
    pure key difference flipping bit 0 of the last key word (the word
    that becomes the first round key).
    """

    block_words = 2
    key_words = 4
    word_width = 16

    def __init__(
        self,
        rounds: int = 7,
        deltas: Sequence[Sequence[int]] = ((0x0040_0000, 0), (0, 1)),
        masks: Optional[np.ndarray] = None,
    ):
        if not 1 <= rounds <= SPECK_FULL_ROUNDS:
            raise DistinguisherError(
                f"rounds must be in [1, {SPECK_FULL_ROUNDS}], got {rounds}"
            )
        if masks is None:
            masks = _masks_from_deltas(
                deltas, self.block_words, self.key_words, self.word_width
            )
        super().__init__(np.asarray(masks, dtype=np.uint16))
        self.rounds = int(rounds)

    def encrypt(self, plaintexts, keys):
        return speck_encrypt_batch(plaintexts, keys, self.rounds)


class ToySpeckRelatedKeyScenario(RelatedKeyScenario):
    """Related-key ``t``-difference game on round-reduced ToySpeck.

    Small enough that search sweeps over the joint 48-bit
    plaintext-and-key difference space finish in seconds.  ``deltas``
    pairs are 16-bit plaintext and 32-bit key differences.
    """

    block_words = 2
    key_words = 4
    word_width = 8

    def __init__(
        self,
        rounds: int = 4,
        deltas: Sequence[Sequence[int]] = ((0x0040, 0), (0, 1)),
        masks: Optional[np.ndarray] = None,
    ):
        if not 1 <= rounds <= TOYSPECK_FULL_ROUNDS:
            raise DistinguisherError(
                f"rounds must be in [1, {TOYSPECK_FULL_ROUNDS}], got {rounds}"
            )
        if masks is None:
            masks = _masks_from_deltas(
                deltas, self.block_words, self.key_words, self.word_width
            )
        super().__init__(np.asarray(masks, dtype=np.uint8))
        self.rounds = int(rounds)

    def encrypt(self, plaintexts, keys):
        return toyspeck_encrypt_batch(plaintexts, keys, self.rounds)
