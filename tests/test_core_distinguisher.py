"""Tests for Algorithm 2: the ML distinguisher end to end.

Kept on few-round scenarios so the whole file runs in seconds while
still exercising every phase: offline train/accept, offline abort,
online CIPHER and RANDOM verdicts.
"""

import numpy as np
import pytest

from repro.core.distinguisher import MLDistinguisher
from repro.core.scenario import GimliHashScenario, ToySpeckScenario
from repro.errors import DistinguisherAborted, DistinguisherError
from repro.nn.architectures import build_mlp


@pytest.fixture(scope="module")
def trained():
    """A distinguisher trained once on 4-round Gimli-Hash (strong signal)."""
    scenario = GimliHashScenario(rounds=4)
    distinguisher = MLDistinguisher(
        scenario,
        model=build_mlp([64, 128], "relu"),
        epochs=3,
        batch_size=128,
        rng=21,
    )
    report = distinguisher.train(num_samples=4000)
    return scenario, distinguisher, report


class TestOfflinePhase:
    def test_training_accepts_with_signal(self, trained):
        _, _, report = trained
        assert not report.aborted
        assert report.validation_accuracy > 0.9
        assert report.baseline == 0.5
        assert report.advantage > 0.4

    def test_report_log2(self, trained):
        _, _, report = trained
        assert report.offline_log2 == pytest.approx(np.log2(report.num_samples))

    def test_abort_on_full_rounds_tiny_data(self):
        """24-round Gimli with 1,500 samples has no learnable signal;
        Algorithm 2 must abort."""
        scenario = GimliHashScenario(rounds=24)
        distinguisher = MLDistinguisher(
            scenario,
            model=build_mlp([32], "relu"),
            epochs=2,
            rng=5,
        )
        with pytest.raises(DistinguisherAborted):
            distinguisher.train(num_samples=1500)
        assert distinguisher.report is not None
        assert distinguisher.report.aborted

    def test_invalid_epochs(self):
        with pytest.raises(DistinguisherError):
            MLDistinguisher(GimliHashScenario(rounds=4), epochs=0)

    def test_bad_validation_split(self):
        distinguisher = MLDistinguisher(
            GimliHashScenario(rounds=4), epochs=1, rng=0
        )
        with pytest.raises(DistinguisherError):
            distinguisher.train(num_samples=100, validation_split=0.0)


class TestOnlinePhase:
    def test_cipher_verdict(self, trained):
        scenario, distinguisher, _ = trained
        result = distinguisher.test(scenario.cipher_oracle(), 1000, rng=3)
        assert result.verdict == "CIPHER"
        assert result.is_cipher
        assert result.accuracy > result.threshold
        assert result.p_value < 1e-6

    def test_random_verdict(self, trained):
        scenario, distinguisher, _ = trained
        result = distinguisher.test(
            scenario.random_oracle(rng=8, memoize=False), 1000, rng=4
        )
        assert result.verdict == "RANDOM"
        assert abs(result.accuracy - 0.5) < 0.1
        assert result.p_value > 1e-3

    def test_distinguish_wrapper(self, trained):
        scenario, distinguisher, _ = trained
        assert distinguisher.distinguish(scenario.cipher_oracle(), 600, rng=5) == (
            "CIPHER"
        )

    def test_online_before_offline_rejected(self):
        scenario = GimliHashScenario(rounds=4)
        distinguisher = MLDistinguisher(scenario, epochs=1, rng=0)
        with pytest.raises(DistinguisherError):
            distinguisher.test(scenario.cipher_oracle(), 100)

    def test_training_advantage_property(self, trained):
        _, distinguisher, report = trained
        assert distinguisher.training_advantage == pytest.approx(
            report.validation_accuracy - 0.5
        )

    def test_online_log2(self, trained):
        scenario, distinguisher, _ = trained
        result = distinguisher.test(scenario.cipher_oracle(), 512, rng=6)
        assert result.online_log2 == pytest.approx(np.log2(result.num_samples))


class TestMultiClass:
    def test_four_differences(self):
        """t = 4 input differences: the game generalises beyond binary."""
        scenario = ToySpeckScenario(
            rounds=2, deltas=(0x0040, 0x2000, 0x0001, 0x8080)
        )
        distinguisher = MLDistinguisher(
            scenario,
            model=build_mlp([32, 64], "relu", num_classes=4),
            epochs=6,
            rng=12,
        )
        report = distinguisher.train(num_samples=8000)
        assert report.num_classes == 4
        assert report.baseline == 0.25
        assert report.validation_accuracy > 0.4
        result = distinguisher.test(scenario.cipher_oracle(), 2000, rng=13)
        assert result.verdict == "CIPHER"
        random_result = distinguisher.test(
            scenario.random_oracle(rng=14, memoize=False), 2000, rng=15
        )
        assert random_result.verdict == "RANDOM"
