"""Pluggable compute backends for the NN substrate.

Every hot kernel the layers and losses execute — matmul/affine, the
elementwise activations, the Conv1D column matmuls, the LSTM gate
fusion — goes through a :class:`Backend` instance instead of calling
numpy directly.  The reference implementation is
:class:`~repro.nn.backend.numpy_backend.NumpyBackend`, whose ops are
the exact expressions the layers used before the refactor, so routing
through it is bit-identical (pinned in ``tests/test_nn_backend.py``).

Why the seam exists:

* alternative kernels (threaded elementwise, numexpr-style fusion,
  SIMD libraries, the int8 kernels of :mod:`repro.nn.quant`) become
  drop-in backends instead of per-layer surgery;
* the bit-exactness pins live in one place: a new backend is validated
  by comparing against ``NumpyBackend`` op by op;
* per-call BLAS thread-domain control (train vs serve) attaches here
  (:mod:`repro.nn.backend.blas`).

Selection: ``Sequential.compile(backend=...)`` takes a name or a
:class:`Backend` instance; unset falls back to the ``REPRO_BACKEND``
environment knob and then to ``"numpy"``.  Third-party backends hook in
via :func:`register_backend`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Union

from repro.errors import TrainingError
from repro.nn.backend import blas

#: Environment knob naming the default backend (see EXPERIMENTS.md).
BACKEND_ENV_VAR = "REPRO_BACKEND"


class Backend:
    """The ops contract the NN layers and losses compute through.

    Array arguments and results are plain numpy ``ndarray``s; ``out=``
    parameters follow numpy conventions (write into ``out`` and return
    it).  Implementations must be deterministic: the same inputs yield
    the same bits on every call.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    # -- linear algebra ----------------------------------------------------

    def matmul(self, a, b, out=None):
        """``a @ b``, optionally into ``out``."""
        raise NotImplementedError

    def affine(self, x, w, b=None, out=None):
        """``x @ w`` plus an optional broadcast bias ``b``."""
        raise NotImplementedError

    def colsum(self, a, out=None):
        """Column sums (``a.sum(axis=0)``), optionally into ``out``."""
        raise NotImplementedError

    # -- elementwise activations -------------------------------------------

    def relu(self, x, mask_out):
        """Fill ``mask_out`` with ``x > 0``; return ``x * mask_out``."""
        raise NotImplementedError

    def relu_backward(self, grad, mask):
        raise NotImplementedError

    def leaky_relu(self, x, alpha):
        """Return ``(where(x > 0, x, alpha * x), mask)``."""
        raise NotImplementedError

    def leaky_relu_backward(self, grad, mask, alpha):
        raise NotImplementedError

    def sigmoid(self, x):
        raise NotImplementedError

    def sigmoid_into(self, x, out):
        """Sigmoid written into ``out``; bit-identical to :meth:`sigmoid`."""
        raise NotImplementedError

    def sigmoid_backward(self, grad, out):
        raise NotImplementedError

    def tanh(self, x, out=None):
        raise NotImplementedError

    def tanh_backward(self, grad, out):
        raise NotImplementedError

    def softmax(self, x):
        """Numerically stable softmax over the last axis."""
        raise NotImplementedError

    def softmax_backward(self, grad, out):
        raise NotImplementedError

    # -- scalar ufunc helpers (losses) -------------------------------------

    def clip(self, x, lo, hi):
        raise NotImplementedError

    def log(self, x):
        raise NotImplementedError

    def exp(self, x):
        raise NotImplementedError

    # -- fused sequence kernels --------------------------------------------

    def lstm_gates(self, z, gates_t, units):
        """The LSTM gate-activation block.

        ``z`` is the ``(batch, 4 * units)`` pre-activation, ``gates_t``
        the ``(4, batch, units)`` gate-major output slab: sigmoid into
        input/forget/output gates, tanh into the cell candidate.
        """
        raise NotImplementedError

    # -- BLAS thread domains -----------------------------------------------

    def thread_domain(self, domain: str):
        """Context manager pinning the BLAS pool for ``domain`` work.

        Domains are ``"train"`` and ``"serve"``; see
        :mod:`repro.nn.backend.blas` for the environment knobs.  The
        default implementation delegates to the process-wide OpenBLAS
        control and is a no-op when the knobs are unset.
        """
        return blas.thread_domain(domain)


#: name -> zero-argument factory returning a Backend.
_REGISTRY: Dict[str, Callable[[], Backend]] = {}
_INSTANCES: Dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (overwrites)."""
    if not name:
        raise TrainingError("backend name must be non-empty")
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> list:
    """Sorted registered backend names."""
    return sorted(_REGISTRY)


def get_backend(spec: Union[None, str, Backend] = None) -> Backend:
    """Resolve a backend from an instance, a name, or the environment.

    ``None`` reads ``REPRO_BACKEND`` (unset -> ``"numpy"``).  Named
    backends are process-wide singletons, so scratch owned by a backend
    is shared the way module-level numpy state always was.
    """
    if isinstance(spec, Backend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR, "") or "numpy"
    try:
        factory = _REGISTRY[spec]
    except KeyError:
        known = ", ".join(available_backends())
        raise TrainingError(
            f"unknown backend {spec!r}; known: {known}"
        ) from None
    if spec not in _INSTANCES:
        _INSTANCES[spec] = factory()
    return _INSTANCES[spec]


# The reference backend registers itself on import.
from repro.nn.backend.numpy_backend import NumpyBackend  # noqa: E402

register_backend("numpy", NumpyBackend)

__all__ = [
    "BACKEND_ENV_VAR",
    "Backend",
    "NumpyBackend",
    "available_backends",
    "blas",
    "get_backend",
    "register_backend",
]
