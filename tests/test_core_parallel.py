"""Tests for repro.core.parallel: sharded dataset generation.

The contract under test: for a fixed seed and shard size the generated
dataset is a pure function of the seed — the worker count only changes
scheduling, never a single bit of the output.
"""

import numpy as np
import pytest

from repro.core.parallel import (
    DEFAULT_SHARD_SIZE,
    generate_dataset_sharded,
    resolve_workers,
    seed_sequence_from,
    shard_sizes,
)
from repro.core.scenario import (
    GimliCipherScenario,
    GimliHashScenario,
    ToySpeckScenario,
)
from repro.errors import DistinguisherError


class TestShardPlan:
    def test_exact_multiple(self):
        assert shard_sizes(8192, 4096) == [4096, 4096]

    def test_remainder_shard(self):
        assert shard_sizes(9000, 4096) == [4096, 4096, 808]

    def test_small_n_single_shard(self):
        assert shard_sizes(100, 4096) == [100]

    def test_default_shard_size(self):
        assert sum(shard_sizes(3 * DEFAULT_SHARD_SIZE + 1)) == (
            3 * DEFAULT_SHARD_SIZE + 1
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(DistinguisherError):
            shard_sizes(0)
        with pytest.raises(DistinguisherError):
            shard_sizes(10, 0)


class TestSeedSequenceFrom:
    def test_int_is_deterministic(self):
        a = seed_sequence_from(42).generate_state(4)
        b = seed_sequence_from(42).generate_state(4)
        assert np.array_equal(a, b)

    def test_seed_sequence_passthrough(self):
        seq = np.random.SeedSequence(7)
        assert seed_sequence_from(seq) is seq

    def test_generator_advances(self):
        gen = np.random.default_rng(1)
        a = seed_sequence_from(gen).generate_state(4)
        b = seed_sequence_from(gen).generate_state(4)
        assert not np.array_equal(a, b)


class TestShardedGeneration:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_bit_identical_across_worker_counts(self, workers):
        scenario = ToySpeckScenario(rounds=3)
        x1, y1 = generate_dataset_sharded(
            scenario, 5000, rng=123, workers=1, shard_size=1024
        )
        xn, yn = generate_dataset_sharded(
            scenario, 5000, rng=123, workers=workers, shard_size=1024
        )
        assert np.array_equal(x1, xn)
        assert np.array_equal(y1, yn)

    def test_scenario_entry_point_routes_to_sharded(self):
        scenario = GimliHashScenario(rounds=4)
        direct = generate_dataset_sharded(scenario, 3000, rng=9, workers=1)
        via_method = scenario.generate_dataset(3000, rng=9, workers=1)
        assert np.array_equal(direct[0], via_method[0])
        assert np.array_equal(direct[1], via_method[1])

    def test_workers_none_keeps_legacy_stream(self):
        scenario = ToySpeckScenario(rounds=3)
        legacy_a = scenario.generate_dataset(500, rng=5)
        legacy_b = scenario.generate_dataset(500, rng=5)
        assert np.array_equal(legacy_a[0], legacy_b[0])

    def test_unshuffled_is_class_major(self):
        scenario = GimliCipherScenario(total_rounds=4)
        _, y = generate_dataset_sharded(
            scenario, 2500, rng=3, workers=2, shard_size=1024, shuffle=False
        )
        expected = np.concatenate(
            [np.full(2500, i, dtype=np.int64) for i in range(scenario.num_classes)]
        )
        assert np.array_equal(y, expected)

    def test_shapes_and_dtype(self):
        scenario = GimliHashScenario(rounds=4)
        x, y = generate_dataset_sharded(scenario, 2048, rng=0, workers=2)
        assert x.shape == (2048 * scenario.num_classes, scenario.feature_bits)
        assert x.dtype == np.float32
        assert y.shape == (2048 * scenario.num_classes,)

    def test_balanced_labels_after_shuffle(self):
        scenario = ToySpeckScenario(rounds=3)
        _, y = generate_dataset_sharded(scenario, 4200, rng=1, workers=2)
        for i in range(scenario.num_classes):
            assert (y == i).sum() == 4200

    def test_stateful_oracle_falls_back_to_legacy_path(self):
        scenario = ToySpeckScenario(rounds=3)
        oracle = scenario.random_oracle(rng=0)
        with_workers = scenario.generate_dataset(
            300, rng=8, oracle=oracle, workers=4
        )
        oracle_again = scenario.random_oracle(rng=0)
        without = scenario.generate_dataset(300, rng=8, oracle=oracle_again)
        assert np.array_equal(with_workers[0], without[0])

    def test_rejects_bad_workers(self):
        scenario = ToySpeckScenario(rounds=3)
        with pytest.raises(DistinguisherError):
            generate_dataset_sharded(scenario, 100, rng=0, workers=0)


class TestResolveWorkers:
    def test_none_is_one(self):
        assert resolve_workers(None) == 1

    def test_clamped_to_cpu_count(self):
        assert resolve_workers(10_000) >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(DistinguisherError):
            resolve_workers(0)
