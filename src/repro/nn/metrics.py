"""Evaluation metrics.

Classification accuracy is the quantity every table of the paper
reports; it is defined as the fraction of samples whose argmax class
matches the label.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def categorical_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of samples where ``argmax(pred) == argmax(true)``."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ShapeError(
            f"label shape {y_true.shape} != prediction shape {y_pred.shape}"
        )
    if y_true.ndim != 2:
        raise ShapeError(f"expected (n, classes) arrays, got shape {y_true.shape}")
    return float(
        (y_pred.argmax(axis=1) == y_true.argmax(axis=1)).mean()
    )


def prediction_accuracy(labels: np.ndarray, predicted_classes: np.ndarray) -> float:
    """Accuracy from integer labels and integer predictions."""
    labels = np.asarray(labels)
    predicted_classes = np.asarray(predicted_classes)
    if labels.shape != predicted_classes.shape:
        raise ShapeError(
            f"label shape {labels.shape} != prediction shape "
            f"{predicted_classes.shape}"
        )
    if labels.size == 0:
        raise ShapeError("cannot compute accuracy of zero samples")
    return float((labels == predicted_classes).mean())


METRICS = {"accuracy": categorical_accuracy}


def get_metric(name: str):
    """Resolve a metric function by name."""
    try:
        return METRICS[name]
    except KeyError:
        known = ", ".join(sorted(METRICS))
        raise ShapeError(f"unknown metric {name!r}; known: {known}") from None
