"""Difference-search walkthrough: discover, compare, train, register.

The paper hand-picks its input differences; this demo lets the
``repro.search`` evolutionary optimizer pick them instead.  It runs a
seeded search on round-reduced ToySpeck, prints the ranked top-k next
to the paper's hand-chosen ``delta1 = 0x0040`` under the same bias
oracle, then feeds the two best discovered differences through the
full pipeline — train an MLDistinguisher on them and register the
result in an on-disk model registry whose manifest records exactly
what was searched.  Takes a few seconds on a laptop.

Usage::

    python examples/search_demo.py [--rounds 3] [--generations 6]
"""

import argparse
import tempfile
import time

import numpy as np

from repro.search import (
    BiasScoringOracle,
    ScenarioSpec,
    SearchConfig,
    evolve_differences,
)
from repro.search.config import get_scenario_builder
from repro.search.pipeline import run_search_pipeline
from repro.serve import ModelRegistry

PAPER_DELTA = np.array([0x00, 0x40], dtype=np.uint8)  # delta1 = 0x0040


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="round-reduced ToySpeck rounds")
    parser.add_argument("--generations", type=int, default=6,
                        help="evolutionary generations")
    parser.add_argument("--seed", type=int, default=0, help="search seed")
    args = parser.parse_args()

    # -- 1. score the paper's hand-picked difference ------------------
    builder = get_scenario_builder("toyspeck")
    oracle = BiasScoringOracle(
        builder.prototype(rounds=args.rounds), n_samples=2048, rng=args.seed
    )
    paper_score = oracle.score(PAPER_DELTA)
    print(f"paper delta 0x0040 bias score at {args.rounds} rounds: "
          f"{paper_score:.4f} (noise floor {oracle.noise_floor():.4f})")

    # -- 2. let the optimizer search the full 16-bit space ------------
    config = SearchConfig.from_env(
        population_size=24, generations=args.generations, seed=args.seed
    )
    start = time.perf_counter()
    result = evolve_differences(oracle, config)
    elapsed = time.perf_counter() - start
    print(f"\nsearch: {result.evaluations} candidates scored in "
          f"{elapsed:.2f}s")
    for rank, (mask, score) in enumerate(
        zip(result.ranked_masks, result.ranked_scores), start=1
    ):
        delta = (int(mask[0]) << 8) | int(mask[1])
        marker = "  <- beats the paper" if score > paper_score else ""
        print(f"  #{rank}  delta {delta:#06x}  score {score:.4f}{marker}")

    # -- 3. full pipeline: search -> train -> register ----------------
    spec = ScenarioSpec.from_dict({
        "name": f"toyspeck-r{args.rounds}-auto",
        "scenario": "toyspeck",
        "params": {"rounds": args.rounds},
        "search": {"population_size": 24,
                   "generations": args.generations,
                   "seed": args.seed},
        "train": {"num_samples": 8_000, "epochs": 3, "significance": 0.05},
    })
    with tempfile.TemporaryDirectory() as root:
        registry = ModelRegistry(root)
        summary = run_search_pipeline(spec, registry=registry)
        print(f"\npipeline: trained on {summary['differences']} -> "
              f"validation accuracy "
              f"{summary['training']['validation_accuracy']:.4f}")
        record = registry.resolve(spec.name)
        manifest_search = record.manifest["search"]
        print(f"registered {record.name} v{record.version}; manifest "
              f"records {len(manifest_search['ranked_differences'])} ranked "
              f"differences from the search")


if __name__ == "__main__":
    main()
