"""Tests for repro.obs.trace: span collection and Chrome-trace export.

The contract under test: spans nest per thread (parent/depth recorded),
survive exceptions without swallowing them, cost a single flag test
when disabled, export as valid Chrome trace-event JSON — and none of
it perturbs training numerics (bit-identical weights with everything
on).
"""

import json
import threading

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs import log as obs_log
from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_tracing():
    """Each test starts disabled with an empty buffer and ends that way."""
    trace.disable()
    trace.drain()
    yield
    trace.disable()
    trace.drain()


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert trace.span("a") is trace.span("b")

    def test_noop_collects_nothing(self):
        with trace.span("quiet", attr=1):
            pass
        assert trace.finished_spans() == []

    def test_noop_propagates_exceptions(self):
        with pytest.raises(ValueError):
            with trace.span("quiet"):
                raise ValueError("boom")


class TestCollection:
    def test_span_records_name_and_duration(self):
        trace.enable()
        with trace.span("unit", size=4):
            pass
        (record,) = trace.finished_spans()
        assert record["name"] == "unit"
        assert record["dur_us"] >= 0.0
        assert record["attrs"] == {"size": 4}
        assert record["parent"] is None
        assert record["depth"] == 0

    def test_nesting_records_parent_and_depth(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        inner, outer = trace.finished_spans()  # inner closes first
        assert inner["name"] == "inner"
        assert inner["parent"] == "outer"
        assert inner["depth"] == 1
        assert outer["parent"] is None

    def test_exception_is_reraised_and_flagged(self):
        trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("failing"):
                raise RuntimeError("boom")
        (record,) = trace.finished_spans()
        assert record["error"] == "RuntimeError"

    def test_stack_recovers_after_exception(self):
        trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("failing"):
                raise RuntimeError("boom")
        with trace.span("after"):
            pass
        after = trace.finished_spans()[-1]
        assert after["parent"] is None and after["depth"] == 0

    def test_drain_empties_buffer(self):
        trace.enable()
        with trace.span("once"):
            pass
        assert len(trace.drain()) == 1
        assert trace.finished_spans() == []

    def test_disable_keeps_collected_spans(self):
        trace.enable()
        with trace.span("kept"):
            pass
        trace.disable()
        assert len(trace.finished_spans()) == 1


class TestThreads:
    def test_threads_keep_independent_stacks(self):
        trace.enable()
        barrier = threading.Barrier(4)

        def work(tag):
            barrier.wait()
            for _ in range(25):
                with trace.span("outer", tag=tag):
                    with trace.span("inner", tag=tag):
                        pass

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = trace.finished_spans()
        assert len(spans) == 4 * 25 * 2
        inner = [s for s in spans if s["name"] == "inner"]
        # Every inner span nests under its own thread's outer span.
        assert all(s["parent"] == "outer" and s["depth"] == 1 for s in inner)


class TestExport:
    def test_chrome_trace_shape(self):
        trace.enable()
        with trace.span("export", rows=2):
            pass
        doc = trace.chrome_trace()
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "export"
        assert event["args"] == {"rows": 2}
        assert event["dur"] >= 0.0

    def test_dump_writes_valid_json(self, tmp_path):
        trace.enable()
        with trace.span("to_disk"):
            pass
        target = tmp_path / "trace.json"
        written = trace.dump(str(target))
        assert written == str(target)
        doc = json.loads(target.read_text())
        assert doc["traceEvents"][0]["name"] == "to_disk"

    def test_dump_without_path_raises(self, tmp_path):
        trace.enable()  # no path configured
        with trace.span("lost"):
            pass
        with pytest.raises(ReproError):
            trace.dump()


class TestManifest:
    def test_run_with_manifest_writes_result_and_spans(self, tmp_path):
        from repro.experiments.manifest import run_with_manifest

        result, manifest_path = run_with_manifest(
            "complexity", str(tmp_path / "runs")
        )
        manifest = json.loads(manifest_path.read_text())
        assert manifest["experiment"] == "complexity"
        assert manifest["manifest_version"] == 3
        assert manifest["run_id"]
        assert manifest["obs"]["trace_file"] == "trace_merged.json"
        assert manifest["duration_s"] > 0.0
        names = [s["name"] for s in manifest["spans"]]
        assert "experiment.complexity" in names
        result_path = manifest_path.parent / manifest["result_file"]
        saved = json.loads(result_path.read_text())
        assert saved["experiment"] == result["experiment"]
        # Tracing was only on for the duration of the call.
        assert not trace.is_enabled()


class TestBitIdenticalTraining:
    def test_full_observability_does_not_change_weights(self, monkeypatch, tmp_path):
        """Logging+tracing+profiling on vs everything off: same weights."""
        from repro.nn import Adam, CategoricalCrossentropy, Dense, ReLU, Sequential

        rng = np.random.default_rng(3)
        x = (rng.random((96, 16)) > 0.5).astype(np.float64)
        y = rng.integers(0, 2, 96)

        def train():
            model = Sequential([Dense(8), ReLU(), Dense(2)])
            model.build((16,), rng=0)
            model.compile(loss=CategoricalCrossentropy(), optimizer=Adam())
            model.fit(x, y, epochs=3, batch_size=32, rng=11, verbose=True)
            return [p.copy() for p in model._gather()[0]]

        import io

        saved_mode, saved_threshold = obs_log._mode, obs_log._threshold
        try:
            obs_log.configure(mode="off")
            monkeypatch.delenv("REPRO_PROFILE", raising=False)
            baseline = train()

            obs_log.configure(
                mode="json", level="debug", stream=io.StringIO()
            )
            monkeypatch.setenv("REPRO_PROFILE", "1")
            trace.enable()
            monkeypatch.setattr("builtins.print", lambda *a, **k: None)
            instrumented = train()
        finally:
            obs_log._mode, obs_log._threshold = saved_mode, saved_threshold

        assert len(baseline) == len(instrumented)
        for before, after in zip(baseline, instrumented):
            np.testing.assert_array_equal(before, after)
