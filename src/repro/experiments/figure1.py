"""Figure 1 / §2.1: the non-Markov toy-cipher demonstration.

The paper's 2-round, two-S-box toy built from the GIFT S-box has a
characteristic whose true probability (``2^-6``, by exhaustive
enumeration) is 8x the Markov-assumption product (``2^-9``).  This
experiment re-derives every quoted number: the DDT entries, the valid
input tuples, both probabilities, and the quantitative violation of
Lai-Massey-Murphy's Definition 2.
"""

from __future__ import annotations

from typing import Dict

from repro.ciphers.gift import GIFT_SBOX
from repro.ciphers.toygift import PAPER_TRAIL, ToyGift, default_wiring
from repro.diffcrypt.markov import figure1_demonstration, markov_violation_toygift
from repro.diffcrypt.sbox import SBox
from repro.jobs import bind_run, run_cells


def _run_figure1_cell(payload: Dict) -> Dict:
    """The whole (deterministic) derivation as one grid cell."""
    return _figure1_body()


def run_figure1(queue_dir=None) -> Dict:
    """Regenerate the Figure 1 discussion (all numbers re-derived).

    The derivation is exhaustive and deterministic — no seeds — so the
    experiment is a single job; ``queue_dir`` still routes it through
    :mod:`repro.jobs` so a run directory's queue state covers every
    experiment uniformly.
    """
    if queue_dir is None:
        return _figure1_body()
    bind_run(queue_dir, "figure1", {}, 0)
    (result,) = run_cells(
        _run_figure1_cell,
        [{}],
        specs=[{"experiment": "figure1"}],
        workers=None,
        label="figure1",
        queue_dir=queue_dir,
    )
    return result


def _figure1_body() -> Dict:
    sbox = SBox(GIFT_SBOX)
    demo = figure1_demonstration()
    dy1 = PAPER_TRAIL["delta_y1"]
    dw1 = PAPER_TRAIL["delta_w1"]
    upper_pairs = sbox.valid_input_pairs(dy1[0], dw1[0])
    lower_pairs = sbox.valid_input_pairs(dy1[1], dw1[1])
    toy = ToyGift()
    return {
        "experiment": "figure1",
        "wiring": list(default_wiring()),
        "ddt_upper": int(sbox.ddt[dy1[0], dw1[0]]),
        "ddt_lower": int(sbox.ddt[dy1[1], dw1[1]]),
        "upper_valid_inputs": [p[0] for p in upper_pairs],
        "lower_valid_inputs": [p[0] for p in lower_pairs],
        "round1_probability": demo["round1_probability"],
        "paper_round1_probability": 2.0**-5,
        "exact_probability": demo["exact_probability"],
        "paper_exact_probability": 2.0**-6,
        "markov_probability": demo["markov_probability"],
        "paper_markov_probability": 2.0**-9,
        "markov_violation": markov_violation_toygift(),
        "trail": {k: list(v) for k, v in PAPER_TRAIL.items()},
        "exact_weight": demo["exact_weight"],
        "markov_weight": demo["markov_weight"],
        "toy_is_deterministic_per_input": toy.encrypt(0) == toy.encrypt(0),
    }
