"""Tests for the evolutionary difference optimizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SearchError
from repro.search.config import get_scenario_builder
from repro.search.evolve import (
    ENV_GENERATIONS,
    ENV_POPULATION,
    ENV_SEED,
    SearchConfig,
    evolve_differences,
)
from repro.search.oracle import BiasScoringOracle


def _oracle(rounds=3, n_samples=1024, workers=1, rng=0):
    builder = get_scenario_builder("toyspeck")
    return BiasScoringOracle(
        builder.prototype(rounds=rounds),
        n_samples=n_samples,
        rng=rng,
        workers=workers,
    )


SMALL = SearchConfig(
    population_size=16, generations=3, elite=4, top_k=4, n_samples=1024, seed=0
)


class TestSearchConfig:
    def test_defaults_valid(self):
        config = SearchConfig()
        assert config.population_size >= config.elite
        assert config.top_k >= 1

    def test_rejects_elite_above_population(self):
        with pytest.raises(SearchError):
            SearchConfig(population_size=4, elite=8)

    def test_rejects_nonpositive(self):
        with pytest.raises(SearchError):
            SearchConfig(generations=0)

    def test_from_env_reads_knobs(self, monkeypatch):
        monkeypatch.setenv(ENV_POPULATION, "10")
        monkeypatch.setenv(ENV_GENERATIONS, "2")
        monkeypatch.setenv(ENV_SEED, "0")
        config = SearchConfig.from_env()
        assert config.population_size == 10
        assert config.generations == 2
        assert config.seed == 0

    def test_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENV_POPULATION, "10")
        config = SearchConfig.from_env(population_size=6, elite=2)
        assert config.population_size == 6

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_GENERATIONS, "zero")
        with pytest.raises(SearchError):
            SearchConfig.from_env()


class TestEvolve:
    def test_returns_ranked_top_k(self):
        result = evolve_differences(_oracle(), SMALL)
        assert result.ranked_masks.shape == (4, 2)
        assert list(result.ranked_scores) == sorted(
            result.ranked_scores, reverse=True
        )
        assert result.best_score == result.ranked_scores[0]

    def test_deterministic_under_fixed_seed(self):
        a = evolve_differences(_oracle(), SMALL)
        b = evolve_differences(_oracle(), SMALL)
        assert np.array_equal(a.ranked_masks, b.ranked_masks)
        assert np.array_equal(a.ranked_scores, b.ranked_scores)

    def test_worker_invariant(self):
        serial = evolve_differences(_oracle(workers=1, n_samples=2048), SMALL)
        sharded = evolve_differences(_oracle(workers=3, n_samples=2048), SMALL)
        assert np.array_equal(serial.ranked_masks, sharded.ranked_masks)
        assert np.array_equal(serial.ranked_scores, sharded.ranked_scores)

    def test_rediscovers_at_least_paper_bias(self):
        # Acceptance criterion: a seeded search on ToySpeck finds a
        # difference at least as biased as the paper's delta = 0x0040.
        oracle = _oracle(rounds=3, n_samples=2048)
        result = evolve_differences(oracle, SMALL)
        paper = oracle.score(np.array([0x00, 0x40], dtype=np.uint8))
        assert result.best_score >= paper

    def test_seeds_are_injected(self):
        oracle = _oracle()
        seeds = np.array([[0x00, 0x40]], dtype=np.uint8)
        result = evolve_differences(oracle, SMALL, seeds=seeds)
        paper = oracle.score(seeds[0])
        # the injected seed was scored, so the winner can't be worse
        assert result.best_score >= paper

    def test_allowed_bits_confine_search(self):
        # restrict the search to the low nibble of word 1
        allowed = np.array([0x00, 0x0F], dtype=np.uint8)
        result = evolve_differences(_oracle(), SMALL, allowed=allowed)
        assert np.all(result.ranked_masks[:, 0] == 0)
        assert np.all(result.ranked_masks[:, 1] & ~allowed[1] == 0)

    def test_history_tracks_generations(self):
        result = evolve_differences(_oracle(), SMALL)
        assert len(result.history) == SMALL.generations
        assert all("best" in row and "mean" in row for row in result.history)

    def test_summary_is_json_ready(self):
        import json

        result = evolve_differences(_oracle(), SMALL)
        blob = json.dumps(result.summary())
        assert "ranked_differences" in blob
        assert "evolutionary-bias" in blob
