"""Live sweep dashboard: watch a run directory while the run is running.

``python -m repro.obs.dashboard --run-dir DIR`` serves a small
auto-refreshing HTML page (stdlib ``ThreadingHTTPServer``, no assets,
no dependencies) summarising whatever the directory holds *right now*:

* per-cell status / attempts / durations from the job queue;
* throughput (done cells per minute) and an ETA — median completed-cell
  duration × remaining cells ÷ resolved workers;
* accuracy-so-far tables recovered from done cells' stored results, so
  a half-finished (or killed) Table 2 sweep already shows its rows;
* the tail of the run event bus (``events.jsonl``).

Everything is re-collected from disk on each request, so the page is
always consistent with what a resume would see — the dashboard holds no
state of its own and can be pointed at a live run, a killed run, or a
finished one.

Modes:

* default        — serve HTTP (``/`` HTML, ``/api/status`` JSON,
  ``/api/events?n=K`` the newest K events);
* ``--watch``    — redraw a plain-text summary in the terminal every
  ``--interval`` seconds (for ssh sessions without a browser);
* ``--once``     — collect once and print (or ``--out FILE`` the HTML),
  then exit; this is what CI uses to smoke-test rendering.
"""

from __future__ import annotations

import argparse
import html
import json
import statistics
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional
from urllib.parse import parse_qs, urlsplit

from repro.experiments import report as run_report
from repro.obs import events as obs_events

DEFAULT_INTERVAL_S = 2.0


# -- collection --------------------------------------------------------------


def _cell_rows(jobs: List[Dict]) -> List[Dict]:
    rows = []
    for record in jobs:
        spec = record.get("spec") or {}
        label = ", ".join(
            f"{key}={spec[key]}"
            for key in sorted(spec)
            if key not in ("experiment", "seed") and spec[key] is not None
        )
        rows.append(
            {
                "index": record.get("index"),
                "cell": label or record.get("job_id"),
                "status": record.get("status", "unknown"),
                "attempts": record.get("attempts"),
                "duration_s": record.get("duration_s"),
                "error_type": record.get("error_type"),
            }
        )
    return rows


def _progress(state: Optional[Dict], manifest: Optional[Dict]) -> Dict:
    """Throughput and ETA from queue records (empty dict without a queue)."""
    if state is None:
        return {}
    jobs = state["jobs"]
    counts = state["counts"]
    done = [r for r in jobs if r.get("status") == "done"]
    durations = [
        float(r["duration_s"]) for r in done
        if isinstance(r.get("duration_s"), (int, float))
    ]
    remaining = counts.get("pending", 0) + counts.get("running", 0)
    workers = 1
    if manifest is not None:
        workers = (manifest.get("workers") or {}).get("resolved") or 1
    progress: Dict = {
        "total": len(jobs),
        "done": len(done),
        "remaining": remaining,
        "failed": counts.get("failed", 0),
        "workers": workers,
    }
    if durations:
        median = statistics.median(durations)
        progress["median_cell_s"] = round(median, 4)
        progress["eta_s"] = round(median * remaining / max(workers, 1), 2)
    meta = state.get("meta") or {}
    started = meta.get("created_unix")
    stamps = [
        r.get("updated_unix") for r in done
        if isinstance(r.get("updated_unix"), (int, float))
    ]
    if isinstance(started, (int, float)) and stamps:
        elapsed = max(max(stamps) - started, 1e-9)
        progress["cells_per_min"] = round(60.0 * len(done) / elapsed, 3)
    return progress


def collect_dashboard(run_dir) -> Dict:
    """Everything the dashboard shows, as one JSON-ready dict.

    Re-reads the run directory from scratch — safe against concurrent
    writers (all run artefacts are atomic or append-only) and therefore
    equally valid for in-flight, killed and completed runs.
    """
    run = run_report.collect_run(run_dir)
    experiments = []
    for name, sources in sorted(run["experiments"].items()):
        manifest = sources["manifest"]
        result = sources["result"]
        state = sources["queue"]
        if result is not None:
            tables = run_report._experiment_tables(name, result)
            partial = False
        elif state is not None:
            rows = run_report._partial_rows(state)
            tables = run_report._experiment_tables(name, {"rows": rows})
            partial = True
        else:
            tables, partial = [], result is None
        experiments.append(
            {
                "name": name,
                "complete": result is not None,
                "partial_tables": partial,
                "progress": _progress(state, manifest),
                "cells": _cell_rows(state["jobs"]) if state else [],
                "tables": [
                    {"title": title, "headers": list(headers), "rows": body}
                    for title, headers, body in tables
                ],
            }
        )
    events_tail = obs_events.read_events(run_dir, limit=15)
    return {
        "run_dir": run["run_dir"],
        "generated_unix": round(time.time(), 3),
        "experiments": experiments,
        "event_counts": obs_events.event_counts(run_dir),
        "events_tail": events_tail,
        "obs": run.get("obs"),
    }


# -- rendering ---------------------------------------------------------------

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 1.5rem auto;
       max-width: 64rem; color: #1a1a1a; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 1.5rem; border-bottom: 1px solid #bbb; }
table { border-collapse: collapse; margin: .5rem 0 1rem; }
th, td { border: 1px solid #ccc; padding: .2rem .55rem;
         text-align: left; font-size: .85rem; }
th { background: #f0f0f0; }
td.status-done { color: #14691b; }
td.status-failed { color: #9c1111; font-weight: bold; }
td.status-pending, td.status-running { color: #8a6d00; }
.meta { color: #555; font-size: .85rem; }
code { background: #f5f5f5; padding: 0 .2rem; }
pre { background: #f7f7f7; padding: .5rem; font-size: .8rem;
      overflow-x: auto; }
"""


def _fmt_eta(seconds) -> str:
    if not isinstance(seconds, (int, float)):
        return "—"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def _progress_line(exp: Dict) -> str:
    progress = exp.get("progress") or {}
    if not progress:
        return "complete" if exp.get("complete") else "no queue state"
    bits = [f"{progress['done']}/{progress['total']} cells done"]
    if progress.get("failed"):
        bits.append(f"{progress['failed']} failed")
    if progress.get("median_cell_s") is not None:
        bits.append(f"median cell {progress['median_cell_s']:.1f}s")
    if progress.get("cells_per_min") is not None:
        bits.append(f"{progress['cells_per_min']:.2f} cells/min")
    if progress.get("remaining"):
        bits.append(
            f"ETA {_fmt_eta(progress.get('eta_s'))} "
            f"({progress['remaining']} left × {progress['workers']} workers)"
        )
    return "; ".join(bits)


def render_dashboard_html(
    data: Dict, interval_s: float = DEFAULT_INTERVAL_S
) -> str:
    """The dashboard as one standalone auto-refreshing HTML page."""
    parts = [
        "<!doctype html>",
        "<html><head><meta charset='utf-8'>",
        f"<meta http-equiv='refresh' content='{max(interval_s, 0.5):g}'>",
        f"<title>Sweep dashboard — {html.escape(data['run_dir'])}</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>Sweep dashboard — "
        f"<code>{html.escape(data['run_dir'])}</code></h1>",
        "<p class='meta'>Collected "
        f"{time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(data['generated_unix']))}"
        f"; refreshes every {max(interval_s, 0.5):g}s.</p>",
    ]
    if not data["experiments"]:
        parts.append("<p><em>No experiments in this directory yet.</em></p>")
    for exp in data["experiments"]:
        parts.append(f"<h2>{html.escape(exp['name'])}</h2>")
        parts.append(f"<p>{html.escape(_progress_line(exp))}.</p>")
        if exp["cells"]:
            parts += run_report._html_table(
                ["#", "Cell", "Status", "Attempts", "Seconds", "Error"],
                [
                    [c["index"], c["cell"], c["status"], c["attempts"],
                     c["duration_s"], c["error_type"]]
                    for c in exp["cells"]
                ],
                status_col=2,
            )
        for table in exp["tables"]:
            suffix = " — rows so far" if exp["partial_tables"] else ""
            parts.append(
                f"<h3>{html.escape(table['title'] + suffix)}</h3>"
            )
            parts += run_report._html_table(
                table["headers"], table["rows"]
            )
    if data["event_counts"]:
        parts.append("<h2>Run events</h2>")
        parts += run_report._html_table(
            ["Event", "Count"],
            [[name, data["event_counts"][name]]
             for name in sorted(data["event_counts"])],
        )
        tail_lines = [
            json.dumps(record, sort_keys=True, default=str)
            for record in data["events_tail"]
        ]
        parts.append("<h3>Latest events</h3>")
        parts.append(f"<pre>{html.escape(chr(10).join(tail_lines))}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def render_watch(data: Dict) -> str:
    """The dashboard as plain text for ``--watch`` terminal mode."""
    lines = [
        f"sweep dashboard — {data['run_dir']}",
        time.strftime(
            "collected %Y-%m-%d %H:%M:%S",
            time.localtime(data["generated_unix"]),
        ),
    ]
    if not data["experiments"]:
        lines.append("  (no experiments yet)")
    for exp in data["experiments"]:
        lines += ["", f"{exp['name']}: {_progress_line(exp)}"]
        if exp["cells"]:
            lines.append(
                run_report.format_table(
                    ["#", "Cell", "Status", "Attempts", "Seconds"],
                    [
                        [c["index"], c["cell"], c["status"], c["attempts"],
                         "—" if c["duration_s"] is None
                         else f"{c['duration_s']:.2f}"]
                        for c in exp["cells"]
                    ],
                )
            )
        for table in exp["tables"]:
            suffix = " — rows so far" if exp["partial_tables"] else ""
            lines += [
                "",
                run_report.format_table(
                    table["headers"], table["rows"],
                    title=table["title"] + suffix,
                ),
            ]
    if data["event_counts"]:
        counts = ", ".join(
            f"{name}={data['event_counts'][name]}"
            for name in sorted(data["event_counts"])
        )
        lines += ["", f"events: {counts}"]
    return "\n".join(lines) + "\n"


# -- HTTP serving ------------------------------------------------------------


class _DashboardHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        del format, args

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        server = self.server  # type: ignore[assignment]
        parts = urlsplit(self.path)
        try:
            if parts.path in ("/", "/index.html"):
                page = render_dashboard_html(
                    collect_dashboard(server.run_dir), server.interval_s
                )
                self._send(200, page.encode(), "text/html; charset=utf-8")
            elif parts.path == "/api/status":
                payload = json.dumps(
                    collect_dashboard(server.run_dir), default=str
                )
                self._send(200, payload.encode(), "application/json")
            elif parts.path == "/api/events":
                query = parse_qs(parts.query)
                try:
                    limit = int(query.get("n", ["50"])[-1])
                except ValueError:
                    limit = 50
                payload = json.dumps(
                    {"events": obs_events.read_events(
                        server.run_dir, limit=max(limit, 0)
                    )},
                    default=str,
                )
                self._send(200, payload.encode(), "application/json")
            else:
                self._send(
                    404,
                    json.dumps(
                        {"error": f"unknown path {self.path!r}"}
                    ).encode(),
                    "application/json",
                )
        except Exception as exc:  # the dashboard must not die on a request
            self._send(
                500,
                json.dumps({"error": f"internal error: {exc}"}).encode(),
                "application/json",
            )


class DashboardServer(ThreadingHTTPServer):
    """HTTP server bound to one run directory (``port=0`` = ephemeral)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, run_dir, host: str = "127.0.0.1", port: int = 0,
                 interval_s: float = DEFAULT_INTERVAL_S):
        super().__init__((host, port), _DashboardHandler)
        self.run_dir = Path(run_dir)
        self.interval_s = float(interval_s)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


# -- CLI ---------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dashboard",
        description="Live dashboard over an experiment run directory.",
    )
    parser.add_argument("--run-dir", required=True,
                        help="run directory to watch")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8377,
                        help="HTTP port (0 = ephemeral)")
    parser.add_argument("--interval", type=float, default=DEFAULT_INTERVAL_S,
                        help="refresh/redraw period in seconds")
    parser.add_argument("--watch", action="store_true",
                        help="redraw a terminal summary instead of serving")
    parser.add_argument("--once", action="store_true",
                        help="collect and render once, then exit")
    parser.add_argument("--out", default=None,
                        help="with --once: write the HTML page here")
    args = parser.parse_args(argv)

    if args.once:
        data = collect_dashboard(args.run_dir)
        if args.out:
            Path(args.out).write_text(
                render_dashboard_html(data, args.interval), encoding="utf-8"
            )
            print(f"wrote {args.out}")
        else:
            sys.stdout.write(render_watch(data))
        return 0
    if args.watch:
        try:
            while True:
                data = collect_dashboard(args.run_dir)
                sys.stdout.write("\x1b[2J\x1b[H" + render_watch(data))
                sys.stdout.flush()
                time.sleep(max(args.interval, 0.2))
        except KeyboardInterrupt:
            return 0
    server = DashboardServer(
        args.run_dir, host=args.host, port=args.port,
        interval_s=args.interval,
    )
    print(f"dashboard for {args.run_dir} at {server.url} (Ctrl-C stops)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
