"""Name-indexed experiment registry and runner."""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.complexity import cube_root_summary
from repro.errors import ExperimentError
from repro.experiments.figure1 import run_figure1
from repro.experiments.speck_baseline import (
    run_speck_baseline,
    run_toyspeck_allinone,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3


def _run_complexity() -> Dict:
    return {"experiment": "complexity", "rows": [cube_root_summary(8)]}


def _run_panorama(rounds=(2, 3, 4), **_kwargs) -> Dict:
    """Exact differential/linear/all-in-one comparison on Gift16."""
    from repro.diffcrypt.linear import gift16_cryptanalytic_panorama

    rows = [gift16_cryptanalytic_panorama(r, (0x0001, 0x0010)) for r in rounds]
    return {"experiment": "panorama", "rows": rows}


def _run_key_recovery(
    attack_rounds: int = 4,
    train_samples: int = 40_000,
    n_pairs: int = 256,
    candidate_bits: int = 12,
    rng=5,
) -> Dict:
    """Gohr-style last-round-subkey recovery on round-reduced SPECK."""
    from repro.core.key_recovery import SpeckKeyRecovery

    recovery = SpeckKeyRecovery(attack_rounds=attack_rounds, epochs=4, rng=rng)
    accuracy = recovery.train_distinguisher(train_samples)
    result = recovery.attack(
        (0x1918, 0x1110, 0x0908, 0x0100),
        n_pairs=n_pairs,
        candidate_bits=candidate_bits,
        rng=3,
    )
    return {
        "experiment": "key-recovery",
        "rows": [
            {
                "attack_rounds": attack_rounds,
                "distinguisher_accuracy": accuracy,
                "candidates": len(result.candidates),
                "true_key_rank": result.true_key_rank,
                "best_candidate": f"{result.best:#06x}",
            }
        ],
    }


def _run_search_toyspeck(
    rounds: int = 3,
    population_size: int = 24,
    generations: int = 5,
    n_samples: int = 2048,
    rng=0,
) -> Dict:
    """Automated difference search on ToySpeck, ranked against the paper.

    Runs the :mod:`repro.search` evolutionary optimizer at a small
    budget and reports the top differences next to the paper's
    hand-picked ``delta = 0x0040`` so the two choices are directly
    comparable under the same bias oracle.
    """
    import numpy as np

    from repro.search import BiasScoringOracle, SearchConfig, evolve_differences
    from repro.search.config import get_scenario_builder

    builder = get_scenario_builder("toyspeck")
    oracle = BiasScoringOracle(
        builder.prototype(rounds=rounds), n_samples=n_samples, rng=rng
    )
    config = SearchConfig.from_env(
        population_size=population_size,
        generations=generations,
        n_samples=n_samples,
        seed=int(rng),
    )
    result = evolve_differences(oracle, config)
    paper = np.array([0x00, 0x40], dtype=np.uint8)
    paper_score = oracle.score(paper)
    rows = [
        {
            "rank": rank,
            "difference": "0x" + "".join(f"{int(w):02x}" for w in mask),
            "bias_score": round(score, 4),
            "vs_paper": round(score / paper_score, 2) if paper_score else None,
        }
        for rank, (mask, score) in enumerate(
            zip(result.ranked_masks, result.ranked_scores), start=1
        )
    ]
    return {
        "experiment": "search-toyspeck",
        "rounds": rounds,
        "paper_difference": "0x0040",
        "paper_score": round(paper_score, 4),
        "noise_floor": round(result.noise_floor, 4),
        "evaluations": result.evaluations,
        "rows": rows,
    }


EXPERIMENTS: Dict[str, Callable[..., Dict]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "figure1": run_figure1,
    "speck-baseline": run_speck_baseline,
    "toyspeck-allinone": run_toyspeck_allinone,
    "complexity": _run_complexity,
    "panorama": _run_panorama,
    "key-recovery": _run_key_recovery,
    "search-toyspeck": _run_search_toyspeck,
}


def get_experiment(name: str) -> Callable[..., Dict]:
    """Look up an experiment function by its registry name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(f"unknown experiment {name!r}; known: {known}") from None


def run_experiment(name: str, **kwargs) -> Dict:
    """Run an experiment by name with keyword overrides."""
    return get_experiment(name)(**kwargs)
