"""Chosen-difference experiments ("scenarios") for the distinguisher.

A scenario fixes everything Algorithm 2 leaves abstract: the primitive
and its round reduction, the ``t`` input differences
``δ0, ..., δ(t-1)``, how fresh base inputs (and per-sample context such
as AEAD keys) are drawn, and which output words the attacker observes.

The two headline scenarios reproduce §4 of the paper:

* :class:`GimliHashScenario` — a single padded message block absorbed by
  a round-reduced permutation, observed through the first 128-bit
  squeeze; differences flip the LSB of message bytes 4 and 12.
* :class:`GimliCipherScenario` — the nonce-respecting Gimli-Cipher
  pipeline up to the first ciphertext block with a *total* round budget
  split over the two permutation calls; differences flip nonce bytes 4
  and 12.

Additional scenarios cover the raw permutation, ToySpeck (where the
exact all-in-one baseline exists) and Gohr's real-vs-random SPECK game
(§2.3 background).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.ciphers.gimli import GimliPermutation
from repro.ciphers.gimli_cipher import gimli_aead_reduced_c0_batch
from repro.ciphers.gimli_hash import RATE_BYTES, absorb_final_block_batch
from repro.ciphers.speck import encrypt_batch as speck_encrypt_batch
from repro.ciphers.toyspeck import encrypt_batch as toyspeck_encrypt_batch
from repro.core.oracle import CipherOracle, Oracle, RandomOracle
from repro.errors import DistinguisherError
from repro.utils.encoding import state_to_bits
from repro.utils.rng import make_rng, random_words


def _byte_flip_mask(byte_index: int, bit: int = 0) -> Tuple[int, int]:
    """Word index and XOR mask flipping ``bit`` of state byte ``byte_index``."""
    word, offset = divmod(byte_index, 4)
    return word, 1 << (8 * offset + bit)


class DifferentialScenario(abc.ABC):
    """Base class for ``t``-class chosen-difference experiments."""

    #: number of words in a query input
    input_words: int
    #: number of words in an observed output
    output_words: int
    #: bits per word
    word_width: int = 32

    def __init__(self, difference_masks: np.ndarray):
        masks = np.asarray(difference_masks)
        if masks.ndim != 2 or masks.shape[0] < 2:
            raise DistinguisherError(
                "need at least t=2 input differences (paper §3.1); got shape "
                f"{masks.shape}"
            )
        if masks.shape[1] != self.input_words:
            raise DistinguisherError(
                f"difference masks must have {self.input_words} words, "
                f"got {masks.shape[1]}"
            )
        if any((row == 0).all() for row in masks):
            raise DistinguisherError("input differences must be non-zero")
        self.difference_masks = masks

    @property
    def num_classes(self) -> int:
        """The paper's ``t``."""
        return self.difference_masks.shape[0]

    @property
    def feature_bits(self) -> int:
        """Width of one training sample (bits of the output difference)."""
        return self.output_words * self.word_width

    @abc.abstractmethod
    def sample_base_inputs(self, n: int, rng) -> np.ndarray:
        """Draw ``n`` fresh base inputs ``P``."""

    def sample_context(self, n: int, rng) -> Optional[np.ndarray]:
        """Draw per-sample context (e.g. keys); ``None`` if stateless."""
        del n, rng
        return None

    @abc.abstractmethod
    def pipeline(self, inputs: np.ndarray, context: Optional[np.ndarray]) -> np.ndarray:
        """The real (round-reduced) primitive, batched."""

    def apply_difference(self, inputs: np.ndarray, class_index: int) -> np.ndarray:
        """``P ⊕ δ_i`` for every row of ``inputs``."""
        mask = self.difference_masks[class_index].astype(inputs.dtype)
        return inputs ^ mask

    def cipher_oracle(self) -> CipherOracle:
        """The CIPHER side of the game."""
        return CipherOracle(self.pipeline)

    def random_oracle(self, rng=None, memoize: bool = True) -> RandomOracle:
        """The RANDOM side of the game, geometry-matched to this scenario."""
        return RandomOracle(
            self.output_words, self.word_width, rng=rng, memoize=memoize
        )

    def generate_dataset(
        self,
        n_per_class: int,
        rng=None,
        oracle: Optional[Oracle] = None,
        shuffle: bool = True,
        workers: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Labelled output-difference samples (Algorithm 2's data step).

        For each of ``n_per_class`` base inputs ``P`` the oracle is
        queried on ``P`` and on every ``P ⊕ δ_i``; sample ``i`` is the
        bit vector of ``C ⊕ C_i`` labelled ``i``.  Returns
        ``(features, labels)`` with ``features`` float32 of shape
        ``(n_per_class * t, feature_bits)``.

        ``workers=None`` (the default) keeps the historical single-stream
        path.  Any integer ``workers >= 1`` switches to the sharded
        generator of :mod:`repro.core.parallel`, whose output is
        bit-identical for every worker count (including 1) but differs
        from the ``workers=None`` stream.  Custom ``oracle`` objects may
        carry state (e.g. a memoised :class:`RandomOracle`) that cannot
        be shared across processes, so they always run on the
        single-stream path.
        """
        if n_per_class <= 0:
            raise DistinguisherError(
                f"n_per_class must be positive, got {n_per_class}"
            )
        if workers is not None and oracle is None:
            from repro.core.parallel import generate_dataset_sharded

            return generate_dataset_sharded(
                self, n_per_class, rng=rng, shuffle=shuffle, workers=workers
            )
        generator = make_rng(rng)
        if oracle is None:
            oracle = self.cipher_oracle()
        inputs = self.sample_base_inputs(n_per_class, generator)
        context = self.sample_context(n_per_class, generator)
        base_out = oracle.query(inputs, context)
        features = []
        labels = []
        for i in range(self.num_classes):
            out_i = oracle.query(self.apply_difference(inputs, i), context)
            diff = base_out ^ out_i
            features.append(state_to_bits(diff, self.word_width))
            labels.append(np.full(n_per_class, i, dtype=np.int64))
        x = np.concatenate(features, axis=0)
        y = np.concatenate(labels, axis=0)
        if shuffle:
            order = generator.permutation(x.shape[0])
            x, y = x[order], y[order]
        return x, y


class GimliHashScenario(DifferentialScenario):
    """§4's Gimli-Hash experiment.

    A single-block message of ``block_len`` random bytes is absorbed
    (with padding and domain separation) by an ``rounds``-round Gimli
    permutation; the observable is the first 128-bit squeeze ``h`` and
    the classes flip the LSB of the message bytes in ``diff_bytes``.

    ``masks`` overrides ``diff_bytes`` with explicit ``(t, 4)`` uint32
    message differences (any bits, not just byte LSBs) — the form the
    automated difference search of :mod:`repro.search` produces.  Masks
    must stay inside the ``block_len``-byte message: a difference in the
    padding bytes would encode a different message length, not a chosen
    message difference.
    """

    input_words = 4
    output_words = 4

    def __init__(
        self,
        rounds: int = 8,
        diff_bytes: Sequence[int] = (4, 12),
        block_len: int = 15,
        masks: Optional[np.ndarray] = None,
    ):
        if not 0 < block_len < RATE_BYTES:
            raise DistinguisherError(
                f"block_len must be in (0, {RATE_BYTES}), got {block_len}"
            )
        if masks is None:
            for byte in diff_bytes:
                if not 0 <= byte < block_len:
                    raise DistinguisherError(
                        f"difference byte {byte} outside the {block_len}-byte block"
                    )
            masks = np.zeros((len(diff_bytes), 4), dtype=np.uint32)
            for row, byte in enumerate(diff_bytes):
                word, mask = _byte_flip_mask(byte)
                masks[row, word] = mask
        else:
            masks = np.asarray(masks, dtype=np.uint32)
            allowed = np.zeros(4, dtype=np.uint64)
            for byte in range(block_len):
                word, offset = divmod(byte, 4)
                allowed[word] |= np.uint64(0xFF) << np.uint64(8 * offset)
            if masks.ndim != 2 or (
                masks.astype(np.uint64) & ~allowed
            ).any():
                raise DistinguisherError(
                    f"masks must be (t, 4) differences inside the first "
                    f"{block_len} message bytes"
                )
        super().__init__(masks)
        self.rounds = int(rounds)
        self.block_len = int(block_len)

    def sample_base_inputs(self, n, rng):
        raw = rng.integers(0, 256, size=(n, RATE_BYTES), dtype=np.uint8)
        raw[:, self.block_len:] = 0
        return np.frombuffer(raw.tobytes(), dtype="<u4").reshape(n, 4).astype(
            np.uint32
        )

    def pipeline(self, inputs, context=None):
        del context
        return absorb_final_block_batch(inputs, self.block_len, self.rounds)


class GimliCipherScenario(DifferentialScenario):
    """§4's Gimli-Cipher experiment (nonce-respecting).

    Fresh 256-bit keys per sample, nonce differences at ``diff_bytes``,
    one empty padded associated-data block, zero first message block.
    ``total_rounds`` is the combined round budget of the two
    permutation calls before ``c0`` (split ceil/floor — see DESIGN.md).

    ``masks`` hands the ``(t, 4)`` nonce-difference words directly
    (mutually exclusive with ``diff_bytes``) — the whole 16-byte nonce
    is attacker-controlled, so any bit pattern is a legal difference.
    This is the hook the search layer's declarative builders use.
    """

    input_words = 4
    output_words = 4

    def __init__(
        self,
        total_rounds: int = 8,
        diff_bytes: Sequence[int] = (4, 12),
        masks: Optional[np.ndarray] = None,
    ):
        if masks is not None:
            masks = np.asarray(masks, dtype=np.uint32)
            if masks.ndim != 2 or masks.shape[1] != 4:
                raise DistinguisherError(
                    f"Gimli-Cipher masks must have shape (t, 4), got "
                    f"{masks.shape}"
                )
        else:
            masks = np.zeros((len(diff_bytes), 4), dtype=np.uint32)
            for row, byte in enumerate(diff_bytes):
                if not 0 <= byte < 16:
                    raise DistinguisherError(
                        f"nonce difference byte {byte} outside the 16-byte nonce"
                    )
                word, mask = _byte_flip_mask(byte)
                masks[row, word] = mask
        super().__init__(masks)
        self.total_rounds = int(total_rounds)

    def sample_base_inputs(self, n, rng):
        return random_words(rng, (n, 4))

    def sample_context(self, n, rng):
        return random_words(rng, (n, 8))

    def pipeline(self, inputs, context=None):
        if context is None:
            raise DistinguisherError(
                "GimliCipherScenario needs per-sample keys as context"
            )
        return gimli_aead_reduced_c0_batch(inputs, context, self.total_rounds)


class GimliPermutationScenario(DifferentialScenario):
    """Distinguisher directly on the (round-reduced) 384-bit permutation.

    ``differences`` is a ``(t, 12)`` array of state differences; the
    observable is the full output state.  ``observe_words`` restricts
    the observation (e.g. ``range(4)`` for the rate row only).
    """

    input_words = 12
    word_width = 32

    def __init__(
        self,
        rounds: int = 8,
        differences: Optional[np.ndarray] = None,
        observe_words: Optional[Sequence[int]] = None,
    ):
        if differences is None:
            differences = np.zeros((2, 12), dtype=np.uint32)
            differences[0, 1] = 1  # bit 0 of word 1 (byte 4)
            differences[1, 3] = 1  # bit 0 of word 3 (byte 12)
        self._observe = tuple(observe_words) if observe_words is not None else tuple(
            range(12)
        )
        if not self._observe or any(not 0 <= w < 12 for w in self._observe):
            raise DistinguisherError(
                f"observe_words must be a non-empty subset of 0..11, got "
                f"{self._observe}"
            )
        self.output_words = len(self._observe)
        super().__init__(np.asarray(differences, dtype=np.uint32))
        self.permutation = GimliPermutation(rounds)
        self.rounds = int(rounds)

    def sample_base_inputs(self, n, rng):
        return random_words(rng, (n, 12))

    def pipeline(self, inputs, context=None):
        del context
        out = self.permutation(inputs)
        return out[:, list(self._observe)]


class ToySpeckScenario(DifferentialScenario):
    """``t``-difference experiment on ToySpeck with fresh keys per sample.

    Small enough that the ML accuracy can be compared against the exact
    all-in-one Bayes ceiling from :mod:`repro.diffcrypt.allinone`.
    """

    input_words = 2
    output_words = 2
    word_width = 8

    def __init__(self, rounds: int = 4, deltas: Sequence[int] = (0x0040, 0x2000)):
        masks = np.zeros((len(deltas), 2), dtype=np.uint8)
        for row, delta in enumerate(deltas):
            if not 0 < delta < 1 << 16:
                raise DistinguisherError(
                    f"ToySpeck difference must be a non-zero 16-bit value, "
                    f"got {delta:#x}"
                )
            masks[row, 0] = (delta >> 8) & 0xFF
            masks[row, 1] = delta & 0xFF
        super().__init__(masks)
        self.rounds = int(rounds)
        self.deltas = tuple(int(d) for d in deltas)

    def sample_base_inputs(self, n, rng):
        return rng.integers(0, 256, size=(n, 2), dtype=np.uint8)

    def sample_context(self, n, rng):
        return rng.integers(0, 256, size=(n, 4), dtype=np.uint8)

    def pipeline(self, inputs, context=None):
        if context is None:
            raise DistinguisherError("ToySpeckScenario needs per-sample keys")
        return toyspeck_encrypt_batch(inputs, context, self.rounds)


class SpeckRealOrRandomScenario:
    """Gohr's CRYPTO'19 binary game on SPECK-32/64 (paper §2.3).

    Unlike the ``t``-difference scenarios, the two classes here are
    *real* ciphertext pairs (encryptions of ``P`` and ``P ⊕ δ`` under a
    fresh key) versus *random* pairs, and the model sees the full pair,
    not its difference.  Provided as the background baseline the paper
    builds on.
    """

    feature_bits = 64  # two 32-bit ciphertexts
    num_classes = 2

    def __init__(self, rounds: int = 5, delta: int = 0x0040_0000):
        if not 0 < delta < 1 << 32:
            raise DistinguisherError(
                f"delta must be a non-zero 32-bit block difference, got {delta:#x}"
            )
        self.rounds = int(rounds)
        self.delta = int(delta)

    def generate_dataset(
        self, n_per_class: int, rng=None, shuffle: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Balanced real/random ciphertext-pair dataset, Gohr-style."""
        if n_per_class <= 0:
            raise DistinguisherError(
                f"n_per_class must be positive, got {n_per_class}"
            )
        generator = make_rng(rng)
        n = n_per_class
        plaintexts = generator.integers(0, 1 << 16, size=(2 * n, 2), dtype=np.uint16)
        keys = generator.integers(0, 1 << 16, size=(2 * n, 4), dtype=np.uint16)
        dx = np.uint16((self.delta >> 16) & 0xFFFF)
        dy = np.uint16(self.delta & 0xFFFF)
        partners = plaintexts.copy()
        partners[:, 0] ^= dx
        partners[:, 1] ^= dy
        c0 = speck_encrypt_batch(plaintexts, keys, self.rounds)
        c1 = speck_encrypt_batch(partners, keys, self.rounds)
        # Replace the second half with uniformly random pairs (label 0).
        c0[n:] = generator.integers(0, 1 << 16, size=(n, 2), dtype=np.uint16)
        c1[n:] = generator.integers(0, 1 << 16, size=(n, 2), dtype=np.uint16)
        pairs = np.concatenate([c0, c1], axis=1)  # (2n, 4) uint16
        features = state_to_bits(pairs, 16)
        labels = np.concatenate(
            [np.ones(n, dtype=np.int64), np.zeros(n, dtype=np.int64)]
        )
        if shuffle:
            order = generator.permutation(2 * n)
            features, labels = features[order], labels[order]
        return features, labels
