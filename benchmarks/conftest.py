"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures at
``REPRO_SCALE`` of the paper's data budget (default 0.05) and prints the
paper-vs-measured rows.  Benchmarks run exactly once per session
(``pedantic`` with one round) — the quantity of interest is the
experiment's *output*, the timing is a bonus.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic generator for benchmark workloads."""
    return np.random.default_rng(0xBE9C4)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
