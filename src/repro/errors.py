"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers
can catch a single base class.  Errors are raised eagerly with precise
messages; silent failure is never an acceptable outcome for a
cryptanalytic toolkit, where a wrong answer looks exactly like a result.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CipherError(ReproError):
    """Invalid cipher parameters (state size, round window, key size...)."""


class PaddingError(CipherError):
    """Malformed input to a padding or mode-of-operation routine."""


class ShapeError(ReproError):
    """A numpy array argument has the wrong shape or dtype."""


class LayerError(ReproError):
    """Invalid neural-network layer configuration or wiring."""


class TrainingError(ReproError):
    """The training loop was asked to do something impossible."""


class DistinguisherError(ReproError):
    """Misuse of the distinguisher protocol (e.g. testing before training)."""


class DistinguisherAborted(DistinguisherError):
    """Offline phase found no signal (training accuracy at the random level).

    Algorithm 2 of the paper prescribes aborting when the training
    accuracy ``a`` is not significantly above ``1/t``; this exception is
    that abort.
    """


class SearchError(ReproError):
    """A trail-search routine was configured inconsistently."""


class ServeError(ReproError):
    """Base class for the online serving subsystem (:mod:`repro.serve`)."""


class RegistryError(ServeError):
    """Model registry misuse: unknown id, malformed manifest, bad pin."""


class EngineOverloaded(ServeError):
    """The inference engine's request queue is full (backpressure signal).

    Callers should shed load or retry with backoff; the engine never
    silently drops a request it has accepted.
    """


class ServeTimeout(ServeError):
    """A serving request exceeded its deadline before being answered."""


class ExperimentError(ReproError):
    """Unknown experiment id or invalid experiment configuration."""


class JobError(ReproError):
    """Job-queue misuse or failure (:mod:`repro.jobs`).

    Raised when a queue directory is bound to different run arguments
    than the caller's, when a job record is malformed, or when a run
    finishes with cells that failed terminally or were never processed
    (an interrupted run) — the message says which, and resuming with the
    same queue directory picks up exactly the unfinished cells.
    """
