"""Worker-count invariance of the grid-parallel table runners.

The tentpole contract: every table runner derives per-cell seed material
up front and dispatches cells through
:func:`repro.core.parallel.run_grid`, so ``workers=1`` (in-process) and
``workers=N`` (process pool) produce identical rows.  These tests run
each table twice at tiny scale and diff the results, stripping only the
wall-clock ``training_time_s`` field where present.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel import run_grid
from repro.errors import DistinguisherError
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3


def _strip_timing(result):
    return {
        key: (
            [
                {k: v for k, v in row.items() if k != "training_time_s"}
                for row in value
            ]
            if key == "rows"
            else value
        )
        for key, value in result.items()
    }


class TestRunGrid:
    def test_preserves_order_in_process(self):
        assert run_grid(lambda p: p * 2, [3, 1, 2], workers=1) == [6, 2, 4]

    def test_preserves_order_across_processes(self):
        assert run_grid(_double, list(range(7)), workers=3) == [
            0, 2, 4, 6, 8, 10, 12
        ]

    def test_rejects_bad_worker_count(self):
        with pytest.raises(DistinguisherError):
            run_grid(_double, [1], workers=0)

    def test_none_means_serial(self):
        assert run_grid(lambda p: p + 1, [1, 2], workers=None) == [2, 3]


def _double(payload):
    return payload * 2


class TestTable1Invariance:
    def test_workers_do_not_change_rows(self):
        kwargs = dict(max_search_rounds=2, verify_samples=1 << 9, rng=11)
        serial = run_table1(workers=1, **kwargs)
        pooled = run_table1(workers=4, **kwargs)
        assert serial == pooled

    def test_monte_carlo_rng_is_per_round(self):
        # Same seed, different max_search_rounds: the round-2 verification
        # stream must not depend on how many other rounds were searched.
        few = run_table1(max_search_rounds=2, verify_samples=1 << 9, rng=11)
        more = run_table1(max_search_rounds=3, verify_samples=1 << 9, rng=11)
        row2_few = next(r for r in few["rows"] if r["rounds"] == 2)
        row2_more = next(r for r in more["rows"] if r["rounds"] == 2)
        assert row2_few == row2_more


class TestTable2Invariance:
    def test_workers_do_not_change_rows(self):
        kwargs = dict(
            rounds=(3,),
            targets=("hash", "cipher"),
            offline_samples=1200,
            online_samples=300,
            epochs=1,
            rng=13,
        )
        serial = run_table2(workers=1, **kwargs)
        pooled = run_table2(workers=2, **kwargs)
        assert serial == pooled
        assert [row["target"] for row in serial["rows"]] == ["hash", "cipher"]

    def test_env_workers_match_explicit(self, monkeypatch):
        kwargs = dict(
            rounds=(3,),
            targets=("hash",),
            offline_samples=1000,
            online_samples=300,
            epochs=1,
            rng=13,
        )
        explicit = run_table2(workers=1, **kwargs)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        from_env = run_table2(**kwargs)
        assert explicit == from_env


class TestTable3Invariance:
    def test_workers_do_not_change_rows(self):
        kwargs = dict(
            networks=("MLP II", "MLP IV"),
            total_rounds=3,
            num_samples=1000,
            epochs=1,
            rng=17,
        )
        serial = _strip_timing(run_table3(workers=1, **kwargs))
        pooled = _strip_timing(run_table3(workers=2, **kwargs))
        assert serial == pooled
        assert [row["network"] for row in serial["rows"]] == ["MLP II", "MLP IV"]

    def test_second_run_hits_dataset_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_DATASET_CACHE", str(tmp_path))
        kwargs = dict(
            networks=("MLP IV",),
            total_rounds=3,
            num_samples=800,
            epochs=1,
            rng=19,
            workers=1,
        )
        first = _strip_timing(run_table3(**kwargs))
        entries = list(tmp_path.glob("*.npz"))
        assert len(entries) == 1
        before = entries[0].stat().st_mtime_ns
        second = _strip_timing(run_table3(**kwargs))
        assert first == second
        # Same single entry, untouched: the dataset was read, not rebuilt.
        entries_after = list(tmp_path.glob("*.npz"))
        assert len(entries_after) == 1
        assert entries_after[0].stat().st_mtime_ns == before
