"""Tests for repro.utils.encoding: byte/word/bit conversions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.utils.encoding import (
    bits_to_bytes,
    bits_to_words,
    bytes_to_bits,
    bytes_to_words,
    hex_state,
    state_to_bits,
    words_to_bits,
    words_to_bytes,
)


class TestBytesWords:
    def test_little_endian(self):
        words = bytes_to_words(b"\x01\x00\x00\x00\xff\x00\x00\x80")
        assert list(words) == [1, 0x800000FF]

    def test_roundtrip(self, rng):
        data = rng.integers(0, 256, size=48, dtype=np.uint8).tobytes()
        assert words_to_bytes(bytes_to_words(data)) == data

    def test_width_16(self):
        assert list(bytes_to_words(b"\x34\x12", width=16)) == [0x1234]

    def test_misaligned_raises(self):
        with pytest.raises(ShapeError):
            bytes_to_words(b"\x01\x02\x03")


class TestBitVectors:
    def test_lsb_first(self):
        bits = bytes_to_bits(b"\x01\x80")
        assert bits[0] == 1 and bits[7] == 0
        assert bits[15] == 1 and bits[8] == 0

    @given(st.binary(min_size=0, max_size=64))
    def test_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bad_length_raises(self):
        with pytest.raises(ShapeError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))

    def test_bad_ndim_raises(self):
        with pytest.raises(ShapeError):
            bits_to_bytes(np.ones((2, 8), dtype=np.uint8))


class TestWordsBits:
    def test_single_word(self):
        bits = words_to_bits(np.array([[0x80000001]], dtype=np.uint32))
        assert bits.shape == (1, 32)
        assert bits[0, 0] == 1 and bits[0, 31] == 1 and bits[0, 16] == 0

    def test_roundtrip(self, rng):
        words = rng.integers(0, 2**32, size=(5, 12), dtype=np.uint64).astype(
            np.uint32
        )
        back = bits_to_words(words_to_bits(words), width=32)
        assert (back == words).all()

    def test_roundtrip_uint8(self, rng):
        words = rng.integers(0, 256, size=(7, 2), dtype=np.uint8)
        back = bits_to_words(words_to_bits(words, width=8), width=8)
        assert (back == words).all()

    def test_1d_input_promoted(self):
        bits = words_to_bits(np.array([1, 2], dtype=np.uint32))
        assert bits.shape == (1, 64)

    def test_bits_to_words_validates(self):
        with pytest.raises(ShapeError):
            bits_to_words(np.ones(32, dtype=np.uint8))
        with pytest.raises(ShapeError):
            bits_to_words(np.ones((2, 33), dtype=np.uint8))


class TestStateToBits:
    def test_dtype_and_values(self, rng):
        words = rng.integers(0, 2**32, size=(3, 4), dtype=np.uint64).astype(
            np.uint32
        )
        feats = state_to_bits(words)
        assert feats.dtype == np.float32
        assert set(np.unique(feats)).issubset({0.0, 1.0})
        assert feats.shape == (3, 128)

    def test_xor_is_feature_xor(self, rng):
        a = rng.integers(0, 2**32, size=(4, 4), dtype=np.uint64).astype(np.uint32)
        b = rng.integers(0, 2**32, size=(4, 4), dtype=np.uint64).astype(np.uint32)
        lhs = state_to_bits(a ^ b)
        rhs = np.abs(state_to_bits(a) - state_to_bits(b))
        assert (lhs == rhs).all()


class TestHexState:
    def test_format(self):
        assert hex_state(np.array([0x1, 0xABCD], dtype=np.uint32)) == (
            "00000001 0000abcd"
        )
