"""Tests for the per-run event bus (``events.jsonl``)."""

import json

from repro.obs import context as obs_context
from repro.obs import events as obs_events


class TestEmit:
    def test_explicit_run_dir(self, tmp_path):
        assert obs_events.emit(
            "cell.done", run_dir=tmp_path, job_id="j1", duration_s=0.5
        )
        records = obs_events.read_events(tmp_path)
        assert len(records) == 1
        assert records[0]["event"] == "cell.done"
        assert records[0]["job_id"] == "j1"
        assert records[0]["pid"] > 0
        assert records[0]["ts"] > 0

    def test_ambient_context(self, tmp_path):
        with obs_context.run_context(tmp_path) as ctx:
            assert obs_events.emit("run.start", experiment="t")
        records = obs_events.read_events(tmp_path)
        assert records[0]["run_id"] == ctx.run_id

    def test_noop_without_context(self, tmp_path):
        assert obs_context.current() is None
        assert obs_events.emit("fit.epoch", epoch=1) is False
        assert not (tmp_path / obs_events.EVENTS_FILENAME).exists()

    def test_appends_preserve_order(self, tmp_path):
        for i in range(5):
            obs_events.emit("tick", run_dir=tmp_path, i=i)
        assert [r["i"] for r in obs_events.read_events(tmp_path)] == list(
            range(5)
        )


class TestRead:
    def test_torn_final_line_is_skipped(self, tmp_path):
        obs_events.emit("ok", run_dir=tmp_path)
        path = obs_events.events_path(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "torn", "ts"')
        records = obs_events.read_events(tmp_path)
        assert [r["event"] for r in records] == ["ok"]

    def test_filter_and_limit(self, tmp_path):
        for i in range(4):
            obs_events.emit("a", run_dir=tmp_path, i=i)
        obs_events.emit("b", run_dir=tmp_path)
        only_a = obs_events.read_events(tmp_path, event="a")
        assert len(only_a) == 4
        newest = obs_events.read_events(tmp_path, event="a", limit=2)
        assert [r["i"] for r in newest] == [2, 3]

    def test_missing_file_reads_empty(self, tmp_path):
        assert obs_events.read_events(tmp_path) == []
        assert obs_events.event_counts(tmp_path) == {}

    def test_event_counts(self, tmp_path):
        obs_events.emit("a", run_dir=tmp_path)
        obs_events.emit("a", run_dir=tmp_path)
        obs_events.emit("b", run_dir=tmp_path)
        assert obs_events.event_counts(tmp_path) == {"a": 2, "b": 1}

    def test_lines_are_sorted_json(self, tmp_path):
        obs_events.emit("z", run_dir=tmp_path, beta=1, alpha=2)
        line = obs_events.events_path(tmp_path).read_text().strip()
        assert line == json.dumps(json.loads(line), sort_keys=True)
