"""The Gimli permutation (Bernstein et al., CHES 2017).

Implements Algorithm 1 of the paper exactly: a 384-bit state viewed as a
3x4 matrix of 32-bit words, 24 rounds counted *downward* from 24 to 1.
Each round applies the 96-bit SP-box to every column, then

* ``r mod 4 == 0``: Small-Swap on the top row and constant addition
  ``s[0,0] ^= 0x9e377900 ^ r``;
* ``r mod 4 == 2``: Big-Swap on the top row.

State layout: a flat vector of 12 words with ``s[row, col]`` stored at
index ``4 * row + col`` — so words 0-3 are the top row (the sponge
*rate* together with row 1 in byte order; see :mod:`repro.ciphers.gimli_hash`).

Round reduction follows the common convention of running the *first*
``R`` rounds of the full permutation, i.e. rounds ``24, 23, ...,
24 - R + 1``; the starting round is configurable for experiments that
want a different window.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.ciphers.base import Permutation
from repro.errors import CipherError

#: Number of rounds of the full permutation.
GIMLI_ROUNDS = 24

#: Round-constant base, from the spec (first 32 bits of the golden ratio,
#: low byte zeroed so the round counter can be XORed in).
GIMLI_CONSTANT = 0x9E377900

_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def spbox_column(x: int, y: int, z: int) -> tuple:
    """Apply the Gimli SP-box to one column *after* the input rotations.

    Inputs are the already-rotated words ``x = s0 <<< 24``,
    ``y = s1 <<< 9``, ``z = s2``; returns the new ``(s0, s1, s2)``.
    Shifts are non-circular, as in the spec.
    """
    new_z = (x ^ ((z << 1) & _MASK32) ^ (((y & z) << 2) & _MASK32)) & _MASK32
    new_y = (y ^ x ^ (((x | z) << 1) & _MASK32)) & _MASK32
    new_x = (z ^ y ^ (((x & y) << 3) & _MASK32)) & _MASK32
    return new_x, new_y, new_z


def gimli_round(state: List[int], r: int) -> List[int]:
    """One full Gimli round (SP-boxes + swaps + constant) at round index ``r``.

    ``state`` is a list of 12 ints; a new list is returned.
    """
    s = list(state)
    for j in range(4):
        x = _rotl32(s[j], 24)
        y = _rotl32(s[4 + j], 9)
        z = s[8 + j]
        s[j], s[4 + j], s[8 + j] = spbox_column(x, y, z)
    if r % 4 == 0:
        s[0], s[1], s[2], s[3] = s[1], s[0], s[3], s[2]  # Small-Swap
    elif r % 4 == 2:
        s[0], s[1], s[2], s[3] = s[2], s[3], s[0], s[1]  # Big-Swap
    if r % 4 == 0:
        s[0] ^= GIMLI_CONSTANT ^ r
    return s


def gimli_permute(
    state: Sequence[int], rounds: int = GIMLI_ROUNDS, start_round: int = GIMLI_ROUNDS
) -> List[int]:
    """Scalar reference Gimli, rounds ``start_round`` down to
    ``start_round - rounds + 1``.

    Written to mirror Algorithm 1 of the paper line by line; use
    :func:`gimli_permute_batch` for anything performance-sensitive.
    """
    _check_round_window(rounds, start_round)
    s = [int(w) & _MASK32 for w in state]
    if len(s) != 12:
        raise CipherError(f"Gimli state must have 12 words, got {len(s)}")
    for r in range(start_round, start_round - rounds, -1):
        s = gimli_round(s, r)
    return s


def gimli_permute_batch(
    states: np.ndarray, rounds: int = GIMLI_ROUNDS, start_round: int = GIMLI_ROUNDS
) -> np.ndarray:
    """Vectorised Gimli over a batch of states of shape ``(n, 12)`` uint32.

    Bit-identical to :func:`gimli_permute` (cross-checked by property
    tests); roughly three orders of magnitude faster per state for large
    batches, which is what makes generating ``2^17.6`` training samples
    practical in pure Python.
    """
    _check_round_window(rounds, start_round)
    arr = np.array(states, dtype=np.uint32, copy=True)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[1] != 12:
        raise CipherError(f"Gimli batch must have shape (n, 12), got {arr.shape}")

    top = arr[:, 0:4]
    mid = arr[:, 4:8]
    bot = arr[:, 8:12]
    one = np.uint32(1)
    two = np.uint32(2)
    three = np.uint32(3)
    for r in range(start_round, start_round - rounds, -1):
        x = (top << np.uint32(24)) | (top >> np.uint32(8))
        y = (mid << np.uint32(9)) | (mid >> np.uint32(23))
        z = bot
        bot = x ^ (z << one) ^ ((y & z) << two)
        mid = y ^ x ^ ((x | z) << one)
        top = z ^ y ^ ((x & y) << three)
        if r % 4 == 0:
            top = top[:, [1, 0, 3, 2]]  # Small-Swap
        elif r % 4 == 2:
            top = top[:, [2, 3, 0, 1]]  # Big-Swap
        if r % 4 == 0:
            top = top.copy()
            top[:, 0] ^= np.uint32(GIMLI_CONSTANT ^ r)
    out = np.concatenate([top, mid, bot], axis=1).astype(np.uint32)
    return out[0] if squeeze else out


def _check_round_window(rounds: int, start_round: int) -> None:
    if not 0 <= rounds <= start_round:
        raise CipherError(
            f"invalid Gimli round window: {rounds} rounds starting at "
            f"{start_round} (rounds run {start_round} down to 1)"
        )
    if start_round > GIMLI_ROUNDS:
        raise CipherError(
            f"start round {start_round} exceeds the full {GIMLI_ROUNDS} rounds"
        )


class GimliPermutation(Permutation):
    """Batched, optionally round-reduced Gimli as a :class:`Permutation`."""

    state_words = 12
    word_width = 32

    def __init__(self, rounds: int = GIMLI_ROUNDS, start_round: int = GIMLI_ROUNDS):
        _check_round_window(rounds, start_round)
        super().__init__(rounds)
        self.start_round = start_round

    def __call__(self, states: np.ndarray) -> np.ndarray:
        batch = self._check_batch(np.asarray(states, dtype=np.uint32))
        return gimli_permute_batch(batch, self.rounds, self.start_round)
