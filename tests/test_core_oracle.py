"""Tests for the oracle abstraction."""

import numpy as np
import pytest

from repro.core.oracle import CipherOracle, RandomOracle
from repro.errors import DistinguisherError


class TestCipherOracle:
    def test_delegates(self):
        oracle = CipherOracle(lambda inputs, context: inputs + 1)
        out = oracle.query(np.array([[1, 2]]), None)
        assert (out == [[2, 3]]).all()

    def test_callable(self):
        oracle = CipherOracle(lambda inputs, context: inputs)
        assert (oracle(np.array([[7]])) == [[7]]).all()


class TestRandomOracle:
    def test_output_geometry(self, rng):
        oracle = RandomOracle(output_words=4, word_width=32, rng=rng)
        out = oracle.query(np.zeros((5, 2), dtype=np.uint32), None)
        assert out.shape == (5, 4)
        assert out.dtype == np.uint32

    def test_memoized_consistency(self, rng):
        """Same input twice must give the same answer — a random
        *function*, not a random process."""
        oracle = RandomOracle(output_words=2, rng=rng, memoize=True)
        inputs = np.array([[1, 2], [1, 2], [3, 4]], dtype=np.uint32)
        out = oracle.query(inputs, None)
        assert (out[0] == out[1]).all()

    def test_memoization_respects_context(self, rng):
        oracle = RandomOracle(output_words=2, rng=rng, memoize=True)
        inputs = np.array([[1, 2], [1, 2]], dtype=np.uint32)
        context = np.array([[10], [20]], dtype=np.uint32)
        out = oracle.query(inputs, context)
        assert (out[0] != out[1]).any()

    def test_unmemoized_is_fresh(self, rng):
        oracle = RandomOracle(output_words=4, rng=rng, memoize=False)
        inputs = np.zeros((2, 1), dtype=np.uint32)
        a = oracle.query(inputs, None)
        b = oracle.query(inputs, None)
        assert (a != b).any()

    def test_outputs_look_uniform(self, rng):
        oracle = RandomOracle(output_words=1, word_width=8, rng=rng, memoize=False)
        out = oracle.query(np.zeros((4096, 1), dtype=np.uint8), None)
        counts = np.bincount(out.ravel(), minlength=256)
        assert counts.min() > 0  # every byte value appears

    def test_word_width_8(self, rng):
        oracle = RandomOracle(output_words=2, word_width=8, rng=rng)
        out = oracle.query(np.zeros((3, 1), dtype=np.uint8), None)
        assert out.dtype == np.uint8

    def test_invalid_construction(self):
        with pytest.raises(DistinguisherError):
            RandomOracle(output_words=0)
        with pytest.raises(DistinguisherError):
            RandomOracle(output_words=2, word_width=12)
