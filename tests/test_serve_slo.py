"""Tests for the serving tier's rolling-window SLO evaluation."""

import json
import urllib.request

import pytest

from repro.errors import ServeError
from repro.serve.metrics import (
    DEFAULT_SLO_ERROR_RATE,
    DEFAULT_SLO_MIN_SAMPLES,
    DEFAULT_SLO_P99_MS,
    HTTP_WINDOW,
    ServeMetrics,
    SloPolicy,
)


def _fill(metrics, count, status=200, latency_s=0.01):
    for _ in range(count):
        metrics.record_http(status, latency_s)


class TestSloPolicy:
    def test_unknown_below_min_samples(self):
        metrics = ServeMetrics()
        _fill(metrics, DEFAULT_SLO_MIN_SAMPLES - 1)
        verdict = SloPolicy().evaluate(metrics)
        assert verdict["status"] == "unknown"
        assert verdict["breaches"] == []
        assert verdict["samples"] == DEFAULT_SLO_MIN_SAMPLES - 1

    def test_ok_when_healthy(self):
        metrics = ServeMetrics()
        _fill(metrics, 50)
        verdict = SloPolicy().evaluate(metrics)
        assert verdict["status"] == "ok"
        assert verdict["error_rate"] == 0.0
        assert verdict["p99_ms"] == pytest.approx(10.0)

    def test_error_rate_breach(self):
        metrics = ServeMetrics()
        _fill(metrics, 40)
        _fill(metrics, 10, status=500)
        verdict = SloPolicy(error_rate=0.05).evaluate(metrics)
        assert verdict["status"] == "breached"
        assert "error_rate" in verdict["breaches"]
        assert verdict["error_rate"] == pytest.approx(0.2)

    def test_p99_breach(self):
        metrics = ServeMetrics()
        _fill(metrics, 50, latency_s=0.5)
        verdict = SloPolicy(p99_ms=250.0).evaluate(metrics)
        assert verdict["status"] == "breached"
        assert verdict["breaches"] == ["p99_latency"]

    def test_4xx_do_not_count_as_errors(self):
        metrics = ServeMetrics()
        _fill(metrics, 30, status=404)
        verdict = SloPolicy().evaluate(metrics)
        assert verdict["status"] == "ok"
        assert verdict["error_rate"] == 0.0

    def test_window_is_bounded(self):
        metrics = ServeMetrics()
        _fill(metrics, HTTP_WINDOW, status=500)
        _fill(metrics, HTTP_WINDOW)  # healthy traffic pushes errors out
        verdict = SloPolicy().evaluate(metrics)
        assert verdict["samples"] == HTTP_WINDOW
        assert verdict["status"] == "ok"

    def test_invalid_thresholds_raise(self):
        with pytest.raises(ServeError):
            SloPolicy(error_rate=0.0)
        with pytest.raises(ServeError):
            SloPolicy(p99_ms=-1.0)
        with pytest.raises(ServeError):
            SloPolicy(min_samples=0)


class TestFromEnv:
    def test_defaults(self, monkeypatch):
        for name in ("REPRO_OBS_SLO_ERROR_RATE", "REPRO_OBS_SLO_P99_MS",
                     "REPRO_OBS_SLO_MIN_SAMPLES"):
            monkeypatch.delenv(name, raising=False)
        policy = SloPolicy.from_env()
        assert policy.error_rate == DEFAULT_SLO_ERROR_RATE
        assert policy.p99_ms == DEFAULT_SLO_P99_MS
        assert policy.min_samples == DEFAULT_SLO_MIN_SAMPLES

    def test_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_SLO_ERROR_RATE", "0.01")
        monkeypatch.setenv("REPRO_OBS_SLO_P99_MS", "50")
        monkeypatch.setenv("REPRO_OBS_SLO_MIN_SAMPLES", "5")
        policy = SloPolicy.from_env()
        assert policy.error_rate == 0.01
        assert policy.p99_ms == 50.0
        assert policy.min_samples == 5

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_SLO_P99_MS", "fast")
        with pytest.raises(ServeError):
            SloPolicy.from_env()


class TestHealthzEndpoint:
    @pytest.fixture
    def server(self, tmp_path):
        from repro.serve import ModelRegistry, ServeServer

        with ServeServer(ModelRegistry(str(tmp_path))) as server:
            yield server

    def _get(self, url):
        with urllib.request.urlopen(url) as resp:
            return json.loads(resp.read())

    def test_healthz_plain_has_no_slo_detail(self, server):
        body = self._get(server.url + "/healthz")
        assert body["status"] == "ok"
        assert "slo" not in body

    def test_healthz_verbose_attaches_verdict(self, server):
        body = self._get(server.url + "/healthz?verbose=1")
        assert body["slo"]["status"] == "unknown"  # idle server
        assert body["slo"]["thresholds"]["error_rate"] == (
            DEFAULT_SLO_ERROR_RATE
        )

    def test_healthz_degrades_on_breach(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_SLO_MIN_SAMPLES", "5")
        _fill(server.service.metrics, 10, status=500)
        body = self._get(server.url + "/healthz?verbose=1")
        assert body["status"] == "degraded"
        assert body["slo"]["status"] == "breached"
        assert "error_rate" in body["slo"]["breaches"]

    def test_healthz_polling_stays_out_of_window(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_SLO_MIN_SAMPLES", "1")
        for _ in range(5):
            self._get(server.url + "/healthz")
        assert server.service.metrics.http_window() == []

    def test_other_routes_feed_window(self, server):
        self._get(server.url + "/v1/models")
        window = server.service.metrics.http_window()
        assert len(window) == 1
        assert window[0][0] == 200
