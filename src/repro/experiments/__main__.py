"""Command-line entry point: ``python -m repro.experiments <name>``.

Examples::

    python -m repro.experiments figure1
    REPRO_SCALE=0.2 python -m repro.experiments table2
    python -m repro.experiments table3 --seed 7
    python -m repro.experiments all
    python -m repro.experiments table2 --run-dir runs/  # result + manifest
    python -m repro.experiments table2 --resume runs/r1 # resumable grid
    python -m repro.experiments report --run-dir runs/r1  # re-render report

``--run-dir`` saves each experiment's result JSON next to a run
manifest (per-cell spans, REPRO_* knobs, timings); see
:mod:`repro.experiments.manifest`.

``--resume DIR`` routes every grid cell through the persistent job
queue under ``DIR/queue/<name>`` (see :mod:`repro.jobs`): the first
invocation creates it, a re-run after a crash or a
``REPRO_JOBS_MAX_CELLS`` cap skips completed cells and computes only
the missing ones, bit-identical to an uninterrupted run.  ``DIR`` also
serves as the run directory for the manifest and the run report unless
``--run-dir`` says otherwise.

Both ``--run-dir`` and ``--resume`` finish by rendering an HTML +
markdown run report (per-cell status, timings, paper-layout accuracy
tables); the pseudo-experiment ``report`` re-renders it on demand from
whatever state the directory holds — including a partially-completed
run.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path

from repro.experiments.manifest import run_with_manifest
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import format_table, write_run_report


def _print_result(result: dict) -> None:
    rows = result.get("rows", [])
    if rows:
        headers = list(rows[0].keys())
        table_rows = [[row.get(h) for h in headers] for row in rows]
        print(format_table(headers, table_rows, title=result.get("experiment")))
    meta = {k: v for k, v in result.items() if k != "rows"}
    print(json.dumps(meta, indent=2, default=str))


def main(argv=None) -> int:
    """Parse arguments, run the experiment(s), print results."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report"],
        help="experiment to run ('all' runs every registered experiment; "
        "'report' just re-renders the run report for --run-dir/--resume)",
    )
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--run-dir",
        default=None,
        help="save <name>_result.json and a <name>_manifest.json "
        "(per-cell spans, REPRO_* knobs) into this directory",
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="run resumably: persist every grid cell as a job under "
        "DIR/queue/<name>, skipping cells already completed by an "
        "earlier (possibly interrupted) invocation",
    )
    args = parser.parse_args(argv)

    run_dir = args.run_dir if args.run_dir is not None else args.resume
    if args.experiment == "report":
        if run_dir is None:
            parser.error("'report' needs --run-dir or --resume")
        paths = write_run_report(run_dir)
        for path in paths:
            print(f"[report] wrote {path}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        fn = EXPERIMENTS[name]
        accepted = inspect.signature(fn).parameters
        kwargs = {}
        if args.seed is not None and "rng" in accepted:
            kwargs["rng"] = args.seed
        if args.resume is not None and "queue_dir" in accepted:
            kwargs["queue_dir"] = str(Path(args.resume) / "queue" / name)
        if run_dir is not None:
            result, manifest_path = run_with_manifest(name, run_dir, **kwargs)
            print(f"[{name}] wrote {manifest_path}")
        else:
            result = run_experiment(name, **kwargs)
        _print_result(result)
        print(f"[{name} finished in {time.perf_counter() - start:.1f}s]")
        print()
    if run_dir is not None:
        for path in write_run_report(run_dir):
            print(f"[report] wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
