"""Serving walkthrough: train, register, serve, distinguish over HTTP.

Runs the paper's offline phase once (a 5-round Gimli-Hash
distinguisher), registers the trained model in an on-disk
``repro.serve`` registry, starts the loopback HTTP service, and then
plays the online distinguishing game twice through the client — once
against the real cipher oracle (expected verdict: CIPHER) and once
against a random oracle (expected verdict: RANDOM).  Takes ~20 seconds
on a laptop.

Usage::

    python examples/serve_demo.py [--rounds 5] [--samples 6000]
"""

import argparse
import tempfile
import time

from repro import GimliHashScenario, MLDistinguisher
from repro.core.statistics import required_online_samples
from repro.nn.architectures import build_mlp
from repro.serve import ModelRegistry, ServeClient, ServeServer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5,
                        help="round-reduced Gimli rounds")
    parser.add_argument("--samples", type=int, default=6_000,
                        help="offline training samples")
    parser.add_argument("--registry", default=None,
                        help="registry directory (default: a temp dir)")
    parser.add_argument("--seed", type=int, default=31)
    args = parser.parse_args()

    print(f"== Offline phase: {args.rounds}-round Gimli-Hash, "
          f"{args.samples} samples ==")
    scenario = GimliHashScenario(rounds=args.rounds)
    distinguisher = MLDistinguisher(
        scenario, model=build_mlp([64, 128], "relu"),
        epochs=3, rng=args.seed,
    )
    start = time.perf_counter()
    report = distinguisher.train(num_samples=args.samples)
    print(f"validation accuracy : {report.validation_accuracy:.4f} "
          f"({time.perf_counter() - start:.1f}s)")

    registry_dir = args.registry or tempfile.mkdtemp(prefix="repro-registry-")
    registry = ModelRegistry(registry_dir)
    record = registry.register(
        distinguisher.model,
        f"gimli-hash-r{args.rounds}",
        scenario=scenario,
        report=report,
    )
    print(f"\n== Registered {record.name} v{record.version} ==")
    print(f"model id  : {record.model_id}")
    print(f"threshold : {record.threshold:.4f}  (= (a + 1/t) / 2)")
    print(f"registry  : {registry_dir}")

    n_online = max(
        256,
        required_online_samples(report.validation_accuracy, 2,
                                error_probability=0.01),
    )
    with ServeServer(registry) as server:
        client = ServeClient(server.url)
        print(f"\n== Serving at {server.url} ==")
        for model in client.models():
            print(f"GET /v1/models -> {model['name']} v{model['version']}")

        print(f"\n== Online phase over HTTP: {n_online} samples/oracle ==")
        for label, oracle, rng in [
            ("cipher oracle", scenario.cipher_oracle(), args.seed + 1),
            ("random oracle",
             scenario.random_oracle(rng=args.seed + 2, memoize=False),
             args.seed + 3),
        ]:
            state = client.run_online_phase(
                record.name, scenario, oracle, n_online, rng=rng,
            )
            print(f"{label}: accuracy {state['accuracy']:.4f} "
                  f"(threshold {state['threshold']:.4f}) "
                  f"-> {state['verdict']}")

        snapshot = client.metrics()
        batches = snapshot["batches"]
        print(f"\n== Server metrics ==")
        print(f"requests : {snapshot['requests']['count']} "
              f"({snapshot['requests']['rows']} rows)")
        print(f"batches  : {batches['count']} "
              f"(mean size {batches['mean_size']:.1f}, "
              f"histogram {batches['size_histogram']})")


if __name__ == "__main__":
    main()
