"""Optimizers: SGD with momentum and Adam (the paper's choice, §1)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import TrainingError


class Optimizer:
    """Base class: stateful parameter updates keyed by parameter identity."""

    def update(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        """Apply one in-place update step to every parameter."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        if learning_rate <= 0:
            raise TrainingError(f"learning rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def update(self, params, grads):
        if len(params) != len(grads):
            raise TrainingError("parameter and gradient lists differ in length")
        for index, (param, grad) in enumerate(zip(params, grads)):
            if self.momentum:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity - self.learning_rate * grad
                self._velocity[index] = velocity
                param += velocity
            else:
                param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with Keras default hyper-parameters."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-7,
    ):
        if learning_rate <= 0:
            raise TrainingError(f"learning rate must be positive, got {learning_rate}")
        if not 0.0 <= beta_1 < 1.0 or not 0.0 <= beta_2 < 1.0:
            raise TrainingError("beta parameters must lie in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._step = 0

    def update(self, params, grads):
        if len(params) != len(grads):
            raise TrainingError("parameter and gradient lists differ in length")
        self._step += 1
        bias_1 = 1.0 - self.beta_1**self._step
        bias_2 = 1.0 - self.beta_2**self._step
        for index, (param, grad) in enumerate(zip(params, grads)):
            m = self._m.get(index)
            v = self._v.get(index)
            if m is None:
                m = np.zeros_like(param)
                v = np.zeros_like(param)
            m = self.beta_1 * m + (1.0 - self.beta_1) * grad
            v = self.beta_2 * v + (1.0 - self.beta_2) * grad**2
            self._m[index] = m
            self._v[index] = v
            m_hat = m / bias_1
            v_hat = v / bias_2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


OPTIMIZERS = {"sgd": SGD, "adam": Adam}


def get_optimizer(spec) -> Optimizer:
    """Resolve an optimizer from an instance or a Keras-style string name."""
    if isinstance(spec, Optimizer):
        return spec
    try:
        return OPTIMIZERS[spec]()
    except KeyError:
        known = ", ".join(sorted(OPTIMIZERS))
        raise TrainingError(f"unknown optimizer {spec!r}; known: {known}") from None
