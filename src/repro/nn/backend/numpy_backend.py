"""The reference numpy backend.

Each op is the exact expression the corresponding layer or loss used
before the backend seam existed — same ufuncs, same operand order, same
``out=`` targets — so a model computed through ``NumpyBackend`` is
bit-identical to the pre-refactor stack (``tests/test_nn_backend.py``
pins forward, backward and whole ``fit`` runs in float32 and float64).
"""

from __future__ import annotations

import numpy as np

# Imported mid-initialization of the package module: Backend and blas
# are already bound by the time this module loads (see __init__.py).
from repro.nn.backend import Backend, blas


class NumpyBackend(Backend):
    """Reference ops: plain numpy, sequential, BLAS-backed matmuls."""

    name = "numpy"

    # -- linear algebra ----------------------------------------------------

    def matmul(self, a, b, out=None):
        if out is None:
            return a @ b
        return np.matmul(a, b, out=out)

    def affine(self, x, w, b=None, out=None):
        if out is None:
            out = x @ w
        else:
            np.matmul(x, w, out=out)
        if b is not None:
            out += b
        return out

    def colsum(self, a, out=None):
        if out is None:
            return a.sum(axis=0)
        return a.sum(axis=0, out=out)

    # -- elementwise activations -------------------------------------------

    def relu(self, x, mask_out):
        np.greater(x, 0, out=mask_out)
        return x * mask_out

    def relu_backward(self, grad, mask):
        return grad * mask

    def leaky_relu(self, x, alpha):
        mask = x > 0
        return np.where(mask, x, alpha * x), mask

    def leaky_relu_backward(self, grad, mask, alpha):
        return np.where(mask, grad, alpha * grad)

    def sigmoid(self, x):
        return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))

    def sigmoid_into(self, x, out):
        # Bit-identical to :meth:`sigmoid`: the clip bounds keep the
        # exponent finite, so the in-place chain rounds the same way.
        np.clip(x, -500, 500, out=out)
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.reciprocal(out, out=out)
        return out

    def sigmoid_backward(self, grad, out):
        return grad * out * (1.0 - out)

    def tanh(self, x, out=None):
        if out is None:
            return np.tanh(x)
        return np.tanh(x, out=out)

    def tanh_backward(self, grad, out):
        return grad * (1.0 - out**2)

    def softmax(self, x):
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def softmax_backward(self, grad, out):
        inner = (grad * out).sum(axis=-1, keepdims=True)
        return out * (grad - inner)

    # -- scalar ufunc helpers (losses) -------------------------------------

    def clip(self, x, lo, hi):
        return np.clip(x, lo, hi)

    def log(self, x):
        return np.log(x)

    def exp(self, x):
        return np.exp(x)

    # -- fused sequence kernels --------------------------------------------

    def lstm_gates(self, z, gates_t, units):
        # Strided column reads, contiguous gate-major writes — the
        # layout and op order of the time-major LSTM kernel.
        u = units
        self.sigmoid_into(z[:, :u], gates_t[0])
        self.sigmoid_into(z[:, u:2 * u], gates_t[1])
        np.tanh(z[:, 2 * u:3 * u], out=gates_t[2])
        self.sigmoid_into(z[:, 3 * u:], gates_t[3])
        return gates_t

    # -- BLAS thread domains -----------------------------------------------

    def thread_domain(self, domain: str):
        return blas.thread_domain(domain)
