"""The Gimli permutation (Bernstein et al., CHES 2017).

Implements Algorithm 1 of the paper exactly: a 384-bit state viewed as a
3x4 matrix of 32-bit words, 24 rounds counted *downward* from 24 to 1.
Each round applies the 96-bit SP-box to every column, then

* ``r mod 4 == 0``: Small-Swap on the top row and constant addition
  ``s[0,0] ^= 0x9e377900 ^ r``;
* ``r mod 4 == 2``: Big-Swap on the top row.

State layout: a flat vector of 12 words with ``s[row, col]`` stored at
index ``4 * row + col`` — so words 0-3 are the top row (the sponge
*rate* together with row 1 in byte order; see :mod:`repro.ciphers.gimli_hash`).

Round reduction follows the common convention of running the *first*
``R`` rounds of the full permutation, i.e. rounds ``24, 23, ...,
24 - R + 1``; the starting round is configurable for experiments that
want a different window.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.ciphers.base import Permutation
from repro.errors import CipherError

#: Number of rounds of the full permutation.
GIMLI_ROUNDS = 24

#: Round-constant base, from the spec (first 32 bits of the golden ratio,
#: low byte zeroed so the round counter can be XORed in).
GIMLI_CONSTANT = 0x9E377900

_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def spbox_column(x: int, y: int, z: int) -> tuple:
    """Apply the Gimli SP-box to one column *after* the input rotations.

    Inputs are the already-rotated words ``x = s0 <<< 24``,
    ``y = s1 <<< 9``, ``z = s2``; returns the new ``(s0, s1, s2)``.
    Shifts are non-circular, as in the spec.
    """
    new_z = (x ^ ((z << 1) & _MASK32) ^ (((y & z) << 2) & _MASK32)) & _MASK32
    new_y = (y ^ x ^ (((x | z) << 1) & _MASK32)) & _MASK32
    new_x = (z ^ y ^ (((x & y) << 3) & _MASK32)) & _MASK32
    return new_x, new_y, new_z


def gimli_round(state: List[int], r: int) -> List[int]:
    """One full Gimli round (SP-boxes + swaps + constant) at round index ``r``.

    ``state`` is a list of 12 ints; a new list is returned.
    """
    s = list(state)
    for j in range(4):
        x = _rotl32(s[j], 24)
        y = _rotl32(s[4 + j], 9)
        z = s[8 + j]
        s[j], s[4 + j], s[8 + j] = spbox_column(x, y, z)
    if r % 4 == 0:
        s[0], s[1], s[2], s[3] = s[1], s[0], s[3], s[2]  # Small-Swap
    elif r % 4 == 2:
        s[0], s[1], s[2], s[3] = s[2], s[3], s[0], s[1]  # Big-Swap
    if r % 4 == 0:
        s[0] ^= GIMLI_CONSTANT ^ r
    return s


def gimli_permute(
    state: Sequence[int], rounds: int = GIMLI_ROUNDS, start_round: int = GIMLI_ROUNDS
) -> List[int]:
    """Scalar reference Gimli, rounds ``start_round`` down to
    ``start_round - rounds + 1``.

    Written to mirror Algorithm 1 of the paper line by line; use
    :func:`gimli_permute_batch` for anything performance-sensitive.
    """
    _check_round_window(rounds, start_round)
    s = [int(w) & _MASK32 for w in state]
    if len(s) != 12:
        raise CipherError(f"Gimli state must have 12 words, got {len(s)}")
    for r in range(start_round, start_round - rounds, -1):
        s = gimli_round(s, r)
    return s


def gimli_permute_batch(
    states: np.ndarray, rounds: int = GIMLI_ROUNDS, start_round: int = GIMLI_ROUNDS
) -> np.ndarray:
    """Vectorised Gimli over a batch of states of shape ``(n, 12)`` uint32.

    Bit-identical to :func:`gimli_permute` (cross-checked by property
    tests); roughly three orders of magnitude faster per state for large
    batches, which is what makes generating ``2^17.6`` training samples
    practical in pure Python.

    The kernel allocates once up front (the output array plus three
    ``(n, 4)`` scratch buffers) and runs every round entirely in place —
    no per-round ``copy``/fancy-index/``concatenate`` temporaries, which
    roughly halves wall-clock on large batches versus the naive
    expression-per-round formulation.
    """
    _check_round_window(rounds, start_round)
    arr = np.array(states, dtype=np.uint32, copy=True)
    squeeze = arr.ndim == 1
    if squeeze:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[1] != 12:
        raise CipherError(f"Gimli batch must have shape (n, 12), got {arr.shape}")

    # Split into three contiguous (n, 4) row buffers once: every round
    # then runs on contiguous memory (strided column views of ``arr``
    # would defeat vectorisation) with three scratch buffers and zero
    # per-round allocations.
    top = np.ascontiguousarray(arr[:, 0:4])
    mid = np.ascontiguousarray(arr[:, 4:8])
    bot = np.ascontiguousarray(arr[:, 8:12])
    x = np.empty_like(top)
    y = np.empty_like(top)
    t = np.empty_like(top)
    for r in range(start_round, start_round - rounds, -1):
        # x = top <<< 24, y = mid <<< 9, z = bot (in place).
        np.left_shift(top, np.uint32(24), out=x)
        np.right_shift(top, np.uint32(8), out=t)
        np.bitwise_or(x, t, out=x)
        np.left_shift(mid, np.uint32(9), out=y)
        np.right_shift(mid, np.uint32(23), out=t)
        np.bitwise_or(y, t, out=y)
        # top/mid are consumed into x/y, so they are free to receive the
        # new rows; bot (= z) must be overwritten last.
        # new top = z ^ y ^ ((x & y) << 3)
        np.bitwise_and(x, y, out=t)
        np.left_shift(t, np.uint32(3), out=t)
        np.bitwise_xor(bot, y, out=top)
        np.bitwise_xor(top, t, out=top)
        # new mid = y ^ x ^ ((x | z) << 1)
        np.bitwise_or(x, bot, out=t)
        np.left_shift(t, np.uint32(1), out=t)
        np.bitwise_xor(y, x, out=mid)
        np.bitwise_xor(mid, t, out=mid)
        # new bot = x ^ (z << 1) ^ ((y & z) << 2)
        np.bitwise_and(y, bot, out=t)
        np.left_shift(t, np.uint32(2), out=t)
        np.left_shift(bot, np.uint32(1), out=y)  # y is free now
        np.bitwise_xor(x, y, out=bot)
        np.bitwise_xor(bot, t, out=bot)
        if r % 4 == 0:
            # Small-Swap: columns 0<->1, 2<->3 (via one scratch column).
            col = t[:, 0]
            col[...] = top[:, 0]
            top[:, 0] = top[:, 1]
            top[:, 1] = col
            col[...] = top[:, 2]
            top[:, 2] = top[:, 3]
            top[:, 3] = col
            top[:, 0] ^= np.uint32(GIMLI_CONSTANT ^ r)
        elif r % 4 == 2:
            # Big-Swap: columns 0<->2, 1<->3.
            col = t[:, 0]
            col[...] = top[:, 0]
            top[:, 0] = top[:, 2]
            top[:, 2] = col
            col[...] = top[:, 1]
            top[:, 1] = top[:, 3]
            top[:, 3] = col
    arr[:, 0:4] = top
    arr[:, 4:8] = mid
    arr[:, 8:12] = bot
    return arr[0] if squeeze else arr


def _check_round_window(rounds: int, start_round: int) -> None:
    if not 0 <= rounds <= start_round:
        raise CipherError(
            f"invalid Gimli round window: {rounds} rounds starting at "
            f"{start_round} (rounds run {start_round} down to 1)"
        )
    if start_round > GIMLI_ROUNDS:
        raise CipherError(
            f"start round {start_round} exceeds the full {GIMLI_ROUNDS} rounds"
        )


class GimliPermutation(Permutation):
    """Batched, optionally round-reduced Gimli as a :class:`Permutation`."""

    state_words = 12
    word_width = 32

    def __init__(self, rounds: int = GIMLI_ROUNDS, start_round: int = GIMLI_ROUNDS):
        _check_round_window(rounds, start_round)
        super().__init__(rounds)
        self.start_round = start_round

    def __call__(self, states: np.ndarray) -> np.ndarray:
        batch = self._check_batch(np.asarray(states, dtype=np.uint32))
        return gimli_permute_batch(batch, self.rounds, self.start_round)
