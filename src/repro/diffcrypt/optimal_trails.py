"""Exact optimal differential characteristics for the Gift16 SPN.

The paper contrasts two classical quantities with its ML distinguisher:
the best single *characteristic* (what branch numbers / MILP / SAT
bound — Table 1 for Gimli) and the *all-in-one* differential.  On the
16-bit Gift16 both are exactly computable, so their gap — the advantage
the ML model is simulating — can be measured instead of argued:

* the optimal characteristic weight propagates by **min-plus** dynamic
  programming over all ``2^16`` differences (the S-layer weight
  factorises per nibble, so one round is four min-plus tensor-mode
  products with the 16x16 S-box weight table followed by the wiring
  re-indexing);
* the all-in-one side comes from
  :func:`repro.diffcrypt.allinone.gift16_markov_distribution`.

``gift16_optimal_weight(rounds)`` is exact under the Markov assumption
(which holds for Gift16's independent round keys).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.ciphers.gift import GIFT16_PERM, GIFT_SBOX
from repro.diffcrypt.sbox import SBox
from repro.errors import SearchError


def sbox_weight_table(sbox: Optional[SBox] = None) -> np.ndarray:
    """Per-transition ``-log2`` weights of an S-box (``inf`` = impossible)."""
    if sbox is None:
        sbox = SBox(GIFT_SBOX)
    ddt = sbox.ddt.astype(np.float64)
    with np.errstate(divide="ignore"):
        weights = -np.log2(ddt / sbox.size)
    return weights


def _permutation_index_map() -> np.ndarray:
    values = np.arange(1 << 16, dtype=np.uint32)
    permuted = np.zeros(1 << 16, dtype=np.int64)
    for i, target in enumerate(GIFT16_PERM):
        permuted |= ((values >> np.uint32(i)) & np.uint32(1)).astype(np.int64) << int(
            target
        )
    return permuted


def _minplus_slayer(weights: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Min-plus product with the per-nibble S-box weight table.

    ``out[u] = min over v of weights[v] + sum_j table[v_j, u_j]`` —
    computed as four tensor-mode min-plus products.
    """
    tensor = weights.reshape(16, 16, 16, 16)
    for axis in range(4):
        moved = np.moveaxis(tensor, axis, -1)  # (..., v_j)
        combined = moved[..., :, np.newaxis] + table[np.newaxis, np.newaxis,
                                                     np.newaxis, :, :]
        tensor = np.moveaxis(combined.min(axis=-2), -1, axis)
    return tensor.reshape(-1)


def _minplus_round(weights: np.ndarray, table: np.ndarray) -> np.ndarray:
    """One Gift16 round in the min-plus semiring (S-layer then wiring)."""
    flat = _minplus_slayer(weights, table)
    out = np.full_like(flat, np.inf)
    np.minimum.at(out, _PERM_CACHE, flat)
    return out


def _minplus_round_reverse(weights: np.ndarray, table: np.ndarray) -> np.ndarray:
    """One Gift16 round backward: undo the wiring, then the S-layer.

    ``weights`` holds best weight-to-go *from* each post-round
    difference; the result holds the same for pre-round differences.
    """
    gathered = weights[_PERM_CACHE]
    return _minplus_slayer(gathered, table.T)


_PERM_CACHE = _permutation_index_map()


@dataclass(frozen=True)
class OptimalTrailSummary:
    """Exact optimal characteristic weight and the all-in-one comparison."""

    rounds: int
    optimal_weight: float
    best_input_difference: int
    best_output_difference: int

    @property
    def single_trail_data_complexity(self) -> float:
        """``2^w`` chosen pairs for a single-characteristic distinguisher."""
        return 2.0**self.optimal_weight


def gift16_weight_vector(rounds: int, input_diff: Optional[int] = None) -> np.ndarray:
    """Best characteristic weight reaching each output difference.

    With ``input_diff`` fixed, the DP starts from that difference;
    otherwise it optimises over all non-zero input differences.
    """
    if rounds < 1:
        raise SearchError(f"rounds must be positive, got {rounds}")
    table = sbox_weight_table()
    weights = np.full(1 << 16, np.inf)
    if input_diff is None:
        weights[1:] = 0.0
    else:
        if not 0 < input_diff < 1 << 16:
            raise SearchError(
                f"input difference must be a non-zero 16-bit value, got {input_diff}"
            )
        weights[input_diff] = 0.0
    for _ in range(rounds):
        weights = _minplus_round(weights, table)
    return weights


def gift16_optimal_weight(
    rounds: int, input_diff: Optional[int] = None
) -> OptimalTrailSummary:
    """Exact optimal ``rounds``-round characteristic weight for Gift16."""
    weights = gift16_weight_vector(rounds) if input_diff is None else (
        gift16_weight_vector(rounds, input_diff)
    )
    best_out = int(np.argmin(weights))
    best_weight = float(weights[best_out])
    if math.isinf(best_weight):
        raise SearchError("no characteristic exists (unexpected for Gift16)")
    if input_diff is None:
        # Exact witness input: reverse DP (weight-to-go) from the best
        # output difference back to the inputs.
        reverse = gift16_reverse_weight_vector(rounds, best_out)
        reverse[0] = np.inf  # the zero difference is not an attack input
        best_in = int(np.argmin(reverse))
    else:
        best_in = input_diff
    return OptimalTrailSummary(
        rounds=rounds,
        optimal_weight=best_weight,
        best_input_difference=best_in,
        best_output_difference=best_out,
    )


def gift16_reverse_weight_vector(rounds: int, output_diff: int) -> np.ndarray:
    """Best weight-to-go from each input difference to ``output_diff``.

    The reverse of :func:`gift16_weight_vector`: propagates the min-plus
    DP backward through the wiring and the transposed S-box weight
    table, so ``result[v]`` is the exact optimal weight of any
    ``rounds``-round characteristic ``v -> output_diff``.
    """
    if rounds < 1:
        raise SearchError(f"rounds must be positive, got {rounds}")
    if not 0 <= output_diff < 1 << 16:
        raise SearchError(
            f"output difference must be a 16-bit value, got {output_diff}"
        )
    table = sbox_weight_table()
    weights = np.full(1 << 16, np.inf)
    weights[output_diff] = 0.0
    for _ in range(rounds):
        weights = _minplus_round_reverse(weights, table)
    return weights


def gift16_trail_vs_allinone(rounds: int, deltas: Tuple[int, ...]) -> dict:
    """The paper's core comparison, made exact on Gift16.

    Returns the optimal single-characteristic weight (and its ``2^w``
    data complexity) next to the all-in-one Bayes accuracy and the
    online sample count it implies — the quantified version of "the
    all-in-one approach is more effective than a single trail".
    """
    from repro.core.statistics import required_online_samples
    from repro.diffcrypt.allinone import gift16_allinone

    summary = gift16_optimal_weight(rounds)
    allinone = gift16_allinone(list(deltas), rounds)
    bayes = allinone.bayes_accuracy()
    t = len(deltas)
    if bayes > 1.0 / t + 1e-6:
        online = required_online_samples(bayes, t, error_probability=0.01)
    else:
        online = math.inf
    return {
        "rounds": rounds,
        "optimal_trail_weight": summary.optimal_weight,
        "single_trail_complexity_log2": summary.optimal_weight,
        "allinone_bayes_accuracy": bayes,
        "allinone_online_samples": online,
        "allinone_online_log2": (
            math.inf if math.isinf(online) else math.log2(max(online, 1))
        ),
    }


def exhibit_trail(rounds: int, input_diff: int) -> List[int]:
    """Greedy witness characteristic from ``input_diff`` (differences per
    round boundary), following locally-optimal S-layer transitions.

    The *weight* of the optimal characteristic comes from the exact DP;
    this helper only produces a human-readable witness and its greedy
    weight may exceed the optimum.
    """
    table = sbox_weight_table()
    diff = input_diff
    trail = [diff]
    for _ in range(rounds):
        out = 0
        for j in range(4):
            nibble = (diff >> (4 * j)) & 0xF
            best = int(np.argmin(table[nibble]))
            out |= best << (4 * j)
        permuted = 0
        for i in range(16):
            permuted |= ((out >> i) & 1) << GIFT16_PERM[i]
        diff = permuted
        trail.append(diff)
    return trail
