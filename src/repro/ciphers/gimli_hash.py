"""Gimli-Hash: the sponge mode over the Gimli permutation (paper Fig. 2).

Parameters follow the NIST LWC submission: 48-byte state, 16-byte rate,
32-byte digest.  The final message block is padded by XORing ``0x01``
into the state byte just past the message and ``0x01`` into the last
state byte (domain separation) before the final absorb permutation.

Besides the byte-oriented public API, this module exposes the batched
single-block absorb used by the paper's Gimli-Hash distinguisher
scenario (§4): message pairs differing in one byte of the final block,
observed through the first 128-bit squeeze.
"""

from __future__ import annotations

import numpy as np

from repro.ciphers.gimli import GIMLI_ROUNDS, gimli_permute_batch
from repro.errors import CipherError
from repro.utils.encoding import words_to_bytes

#: sponge rate in bytes (128 bits)
RATE_BYTES = 16
#: total state size in bytes
STATE_BYTES = 48
#: digest size in bytes (256 bits)
DIGEST_BYTES = 32


def _xor_bytes_into_state(state: np.ndarray, data: bytes, offset: int = 0) -> None:
    """XOR ``data`` into the byte-addressed view of a 12-word state.

    ``state`` is a 1-D uint32 array of 12 words, byte ``k`` of the state
    being byte ``k % 4`` (little-endian) of word ``k // 4``.
    """
    for i, byte in enumerate(data):
        pos = offset + i
        word, shift = divmod(pos, 4)
        state[word] ^= np.uint32(byte) << np.uint32(8 * shift)


def _extract_state_bytes(state: np.ndarray, length: int) -> bytes:
    return words_to_bytes(state)[:length]


def gimli_hash(message: bytes, rounds: int = GIMLI_ROUNDS) -> bytes:
    """Hash ``message`` to a 32-byte digest.

    ``rounds`` reduces *every* permutation call (the knob used by the
    round-reduced analyses); the default is the full 24-round Gimli.
    """
    state = np.zeros(12, dtype=np.uint32)
    remaining = message
    while len(remaining) >= RATE_BYTES:
        _xor_bytes_into_state(state, remaining[:RATE_BYTES])
        state = gimli_permute_batch(state, rounds)
        remaining = remaining[RATE_BYTES:]
    # Final (possibly empty) block with padding and domain separation.
    _xor_bytes_into_state(state, remaining)
    _xor_bytes_into_state(state, b"\x01", offset=len(remaining))
    _xor_bytes_into_state(state, b"\x01", offset=STATE_BYTES - 1)
    state = gimli_permute_batch(state, rounds)
    digest = _extract_state_bytes(state, RATE_BYTES)
    state = gimli_permute_batch(state, rounds)
    digest += _extract_state_bytes(state, RATE_BYTES)
    return digest


def absorb_final_block_batch(
    blocks: np.ndarray,
    block_len: int,
    rounds: int = GIMLI_ROUNDS,
    initial_states: np.ndarray | None = None,
) -> np.ndarray:
    """Batched last-block absorb + first squeeze of Gimli-Hash.

    This is the exact computation the paper's Gimli-Hash distinguisher
    observes: starting from ``initial_states`` (all-zero by default —
    the single-block case), XOR in the padded final message block, run
    the (round-reduced) permutation once, and return the first 128 bits
    of the hash, i.e. the rate row, as a ``(n, 4)`` uint32 array.

    ``blocks`` is ``(n, 4)`` uint32 containing the message block already
    packed into rate words (bytes beyond ``block_len`` must be zero —
    the padding byte is added here).
    """
    arr = np.asarray(blocks, dtype=np.uint32)
    if arr.ndim != 2 or arr.shape[1] != 4:
        raise CipherError(f"expected (n, 4) rate blocks, got shape {arr.shape}")
    if not 0 <= block_len < RATE_BYTES:
        raise CipherError(
            f"final block length must be in [0, {RATE_BYTES}), got {block_len}"
        )
    n = arr.shape[0]
    if initial_states is None:
        states = np.zeros((n, 12), dtype=np.uint32)
    else:
        states = np.array(initial_states, dtype=np.uint32, copy=True)
        if states.shape != (n, 12):
            raise CipherError(
                f"initial states must have shape ({n}, 12), got {states.shape}"
            )
    states[:, 0:4] ^= arr
    pad_word, pad_shift = divmod(block_len, 4)
    states[:, pad_word] ^= np.uint32(1) << np.uint32(8 * pad_shift)
    states[:, 11] ^= np.uint32(1) << np.uint32(24)  # byte 47
    out = gimli_permute_batch(states, rounds)
    return out[:, 0:4]


def pack_message_blocks(messages: np.ndarray, block_len: int) -> np.ndarray:
    """Pack ``(n, block_len)`` uint8 messages into zero-extended rate words."""
    msgs = np.asarray(messages, dtype=np.uint8)
    if msgs.ndim != 2 or msgs.shape[1] != block_len:
        raise CipherError(
            f"expected (n, {block_len}) message bytes, got shape {msgs.shape}"
        )
    padded = np.zeros((msgs.shape[0], RATE_BYTES), dtype=np.uint8)
    padded[:, :block_len] = msgs
    return np.frombuffer(padded.tobytes(), dtype="<u4").reshape(-1, 4).astype(np.uint32)


class GimliHash:
    """Incremental Gimli-Hash with a configurable round count.

    Mirrors the usual ``update()`` / ``digest()`` hashlib shape so the
    examples read naturally.
    """

    def __init__(self, rounds: int = GIMLI_ROUNDS):
        if not 0 <= rounds <= GIMLI_ROUNDS:
            raise CipherError(f"rounds must be in [0, {GIMLI_ROUNDS}], got {rounds}")
        self.rounds = rounds
        self._buffer = b""
        self._state = np.zeros(12, dtype=np.uint32)
        self._finalised = False

    def update(self, data: bytes) -> "GimliHash":
        """Absorb more message bytes; returns self for chaining."""
        if self._finalised:
            raise CipherError("cannot update a finalised GimliHash")
        self._buffer += data
        while len(self._buffer) >= RATE_BYTES:
            _xor_bytes_into_state(self._state, self._buffer[:RATE_BYTES])
            self._state = gimli_permute_batch(self._state, self.rounds)
            self._buffer = self._buffer[RATE_BYTES:]
        return self

    def digest(self) -> bytes:
        """Finalise and return the 32-byte digest (idempotent)."""
        if not self._finalised:
            _xor_bytes_into_state(self._state, self._buffer)
            _xor_bytes_into_state(self._state, b"\x01", offset=len(self._buffer))
            _xor_bytes_into_state(self._state, b"\x01", offset=STATE_BYTES - 1)
            self._state = gimli_permute_batch(self._state, self.rounds)
            first = _extract_state_bytes(self._state, RATE_BYTES)
            second_state = gimli_permute_batch(self._state, self.rounds)
            self._digest = first + _extract_state_bytes(second_state, RATE_BYTES)
            self._finalised = True
        return self._digest

    def hexdigest(self) -> str:
        """Hex-encoded digest."""
        return self.digest().hex()
