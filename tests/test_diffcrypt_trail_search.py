"""Tests for the Gimli trail search (Table 1 machinery)."""

import numpy as np
import pytest

from repro.ciphers.gimli import gimli_permute_batch
from repro.diffcrypt.trail_search import (
    beam_search_trail,
    column_transitions,
    default_seeds,
    find_weight_zero_trails,
    greedy_trail,
    propagate_deterministic,
    round_differential_probability,
    safe_column_diffs,
)
from repro.errors import SearchError


class TestSafeColumnDiffs:
    def test_count(self):
        # 2 * 4 * 2 - 1 = 15 non-zero safe column diffs.
        assert len(safe_column_diffs()) == 15

    def test_all_nonzero(self):
        assert all(d != (0, 0, 0) for d in safe_column_diffs())


class TestWeightZeroSearch:
    def test_one_round_exists(self):
        trails = find_weight_zero_trails(1, max_active_columns=1)
        assert trails
        for trail in trails:
            assert trail.weight == 0.0

    def test_two_rounds_exist(self):
        """Table 1: the optimal 2-round weight is 0 — exhibit it."""
        trails = find_weight_zero_trails(2, max_active_columns=1)
        assert trails

    def test_three_rounds_empty(self):
        """Table 1: weight 2 at 3 rounds, so no probability-1 trail."""
        assert find_weight_zero_trails(3, max_active_columns=1) == []

    def test_trails_verified_on_permutation(self, rng):
        trail = find_weight_zero_trails(2, max_active_columns=1)[0]
        states = rng.integers(0, 2**32, size=(128, 12), dtype=np.uint64).astype(
            np.uint32
        )
        din = np.array(trail.input_difference, dtype=np.uint32)
        dout = np.array(trail.output_difference, dtype=np.uint32)
        a = gimli_permute_batch(states, 2)
        b = gimli_permute_batch(states ^ din, 2)
        assert ((a ^ b) == dout).all(axis=1).all()

    def test_invalid_rounds(self):
        with pytest.raises(SearchError):
            find_weight_zero_trails(0)


class TestColumnTransitions:
    def test_zero_diff(self):
        (out, p), = column_transitions((0, 0, 0))
        assert out == (0, 0, 0)
        assert p == 1.0

    def test_best_probability_positive(self):
        (out, p), = column_transitions((1, 2, 3))
        assert 0.0 < p <= 1.0

    def test_variants_ranked(self):
        results = column_transitions((1, 2, 3), variants=3)
        probs = [p for _, p in results]
        assert probs[0] == max(probs)
        assert len(results) <= 3

    def test_best_is_optimal_among_observed(self, rng):
        """No sampled real transition beats the claimed optimum."""
        from repro.diffcrypt.spbox import spbox_apply

        din = (1 << 4, 0, 0)
        (_, best_p), = column_transitions(din)
        from repro.diffcrypt.spbox import spbox_differential_probability

        for _ in range(50):
            col = tuple(int(x) for x in rng.integers(0, 2**32, 3))
            o1 = spbox_apply(col)
            o2 = spbox_apply(tuple(c ^ d for c, d in zip(col, din)))
            dout = tuple(a ^ b for a, b in zip(o1, o2))
            assert spbox_differential_probability(din, dout) <= best_p + 1e-12


class TestRoundProbability:
    def test_deterministic_round_probability_one(self):
        trail = find_weight_zero_trails(1, max_active_columns=1)[0]
        p = round_differential_probability(
            trail.differences[0], trail.differences[1], 24
        )
        assert p == 1.0

    def test_impossible_round(self):
        din = tuple([0] * 12)
        dout = tuple([1] + [0] * 11)
        assert round_differential_probability(din, dout, 24) == 0.0


class TestGreedyAndBeam:
    def test_greedy_weight_matches_probabilities(self):
        seed = tuple([1 << 7] + [0] * 11)
        trail = greedy_trail(seed, 2)
        assert trail.rounds == 2
        assert trail.weight >= 0.0

    def test_beam_finds_three_round_weight_2(self):
        """Table 1: optimal 3-round weight is 2; the beam search
        exhibits a weight-2 trail."""
        trail = beam_search_trail(default_seeds(), 3, beam_width=24, variants=3)
        assert trail.weight == pytest.approx(2.0)

    def test_beam_no_seeds_raises(self):
        with pytest.raises(SearchError):
            beam_search_trail([], 2)

    def test_wide_beam_never_worse_than_greedy(self):
        """With variants=1 and a beam wider than the seed count, the beam
        contains every greedy trajectory, so its best weight cannot be
        worse than greedy's."""
        seeds = default_seeds()[:40]
        greedy_best = min(greedy_trail(s, 2).weight for s in seeds)
        beam = beam_search_trail(seeds, 2, beam_width=len(seeds), variants=1)
        assert beam.weight <= greedy_best + 1e-9


class TestPropagateDeterministic:
    def test_unsafe_diff_fails(self):
        assert propagate_deterministic(tuple([1] + [0] * 11), 1) is None

    def test_safe_diff_propagates(self):
        trail = propagate_deterministic(tuple([1 << 7] + [0] * 11), 1)
        assert trail is not None
        assert trail.probability == 1.0
