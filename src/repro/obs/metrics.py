"""Process-wide metrics: counters, gauges, histograms, labeled series.

Three primitives, each thread-safe behind its own lock:

* :class:`Counter` — monotonically increasing float (`.inc()`);
* :class:`Gauge` — set/inc/dec a current value, with the running max
  tracked (queue depths, in-flight counts);
* :class:`Histogram` — cumulative ``count``/``sum`` plus fixed upper
  buckets (for Prometheus exposition) *and* a bounded sliding window of
  raw samples for nearest-rank quantiles (p50/p95/p99), so a long-lived
  process reports recent latency, not its all-time average.

Metrics live in a :class:`MetricsRegistry`, keyed by name + label set;
``registry.counter("http_requests_total", route="/v1/classify")``
returns the same series object every time.  ``snapshot()`` renders a
JSON-able dict, :meth:`MetricsRegistry.to_prometheus` the standard
Prometheus text exposition (version 0.0.4).

:data:`REGISTRY` is the process-wide default used by the training and
experiment layers; the serving stack keeps one registry per
:class:`~repro.serve.metrics.ServeMetrics` instance so parallel
servers/tests never share counters.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

#: Default latency buckets (seconds), Prometheus-style.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default sliding-window size for histogram quantiles.
DEFAULT_WINDOW = 8192

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of ``values`` (``q`` in [0, 100])."""
    if not values:
        raise ReproError("cannot take a quantile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ReproError(f"quantile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that goes up and down; tracks its running maximum."""

    __slots__ = ("name", "labels", "_value", "_max", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            if self._value > self._max:
                self._max = self._value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount
            if self._value > self._max:
                self._max = self._value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max


class Histogram:
    """Cumulative buckets plus a sliding window for quantiles."""

    __slots__ = (
        "name", "labels", "buckets", "_bucket_counts", "_count", "_sum",
        "_window", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        buckets: Optional[Sequence[float]] = None,
        window: int = DEFAULT_WINDOW,
    ):
        if window <= 0:
            raise ReproError(f"histogram window must be positive, got {window}")
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if any(b2 <= b1 for b1, b2 in zip(self.buckets, self.buckets[1:])):
            raise ReproError(f"histogram {name} buckets must strictly increase")
        self._bucket_counts = [0] * len(self.buckets)
        self._count = 0
        self._sum = 0.0
        self._window: deque = deque(maxlen=window)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._window.append(value)
            index = bisect_left(self.buckets, value)
            if index < len(self.buckets):
                self._bucket_counts[index] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def window_values(self) -> List[float]:
        """The retained sample window, oldest first."""
        with self._lock:
            return list(self._window)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained window."""
        return quantile(self.window_values(), q)

    def bucket_counts(self) -> Dict[float, int]:
        """Per-bucket (non-cumulative) counts keyed by upper bound."""
        with self._lock:
            return {
                upper: count
                for upper, count in zip(self.buckets, self._bucket_counts)
            }

    def summary(self) -> Optional[dict]:
        """count/mean/p50/p95/p99/max over the window (None if empty)."""
        values = self.window_values()
        if not values:
            return None
        return {
            "count": self._count,
            "mean": sum(values) / len(values),
            "p50": quantile(values, 50.0),
            "p95": quantile(values, 95.0),
            "p99": quantile(values, 99.0),
            "max": max(values),
        }


def _label_key(labels: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Name + label-set indexed store of metric series."""

    def __init__(self):
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, tuple], object] = {}
        self._types: Dict[str, str] = {}

    def _get_or_create(self, kind: str, name: str, labels: dict, factory):
        key = (name, _label_key(labels))
        with self._lock:
            existing_kind = self._types.get(name)
            if existing_kind is not None and existing_kind != kind:
                raise ReproError(
                    f"metric {name!r} is a {existing_kind}, not a {kind}"
                )
            series = self._series.get(key)
            if series is None:
                series = factory(name, key[1])
                self._series[key] = series
                self._types[name] = kind
            return series

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        window: int = DEFAULT_WINDOW,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            "histogram",
            name,
            labels,
            lambda n, key: Histogram(n, key, buckets=buckets, window=window),
        )

    def series(self) -> List[object]:
        """Every registered metric series, sorted by (name, labels)."""
        with self._lock:
            return [self._series[key] for key in sorted(self._series)]

    def reset(self) -> None:
        """Drop every registered series, in place.

        Used by pool workers after a fork: the child inherits a copy of
        the parent's registry, and clearing it (rather than rebinding
        the module global) keeps every ``from ... import REGISTRY``
        alias valid while guaranteeing the worker's flushed snapshot
        counts only its own work.
        """
        with self._lock:
            self._series.clear()
            self._types.clear()

    def dump(self) -> dict:
        """A full-fidelity, mergeable view of every series.

        Unlike :meth:`snapshot` (a human-oriented summary), this keeps
        histogram bucket counts keyed by their upper bounds so that
        per-worker dumps can be summed into one run-level registry by
        :mod:`repro.obs.agg`.  Sliding-window quantiles are process-local
        and deliberately omitted — they cannot be merged.
        """
        series = []
        for metric in self.series():
            entry: dict = {
                "name": metric.name,
                "kind": self._types[metric.name],
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Counter):
                entry["value"] = metric.value
            elif isinstance(metric, Gauge):
                entry["value"] = metric.value
                entry["max"] = metric.max
            else:
                entry["count"] = metric.count
                entry["sum"] = metric.sum
                entry["buckets"] = {
                    _format_number(upper): count
                    for upper, count in metric.bucket_counts().items()
                }
            series.append(entry)
        return {"series": series}

    def snapshot(self) -> dict:
        """A JSON-able ``{name: [{labels, ...stats}]}`` view."""
        out: Dict[str, list] = {}
        for metric in self.series():
            entry: dict = {"labels": dict(metric.labels)}
            if isinstance(metric, Counter):
                entry["value"] = metric.value
            elif isinstance(metric, Gauge):
                entry["value"] = metric.value
                entry["max"] = metric.max
            else:
                entry["count"] = metric.count
                entry["sum"] = metric.sum
                summary = metric.summary()
                if summary is not None:
                    entry["window"] = summary
            out.setdefault(metric.name, []).append(entry)
        return out

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        seen_types = set()
        for metric in self.series():
            name = _NAME_RE.sub("_", metric.name)
            kind = self._types[metric.name]
            if metric.name not in seen_types:
                seen_types.add(metric.name)
                lines.append(f"# TYPE {name} {kind}")
            if isinstance(metric, Counter):
                lines.append(
                    f"{name}{_format_labels(metric.labels)} "
                    f"{_format_number(metric.value)}"
                )
            elif isinstance(metric, Gauge):
                lines.append(
                    f"{name}{_format_labels(metric.labels)} "
                    f"{_format_number(metric.value)}"
                )
            else:
                cumulative = 0
                for upper, count in metric.bucket_counts().items():
                    cumulative += count
                    labels = metric.labels + (("le", _format_number(upper)),)
                    lines.append(
                        f"{name}_bucket{_format_labels(labels)} {cumulative}"
                    )
                inf_labels = metric.labels + (("le", "+Inf"),)
                lines.append(
                    f"{name}_bucket{_format_labels(inf_labels)} {metric.count}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(metric.labels)} "
                    f"{_format_number(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_format_labels(metric.labels)} {metric.count}"
                )
        return "\n".join(lines) + "\n"


def _format_number(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_LABEL_RE.sub("_", key)}="{_escape_label(value)}"'
        for key, value in labels
    )
    return "{" + inner + "}"


#: The process-wide default registry (training, experiments).
REGISTRY = MetricsRegistry()
