"""Run the engineering benchmark suites and write machine-readable results.

Executes the substrate benchmarks (``bench_nn_ops.py`` and
``bench_ciphers.py``) under pytest-benchmark and distils each suite's
raw report into a small committed artefact::

    benchmarks/BENCH_nn_ops.json
    benchmarks/BENCH_ciphers.json

Each artefact has the shape::

    {
      "suite": "nn_ops",
      "quick": false,
      "benchmarks": [
        {"name": "...", "mean_s": 0.0123, "stddev_s": 0.0004, "rounds": 7},
        ...
      ]
    }

``--quick`` caps rounds/timing for CI smoke runs (``make bench``); the
timings are then noisy but the files still validate.  The script exits
non-zero if a suite fails or a written artefact is malformed, so a
broken benchmark can't silently commit garbage baselines.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

SUITES = {
    "nn_ops": BENCH_DIR / "bench_nn_ops.py",
    "ciphers": BENCH_DIR / "bench_ciphers.py",
}

#: Suites that are standalone scripts (not pytest-benchmark files):
#: invoked as ``python <script> --output-dir DIR [--quick]`` and expected
#: to write a schema-compatible ``BENCH_<suite>.json`` themselves.
SCRIPT_SUITES = {
    "serve": BENCH_DIR / "bench_serve.py",
    "obs": BENCH_DIR / "bench_obs.py",
    "quant": BENCH_DIR / "bench_quant.py",
    "search": BENCH_DIR / "bench_search.py",
    "jobs": BENCH_DIR / "bench_jobs.py",
}

ALL_SUITES = {**SUITES, **SCRIPT_SUITES}

_REQUIRED_ENTRY_KEYS = ("name", "mean_s", "stddev_s", "rounds")


def _run_script_suite(suite: str, source: Path, quick: bool, output_dir: Path) -> Path:
    command = [sys.executable, str(source), "--output-dir", str(output_dir)]
    if quick:
        command.append("--quick")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if result.returncode != 0:
        raise RuntimeError(f"benchmark suite {suite!r} failed")
    return output_dir / f"BENCH_{suite}.json"


def run_suite(suite: str, source: Path, quick: bool, output_dir: Path) -> Path:
    """Run one benchmark file and write its ``BENCH_<suite>.json``."""
    if suite in SCRIPT_SUITES:
        return _run_script_suite(suite, source, quick, output_dir)
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "raw.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            str(source),
            "-q",
            "--benchmark-only",
            f"--benchmark-json={raw_path}",
        ]
        if quick:
            command += [
                "--benchmark-min-rounds=1",
                "--benchmark-max-time=0.05",
                "--benchmark-warmup=off",
            ]
        else:
            # Baseline mode: warm every benchmark before timing (first
            # iterations pay scratch-buffer allocation and BLAS thread
            # spin-up) and keep the collector out of the timed region.
            command += [
                "--benchmark-warmup=on",
                "--benchmark-warmup-iterations=2",
                "--benchmark-disable-gc",
            ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        result = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if result.returncode != 0:
            raise RuntimeError(f"benchmark suite {suite!r} failed")
        raw = json.loads(raw_path.read_text())
    report = {
        "suite": suite,
        "quick": bool(quick),
        "benchmarks": [
            {
                "name": entry["name"],
                "mean_s": entry["stats"]["mean"],
                "stddev_s": entry["stats"]["stddev"],
                "rounds": entry["stats"]["rounds"],
            }
            for entry in raw["benchmarks"]
        ],
    }
    out_path = output_dir / f"BENCH_{suite}.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return out_path


def validate_bench_file(path: Path) -> None:
    """Raise ``ValueError`` if ``path`` is not a well-formed BENCH artefact."""
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path.name}: unreadable or invalid JSON ({exc})")
    if not isinstance(report, dict):
        raise ValueError(f"{path.name}: top level must be an object")
    for key in ("suite", "quick", "benchmarks"):
        if key not in report:
            raise ValueError(f"{path.name}: missing key {key!r}")
    entries = report["benchmarks"]
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path.name}: 'benchmarks' must be a non-empty list")
    for entry in entries:
        for key in _REQUIRED_ENTRY_KEYS:
            if key not in entry:
                raise ValueError(
                    f"{path.name}: entry {entry.get('name', '?')!r} missing {key!r}"
                )
        if not entry["name"]:
            raise ValueError(f"{path.name}: entry with empty name")
        if not (float(entry["mean_s"]) > 0.0):
            raise ValueError(
                f"{path.name}: {entry['name']!r} has non-positive mean_s"
            )
        if float(entry["stddev_s"]) < 0.0 or int(entry["rounds"]) < 1:
            raise ValueError(
                f"{path.name}: {entry['name']!r} has malformed stats"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one-round smoke timings (fast, noisy)",
    )
    parser.add_argument(
        "--suite",
        choices=sorted(ALL_SUITES),
        action="append",
        help="run only this suite (repeatable; default: all)",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=BENCH_DIR,
        help="where to write BENCH_*.json (default: benchmarks/)",
    )
    args = parser.parse_args(argv)
    suites = args.suite or sorted(ALL_SUITES)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for suite in suites:
        written.append(
            run_suite(suite, ALL_SUITES[suite], args.quick, args.output_dir)
        )
    for path in written:
        validate_bench_file(path)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
