"""Stdlib HTTP client for the serving endpoints, plus the online driver.

:class:`ServeClient` is a thin ``urllib`` wrapper over the JSON API of
:mod:`repro.serve.http`.  :meth:`ServeClient.run_online_phase` is the
paper's attacker-side online loop over the wire: it holds the scenario
and the oracle under test (the *attacker's* side of the game), streams
chosen-difference query batches to ``/v1/distinguish`` (the *service*
holds the trained classifier), and returns the finished session state
with its CIPHER/RANDOM verdict.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import List, Optional

import numpy as np

from repro.core.oracle import Oracle
from repro.core.scenario import DifferentialScenario
from repro.errors import ServeError
from repro.utils.rng import make_rng


class ServeClientError(ServeError):
    """An HTTP request to the serving endpoint failed."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """JSON client bound to one serving endpoint base URL."""

    def __init__(self, base_url: str, timeout_s: float = 30.0):
        if not base_url.startswith(("http://", "https://")):
            raise ServeError(f"base_url must be http(s), got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", exc.reason)
            except (json.JSONDecodeError, OSError):
                message = str(exc.reason)
            raise ServeClientError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach serving endpoint {self.base_url}: {exc.reason}"
            ) from None

    # -- endpoints ---------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def models(self) -> List[dict]:
        return self._request("GET", "/v1/models")["models"]

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def classify(
        self, model: str, features: np.ndarray, timeout_s: Optional[float] = None
    ) -> dict:
        """Labels + probability vectors for a feature batch."""
        body = {"model": model, "features": np.asarray(features).tolist()}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._request("POST", "/v1/classify", body)

    def open_session(self, model: str, **options) -> dict:
        """Create a distinguishing session; returns its initial state."""
        return self._request("POST", "/v1/distinguish", {"model": model, **options})

    def distinguish_batch(
        self,
        model: str,
        features: np.ndarray,
        labels: np.ndarray,
        session: Optional[str] = None,
    ) -> dict:
        """Feed one query batch into a session (created when ``None``)."""
        body = {
            "model": model,
            "features": np.asarray(features).tolist(),
            "labels": np.asarray(labels).tolist(),
        }
        if session is not None:
            body["session"] = session
        return self._request("POST", "/v1/distinguish", body)

    # -- the paper's online phase over the wire ----------------------------

    def run_online_phase(
        self,
        model: str,
        scenario: DifferentialScenario,
        oracle: Oracle,
        num_samples: int,
        rng=None,
        request_rows: int = 512,
    ) -> dict:
        """Drive Algorithm 2's online loop against ``oracle`` over HTTP.

        Generates ``num_samples`` labelled output-difference queries
        from ``scenario`` against the oracle under test, streams them in
        ``request_rows``-row batches to ``/v1/distinguish``, and returns
        the final session state (including ``"verdict"``).  The sample
        budget is pinned to the generated count so the verdict is always
        emitted on the last batch.
        """
        if num_samples <= 0:
            raise ServeError(f"num_samples must be positive, got {num_samples}")
        if request_rows <= 0:
            raise ServeError(f"request_rows must be positive, got {request_rows}")
        generator = make_rng(rng)
        n_per_class = max(1, num_samples // scenario.num_classes)
        features, labels = scenario.generate_dataset(
            n_per_class, rng=generator, oracle=oracle
        )
        state = self.open_session(model, target_samples=int(features.shape[0]))
        session_id = state["session"]
        for begin in range(0, features.shape[0], request_rows):
            state = self.distinguish_batch(
                model,
                features[begin:begin + request_rows],
                labels[begin:begin + request_rows],
                session=session_id,
            )
        return state
