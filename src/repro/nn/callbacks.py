"""Training callbacks: history recording and early stopping.

The paper limits epochs manually ("for higher numbers the models tend to
overfit", §5); ``EarlyStopping`` offers the automated version of that
judgement for the extension experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import TrainingError


class History:
    """Per-epoch log of losses and metrics, Keras-style."""

    def __init__(self):
        self.epochs: List[int] = []
        self.records: Dict[str, List[float]] = {}

    def append(self, epoch: int, values: Dict[str, float]) -> None:
        """Record one epoch's values."""
        self.epochs.append(epoch)
        for key, value in values.items():
            self.records.setdefault(key, []).append(float(value))

    def __getitem__(self, key: str) -> List[float]:
        return self.records[key]

    def __contains__(self, key: str) -> bool:
        return key in self.records

    def last(self, key: str) -> float:
        """Most recent value of a recorded series."""
        series = self.records.get(key)
        if not series:
            raise TrainingError(f"history has no record of {key!r}")
        return series[-1]


class Callback:
    """Base callback; hooks return nothing, state lives on the instance."""

    def on_epoch_end(self, epoch: int, values: Dict[str, float]) -> None:
        """Called after every epoch with that epoch's logged values."""

    @property
    def stop_training(self) -> bool:
        """Whether the training loop should stop after this epoch."""
        return False


class EarlyStopping(Callback):
    """Stop when a monitored value stops improving.

    ``mode='min'`` monitors losses, ``mode='max'`` accuracies;
    ``patience`` epochs without improvement trigger the stop.
    """

    def __init__(
        self,
        monitor: str = "loss",
        patience: int = 2,
        min_delta: float = 0.0,
        mode: str = "min",
    ):
        if mode not in ("min", "max"):
            raise TrainingError(f"mode must be 'min' or 'max', got {mode!r}")
        if patience < 0:
            raise TrainingError(f"patience must be non-negative, got {patience}")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.mode = mode
        self.best: Optional[float] = None
        self.wait = 0
        self._stop = False

    def on_epoch_end(self, epoch, values):
        if self.monitor not in values:
            raise TrainingError(
                f"EarlyStopping monitors {self.monitor!r} but the epoch only "
                f"logged {sorted(values)}"
            )
        current = values[self.monitor]
        if self.best is None:
            self.best = current
            return
        improved = (
            current < self.best - self.min_delta
            if self.mode == "min"
            else current > self.best + self.min_delta
        )
        if improved:
            self.best = current
            self.wait = 0
        else:
            self.wait += 1
            if self.wait > self.patience:
                self._stop = True

    @property
    def stop_training(self) -> bool:
        return self._stop
