"""Tests for Salsa20: spec quarter-round vector, batch parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.salsa import (
    SalsaPermutation,
    doubleround,
    doubleround_batch,
    quarterround,
    salsa20_core,
)
from repro.errors import CipherError

word = st.integers(0, 2**32 - 1)


class TestQuarterround:
    def test_spec_vector_zero(self):
        assert quarterround(0, 0, 0, 0) == (0, 0, 0, 0)

    def test_spec_vector_one(self):
        """From the Salsa20 specification document."""
        assert quarterround(0x00000001, 0, 0, 0) == (
            0x08008145,
            0x00000080,
            0x00010200,
            0x20500000,
        )

    @given(word, word, word, word)
    def test_output_range(self, a, b, c, d):
        out = quarterround(a, b, c, d)
        assert all(0 <= w < 2**32 for w in out)


class TestDoubleround:
    def test_changes_state(self):
        state = list(range(1, 17))
        assert doubleround(state) != state

    def test_wrong_size_raises(self):
        with pytest.raises(CipherError):
            doubleround([0] * 15)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(word, min_size=16, max_size=16), st.integers(1, 10))
    def test_batch_matches_scalar(self, state, rounds):
        scalar = state
        for _ in range(rounds):
            scalar = doubleround(scalar)
        batch = doubleround_batch(np.array(state, dtype=np.uint32), rounds)
        assert scalar == [int(w) for w in batch]


class TestCore:
    def test_feedforward(self):
        """salsa20_core(0) = 0: the all-zero state is a fixed point of the
        rounds, and the feed-forward adds zero."""
        assert salsa20_core([0] * 16) == [0] * 16

    def test_nonzero_differs_from_rounds_only(self):
        state = list(range(1, 17))
        core = salsa20_core(state, 2)
        rounds_only = doubleround(doubleround(state))
        assert core == [(a + b) & 0xFFFFFFFF for a, b in zip(rounds_only, state)]


class TestSalsaPermutation:
    def test_batch_shape(self, rng):
        perm = SalsaPermutation(rounds=2)
        states = rng.integers(0, 2**32, size=(5, 16), dtype=np.uint64).astype(
            np.uint32
        )
        out = perm(states)
        assert out.shape == (5, 16)

    def test_rounds_zero_identity(self, rng):
        perm = SalsaPermutation(rounds=0)
        states = rng.integers(0, 2**32, size=(3, 16), dtype=np.uint64).astype(
            np.uint32
        )
        assert (perm(states) == states).all()

    def test_input_not_mutated(self, rng):
        states = rng.integers(0, 2**32, size=(3, 16), dtype=np.uint64).astype(
            np.uint32
        )
        copy = states.copy()
        SalsaPermutation(rounds=3)(states)
        assert (states == copy).all()

    def test_bad_shape(self):
        with pytest.raises(CipherError):
            doubleround_batch(np.zeros((2, 15), dtype=np.uint32))
