"""Execute queued jobs with worker processes, retries and resume.

:func:`run_cells` is the single entry point the experiment layer uses.
Without a queue directory it degrades to the plain in-memory
:func:`~repro.core.parallel.run_grid` (the historical path, unchanged
results).  With one, every cell becomes a persistent job:

* cells whose spec fingerprint is already ``done`` in the queue are
  **skipped** and their stored results returned (resume);
* the remainder run through ``run_grid`` (so ``workers=N`` trains that
  many cells in parallel, exactly like the non-queued path), each
  wrapped in a retry loop with exponential backoff;
* results and state transitions are written atomically by the parent as
  cells complete, so a ``kill -9`` at any moment loses at most the
  cells that were mid-flight — and those are reset to pending at the
  next start.

Environment knobs (see EXPERIMENTS.md):

* ``REPRO_JOBS_RETRIES`` — attempts per job before it fails terminally
  (default 2);
* ``REPRO_JOBS_BACKOFF`` — base backoff seconds between attempts,
  doubled per retry (default 0.05);
* ``REPRO_JOBS_MAX_CELLS`` — process at most this many jobs in one
  invocation, then stop with the rest pending.  Exists for interruption
  testing (a deterministic "kill") and for time-boxing a slice of a
  large grid; the next invocation resumes where this one stopped.

Because a job's result is JSON (written through
:func:`~repro.jobs.queue.jsonify`, which is lossless for the float64
values the tables report), a resumed grid's rows are bit-identical to
an uninterrupted run's: completed cells replay from disk, fresh cells
recompute from the same pinned per-cell seed material.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.parallel import run_grid
from repro.errors import JobError
from repro.jobs.queue import DONE, FAILED, PENDING, JobQueue
from repro.obs import events as obs_events
from repro.obs import log as obs_log
from repro.obs.trace import span

_log = obs_log.get_logger("repro.jobs")

DEFAULT_MAX_ATTEMPTS = 2
DEFAULT_BACKOFF_S = 0.05


def _env_int(name: str, default: Optional[int]) -> Optional[int]:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise JobError(f"{name} must be an integer, got {raw!r}") from None
    if value < 1:
        raise JobError(f"{name} must be >= 1, got {value}")
    return value


def max_attempts_from_env() -> int:
    """``REPRO_JOBS_RETRIES`` (attempts per job; default 2)."""
    return _env_int("REPRO_JOBS_RETRIES", DEFAULT_MAX_ATTEMPTS)


def backoff_from_env() -> float:
    raw = os.environ.get("REPRO_JOBS_BACKOFF", "")
    if not raw:
        return DEFAULT_BACKOFF_S
    try:
        value = float(raw)
    except ValueError:
        raise JobError(
            f"REPRO_JOBS_BACKOFF must be a float, got {raw!r}"
        ) from None
    if value < 0:
        raise JobError(f"REPRO_JOBS_BACKOFF must be >= 0, got {value}")
    return value


def max_cells_from_env() -> Optional[int]:
    """``REPRO_JOBS_MAX_CELLS`` (cap per invocation; default unlimited)."""
    return _env_int("REPRO_JOBS_MAX_CELLS", None)


def _attempt_job(args):
    """Run one job payload with in-worker retries (module-level: pickles).

    Returns ``(ok, value, attempts, duration_s)`` where ``value`` is the
    cell result on success or ``(error_type, message, traceback)`` on
    terminal failure.  Retrying inside the worker keeps the parent's
    ``imap`` streaming and makes the backoff local to the failing cell.
    Each retry emits a ``cell.retry`` run event (the executing process
    carries the run context, whether it is the parent or a pool worker).
    """
    fn, payload, max_attempts, backoff_s, job_id = args
    start = time.perf_counter()
    failure = None
    for attempt in range(1, max_attempts + 1):
        try:
            result = fn(payload)
            return True, result, attempt, time.perf_counter() - start
        except Exception as exc:  # noqa: BLE001 - recorded, not swallowed
            failure = (
                type(exc).__name__,
                str(exc),
                traceback.format_exc(limit=20),
            )
            if attempt < max_attempts:
                obs_events.emit(
                    "cell.retry",
                    job_id=job_id,
                    attempt=attempt,
                    error_type=failure[0],
                )
                if backoff_s > 0:
                    time.sleep(backoff_s * (2 ** (attempt - 1)))
    return False, failure, max_attempts, time.perf_counter() - start


def _outcome_duration(outcome) -> float:
    """The in-worker wall clock of an ``_attempt_job`` outcome tuple.

    Feeds the grid's stall detector with true per-cell durations instead
    of inter-completion gaps.
    """
    return outcome[3]


class JobRunner:
    """Drive a :class:`~repro.jobs.queue.JobQueue` to completion."""

    def __init__(
        self,
        queue: JobQueue,
        workers: Optional[int] = None,
        max_attempts: Optional[int] = None,
        backoff_s: Optional[float] = None,
        max_jobs: Optional[int] = None,
    ):
        self.queue = queue
        self.workers = workers
        self.max_attempts = (
            max_attempts if max_attempts is not None else max_attempts_from_env()
        )
        self.backoff_s = backoff_s if backoff_s is not None else backoff_from_env()
        self.max_jobs = max_jobs if max_jobs is not None else max_cells_from_env()

    def run(
        self,
        fn: Callable,
        job_payloads: Dict[str, object],
        label: str = "jobs",
    ) -> Dict[str, int]:
        """Execute every non-done job that has a payload.

        ``job_payloads`` maps job id -> payload (all submitted cells,
        rebuilt by the caller on every invocation — payload
        reconstruction is deterministic and the dataset cache makes it
        cheap).  Returns the final status counts.
        """
        self.queue.reset_interrupted()
        todo: List[str] = []
        for record in self.queue.jobs():
            job_id = record["job_id"]
            if job_id not in job_payloads:
                continue  # a job from another slice of this queue
            if record["status"] == DONE:
                continue
            todo.append(job_id)
        skipped_cap = 0
        if self.max_jobs is not None and len(todo) > self.max_jobs:
            skipped_cap = len(todo) - self.max_jobs
            todo = todo[: self.max_jobs]
        done_already = sum(
            1 for r in self.queue.jobs()
            if r["job_id"] in job_payloads and r["status"] == DONE
        )
        _log.info(
            f"{label}.plan",
            total=len(job_payloads),
            completed=done_already,
            to_run=len(todo),
            deferred=skipped_cap,
        )
        obs_events.emit(
            "run.plan",
            label=label,
            total=len(job_payloads),
            completed=done_already,
            to_run=len(todo),
            deferred=skipped_cap,
        )
        if todo:
            # Mark the slice running *before* dispatch: a kill between
            # here and completion leaves honest "running" records that
            # the next invocation resets to pending.
            previous_attempts = {}
            for job_id in todo:
                record = self.queue.load(job_id)
                previous_attempts[job_id] = record["attempts"]
                self.queue.update(
                    job_id, status="running",
                    attempts=record["attempts"],
                )
                obs_events.emit(
                    "cell.start", label=label, job_id=job_id,
                    index=record.get("index"),
                )
            args = [
                (fn, job_payloads[job_id], self.max_attempts, self.backoff_s,
                 job_id)
                for job_id in todo
            ]
            finished = 0

            def _persist_outcome(index: int, outcome) -> None:
                # Runs in the parent, in cell order, as each outcome
                # streams out of the grid — a kill mid-grid keeps every
                # cell completed so far, not just completed invocations.
                nonlocal finished
                job_id = todo[index]
                ok, value, attempts, duration = outcome
                total_attempts = previous_attempts[job_id] + attempts
                if ok:
                    self.queue.mark_done(
                        job_id, value, duration, total_attempts
                    )
                    obs_events.emit(
                        "cell.done", label=label, job_id=job_id,
                        duration_s=round(duration, 4),
                        attempts=total_attempts,
                    )
                else:
                    error_type, message, trace = value
                    self.queue.mark_failed(
                        job_id,
                        error=f"{message}\n{trace}",
                        error_type=error_type,
                        duration_s=duration,
                        attempts=total_attempts,
                    )
                    _log.warning(
                        f"{label}.job_failed",
                        job_id=job_id,
                        error_type=error_type,
                        attempts=total_attempts,
                    )
                    obs_events.emit(
                        "cell.failed", label=label, job_id=job_id,
                        error_type=error_type,
                        duration_s=round(duration, 4),
                        attempts=total_attempts,
                    )
                finished += 1
                obs_events.emit(
                    "queue.depth", label=label,
                    pending=len(todo) - finished,
                    done=done_already + finished,
                    total=len(job_payloads),
                )

            with span(f"{label}.jobs", to_run=len(todo),
                      completed=done_already):
                run_grid(
                    _attempt_job, args, workers=self.workers, label=label,
                    on_result=_persist_outcome,
                    duration_of=_outcome_duration,
                )
        counts = {status: 0 for status in (PENDING, "running", DONE, FAILED)}
        for record in self.queue.jobs():
            if record["job_id"] in job_payloads:
                counts[record["status"]] += 1
        return counts


def bind_run(queue_dir, experiment: str, args: Dict, rng) -> int:
    """Bind an experiment invocation to a queue directory; returns the seed.

    ``rng`` must be ``None`` or an integer seed: a live generator cannot
    be fingerprinted into a resumable run.  ``None`` pins fresh OS
    entropy on first use and replays the pinned value on resume.
    """
    if rng is not None and not isinstance(rng, (int,)):
        raise JobError(
            "resumable runs need an integer seed (or none), got "
            f"{type(rng).__name__}; a live generator cannot be replayed "
            "across invocations"
        )
    queue = JobQueue(queue_dir)
    return queue.bind(experiment, args, rng)


def run_cells(
    fn: Callable,
    payloads: Sequence,
    specs: Optional[Sequence[Dict]] = None,
    workers: Optional[int] = None,
    label: str = "grid",
    queue_dir=None,
) -> List:
    """Map ``fn`` over grid cells, optionally through a persistent queue.

    ``queue_dir=None`` is exactly :func:`~repro.core.parallel.run_grid`.
    With a queue directory, ``specs`` (one JSON-able dict per payload)
    fingerprint the cells; completed cells are skipped and replayed from
    disk, fresh cells run with retry/backoff, and the returned rows are
    always the JSON-round-tripped stored results, so an interrupted +
    resumed grid is bit-identical to an uninterrupted one.

    Raises :class:`~repro.errors.JobError` when the grid ends with
    failed or unprocessed cells — after completing everything else, so a
    resume has the most work already banked.
    """
    if queue_dir is None:
        return run_grid(fn, payloads, workers=workers, label=label)
    payloads = list(payloads)
    if specs is None or len(list(specs)) != len(payloads):
        raise JobError(
            f"{label}: queued runs need one spec per payload "
            f"(got {0 if specs is None else len(list(specs))} specs for "
            f"{len(payloads)} payloads)"
        )
    queue = JobQueue(queue_dir)
    job_ids = [
        queue.submit(spec, index=index) for index, spec in enumerate(specs)
    ]
    if len(set(job_ids)) != len(job_ids):
        raise JobError(
            f"{label}: duplicate cell specs — every grid cell must "
            "fingerprint uniquely"
        )
    runner = JobRunner(queue, workers=workers)
    counts = runner.run(
        fn, dict(zip(job_ids, payloads)), label=label
    )
    unfinished = counts[PENDING] + counts["running"]
    if counts[FAILED] or unfinished:
        raise JobError(
            f"{label}: {counts[DONE]}/{len(job_ids)} cells done, "
            f"{counts[FAILED]} failed, {unfinished} not processed; "
            f"resume with the same queue directory ({queue.root}) to "
            "continue"
        )
    return [queue.result(job_id) for job_id in job_ids]
