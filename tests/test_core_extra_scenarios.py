"""Tests for the extension scenarios (Salsa, Trivium, Gift16)."""

import numpy as np
import pytest

from repro.core.distinguisher import MLDistinguisher
from repro.core.extra_scenarios import (
    Gift16Scenario,
    SalsaScenario,
    TriviumScenario,
)
from repro.errors import DistinguisherError
from repro.nn.architectures import build_mlp


class TestSalsaScenario:
    def test_dataset_shapes(self, rng):
        scenario = SalsaScenario(rounds=1)
        x, y = scenario.generate_dataset(20, rng=rng)
        assert x.shape == (40, 512)
        assert scenario.feature_bits == 512

    def test_one_double_round_distinguishable(self):
        scenario = SalsaScenario(rounds=1)
        d = MLDistinguisher(
            scenario, model=build_mlp([64, 64], "relu"), epochs=3, rng=4
        )
        report = d.train(num_samples=3000)
        assert report.validation_accuracy > 0.9

    def test_custom_differences(self, rng):
        diffs = np.zeros((3, 16), dtype=np.uint32)
        diffs[0, 0] = 1
        diffs[1, 5] = 2
        diffs[2, 10] = 4
        scenario = SalsaScenario(rounds=1, differences=diffs)
        assert scenario.num_classes == 3


class TestTriviumScenario:
    def test_dataset_shapes(self, rng):
        scenario = TriviumScenario(warmup=64, output_bits=32)
        x, y = scenario.generate_dataset(15, rng=rng)
        assert x.shape == (30, 32)

    def test_low_warmup_distinguishable(self):
        scenario = TriviumScenario(warmup=240)
        d = MLDistinguisher(
            scenario, model=build_mlp([64, 64], "relu"), epochs=3, rng=3
        )
        report = d.train(num_samples=3000)
        assert report.validation_accuracy > 0.9

    def test_signal_decays_with_warmup(self, rng):
        """Mean feature distance between classes shrinks as warm-up grows."""

        def class_gap(warmup):
            scenario = TriviumScenario(warmup=warmup)
            x, y = scenario.generate_dataset(150, rng=np.random.default_rng(9))
            return np.abs(
                x[y == 0].mean(axis=0) - x[y == 1].mean(axis=0)
            ).max()

        assert class_gap(120) > class_gap(720)

    def test_invalid_construction(self):
        with pytest.raises(DistinguisherError):
            TriviumScenario(diff_bits=(0, 80))
        with pytest.raises(DistinguisherError):
            TriviumScenario(output_bits=12)

    def test_requires_keys(self, rng):
        scenario = TriviumScenario(warmup=16)
        with pytest.raises(DistinguisherError):
            scenario.pipeline(np.zeros((2, 10), dtype=np.uint8), None)


class TestGift16Scenario:
    def test_dataset_shapes(self, rng):
        scenario = Gift16Scenario(rounds=3)
        x, y = scenario.generate_dataset(25, rng=rng)
        assert x.shape == (50, 16)

    def test_low_rounds_distinguishable(self):
        scenario = Gift16Scenario(rounds=2)
        d = MLDistinguisher(
            scenario, model=build_mlp([32, 64], "relu"), epochs=5, rng=6
        )
        report = d.train(num_samples=4000)
        assert report.validation_accuracy > 0.6

    def test_accuracy_below_exact_bayes_ceiling(self):
        """The ML model cannot beat the exact all-in-one classifier."""
        from repro.diffcrypt.allinone import gift16_allinone

        deltas = (0x0001, 0x0010)
        rounds = 3
        ceiling = gift16_allinone(list(deltas), rounds).bayes_accuracy()
        scenario = Gift16Scenario(rounds=rounds, deltas=deltas)
        d = MLDistinguisher(
            scenario, model=build_mlp([32, 64], "relu"), epochs=5, rng=7
        )
        report = d.train(num_samples=6000)
        assert report.validation_accuracy <= ceiling + 0.05

    def test_invalid_construction(self):
        with pytest.raises(DistinguisherError):
            Gift16Scenario(rounds=0)
        with pytest.raises(DistinguisherError):
            Gift16Scenario(deltas=(0, 1))
