"""Tests for DifferentialTrail and the Table 1 reference weights."""

import math

import pytest

from repro.diffcrypt.trail import GIMLI_OPTIMAL_WEIGHTS, DifferentialTrail
from repro.errors import CipherError


class TestReferenceWeights:
    def test_paper_table1_values(self):
        assert GIMLI_OPTIMAL_WEIGHTS == {
            1: 0, 2: 0, 3: 2, 4: 6, 5: 12, 6: 22, 7: 36, 8: 52
        }

    def test_monotone(self):
        weights = [GIMLI_OPTIMAL_WEIGHTS[r] for r in sorted(GIMLI_OPTIMAL_WEIGHTS)]
        assert weights == sorted(weights)


class TestTrailConstruction:
    def test_basic(self):
        trail = DifferentialTrail(((1, 0), (0, 1)), (0.5,))
        assert trail.rounds == 1
        assert trail.input_difference == (1, 0)
        assert trail.output_difference == (0, 1)

    def test_probability_product(self):
        trail = DifferentialTrail(((1,), (2,), (3,)), (0.5, 0.25))
        assert trail.probability == 0.125
        assert trail.weight == 3.0

    def test_zero_probability_weight_inf(self):
        trail = DifferentialTrail(((1,), (2,)), (0.0,))
        assert trail.weight == math.inf
        assert trail.data_complexity() == math.inf

    def test_data_complexity(self):
        trail = DifferentialTrail(((1,), (2,)), (2.0**-52,))
        assert trail.data_complexity() == 2.0**52

    def test_extend(self):
        trail = DifferentialTrail(((1,),))
        extended = trail.extend((2,), 0.5)
        assert extended.rounds == 1
        assert extended.probability == 0.5
        # Original unchanged (frozen dataclass).
        assert trail.rounds == 0

    def test_probability_count_mismatch(self):
        with pytest.raises(CipherError):
            DifferentialTrail(((1,), (2,)), (0.5, 0.5))

    def test_probability_out_of_range(self):
        with pytest.raises(CipherError):
            DifferentialTrail(((1,), (2,)), (1.5,))

    def test_empty_rejected(self):
        with pytest.raises(CipherError):
            DifferentialTrail(())

    def test_single_difference_is_zero_rounds(self):
        assert DifferentialTrail(((1, 2),)).rounds == 0
        assert DifferentialTrail(((1, 2),)).probability == 1.0
