"""Run reports: plain-text tables plus HTML/markdown run summaries.

Two layers:

* table helpers (:func:`format_table`, :func:`paper_vs_measured`) used
  by the CLI to print result dicts — unchanged legacy surface;
* the run report (:func:`collect_run`, :func:`render_markdown`,
  :func:`render_html`, :func:`write_run_report`): a self-contained
  summary of one run directory assembled from whatever is there —
  ``<name>_manifest.json`` + ``<name>_result.json`` files and the
  ``queue/<name>/`` job records of resumable runs.  Every source is
  optional, so the report renders equally from a completed run and
  from a half-finished directory whose process was killed mid-grid
  (that is the directory you most want to inspect).

``python -m repro.experiments <name> --run-dir DIR`` (or ``--resume
DIR``) emits ``report.md`` and ``report.html`` automatically at the end
of the run; ``python -m repro.experiments report --run-dir DIR``
re-renders on demand.
"""

from __future__ import annotations

import html
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.jobs import atomic_write_text

# -- plain-text tables (legacy surface) ------------------------------------


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_render(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _render(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def paper_vs_measured(
    rows: Sequence[Dict],
    key: str,
    paper_field: str = "paper",
    measured_field: str = "measured",
) -> List[Dict]:
    """Annotate result rows with the measured-minus-paper delta."""
    annotated = []
    for row in rows:
        entry = dict(row)
        paper = row.get(paper_field)
        measured = row.get(measured_field)
        if isinstance(paper, (int, float)) and isinstance(measured, (int, float)):
            entry["delta"] = measured - paper
        annotated.append(entry)
    del key
    return annotated


# -- run-report collection --------------------------------------------------


def _read_json(path: Path):
    """Best-effort JSON read: a partial run may hold anything."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def _collect_queue(queue_root: Path) -> Optional[Dict]:
    """One experiment's queue state: metadata plus per-job records.

    Done jobs get their stored result attached (``record["result"]``) so
    a partial run's report can synthesize accuracy-so-far tables without
    waiting for ``<name>_result.json``.
    """
    meta = _read_json(queue_root / "queue.json")
    jobs = []
    jobs_dir = queue_root / "jobs"
    if jobs_dir.is_dir():
        jobs = [
            record
            for record in (
                _read_json(path) for path in sorted(jobs_dir.glob("*.json"))
            )
            if record is not None
        ]
    if meta is None and not jobs:
        return None
    jobs.sort(key=lambda r: (r.get("index", 0), r.get("job_id", "")))
    counts: Dict[str, int] = {}
    for record in jobs:
        status = record.get("status", "unknown")
        counts[status] = counts.get(status, 0) + 1
        if record.get("status") == "done" and record.get("job_id"):
            stored = _read_json(
                queue_root / "results" / f"{record['job_id']}.json"
            )
            if isinstance(stored, dict) and "result" in stored:
                record["result"] = stored["result"]
    return {"meta": meta, "jobs": jobs, "counts": counts}


def _collect_obs(run_dir: Path) -> Optional[Dict]:
    """Cross-process telemetry for the run, when any of it exists.

    Returns ``{"events": {counts, tail}, "timeline": [...],
    "processes": [...]}`` built from ``events.jsonl`` and the merged
    Chrome trace.  The timeline keeps one entry per ``*.cell`` span —
    whichever process it ran in — ordered by start time.
    """
    from repro.obs import agg as obs_agg
    from repro.obs import events as obs_events

    events = obs_events.read_events(run_dir)
    trace_doc = _read_json(Path(run_dir) / obs_agg.TRACE_MERGED)
    if not events and trace_doc is None:
        return None
    counts: Dict[str, int] = {}
    for record in events:
        name = str(record.get("event", "?"))
        counts[name] = counts.get(name, 0) + 1
    timeline: List[Dict] = []
    processes: List[str] = []
    if isinstance(trace_doc, dict):
        names: Dict[int, str] = {}
        for entry in trace_doc.get("traceEvents") or []:
            if entry.get("ph") == "M" and entry.get("name") == "process_name":
                names[entry.get("pid")] = (entry.get("args") or {}).get(
                    "name", str(entry.get("pid"))
                )
        processes = sorted(set(names.values()))
        for entry in trace_doc.get("traceEvents") or []:
            if entry.get("ph") != "X":
                continue
            if not str(entry.get("name", "")).endswith(".cell"):
                continue
            timeline.append(
                {
                    "span": entry.get("name"),
                    "process": names.get(entry.get("pid"),
                                         str(entry.get("pid"))),
                    "start_s": entry.get("ts", 0) / 1e6,
                    "wall_clock_s": entry.get("dur", 0) / 1e6,
                    "attrs": {
                        k: v for k, v in (entry.get("args") or {}).items()
                        if k != "error"
                    },
                }
            )
        timeline.sort(key=lambda c: c["start_s"])
        if timeline:
            origin = timeline[0]["start_s"]
            for cell in timeline:
                cell["start_s"] = round(cell["start_s"] - origin, 6)
    return {
        "events": {"counts": counts, "tail": events[-12:]},
        "timeline": timeline,
        "processes": processes,
    }


def collect_run(run_dir) -> Dict:
    """Gather everything a run directory knows about its experiments.

    Returns ``{"run_dir", "experiments": {name: {"manifest", "result",
    "queue"}}}`` where each of the three sources is ``None`` when the
    directory doesn't (yet) hold it — a killed run typically has queue
    state but no result, a plain ``--run-dir`` run the reverse.
    """
    run_dir = Path(run_dir)
    experiments: Dict[str, Dict] = {}

    def entry(name: str) -> Dict:
        return experiments.setdefault(
            name, {"manifest": None, "result": None, "queue": None}
        )

    for path in sorted(run_dir.glob("*_manifest.json")):
        name = path.name[: -len("_manifest.json")]
        entry(name)["manifest"] = _read_json(path)
    for path in sorted(run_dir.glob("*_result.json")):
        name = path.name[: -len("_result.json")]
        entry(name)["result"] = _read_json(path)
    queue_base = run_dir / "queue"
    if queue_base.is_dir():
        for queue_root in sorted(p for p in queue_base.iterdir() if p.is_dir()):
            state = _collect_queue(queue_root)
            if state is not None:
                entry(queue_root.name)["queue"] = state
    return {
        "run_dir": str(run_dir),
        "experiments": experiments,
        "obs": _collect_obs(run_dir),
    }


# -- rendering --------------------------------------------------------------


def _fmt(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _md_table(headers: Sequence[str], rows: Sequence[Sequence]) -> List[str]:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return lines


def _pivot_table2(rows: List[Dict]):
    """Table 2 in the paper's layout: rounds down, targets across."""
    targets = sorted({row.get("target") for row in rows if row.get("target")})
    rounds = sorted(
        {row.get("rounds") for row in rows if row.get("rounds") is not None}
    )
    if not targets or not rounds:
        return None
    by_cell = {(row.get("target"), row.get("rounds")): row for row in rows}
    headers = ["Rounds"] + [
        f"Gimli-{str(t).capitalize()} (paper)" for t in targets
    ]
    body = []
    for r in rounds:
        line = [r]
        for t in targets:
            row = by_cell.get((t, r))
            if row is None:
                line.append(None)
            else:
                line.append(
                    f"{_fmt(row.get('measured'))} ({_fmt(row.get('paper'))})"
                )
        body.append(line)
    return headers, body


def _experiment_tables(name: str, result: Dict):
    """Result rows as (headers, rows) pairs, paper layout where defined."""
    rows = result.get("rows") or []
    tables = []
    if name == "table2" and rows:
        pivot = _pivot_table2(rows)
        if pivot is not None:
            tables.append(("Accuracy (paper layout)", pivot[0], pivot[1]))
    if name == "table3" and rows:
        headers = [
            "Network", "Params", "Params (paper)", "Accuracy",
            "Accuracy (paper)", "Train s",
        ]
        body = [
            [
                row.get("network"),
                row.get("parameters"),
                row.get("paper_parameters"),
                row.get("measured"),
                row.get("paper"),
                row.get("training_time_s"),
            ]
            for row in rows
        ]
        tables.append(("Architecture search (paper layout)", headers, body))
    if rows and all(isinstance(row, dict) for row in rows):
        headers = list(rows[0].keys())
        body = [[row.get(h) for h in headers] for row in rows]
        tables.append(("All rows", headers, body))
    return tables


def _cell_status_rows(state: Dict) -> List[List]:
    rows = []
    for record in state["jobs"]:
        spec = record.get("spec") or {}
        label = ", ".join(
            f"{key}={spec[key]}"
            for key in sorted(spec)
            if key not in ("experiment", "seed") and spec[key] is not None
        )
        rows.append(
            [
                record.get("index"),
                label or record.get("job_id"),
                record.get("status"),
                record.get("attempts"),
                record.get("duration_s"),
                record.get("error_type"),
            ]
        )
    return rows


def _timing_rows(manifest: Dict) -> List[List]:
    rows = []
    for cell in manifest.get("cells") or []:
        attrs = cell.get("attrs") or {}
        label = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        rows.append([cell.get("span"), label, cell.get("wall_clock_s")])
    return rows


def _partial_rows(state: Dict) -> List[Dict]:
    """Accuracy-so-far rows recovered from a partial run's done cells."""
    return [
        record["result"]
        for record in state["jobs"]
        if record.get("status") == "done"
        and isinstance(record.get("result"), dict)
    ]


def _timeline_rows(obs: Dict) -> List[List]:
    rows = []
    for cell in obs.get("timeline") or []:
        attrs = cell.get("attrs") or {}
        label = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        rows.append(
            [
                cell.get("span"),
                label,
                cell.get("process"),
                cell.get("start_s"),
                cell.get("wall_clock_s"),
            ]
        )
    return rows


def _event_count_rows(obs: Dict) -> List[List]:
    counts = (obs.get("events") or {}).get("counts") or {}
    return [[name, counts[name]] for name in sorted(counts)]


def render_markdown(run: Dict) -> str:
    """The run report as GitHub-flavoured markdown."""
    lines = [f"# Run report — `{run['run_dir']}`", ""]
    lines.append(
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S')} from "
        f"{len(run['experiments'])} experiment(s)."
    )
    if not run["experiments"]:
        lines += ["", "_The directory holds no results, manifests or "
                  "queue state yet._"]
        return "\n".join(lines) + "\n"
    for name, sources in sorted(run["experiments"].items()):
        manifest = sources["manifest"]
        result = sources["result"]
        state = sources["queue"]
        lines += ["", f"## {name}", ""]
        status_bits = []
        if state is not None:
            total = len(state["jobs"])
            done = state["counts"].get("done", 0)
            status_bits.append(f"queue: {done}/{total} cells done")
            for status in ("failed", "running", "pending"):
                count = state["counts"].get(status, 0)
                if count:
                    status_bits.append(f"{count} {status}")
        if manifest is not None:
            status_bits.append(
                f"last invocation {manifest.get('duration_s', 0.0):.1f}s"
            )
            workers = manifest.get("workers") or {}
            if workers:
                status_bits.append(
                    f"workers {workers.get('requested')} requested / "
                    f"{workers.get('resolved')} resolved"
                )
        if result is None:
            status_bits.append("no result yet (partial run)")
        lines.append("; ".join(status_bits) + "." if status_bits else "")
        if state is not None and state["jobs"]:
            lines += ["", "### Cells", ""]
            lines += _md_table(
                ["#", "Cell", "Status", "Attempts", "Seconds", "Error"],
                _cell_status_rows(state),
            )
        if manifest is not None and manifest.get("cells"):
            lines += ["", "### Cell timings (this invocation)", ""]
            lines += _md_table(
                ["Span", "Cell", "Wall-clock s"], _timing_rows(manifest)
            )
        if result is not None:
            for title, headers, body in _experiment_tables(name, result):
                lines += ["", f"### {title}", ""]
                lines += _md_table(headers, body)
        elif state is not None:
            partial = _partial_rows(state)
            for title, headers, body in _experiment_tables(
                name, {"rows": partial}
            ):
                lines += ["", f"### {title} — rows so far", ""]
                lines += _md_table(headers, body)
    obs = run.get("obs")
    if obs:
        lines += ["", "## Observability", ""]
        processes = obs.get("processes") or []
        if processes:
            lines.append(
                "Merged trace covers processes: "
                + ", ".join(f"`{p}`" for p in processes) + "."
            )
        count_rows = _event_count_rows(obs)
        if count_rows:
            lines += ["", "### Run events", ""]
            lines += _md_table(["Event", "Count"], count_rows)
        timeline = _timeline_rows(obs)
        if timeline:
            lines += ["", "### Cell timeline (merged trace)", ""]
            lines += _md_table(
                ["Span", "Cell", "Process", "Start s", "Wall-clock s"],
                timeline,
            )
    return "\n".join(lines) + "\n"


_HTML_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a1a1a; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 2rem; border-bottom: 1px solid #bbb; }
table { border-collapse: collapse; margin: .5rem 0 1rem; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem;
         text-align: left; font-size: .9rem; }
th { background: #f0f0f0; }
td.status-done { color: #14691b; }
td.status-failed { color: #9c1111; font-weight: bold; }
td.status-pending, td.status-running { color: #8a6d00; }
code { background: #f5f5f5; padding: 0 .2rem; }
"""


def _html_table(headers: Sequence[str], rows: Sequence[Sequence],
                status_col: Optional[int] = None) -> List[str]:
    lines = ["<table>", "<tr>"]
    lines += [f"<th>{html.escape(str(h))}</th>" for h in headers]
    lines.append("</tr>")
    for row in rows:
        lines.append("<tr>")
        for col, value in enumerate(row):
            css = ""
            if status_col is not None and col == status_col:
                css = f' class="status-{html.escape(_fmt(value))}"'
            lines.append(f"<td{css}>{html.escape(_fmt(value))}</td>")
        lines.append("</tr>")
    lines.append("</table>")
    return lines


def render_html(run: Dict) -> str:
    """The run report as a standalone HTML page (no external assets)."""
    parts = [
        "<!doctype html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>Run report — {html.escape(run['run_dir'])}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>Run report — <code>{html.escape(run['run_dir'])}</code></h1>",
        f"<p>Generated {time.strftime('%Y-%m-%d %H:%M:%S')} from "
        f"{len(run['experiments'])} experiment(s).</p>",
    ]
    if not run["experiments"]:
        parts.append(
            "<p><em>The directory holds no results, manifests or queue "
            "state yet.</em></p>"
        )
    for name, sources in sorted(run["experiments"].items()):
        manifest, result, state = (
            sources["manifest"], sources["result"], sources["queue"]
        )
        parts.append(f"<h2>{html.escape(name)}</h2>")
        summary = []
        if state is not None:
            total = len(state["jobs"])
            done = state["counts"].get("done", 0)
            summary.append(f"queue: {done}/{total} cells done")
            for status in ("failed", "running", "pending"):
                count = state["counts"].get(status, 0)
                if count:
                    summary.append(f"{count} {status}")
        if manifest is not None:
            summary.append(
                f"last invocation {manifest.get('duration_s', 0.0):.1f}s"
            )
        if result is None:
            summary.append("no result yet (partial run)")
        if summary:
            parts.append(f"<p>{html.escape('; '.join(summary))}.</p>")
        if state is not None and state["jobs"]:
            parts.append("<h3>Cells</h3>")
            parts += _html_table(
                ["#", "Cell", "Status", "Attempts", "Seconds", "Error"],
                _cell_status_rows(state),
                status_col=2,
            )
        if manifest is not None and manifest.get("cells"):
            parts.append("<h3>Cell timings (this invocation)</h3>")
            parts += _html_table(
                ["Span", "Cell", "Wall-clock s"], _timing_rows(manifest)
            )
        if result is not None:
            for title, headers, body in _experiment_tables(name, result):
                parts.append(f"<h3>{html.escape(title)}</h3>")
                parts += _html_table(headers, body)
        elif state is not None:
            partial = _partial_rows(state)
            for title, headers, body in _experiment_tables(
                name, {"rows": partial}
            ):
                parts.append(
                    f"<h3>{html.escape(title)} — rows so far</h3>"
                )
                parts += _html_table(headers, body)
    obs = run.get("obs")
    if obs:
        parts.append("<h2>Observability</h2>")
        processes = obs.get("processes") or []
        if processes:
            parts.append(
                "<p>Merged trace covers processes: "
                + ", ".join(
                    f"<code>{html.escape(p)}</code>" for p in processes
                )
                + ".</p>"
            )
        count_rows = _event_count_rows(obs)
        if count_rows:
            parts.append("<h3>Run events</h3>")
            parts += _html_table(["Event", "Count"], count_rows)
        timeline = _timeline_rows(obs)
        if timeline:
            parts.append("<h3>Cell timeline (merged trace)</h3>")
            parts += _html_table(
                ["Span", "Cell", "Process", "Start s", "Wall-clock s"],
                timeline,
            )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_run_report(run_dir) -> List[Path]:
    """Render and atomically write ``report.md`` + ``report.html``.

    Works on any run directory, complete or partial; returns the paths
    written.
    """
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    run = collect_run(run_dir)
    md_path = run_dir / "report.md"
    html_path = run_dir / "report.html"
    atomic_write_text(md_path, render_markdown(run))
    atomic_write_text(html_path, render_html(run))
    return [md_path, html_path]
