"""Trivium (De Cannière & Preneel, eSTREAM) — a cited non-Markov example.

The paper (§2.1) names Trivium among the sub-key-free primitives where
trail probabilities cannot be multiplied round by round.  We provide the
stream cipher as an extension target for the distinguisher framework:
IV differences play the role of input differences, keystream differences
the role of output differences, and the warm-up clock count is the
round-reduction knob.

State: 288 bits in three shift registers A (93), B (84), C (111).  The
implementation keeps the batched state as a ``(n, 288)`` uint8 bit
matrix; indices below are 0-based (spec bit ``s_i`` is index ``i - 1``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import CipherError, ShapeError

KEY_BITS = 80
IV_BITS = 80
STATE_BITS = 288
FULL_WARMUP = 4 * STATE_BITS  # 1152 clocks


def load_state(key_bits: Sequence[int], iv_bits: Sequence[int]) -> List[int]:
    """Build the 288-bit initial state from key and IV bit sequences."""
    if len(key_bits) != KEY_BITS:
        raise CipherError(f"Trivium key must be {KEY_BITS} bits, got {len(key_bits)}")
    if len(iv_bits) != IV_BITS:
        raise CipherError(f"Trivium IV must be {IV_BITS} bits, got {len(iv_bits)}")
    state = [0] * STATE_BITS
    for i, b in enumerate(key_bits):
        state[i] = int(b) & 1
    for i, b in enumerate(iv_bits):
        state[93 + i] = int(b) & 1
    state[285] = state[286] = state[287] = 1
    return state


def clock(state: List[int]) -> Tuple[List[int], int]:
    """One Trivium clock: returns ``(new_state, keystream_bit)`` (scalar)."""
    s = state
    t1 = s[65] ^ s[92]
    t2 = s[161] ^ s[176]
    t3 = s[242] ^ s[287]
    z = t1 ^ t2 ^ t3
    t1 = t1 ^ (s[90] & s[91]) ^ s[170]
    t2 = t2 ^ (s[174] & s[175]) ^ s[263]
    t3 = t3 ^ (s[285] & s[286]) ^ s[68]
    new = [t3] + s[0:92] + [t1] + s[93:176] + [t2] + s[177:287]
    return new, z


def keystream(
    key_bits: Sequence[int],
    iv_bits: Sequence[int],
    nbits: int,
    warmup: int = FULL_WARMUP,
) -> List[int]:
    """Scalar reference keystream generation after ``warmup`` clocks."""
    state = load_state(key_bits, iv_bits)
    for _ in range(warmup):
        state, _z = clock(state)
    out = []
    for _ in range(nbits):
        state, z = clock(state)
        out.append(z)
    return out


class Trivium:
    """Batched Trivium keystream generator with a reducible warm-up.

    ``warmup`` is the number of initialisation clocks (the full cipher
    uses 1152); reduced warm-ups are the natural "round-reduced"
    variants for differential analysis on the IV.
    """

    def __init__(self, warmup: int = FULL_WARMUP):
        if warmup < 0:
            raise CipherError(f"warmup must be non-negative, got {warmup}")
        self.warmup = warmup

    def keystream_batch(
        self, keys: np.ndarray, ivs: np.ndarray, nbits: int
    ) -> np.ndarray:
        """Generate ``nbits`` keystream bits per sample.

        ``keys`` is ``(n, 80)`` and ``ivs`` is ``(n, 80)``, both uint8
        bit matrices; the result is ``(n, nbits)`` uint8.
        """
        key_arr = np.asarray(keys, dtype=np.uint8)
        iv_arr = np.asarray(ivs, dtype=np.uint8)
        if key_arr.ndim != 2 or key_arr.shape[1] != KEY_BITS:
            raise ShapeError(f"expected (n, {KEY_BITS}) key bits, got {key_arr.shape}")
        if iv_arr.shape != (key_arr.shape[0], IV_BITS):
            raise ShapeError(
                f"expected ({key_arr.shape[0]}, {IV_BITS}) IV bits, "
                f"got {iv_arr.shape}"
            )
        n = key_arr.shape[0]
        state = np.zeros((n, STATE_BITS), dtype=np.uint8)
        state[:, 0:KEY_BITS] = key_arr & 1
        state[:, 93:93 + IV_BITS] = iv_arr & 1
        state[:, 285:288] = 1

        out = np.empty((n, nbits), dtype=np.uint8)
        for step in range(self.warmup + nbits):
            t1 = state[:, 65] ^ state[:, 92]
            t2 = state[:, 161] ^ state[:, 176]
            t3 = state[:, 242] ^ state[:, 287]
            z = t1 ^ t2 ^ t3
            t1 = t1 ^ (state[:, 90] & state[:, 91]) ^ state[:, 170]
            t2 = t2 ^ (state[:, 174] & state[:, 175]) ^ state[:, 263]
            t3 = t3 ^ (state[:, 285] & state[:, 286]) ^ state[:, 68]
            # Shift each register right by one and insert the feedback bit.
            # (.copy() guards against numpy's overlapping-slice assignment.)
            state[:, 1:93] = state[:, 0:92].copy()
            state[:, 0] = t3
            state[:, 94:177] = state[:, 93:176].copy()
            state[:, 93] = t1
            state[:, 178:288] = state[:, 177:287].copy()
            state[:, 177] = t2
            if step >= self.warmup:
                out[:, step - self.warmup] = z
        return out
