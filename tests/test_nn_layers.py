"""Tests for core layers: shapes, semantics, exact gradients."""

import numpy as np
import pytest

from repro.errors import LayerError
from repro.nn.layers import (
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
)
from nn_helpers import layer_gradient_check


class TestDense:
    def test_forward_linear(self, rng):
        layer = Dense(3)
        layer.build((2,), rng)
        layer.params[0][...] = np.array([[1.0, 0.0, 2.0], [0.0, 1.0, 3.0]])
        layer.params[1][...] = np.array([0.5, -0.5, 0.0])
        out = layer.forward(np.array([[1.0, 2.0]]))
        assert np.allclose(out, [[1.5, 1.5, 8.0]])

    def test_no_bias(self, rng):
        layer = Dense(4, use_bias=False)
        layer.build((3,), rng)
        assert len(layer.params) == 1
        assert layer.count_params() == 12

    def test_param_count(self, rng):
        layer = Dense(10)
        layer.build((7,), rng)
        assert layer.count_params() == 80

    def test_gradients(self, rng):
        x = rng.normal(size=(5, 4))
        assert layer_gradient_check(Dense(6), x, rng) < 1e-5

    def test_gradients_no_bias(self, rng):
        x = rng.normal(size=(5, 4))
        assert layer_gradient_check(Dense(6, use_bias=False), x, rng) < 1e-5

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(2)
        layer.build((2,), rng)
        with pytest.raises(LayerError):
            layer.backward(np.zeros((1, 2)))

    def test_inference_forward_does_not_cache(self, rng):
        layer = Dense(2)
        layer.build((2,), rng)
        layer.forward(np.zeros((1, 2)), training=False)
        with pytest.raises(LayerError):
            layer.backward(np.zeros((1, 2)))

    def test_requires_flat_input(self, rng):
        with pytest.raises(LayerError):
            Dense(2).build((3, 4), rng)

    def test_invalid_units(self):
        with pytest.raises(LayerError):
            Dense(0)

    def test_output_shape(self):
        assert Dense(9).output_shape((4,)) == (9,)


class TestActivations:
    def test_relu_values(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        assert list(out[0]) == [0.0, 0.0, 2.0]

    def test_leaky_relu_values(self):
        layer = LeakyReLU(alpha=0.1)
        out = layer.forward(np.array([[-2.0, 3.0]]))
        assert np.allclose(out, [[-0.2, 3.0]])

    def test_leaky_relu_invalid_alpha(self):
        with pytest.raises(LayerError):
            LeakyReLU(alpha=-0.5)

    def test_sigmoid_range(self, rng):
        out = Sigmoid().forward(rng.normal(size=(4, 3)) * 10)
        assert ((out > 0) & (out < 1)).all()

    def test_sigmoid_extreme_inputs_stable(self):
        out = Sigmoid().forward(np.array([[-1e9, 1e9]]))
        assert np.isfinite(out).all()

    def test_tanh_matches_numpy(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(Tanh().forward(x), np.tanh(x))

    @pytest.mark.parametrize(
        "layer_factory",
        [ReLU, lambda: LeakyReLU(0.2), Sigmoid, Tanh],
    )
    def test_gradients(self, layer_factory, rng):
        # Avoid ReLU kinks at zero by shifting away from the origin.
        x = rng.normal(size=(6, 5)) + 0.1
        assert layer_gradient_check(layer_factory(), x, rng) < 1e-5


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = Softmax().forward(rng.normal(size=(7, 4)))
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        a = Softmax().forward(x)
        b = Softmax().forward(x + 100.0)
        assert np.allclose(a, b)

    def test_large_logits_stable(self):
        out = Softmax().forward(np.array([[1e9, 0.0]]))
        assert np.isfinite(out).all()

    def test_gradients(self, rng):
        x = rng.normal(size=(4, 6))
        assert layer_gradient_check(Softmax(), x, rng) < 1e-5


class TestDropout:
    def test_inference_is_identity(self, rng):
        x = rng.normal(size=(4, 8))
        assert (Dropout(0.5).forward(x, training=False) == x).all()

    def test_training_masks_and_scales(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((1, 10000))
        out = layer.forward(x, training=True)
        # Survivors are scaled by 1/keep = 2; mean stays ~1.
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.1

    def test_rate_zero_identity(self, rng):
        x = rng.normal(size=(2, 3))
        assert (Dropout(0.0).forward(x, training=True) == x).all()

    def test_invalid_rate(self):
        with pytest.raises(LayerError):
            Dropout(1.0)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((1, 100))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 100)))
        assert (grad == out).all()


class TestShapeLayers:
    def test_flatten(self, rng):
        x = rng.normal(size=(3, 4, 5))
        layer = Flatten()
        out = layer.forward(x)
        assert out.shape == (3, 20)
        back = layer.backward(out)
        assert back.shape == x.shape

    def test_flatten_output_shape(self):
        assert Flatten().output_shape((4, 5)) == (20,)

    def test_reshape(self, rng):
        x = rng.normal(size=(2, 8))
        layer = Reshape((4, 2))
        out = layer.forward(x)
        assert out.shape == (2, 4, 2)
        assert (layer.backward(out) == x).all()

    def test_reshape_validates_size(self):
        with pytest.raises(LayerError):
            Reshape((3, 3)).output_shape((8,))

    def test_backward_before_forward(self):
        with pytest.raises(LayerError):
            Flatten().backward(np.zeros((1, 2)))
