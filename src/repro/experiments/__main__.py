"""Command-line entry point: ``python -m repro.experiments <name>``.

Examples::

    python -m repro.experiments figure1
    REPRO_SCALE=0.2 python -m repro.experiments table2
    python -m repro.experiments table3 --seed 7
    python -m repro.experiments all
    python -m repro.experiments table2 --run-dir runs/  # result + manifest

``--run-dir`` saves each experiment's result JSON next to a run
manifest (per-cell spans, REPRO_* knobs, timings); see
:mod:`repro.experiments.manifest`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.manifest import run_with_manifest
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import format_table


def _print_result(result: dict) -> None:
    rows = result.get("rows", [])
    if rows:
        headers = list(rows[0].keys())
        table_rows = [[row.get(h) for h in headers] for row in rows]
        print(format_table(headers, table_rows, title=result.get("experiment")))
    meta = {k: v for k, v in result.items() if k != "rows"}
    print(json.dumps(meta, indent=2, default=str))


def main(argv=None) -> int:
    """Parse arguments, run the experiment(s), print results."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment to run ('all' runs every registered experiment)",
    )
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")
    parser.add_argument(
        "--run-dir",
        default=None,
        help="save <name>_result.json and a <name>_manifest.json "
        "(per-cell spans, REPRO_* knobs) into this directory",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        kwargs = {}
        if args.seed is not None and name not in ("figure1", "complexity"):
            kwargs["rng"] = args.seed
        if args.run_dir is not None:
            result, manifest_path = run_with_manifest(
                name, args.run_dir, **kwargs
            )
            print(f"[{name}] wrote {manifest_path}")
        else:
            result = run_experiment(name, **kwargs)
        _print_result(result)
        print(f"[{name} finished in {time.perf_counter() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
