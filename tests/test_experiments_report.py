"""Tests for the HTML/markdown run report (complete and partial runs)."""

import json

import pytest

from repro.errors import JobError
from repro.experiments.report import (
    collect_run,
    render_html,
    render_markdown,
    write_run_report,
)
from repro.experiments.table2 import run_table2

TINY = dict(
    rounds=(3,),
    targets=("hash", "cipher"),
    offline_samples=1000,
    online_samples=300,
    epochs=1,
    rng=13,
)


def _complete_run(run_dir):
    result = run_table2(queue_dir=run_dir / "queue" / "table2", **TINY)
    (run_dir / "table2_result.json").write_text(json.dumps(result))
    return result


class TestCompleteRun:
    def test_collect_sees_result_and_queue(self, tmp_path):
        _complete_run(tmp_path)
        collected = collect_run(tmp_path)
        exp = collected["experiments"]["table2"]
        assert exp["result"] is not None
        assert exp["queue"]["counts"]["done"] == 2
        assert len(exp["queue"]["jobs"]) == 2

    def test_markdown_has_status_and_accuracy(self, tmp_path):
        _complete_run(tmp_path)
        text = render_markdown(collect_run(tmp_path))
        assert "2/2 cells done" in text
        assert "table2" in text
        assert "hash" in text and "cipher" in text

    def test_html_renders_standalone_page(self, tmp_path):
        _complete_run(tmp_path)
        page = render_html(collect_run(tmp_path))
        assert page.startswith("<!DOCTYPE html>" ) or "<html" in page
        assert "table2" in page

    def test_write_run_report_emits_both_files(self, tmp_path):
        _complete_run(tmp_path)
        paths = write_run_report(tmp_path)
        names = {p.name for p in paths}
        assert names == {"report.md", "report.html"}
        for path in paths:
            assert path.read_text()


class TestPartialRun:
    def test_renders_from_killed_run_queue_state(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_JOBS_MAX_CELLS", "1")
        with pytest.raises(JobError):
            run_table2(queue_dir=tmp_path / "queue" / "table2", **TINY)
        text = render_markdown(collect_run(tmp_path))
        assert "1/2 cells done" in text
        assert "partial run" in text
        # both files still render without any *_result.json present
        paths = write_run_report(tmp_path)
        assert all(p.exists() for p in paths)

    def test_empty_run_dir_renders(self, tmp_path):
        text = render_markdown(collect_run(tmp_path))
        assert "report" in text.lower() or text  # renders, never raises
