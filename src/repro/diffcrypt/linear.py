"""Linear cryptanalysis substrate (the other "existing method").

The paper's introduction positions the ML distinguisher against the
classical toolbox — branch numbers, MILP, trail search.  Differential
trails have a linear twin: correlations of linear approximations, which
propagate through an SPN by the piling-up lemma exactly as differential
probabilities do under the Markov assumption.  This module completes the
classical toolkit with:

* Walsh–Hadamard correlation tables for S-boxes;
* exact best *linear* trail correlations for Gift16 by max-plus DP over
  all ``2^16`` masks (mirror image of
  :mod:`repro.diffcrypt.optimal_trails`);
* the standard ``1 / c^2`` data-complexity estimate for a linear
  distinguisher, comparable against the differential and ML numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ciphers.gift import GIFT16_PERM, GIFT_SBOX
from repro.diffcrypt.sbox import SBox
from repro.errors import SearchError
from repro.utils.bitops import parity


def correlation_table(sbox: Optional[SBox] = None) -> np.ndarray:
    """Signed correlation table ``c[a, b] = 2 * P(<a,x> = <b,S(x)>) - 1``."""
    if sbox is None:
        sbox = SBox(GIFT_SBOX)
    size = sbox.size
    table = np.zeros((size, size), dtype=np.float64)
    for a in range(size):
        for b in range(size):
            matches = sum(
                1 for x in range(size)
                if parity(x & a) == parity(sbox.table[x] & b)
            )
            table[a, b] = 2.0 * matches / size - 1.0
    return table


def linear_weight_table(sbox: Optional[SBox] = None) -> np.ndarray:
    """Per-transition ``-log2 |correlation|`` (``inf`` for zero correlation)."""
    corr = np.abs(correlation_table(sbox))
    with np.errstate(divide="ignore"):
        return -np.log2(corr)


def _mask_permutation_map() -> np.ndarray:
    """How the wiring transports linear masks.

    For a bit permutation ``P``, a mask ``b`` on the output corresponds
    to mask ``P^{-1}-applied`` on the input; equivalently masks travel
    by the same bit permutation as values for an orthogonal (bit
    permutation) linear layer.
    """
    values = np.arange(1 << 16, dtype=np.uint32)
    moved = np.zeros(1 << 16, dtype=np.int64)
    for i, target in enumerate(GIFT16_PERM):
        moved |= ((values >> np.uint32(i)) & np.uint32(1)).astype(np.int64) << int(
            target
        )
    return moved


_MASK_PERM = _mask_permutation_map()


def _minplus_slayer(weights: np.ndarray, table: np.ndarray) -> np.ndarray:
    tensor = weights.reshape(16, 16, 16, 16)
    for axis in range(4):
        moved = np.moveaxis(tensor, axis, -1)
        combined = moved[..., :, np.newaxis] + table[np.newaxis, np.newaxis,
                                                     np.newaxis, :, :]
        tensor = np.moveaxis(combined.min(axis=-2), -1, axis)
    return tensor.reshape(-1)


def gift16_linear_weight_vector(
    rounds: int, input_mask: Optional[int] = None
) -> np.ndarray:
    """Best ``-log2 |correlation|`` reaching each output mask (exact).

    Single-trail correlations under the piling-up lemma; key XORs only
    flip correlation signs, which the absolute value ignores.
    """
    if rounds < 1:
        raise SearchError(f"rounds must be positive, got {rounds}")
    table = linear_weight_table()
    weights = np.full(1 << 16, np.inf)
    if input_mask is None:
        weights[1:] = 0.0
    else:
        if not 0 < input_mask < 1 << 16:
            raise SearchError(
                f"input mask must be a non-zero 16-bit value, got {input_mask}"
            )
        weights[input_mask] = 0.0
    for _ in range(rounds):
        flat = _minplus_slayer(weights, table)
        out = np.full_like(flat, np.inf)
        np.minimum.at(out, _MASK_PERM, flat)
        weights = out
    return weights


@dataclass(frozen=True)
class LinearTrailSummary:
    """Best linear trail correlation for a round count."""

    rounds: int
    weight: float  # -log2 |correlation|

    @property
    def correlation(self) -> float:
        """``|c|`` of the best trail."""
        return 2.0**-self.weight

    @property
    def data_complexity(self) -> float:
        """``1 / c^2`` known plaintexts (Matsui's rule of thumb)."""
        return 2.0 ** (2.0 * self.weight)

    @property
    def data_complexity_log2(self) -> float:
        """``2w`` — the linear analogue of the differential ``2^w``."""
        return 2.0 * self.weight


def gift16_best_linear_trail(rounds: int) -> LinearTrailSummary:
    """Exact best ``rounds``-round linear trail weight for Gift16."""
    weights = gift16_linear_weight_vector(rounds)
    best = float(weights.min())
    if math.isinf(best):
        raise SearchError("no linear trail exists (unexpected for Gift16)")
    return LinearTrailSummary(rounds=rounds, weight=best)


def gift16_cryptanalytic_panorama(rounds: int, deltas=(0x0001, 0x0010)) -> dict:
    """All four distinguisher costs on Gift16, side by side.

    Differential single trail (exact), linear single trail (exact),
    all-in-one Bayes (exact) — the data complexities an attacker would
    compare before reaching for the paper's ML shortcut on ciphers
    where none of these are computable.
    """
    from repro.diffcrypt.optimal_trails import (
        gift16_optimal_weight,
        gift16_trail_vs_allinone,
    )

    differential = gift16_optimal_weight(rounds)
    linear = gift16_best_linear_trail(rounds)
    allinone = gift16_trail_vs_allinone(rounds, deltas)
    return {
        "rounds": rounds,
        "differential_trail_log2": differential.optimal_weight,
        "linear_trail_log2": linear.data_complexity_log2,
        "allinone_online_log2": allinone["allinone_online_log2"],
        "allinone_bayes_accuracy": allinone["allinone_bayes_accuracy"],
    }
