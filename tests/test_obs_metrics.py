"""Tests for repro.obs.metrics: counters, gauges, histograms, registry.

The contract under test: series are keyed by name + label set (same
handle back every time), histogram quantiles match a numpy reference on
the retained window, the registry snapshot is JSON-able, and the
Prometheus rendering follows text exposition 0.0.4 (cumulative buckets,
``+Inf``, ``_sum``/``_count``, escaped label values).
"""

import json
import threading

import numpy as np
import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ReproError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(3)
        gauge.dec(6)
        assert gauge.value == 2.0

    def test_tracks_running_max(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2.0
        assert gauge.max == 7.0


class TestHistogram:
    def test_count_and_sum(self):
        histogram = Histogram("h")
        for value in (0.1, 0.2, 0.3):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.6)

    def test_quantiles_match_numpy_reference(self):
        rng = np.random.default_rng(5)
        values = rng.exponential(0.01, 500)
        histogram = Histogram("h")
        for value in values:
            histogram.observe(value)
        ordered = np.sort(values)
        for q in (50.0, 95.0, 99.0):
            rank = max(1, int(np.ceil(q / 100.0 * len(ordered))))
            assert histogram.quantile(q) == pytest.approx(ordered[rank - 1])

    def test_window_is_bounded_and_recent(self):
        histogram = Histogram("h", window=4)
        for value in range(10):
            histogram.observe(float(value))
        assert histogram.window_values() == [6.0, 7.0, 8.0, 9.0]
        assert histogram.count == 10  # cumulative stats keep everything

    def test_bucket_counts_use_le_semantics(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts == {1.0: 2, 2.0: 1, 4.0: 1}  # 100.0 only in +Inf

    def test_summary_shape(self):
        histogram = Histogram("h")
        assert histogram.summary() is None
        histogram.observe(0.25)
        summary = histogram.summary()
        assert summary["count"] == 1
        assert summary["p99"] == 0.25
        assert summary["max"] == 0.25

    def test_rejects_bad_construction(self):
        with pytest.raises(ReproError):
            Histogram("h", window=0)
        with pytest.raises(ReproError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_quantile_rejects_bad_inputs(self):
        with pytest.raises(ReproError):
            quantile([], 50.0)
        with pytest.raises(ReproError):
            quantile([1.0], 150.0)


class TestRegistry:
    def test_same_series_handle_back(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", route="/x")
        b = registry.counter("requests_total", route="/x")
        assert a is b

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", route="/x")
        b = registry.counter("requests_total", route="/y")
        a.inc(3)
        assert b.value == 0.0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("t", x="1", y="2")
        b = registry.counter("t", y="2", x="1")
        assert a is b

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("mixed")
        with pytest.raises(ReproError):
            registry.gauge("mixed")

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c_seconds").observe(0.01)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["a_total"][0]["value"] == 2
        assert snapshot["b"][0]["max"] == 1.5
        assert snapshot["c_seconds"][0]["count"] == 1
        assert snapshot["c_seconds"][0]["window"]["p50"] == 0.01

    def test_thread_safety_no_lost_updates(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", window=100_000)

        def work():
            counter = registry.counter("n_total")  # same series each time
            for i in range(2_000):
                counter.inc()
                histogram.observe(float(i))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n_total").value == 8 * 2_000
        assert histogram.count == 8 * 2_000


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("req_total", route="/v1/x", method="GET").inc(3)
        registry.gauge("depth").set(2)
        text = registry.to_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{method="GET",route="/v1/x"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text.splitlines()

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        lines = registry.to_prometheus().splitlines()
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 3' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 4' in lines
        assert "lat_seconds_count 4" in lines
        assert any(line.startswith("lat_seconds_sum ") for line in lines)

    def test_type_line_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("multi_total", route="/a").inc()
        registry.counter("multi_total", route="/b").inc()
        text = registry.to_prometheus()
        assert text.count("# TYPE multi_total counter") == 1

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", path='say "hi"\n').inc()
        text = registry.to_prometheus()
        assert r'path="say \"hi\"\n"' in text

    def test_invalid_metric_name_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.total").inc()
        assert "weird_name_total 1" in registry.to_prometheus().splitlines()


class TestDefaults:
    def test_default_buckets_strictly_increase(self):
        assert all(
            b2 > b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )

    def test_process_registry_exists(self):
        from repro.obs.metrics import REGISTRY

        assert isinstance(REGISTRY, MetricsRegistry)
