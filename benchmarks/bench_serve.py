"""Load harness for the serving subsystem: writes ``BENCH_serve.json``.

Unlike the pytest-benchmark substrate suites, serving performance is a
concurrency property — p50/p95/p99 latency under parallel clients,
sustained throughput, and how well the engine coalesces micro-batches.
This harness therefore drives a real :class:`ServeServer` on a loopback
port (plus the engine directly, to isolate HTTP overhead) with a thread
pool of closed-loop clients, and distils the measurements into the same
``BENCH_<suite>.json`` schema as the other suites (``name`` /
``mean_s`` / ``stddev_s`` / ``rounds``), with serving extras on each
entry (``p50_s``/``p95_s``/``p99_s``, ``throughput_rps``, batch-size
histogram, max queue depth).  ``check_regression.py`` gates on the mean
latency exactly as it does for the other suites.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--output-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

BENCH_DIR = Path(__file__).resolve().parent


def _percentile(values, q):
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def _drive(worker, requests: int, threads: int):
    """Run ``requests`` closed-loop calls across ``threads`` clients.

    Returns ``(per_request_latencies_s, wall_s)``.
    """
    latencies = []
    lock = threading.Lock()
    counter = iter(range(requests))

    def loop():
        while True:
            with lock:
                index = next(counter, None)
            if index is None:
                return
            start = time.perf_counter()
            worker(index)
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)

    pool = [threading.Thread(target=loop) for _ in range(threads)]
    wall_start = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    wall = time.perf_counter() - wall_start
    return latencies, wall


def _entry(name: str, latencies, wall_s: float, metrics_snapshot=None) -> dict:
    entry = {
        "name": name,
        "mean_s": statistics.fmean(latencies),
        "stddev_s": statistics.pstdev(latencies),
        "rounds": len(latencies),
        "p50_s": _percentile(latencies, 50.0),
        "p95_s": _percentile(latencies, 95.0),
        "p99_s": _percentile(latencies, 99.0),
        "throughput_rps": len(latencies) / wall_s,
    }
    if metrics_snapshot is not None:
        entry["batch_size_histogram"] = metrics_snapshot["batches"][
            "size_histogram"
        ]
        entry["mean_batch_size"] = metrics_snapshot["batches"]["mean_size"]
        entry["max_queue_depth"] = metrics_snapshot["queue"]["max_depth"]
    return entry


def run(quick: bool, output_dir: Path) -> Path:
    from repro import GimliHashScenario
    from repro.nn.architectures import build_mlp
    from repro.serve import (
        MicroBatchEngine,
        ModelRegistry,
        ServeClient,
        ServeMetrics,
        ServeServer,
    )

    rng = np.random.default_rng(0xBEEF)
    widths = [64, 128] if quick else [128, 256]
    requests = 60 if quick else 400
    threads = 2 if quick else 8
    rows = 8

    scenario = GimliHashScenario(rounds=6)
    model = build_mlp(widths).build((scenario.feature_bits,), rng)
    model.compile(dtype="float32")
    queries = rng.random((requests, rows, scenario.feature_bits)).astype(
        np.float32
    )
    benchmarks = []

    # 1. Engine direct: micro-batching + fused predict, no HTTP.
    engine_metrics = ServeMetrics()
    engine = MicroBatchEngine(model, metrics=engine_metrics)
    _drive(lambda i: engine.classify(queries[i]), min(requests, 30), threads)
    latencies, wall = _drive(
        lambda i: engine.classify(queries[i]), requests, threads
    )
    engine.stop()
    benchmarks.append(
        _entry(
            f"serve_engine_classify[rows={rows},threads={threads}]",
            latencies,
            wall,
            engine_metrics.snapshot(),
        )
    )

    with tempfile.TemporaryDirectory() as registry_root:
        registry = ModelRegistry(registry_root)
        registry.register(
            model,
            "bench",
            scenario=scenario,
            report={
                "validation_accuracy": 0.8,
                "training_accuracy": 0.8,
                "num_samples": 0,
                "num_classes": scenario.num_classes,
            },
        )
        with ServeServer(registry) as server:
            client = ServeClient(server.url)

            # 2. HTTP classify end to end.
            payloads = [q.tolist() for q in queries]
            _drive(
                lambda i: client.classify("bench", payloads[i]),
                min(requests, 30),
                threads,
            )
            latencies, wall = _drive(
                lambda i: client.classify("bench", payloads[i]), requests, threads
            )
            benchmarks.append(
                _entry(
                    f"serve_http_classify[rows={rows},threads={threads}]",
                    latencies,
                    wall,
                    server.service.metrics.snapshot(),
                )
            )

            # 3. HTTP distinguish: online-phase session updates.
            state = client.open_session(
                "bench", target_samples=requests * rows + 1
            )
            session = state["session"]
            labels = [[0] * rows for _ in range(requests)]
            latencies, wall = _drive(
                lambda i: client.distinguish_batch(
                    "bench", payloads[i], labels[i], session=session
                ),
                requests,
                threads,
            )
            benchmarks.append(
                _entry(
                    f"serve_http_distinguish[rows={rows},threads={threads}]",
                    latencies,
                    wall,
                )
            )

    report = {"suite": "serve", "quick": bool(quick), "benchmarks": benchmarks}
    output_dir.mkdir(parents=True, exist_ok=True)
    out_path = output_dir / "BENCH_serve.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return out_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small request counts (fast, noisy)"
    )
    parser.add_argument("--output-dir", type=Path, default=BENCH_DIR)
    args = parser.parse_args(argv)
    out_path = run(args.quick, args.output_dir)
    report = json.loads(out_path.read_text())
    for entry in report["benchmarks"]:
        print(
            f"{entry['name']}: mean {entry['mean_s'] * 1e3:.2f} ms, "
            f"p95 {entry['p95_s'] * 1e3:.2f} ms, "
            f"p99 {entry['p99_s'] * 1e3:.2f} ms, "
            f"{entry['throughput_rps']:.0f} req/s"
        )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
