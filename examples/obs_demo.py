"""Observability walkthrough: a fully traced train → register → serve run.

Exercises every pillar of ``repro.obs`` in one short session:

* structured logging — epoch telemetry from ``Sequential.fit`` and
  heartbeats from the parallel layer, rendered by whatever ``REPRO_LOG``
  mode is active (run with ``REPRO_LOG=json`` to see the raw events);
* tracing — everything runs under spans; the collected spans are
  written as Chrome trace-event JSON (open in ``chrome://tracing`` or
  https://ui.perfetto.dev);
* metrics — the training counters/histograms from the process registry
  and the serving series from the server's registry, printed in
  Prometheus text exposition at the end;
* run manifest — a machine-readable record of the run (spans, REPRO_*
  knobs, platform, timings) next to the trace.

Takes a few seconds on a laptop.

Usage::

    python examples/obs_demo.py [--out-dir obs_out] [--rounds 5]
    REPRO_LOG=json python examples/obs_demo.py
"""

import argparse
import json
import os
import platform
import tempfile
import time
import urllib.request

from repro import GimliHashScenario, MLDistinguisher
from repro.nn.architectures import build_mlp
from repro.obs import log as obs_log
from repro.obs import trace
from repro.obs.metrics import REGISTRY
from repro.serve import ModelRegistry, ServeClient, ServeServer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="obs_out",
                        help="where to write the trace + manifest")
    parser.add_argument("--rounds", type=int, default=5,
                        help="round-reduced Gimli rounds")
    parser.add_argument("--samples", type=int, default=4_000,
                        help="offline training samples")
    parser.add_argument("--seed", type=int, default=31)
    args = parser.parse_args()

    os.makedirs(args.out_dir, exist_ok=True)
    trace_path = os.path.join(args.out_dir, "obs_demo_trace.json")
    manifest_path = os.path.join(args.out_dir, "obs_demo_manifest.json")
    trace.enable(trace_path)
    if obs_log._mode == "text":
        # Show the epoch/heartbeat debug stream unless the caller chose
        # a mode/level explicitly via REPRO_LOG / REPRO_LOG_LEVEL.
        obs_log.configure(level=os.environ.get("REPRO_LOG_LEVEL") or "debug")
    logger = obs_log.get_logger("examples.obs_demo").bind(seed=args.seed)

    started_unix = time.time()
    start = time.perf_counter()
    with trace.span("obs_demo", rounds=args.rounds, samples=args.samples):
        logger.info("demo.start", rounds=args.rounds, samples=args.samples)

        # 1. Offline phase: train a distinguisher (spans + epoch events).
        scenario = GimliHashScenario(rounds=args.rounds)
        distinguisher = MLDistinguisher(
            scenario, model=build_mlp([64, 128], "relu"),
            epochs=3, rng=args.seed,
        )
        with trace.span("demo.train"):
            report = distinguisher.train(num_samples=args.samples)
        logger.info(
            "demo.trained",
            validation_accuracy=report.validation_accuracy,
        )

        # 2. Register + serve, and drive a few requests through HTTP.
        with trace.span("demo.serve"):
            registry_dir = tempfile.mkdtemp(prefix="repro-obs-demo-")
            registry = ModelRegistry(registry_dir)
            record = registry.register(
                distinguisher.model,
                f"gimli-hash-r{args.rounds}",
                scenario=scenario,
                report=report,
            )
            with ServeServer(registry) as server:
                client = ServeClient(server.url)
                x, _ = scenario.generate_dataset(32, rng=args.seed + 1)
                for begin in range(0, 32, 8):
                    client.classify(record.name, x[begin:begin + 8].tolist())
                with urllib.request.urlopen(
                    f"{server.url}/v1/metrics?format=prometheus", timeout=10.0
                ) as response:
                    serve_prometheus = response.read().decode()
        logger.info("demo.served", requests=4)

    duration = time.perf_counter() - start

    # 3. Artefacts: Chrome trace + run manifest.
    spans = trace.finished_spans()
    trace.dump(trace_path)
    manifest = {
        "manifest_version": 1,
        "demo": "obs_demo",
        "started_unix": round(started_unix, 3),
        "duration_s": duration,
        "validation_accuracy": report.validation_accuracy,
        "env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "trace_file": os.path.basename(trace_path),
        "spans": spans,
    }
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, default=str)

    print(f"\n== Trace: {len(spans)} spans -> {trace_path} ==")
    by_name = {}
    for record_ in spans:
        by_name.setdefault(record_["name"], []).append(record_["dur_us"])
    for name in ("obs_demo", "demo.train", "train.fit", "train.epoch",
                 "demo.serve", "serve.batch"):
        durations = by_name.get(name)
        if durations:
            total_ms = sum(durations) / 1e3
            print(f"{name:<14} x{len(durations):<4} {total_ms:>10.1f} ms")
    print(f"manifest -> {manifest_path}")

    print("\n== Training metrics (process registry, Prometheus) ==")
    for line in REGISTRY.to_prometheus().splitlines():
        if line.startswith(("# TYPE repro_train", "repro_train")):
            print(line)

    print("\n== Serving metrics (server registry, Prometheus excerpt) ==")
    for line in serve_prometheus.splitlines():
        if line.startswith(("repro_serve_requests_total",
                            "repro_serve_batches_total",
                            "repro_http_requests_total")):
            print(line)


if __name__ == "__main__":
    main()
