"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists only
so ``python setup.py develop`` works on offline machines whose pip
cannot build editable wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()
