"""Tests for the Figure 1 toy cipher: the paper's §2.1 numbers."""

import pytest

from repro.ciphers.toygift import (
    PAPER_TRAIL,
    ToyGift,
    apply_wiring,
    byte_to_nibbles,
    default_wiring,
    find_wiring,
    nibbles_to_byte,
    sbox_layer,
)
from repro.errors import CipherError


class TestNibbleHelpers:
    def test_pack_unpack(self):
        assert nibbles_to_byte((0xA, 0x5)) == 0xA5
        assert byte_to_nibbles(0xA5) == (0xA, 0x5)

    def test_roundtrip_all(self):
        for v in range(256):
            assert nibbles_to_byte(byte_to_nibbles(v)) == v


class TestSboxLayer:
    def test_applies_gift_sbox_per_nibble(self):
        # GS(0) = 1, GS(0xF) = 0xE.
        assert sbox_layer(0x0F) == 0x1E

    def test_bijective(self):
        assert len({sbox_layer(v) for v in range(256)}) == 256


class TestWiring:
    def test_default_is_permutation(self):
        assert sorted(default_wiring()) == list(range(8))

    def test_apply_wiring_linear(self):
        w = default_wiring()
        for a, b in [(0x12, 0x34), (0xFF, 0x0F)]:
            assert apply_wiring(a ^ b, w) == apply_wiring(a, w) ^ apply_wiring(b, w)

    def test_maps_dw1_to_dy2(self):
        w = default_wiring()
        dw1 = nibbles_to_byte(PAPER_TRAIL["delta_w1"])
        dy2 = nibbles_to_byte(PAPER_TRAIL["delta_y2"])
        assert apply_wiring(dw1, w) == dy2

    def test_find_wiring_reproducible(self):
        assert find_wiring() == default_wiring()


class TestPaperNumbers:
    def test_exact_probability_is_2_pow_minus_6(self):
        assert ToyGift().characteristic_probability_exact() == 2.0**-6

    def test_markov_probability_is_2_pow_minus_9(self):
        assert ToyGift().characteristic_probability_markov() == 2.0**-9

    def test_exact_exceeds_markov_by_factor_8(self):
        toy = ToyGift()
        ratio = (
            toy.characteristic_probability_exact()
            / toy.characteristic_probability_markov()
        )
        assert ratio == 8.0


class TestToyGiftCipher:
    def test_encrypt_range(self):
        toy = ToyGift()
        outputs = {toy.encrypt(v) for v in range(256)}
        assert len(outputs) == 256  # bijective: S-boxes and wiring are

    def test_invalid_input(self):
        with pytest.raises(CipherError):
            ToyGift().encrypt(256)

    def test_invalid_wiring(self):
        with pytest.raises(CipherError):
            ToyGift(wiring=[0] * 8)

    def test_round1_is_sbox_layer(self):
        toy = ToyGift()
        for v in (0, 5, 0xAB, 0xFF):
            assert toy.round1(v) == sbox_layer(v)

    def test_custom_wiring_changes_cipher(self):
        identity = list(range(8))
        toy_id = ToyGift(wiring=identity)
        toy_default = ToyGift()
        different = any(
            toy_id.encrypt(v) != toy_default.encrypt(v) for v in range(256)
        )
        assert different
