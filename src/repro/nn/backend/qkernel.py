"""Compiled fused quantize + u8·s8 GEMM + dequantize for the int8 path.

The quantized affine transform is, per input row ``i``:

    lo_i = min(min(x[i]), 0)         hi_i = max(max(x[i]), 0)
    s_i  = (hi_i - lo_i) / 255       inv_i = s_i > 0 ? 1/s_i : 0
    z_i  = rint(-lo_i * inv_i)
    q[i, :]   = clip(rint(x[i, :] * inv_i) + z_i, 0, 255)      (uint8)
    acc[i, j] = sum_k q[i, k] * w_s8[k, j]                     (int32)
    y[i, j]   = (acc[i, j] - z_i * colsum[j]) * (s_i * s_w) + bias[j]

and has no fast numpy spelling: numpy integer matmul bypasses BLAS and
runs ~300x slower than sgemm at MLP III sizes, and the quantize /
dequantize steps cost several full passes over the activations when
expressed as separate ufuncs.  This module therefore compiles a small C
kernel at first use with the toolchain already in the image and loads
it through ctypes:

* on AVX-512 VNNI hardware the kernel quantizes four rows at a time
  into an L1-resident scratch block and feeds them straight into a
  row-blocked ``vpdpbusd`` GEMM (4 rows x 64 columns per pass over the
  packed weights) with the dequantization fused into the store
  epilogue — int8 MACs are 4-per-lane-per-instruction, the weight
  stream is a quarter the bytes, and the whole transform is one
  library call with no intermediate arrays;
* elsewhere the same C file compiles to a portable widening-MAC loop
  (autovectorized, ``-ffp-contract=off`` so the float steps round
  one-by-one exactly like the vector and numpy paths), still exact;
* no compiler, a failed build, or ``REPRO_QUANT=numpy`` falls back to
  the pure-numpy path in :mod:`repro.nn.quant` — the same quantization
  ufuncs plus a float64 GEMM on the integer-valued operands (exact for
  any practical depth: products ≤ 2^15, sums far below 2^53), which is
  bit-identical to the kernel.

Bit-identity with numpy holds because every float step is a single
correctly-rounded IEEE op in both worlds: ``rint``/``roundscale`` both
round to nearest-even, the epilogue is deliberately mul-then-add (no
FMA — numpy rounds after the multiply and after the add, so the kernel
must too), ``z * colsum`` stays exact in int32 (≤ 255 * 127 * k) and
``int32 -> float32`` conversion rounds to nearest in both worlds.  The
load-time self-test pins the equivalence bitwise and the kernel is
rejected if it ever disagrees.

Weights are packed once at quantization time into the VNNI layout
``(k/4, m, 4)`` — four consecutive ``k`` values of one output column
in one 32-bit lane — with ``k`` padded to a multiple of 4 and ``m`` to
a multiple of 16 (zero padding contributes nothing, and the padded
``colsum``/``bias`` entries are zero).  The kernel is stateless and
row-independent, so concurrent calls from the serving engine are safe
and results never depend on how rows are grouped into batches.

Knobs: ``REPRO_QUANT`` (``auto`` | ``kernel`` | ``numpy``) selects the
compute path; ``REPRO_QUANT_KERNEL_DIR`` overrides where the shared
object is cached (default: a ``repro-qkernel`` directory under the
user cache dir).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from typing import Optional, Tuple

import numpy as np

from repro.errors import TrainingError

QUANT_ENV_VAR = "REPRO_QUANT"
KERNEL_DIR_ENV_VAR = "REPRO_QUANT_KERNEL_DIR"

_C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

#if defined(__AVX512VNNI__) && defined(__AVX512F__)
#include <immintrin.h>

/* Per-row dynamic uint8 quantization, the exact op sequence of the
   numpy reference (repro.nn.quant.quantize_rows).  Every step is a
   single-rounded float32 op and rint/roundscale both round to
   nearest-even, so the outputs are bitwise identical.  The row is
   padded to kp with zeros (padded weights are zero too, so the pad
   value never matters -- zeroing it just keeps runs reproducible). */
static void quantize_row(const float* row, long k, long kp,
                         uint8_t* qrow, float* scale_out, int32_t* zp_out)
{
    __m512 vlo = _mm512_set1_ps(0.0f);
    __m512 vhi = _mm512_set1_ps(0.0f);
    long j = 0;
    for (; j + 16 <= k; j += 16) {
        __m512 v = _mm512_loadu_ps(row + j);
        vlo = _mm512_min_ps(vlo, v);
        vhi = _mm512_max_ps(vhi, v);
    }
    float lo = _mm512_reduce_min_ps(vlo);
    float hi = _mm512_reduce_max_ps(vhi);
    for (; j < k; j++) {
        float v = row[j];
        lo = v < lo ? v : lo;
        hi = v > hi ? v : hi;
    }
    float s = (hi - lo) / 255.0f;
    float inv = s > 0.0f ? 1.0f / s : 0.0f;
    float zf = rintf(-lo * inv);
    *scale_out = s;
    *zp_out = (int32_t)zf;
    __m512 vinv = _mm512_set1_ps(inv);
    __m512 vzf = _mm512_set1_ps(zf);
    __m512 vzero = _mm512_setzero_ps();
    __m512 vmax = _mm512_set1_ps(255.0f);
    j = 0;
    for (; j + 16 <= k; j += 16) {
        __m512 v = _mm512_loadu_ps(row + j);
        v = _mm512_roundscale_ps(_mm512_mul_ps(v, vinv),
                                 _MM_FROUND_TO_NEAREST_INT |
                                 _MM_FROUND_NO_EXC);
        v = _mm512_add_ps(v, vzf);
        v = _mm512_min_ps(_mm512_max_ps(v, vzero), vmax);
        _mm512_mask_cvtepi32_storeu_epi8(
            qrow + j, (__mmask16)0xffff, _mm512_cvttps_epi32(v));
    }
    for (; j < k; j++) {
        float v = rintf(row[j] * inv) + zf;
        v = v < 0.0f ? 0.0f : (v > 255.0f ? 255.0f : v);
        qrow[j] = (uint8_t)v;
    }
    for (j = k; j < kp; j++)
        qrow[j] = 0;
}

/* Dequantizing store: y = (float)(acc - zp * colsum) * rs + bias.
   mul-then-add on purpose -- numpy's fallback rounds between the two,
   so an FMA here would diverge in the last bit. */
static inline void store_deq(float* dst, __m512i acc, __m512i colsum_v,
                             __m512i zp_v, __m512 rs_v, __m512 bias_v)
{
    __m512i corr = _mm512_sub_epi32(acc, _mm512_mullo_epi32(zp_v, colsum_v));
    __m512 f = _mm512_cvtepi32_ps(corr);
    f = _mm512_mul_ps(f, rs_v);
    f = _mm512_add_ps(f, bias_v);
    _mm512_storeu_ps(dst, f);
}

/* 4-row x 64-column VNNI accumulation block: one pass over the packed
   weights serves 16 accumulators, so the weight stream (the dominant
   memory traffic) is shared across all four rows. */
static void tile_4x64(const int32_t* x0, const int32_t* x1,
                      const int32_t* x2, const int32_t* x3,
                      const int8_t* wcol, long kb_count, long mp,
                      __m512i acc[4][4])
{
    for (long kb = 0; kb < kb_count; kb++) {
        const int8_t* wrow = wcol + kb * mp * 4;
        __m512i w0 = _mm512_loadu_si512((const void*)(wrow));
        __m512i w1 = _mm512_loadu_si512((const void*)(wrow + 64));
        __m512i w2 = _mm512_loadu_si512((const void*)(wrow + 128));
        __m512i w3 = _mm512_loadu_si512((const void*)(wrow + 192));
        __m512i xv;
        xv = _mm512_set1_epi32(x0[kb]);
        acc[0][0] = _mm512_dpbusd_epi32(acc[0][0], xv, w0);
        acc[0][1] = _mm512_dpbusd_epi32(acc[0][1], xv, w1);
        acc[0][2] = _mm512_dpbusd_epi32(acc[0][2], xv, w2);
        acc[0][3] = _mm512_dpbusd_epi32(acc[0][3], xv, w3);
        xv = _mm512_set1_epi32(x1[kb]);
        acc[1][0] = _mm512_dpbusd_epi32(acc[1][0], xv, w0);
        acc[1][1] = _mm512_dpbusd_epi32(acc[1][1], xv, w1);
        acc[1][2] = _mm512_dpbusd_epi32(acc[1][2], xv, w2);
        acc[1][3] = _mm512_dpbusd_epi32(acc[1][3], xv, w3);
        xv = _mm512_set1_epi32(x2[kb]);
        acc[2][0] = _mm512_dpbusd_epi32(acc[2][0], xv, w0);
        acc[2][1] = _mm512_dpbusd_epi32(acc[2][1], xv, w1);
        acc[2][2] = _mm512_dpbusd_epi32(acc[2][2], xv, w2);
        acc[2][3] = _mm512_dpbusd_epi32(acc[2][3], xv, w3);
        xv = _mm512_set1_epi32(x3[kb]);
        acc[3][0] = _mm512_dpbusd_epi32(acc[3][0], xv, w0);
        acc[3][1] = _mm512_dpbusd_epi32(acc[3][1], xv, w1);
        acc[3][2] = _mm512_dpbusd_epi32(acc[3][2], xv, w2);
        acc[3][3] = _mm512_dpbusd_epi32(acc[3][3], xv, w3);
    }
}

/* Fused quantize + GEMM + dequantize.
   x: (n, k) float32 row-major.  wp: packed weights (kp/4, mp, 4) int8
   where wp[kb, j, b] holds w[4*kb + b, j]; kp % 4 == 0, mp % 16 == 0.
   colsum/bias: length mp (zero beyond the real column count).
   y: (n, mp) float32 out.  Four rows are quantized into an L1-resident
   scratch block and consumed immediately. */
void repro_qaffine(const float* x, const int8_t* wp, float wscale,
                   const int32_t* colsum, const float* bias,
                   float* y, long n, long k, long kp, long mp)
{
    uint8_t stack_buf[4 * 4096];
    uint8_t* qbuf = stack_buf;
    uint8_t* heap_buf = 0;
    if (4 * kp > (long)sizeof stack_buf) {
        heap_buf = (uint8_t*)malloc((size_t)(4 * kp));
        if (!heap_buf) return;
        qbuf = heap_buf;
    }
    long kb_count = kp / 4;
    long i = 0;
    for (; i + 4 <= n; i += 4) {
        const int32_t* xr[4];
        __m512i zp_v[4];
        __m512 rs_v[4];
        for (int r = 0; r < 4; r++) {
            float s;
            int32_t z;
            quantize_row(x + (i + r) * k, k, kp, qbuf + r * kp, &s, &z);
            xr[r] = (const int32_t*)(qbuf + r * kp);
            zp_v[r] = _mm512_set1_epi32(z);
            rs_v[r] = _mm512_set1_ps(s * wscale);
        }
        long j = 0;
        for (; j + 64 <= mp; j += 64) {
            __m512i acc[4][4];
            for (int r = 0; r < 4; r++)
                for (int c = 0; c < 4; c++)
                    acc[r][c] = _mm512_setzero_si512();
            tile_4x64(xr[0], xr[1], xr[2], xr[3], wp + j * 4,
                      kb_count, mp, acc);
            for (int c = 0; c < 4; c++) {
                __m512i cs_v = _mm512_loadu_si512(
                    (const void*)(colsum + j + c * 16));
                __m512 b_v = _mm512_loadu_ps(bias + j + c * 16);
                for (int r = 0; r < 4; r++)
                    store_deq(y + (i + r) * mp + j + c * 16, acc[r][c],
                              cs_v, zp_v[r], rs_v[r], b_v);
            }
        }
        for (; j < mp; j += 16) {
            const int8_t* wcol = wp + j * 4;
            __m512i a[4];
            for (int r = 0; r < 4; r++)
                a[r] = _mm512_setzero_si512();
            for (long kb = 0; kb < kb_count; kb++) {
                __m512i w0 = _mm512_loadu_si512(
                    (const void*)(wcol + kb * mp * 4));
                for (int r = 0; r < 4; r++)
                    a[r] = _mm512_dpbusd_epi32(
                        a[r], _mm512_set1_epi32(xr[r][kb]), w0);
            }
            __m512i cs_v = _mm512_loadu_si512((const void*)(colsum + j));
            __m512 b_v = _mm512_loadu_ps(bias + j);
            for (int r = 0; r < 4; r++)
                store_deq(y + (i + r) * mp + j, a[r],
                          cs_v, zp_v[r], rs_v[r], b_v);
        }
    }
    for (; i < n; i++) {
        float s;
        int32_t z;
        quantize_row(x + i * k, k, kp, qbuf, &s, &z);
        const int32_t* xrow = (const int32_t*)qbuf;
        __m512i zp_v = _mm512_set1_epi32(z);
        __m512 rs_v = _mm512_set1_ps(s * wscale);
        float* yrow = y + i * mp;
        for (long j = 0; j < mp; j += 16) {
            __m512i a0 = _mm512_setzero_si512();
            const int8_t* wcol = wp + j * 4;
            for (long kb = 0; kb < kb_count; kb++)
                a0 = _mm512_dpbusd_epi32(
                    a0, _mm512_set1_epi32(xrow[kb]),
                    _mm512_loadu_si512((const void*)(wcol + kb * mp * 4)));
            store_deq(yrow + j, a0,
                      _mm512_loadu_si512((const void*)(colsum + j)),
                      zp_v, rs_v, _mm512_loadu_ps(bias + j));
        }
    }
    free(heap_buf);
}

#else  /* portable fallback: same layout, scalar ops, same rounding */

static void quantize_row(const float* row, long k, long kp,
                         uint8_t* qrow, float* scale_out, int32_t* zp_out)
{
    float lo = 0.0f, hi = 0.0f;
    for (long j = 0; j < k; j++) {
        float v = row[j];
        lo = v < lo ? v : lo;
        hi = v > hi ? v : hi;
    }
    float s = (hi - lo) / 255.0f;
    float inv = s > 0.0f ? 1.0f / s : 0.0f;
    float zf = rintf(-lo * inv);
    *scale_out = s;
    *zp_out = (int32_t)zf;
    for (long j = 0; j < k; j++) {
        float v = rintf(row[j] * inv) + zf;
        v = v < 0.0f ? 0.0f : (v > 255.0f ? 255.0f : v);
        qrow[j] = (uint8_t)v;
    }
    for (long j = k; j < kp; j++)
        qrow[j] = 0;
}

void repro_qaffine(const float* x, const int8_t* wp, float wscale,
                   const int32_t* colsum, const float* bias,
                   float* y, long n, long k, long kp, long mp)
{
    uint8_t* qbuf = (uint8_t*)malloc((size_t)kp);
    if (!qbuf) return;
    long kb_count = kp / 4;
    for (long i = 0; i < n; i++) {
        float s;
        int32_t z;
        quantize_row(x + i * k, k, kp, qbuf, &s, &z);
        float rs = s * wscale;
        float* yrow = y + i * mp;
        for (long j = 0; j < mp; j++) {
            int32_t acc = 0;
            for (long kb = 0; kb < kb_count; kb++) {
                const uint8_t* x4 = qbuf + kb * 4;
                const int8_t* w4 = wp + (kb * mp + j) * 4;
                acc += (int32_t)x4[0] * (int32_t)w4[0]
                     + (int32_t)x4[1] * (int32_t)w4[1]
                     + (int32_t)x4[2] * (int32_t)w4[2]
                     + (int32_t)x4[3] * (int32_t)w4[3];
            }
            /* step-by-step rounding; built with -ffp-contract=off so
               the compiler cannot fuse the mul+add into an FMA. */
            float f = (float)(acc - z * colsum[j]);
            f = f * rs;
            f = f + bias[j];
            yrow[j] = f;
        }
    }
    free(qbuf);
}

#endif
"""

_lock = threading.Lock()
_loaded = False
_qaffine = None


def quant_mode() -> str:
    """The ``REPRO_QUANT`` knob: ``auto`` (default), ``kernel``, ``numpy``."""
    raw = os.environ.get(QUANT_ENV_VAR, "") or "auto"
    if raw not in ("auto", "kernel", "numpy"):
        raise TrainingError(
            f"{QUANT_ENV_VAR} must be 'auto', 'kernel' or 'numpy', got {raw!r}"
        )
    return raw


def _cache_dir() -> str:
    override = os.environ.get(KERNEL_DIR_ENV_VAR, "")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME", "") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-qkernel")


def _compile() -> Optional[str]:
    """Compile the kernel into the cache dir; None on any failure."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"qkernel-{digest}.so")
    if os.path.exists(so_path):
        return so_path
    try:
        os.makedirs(cache, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=cache, suffix=".tmp.so")
        os.close(fd)
        with tempfile.NamedTemporaryFile(
            "w", suffix=".c", dir=cache, delete=False
        ) as src:
            src.write(_C_SOURCE)
            src_path = src.name
        try:
            result = subprocess.run(
                ["cc", "-O3", "-march=native", "-ffp-contract=off",
                 "-shared", "-fPIC", "-o", tmp, src_path, "-lm"],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0:
                return None
            os.replace(tmp, so_path)
            return so_path
        finally:
            for leftover in (src_path, tmp):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
    except (OSError, subprocess.SubprocessError):
        return None


def _numpy_reference(x, w, wscale, bias_m):
    """The pure-numpy fused affine the kernel must match bitwise.

    Mirrors :func:`repro.nn.quant.quantize_rows` + the exact int32
    accumulation + the float32 mul-then-add epilogue (inlined here to
    avoid a circular import with :mod:`repro.nn.quant`).
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    lo = np.minimum(x.min(axis=1), np.float32(0.0))
    hi = np.maximum(x.max(axis=1), np.float32(0.0))
    scale = (hi - lo) / np.float32(255.0)
    inv = np.zeros_like(scale)
    np.divide(np.float32(1.0), scale, out=inv, where=scale > 0)
    zp = np.rint(-lo * inv).astype(np.int32)
    buf = x * inv[:, None]
    np.rint(buf, out=buf)
    buf += zp.astype(np.float32)[:, None]
    np.clip(buf, 0, 255, out=buf)
    q = buf.astype(np.uint8)
    acc = q.astype(np.int64) @ w.astype(np.int64)
    colsum = w.astype(np.int64).sum(axis=0)
    corrected = (acc - zp[:, None].astype(np.int64) * colsum[None, :]).astype(
        np.int32
    )
    out = corrected.astype(np.float32)
    out *= (scale * np.float32(wscale))[:, None]
    out += bias_m
    return out


def _self_test(qaffine_fn) -> bool:
    """Validate the loaded kernel bitwise against the numpy reference.

    Exercises negative, positive, all-zero and constant rows, widths
    that are not multiples of the vector/pack granularity, and both the
    4-row blocked path and the single-row remainder.
    """
    rng = np.random.default_rng(12345)
    k, m, n = 37, 23, 7
    w = rng.integers(-127, 128, (k, m), dtype=np.int8)
    wp, kp, mp = pack_weights(w)
    x = (rng.standard_normal((n, k)) * 3).astype(np.float32)
    x[2] = 0.0
    x[3] = 1.5
    x[4] = -2.25
    wscale = np.float32(0.037)
    colsum = np.zeros(mp, dtype=np.int32)
    colsum[:m] = w.astype(np.int32).sum(axis=0)
    bias = np.zeros(mp, dtype=np.float32)
    bias[:m] = rng.standard_normal(m).astype(np.float32)
    got = np.empty((n, mp), dtype=np.float32)
    qaffine_fn(
        x.ctypes.data, wp.ctypes.data, ctypes.c_float(wscale),
        colsum.ctypes.data, bias.ctypes.data, got.ctypes.data,
        n, k, kp, mp,
    )
    expected = _numpy_reference(x, w, wscale, bias[:m])
    return bool((got[:, :m] == expected).all())


def _load():
    """Resolve the kernel entry point once; None when unavailable."""
    global _loaded, _qaffine
    with _lock:
        if _loaded:
            return _qaffine
        _loaded = True
        if quant_mode() == "numpy":
            return None
        so_path = _compile()
        if so_path is None:
            return None
        try:
            lib = ctypes.CDLL(so_path)
            qaffine_fn = lib.repro_qaffine
        except (OSError, AttributeError):
            return None
        qaffine_fn.argtypes = (
            [ctypes.c_void_p, ctypes.c_void_p, ctypes.c_float]
            + [ctypes.c_void_p] * 3
            + [ctypes.c_long] * 4
        )
        qaffine_fn.restype = None
        if not _self_test(qaffine_fn):
            return None
        _qaffine = qaffine_fn
    return _qaffine


def available() -> bool:
    """True when the compiled kernel is loaded and self-tested."""
    return _load() is not None


def kernel_in_use() -> bool:
    """True when int8 matmuls will run through the compiled kernel."""
    mode = quant_mode()
    if mode == "numpy":
        return False
    if not available():
        if mode == "kernel":
            raise TrainingError(
                "REPRO_QUANT=kernel but the compiled int8 kernel is "
                "unavailable (no C compiler, build failure, or self-test "
                "mismatch); use REPRO_QUANT=auto to fall back to numpy"
            )
        return False
    return True


def pack_weights(w: np.ndarray) -> Tuple[np.ndarray, int, int]:
    """Pack ``(k, m)`` int8 weights into the kernel's VNNI layout.

    Returns ``(packed, kp, mp)`` where ``packed`` has shape
    ``(kp // 4, mp, 4)`` with zero padding (padding never contributes:
    padded weights are zero, and padded ``x`` bytes multiply them).
    """
    if w.dtype != np.int8 or w.ndim != 2:
        raise TrainingError(
            f"pack_weights expects a 2-D int8 array, got {w.dtype} "
            f"{w.shape}"
        )
    k, m = w.shape
    kp = -(-k // 4) * 4
    mp = -(-m // 16) * 16
    padded = np.zeros((kp, mp), dtype=np.int8)
    padded[:k, :m] = w
    packed = np.empty((kp // 4, mp, 4), dtype=np.int8)
    for byte in range(4):
        packed[:, :, byte] = padded[byte::4, :]
    return np.ascontiguousarray(packed), kp, mp


def qaffine(
    x: np.ndarray,
    packed: np.ndarray,
    wscale: float,
    kp: int,
    mp: int,
    colsum_padded: np.ndarray,
    bias_padded: np.ndarray,
) -> np.ndarray:
    """Fused quantize-GEMM-dequantize via the compiled kernel.

    ``x`` must be C-contiguous ``(n, k)`` float32; ``packed`` comes
    from :func:`pack_weights`; ``colsum_padded`` (int32) and
    ``bias_padded`` (float32) are length ``mp``.  Returns ``(n, mp)``
    float32 (callers slice off the column padding) — bitwise identical
    to the numpy fallback in :mod:`repro.nn.quant` (pinned by the
    load-time self-test).
    """
    fn = _load()
    if fn is None:
        raise TrainingError(
            "compiled int8 kernel unavailable; guard calls with "
            "kernel_in_use()"
        )
    if x.dtype != np.float32 or not x.flags.c_contiguous:
        raise TrainingError("x must be C-contiguous float32")
    n, k = x.shape
    out = np.empty((n, mp), dtype=np.float32)
    fn(
        x.ctypes.data, packed.ctypes.data, ctypes.c_float(wscale),
        colsum_padded.ctypes.data, bias_padded.ctypes.data,
        out.ctypes.data, n, k, kp, mp,
    )
    return out
