"""Unified observability: structured logging, tracing, metrics, profiling.

Every subsystem — offline training (:mod:`repro.nn`), dataset
generation and experiment grids (:mod:`repro.core.parallel`,
:mod:`repro.experiments`), and the online serving stack
(:mod:`repro.serve`) — reports through this one dependency-free layer
instead of ad-hoc prints.  Pillars:

* :mod:`repro.obs.log` — structured JSON-lines logging with bound
  context and levels.  ``REPRO_LOG=json|text|off`` selects the console
  renderer (human-readable text by default), ``REPRO_LOG_LEVEL`` the
  threshold, ``REPRO_LOG_FILE`` an always-JSON file sink.
* :mod:`repro.obs.trace` — span-based tracing
  (``with span("train.epoch", epoch=i): ...``), nested, thread-safe,
  and a shared no-op object when disabled so the hot path pays one
  ``if``.  ``REPRO_TRACE=<path>`` dumps a Chrome-trace-format JSON at
  process exit (load it in ``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.metrics` — counters, gauges, and histograms
  (p50/p95/p99 over a sliding window plus fixed Prometheus buckets),
  with labeled series, grouped in a :class:`MetricsRegistry`.  The
  process-wide default registry is ``repro.obs.metrics.REGISTRY``; the
  serving stack renders its registry at
  ``GET /v1/metrics?format=prometheus``.
* :mod:`repro.obs.context` + :mod:`repro.obs.agg` — cross-process
  telemetry.  A :class:`~repro.obs.context.RunContext` rides into pool
  workers, each process flushes its spans/metrics to per-pid sinks
  under ``<run_dir>/obs/``, and :func:`~repro.obs.agg.merge_run`
  deterministically collates them into one Chrome trace
  (``trace_merged.json``) and one Prometheus snapshot
  (``metrics_merged.prom``) per run.
* :mod:`repro.obs.events` — the append-only per-run event bus
  (``events.jsonl``): cell lifecycle, fit epoch ticks, queue depth,
  stalls, SLO breaches.
* :mod:`repro.obs.dashboard` — ``python -m repro.obs.dashboard
  --run-dir DIR``: a live stdlib-HTTP sweep dashboard (plus ``--watch``
  terminal mode) over any run directory, in-flight or killed.
* :mod:`repro.obs.profile` — ``REPRO_PROFILE=1`` per-layer
  forward/backward timing inside ``Sequential.fit``, reported as a
  table at the end of training.

None of these touch any RNG stream: enabling every pillar leaves
training bit-identical (``tests/test_obs_trace.py`` proves it).
"""

from repro.obs.agg import merge_run
from repro.obs.context import RunContext, current, run_context
from repro.obs.events import emit, event_counts, read_events
from repro.obs.log import Logger, configure, get_logger
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Logger",
    "MetricsRegistry",
    "REGISTRY",
    "RunContext",
    "configure",
    "current",
    "emit",
    "event_counts",
    "get_logger",
    "merge_run",
    "read_events",
    "run_context",
    "span",
]
