"""repro — Machine-learning assisted differential distinguishers.

A production-quality reproduction of Baksi, Breier, Dong & Yi,
*"Machine Learning Assisted Differential Distinguishers For Lightweight
Ciphers"* (DATE 2021 / ePrint 2020/571), built entirely on numpy:

* :mod:`repro.ciphers` — Gimli (+Hash/+Cipher), SPECK-32/64, GIFT-64,
  Salsa, Trivium and the exact-analysis toy ciphers;
* :mod:`repro.diffcrypt` — DDT/LAT, Markov-cipher analysis, exact Gimli
  SP-box differential probabilities, trail search, all-in-one baselines;
* :mod:`repro.nn` — a from-scratch neural-network library (Dense, Conv1D,
  LSTM, Adam, ...);
* :mod:`repro.core` — the paper's distinguisher (Algorithm 2) with its
  scenarios, oracles and statistics;
* :mod:`repro.experiments` — harnesses regenerating every table and
  figure of the paper.

Quickstart::

    from repro import GimliHashScenario, MLDistinguisher

    scenario = GimliHashScenario(rounds=5)
    distinguisher = MLDistinguisher(scenario, epochs=5, rng=7)
    report = distinguisher.train(num_samples=20_000)
    verdict = distinguisher.distinguish(scenario.cipher_oracle(), 4_000)
"""

from repro.ciphers import (
    GimliAead,
    GimliHash,
    GimliPermutation,
    Speck3264,
    gimli_hash,
    gimli_permute,
)
from repro.core import (
    CipherOracle,
    GimliCipherScenario,
    GimliHashScenario,
    GimliPermutationScenario,
    MLDistinguisher,
    RandomOracle,
    SpeckRealOrRandomScenario,
    ToySpeckScenario,
)
from repro.errors import DistinguisherAborted, ReproError
from repro.nn import Sequential

__version__ = "1.0.0"

__all__ = [
    "CipherOracle",
    "DistinguisherAborted",
    "GimliAead",
    "GimliCipherScenario",
    "GimliHash",
    "GimliHashScenario",
    "GimliPermutation",
    "GimliPermutationScenario",
    "MLDistinguisher",
    "RandomOracle",
    "ReproError",
    "Sequential",
    "Speck3264",
    "SpeckRealOrRandomScenario",
    "ToySpeckScenario",
    "gimli_hash",
    "gimli_permute",
    "__version__",
]
