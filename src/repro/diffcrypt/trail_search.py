"""Trail search for round-reduced Gimli (paper Table 1 context).

The Gimli designers found optimal trail weights with SAT/SMT solvers —
out of scope for pure Python.  What we *can* do exactly is evaluate any
given trail (the per-column SP-box DP of :mod:`repro.diffcrypt.spbox`
is exact) and search heuristically:

* :func:`find_weight_zero_trails` enumerates the "safe" differences
  whose nonlinear disturbance bits are all shifted out of the word, and
  closes them under deterministic propagation — a complete search for
  probability-1 trails within the safe set, which exhibits the
  designers' weight-0 results for 1 and 2 rounds.
* :func:`greedy_trail` / :func:`beam_search_trail` extend a seed
  difference round by round, choosing locally optimal (or near-optimal)
  SP-box transitions; this exhibits low-weight trails for 3+ rounds
  (upper bounds on the optimum).

All weights produced here are exact for the trail they describe; only
*optimality* is heuristic, and EXPERIMENTS.md reports our exhibited
weights against the designers' Table 1.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ciphers.gimli import GIMLI_ROUNDS
from repro.diffcrypt.spbox import (
    spbox_deterministic_output,
    spbox_differential_probability,
)
from repro.diffcrypt.trail import DifferentialTrail
from repro.errors import SearchError
from repro.utils.bitops import rotl32

StateDiff = Tuple[int, ...]
ColumnDiff = Tuple[int, int, int]

_MASK32 = 0xFFFFFFFF

#: Bits (in state coordinates) that propagate deterministically through
#: the SP-box: Δs0 bit 7 (x bit 31), Δs1 bits 21/22 (y bits 30/31),
#: Δs2 bit 31 (z bit 31).
SAFE_COLUMN_BITS = {
    "s0": (7,),
    "s1": (21, 22),
    "s2": (31,),
}


def _columns(diff: StateDiff) -> List[ColumnDiff]:
    return [(diff[j], diff[4 + j], diff[8 + j]) for j in range(4)]


def _from_columns(cols: Sequence[ColumnDiff]) -> StateDiff:
    top = [c[0] for c in cols]
    mid = [c[1] for c in cols]
    bot = [c[2] for c in cols]
    return tuple(top + mid + bot)


def _apply_swap(diff: StateDiff, r: int) -> StateDiff:
    top = list(diff[0:4])
    if r % 4 == 0:
        top = [top[1], top[0], top[3], top[2]]
    elif r % 4 == 2:
        top = [top[2], top[3], top[0], top[1]]
    return tuple(top) + diff[4:]


def _undo_swap(diff: StateDiff, r: int) -> StateDiff:
    # Both swaps are involutions.
    return _apply_swap(diff, r)


def round_differential_probability(
    input_diff: StateDiff, output_diff: StateDiff, r: int
) -> float:
    """Exact probability of one full Gimli round transition at round ``r``.

    ``output_diff`` is the difference *after* the swap layer (the
    constant addition never affects differences).  Columns are treated
    as independent, which holds exactly for a uniform state.
    """
    pre_swap = _undo_swap(tuple(output_diff), r)
    probability = 1.0
    for din, dout in zip(_columns(tuple(input_diff)), _columns(pre_swap)):
        p = spbox_differential_probability(din, dout)
        if p == 0.0:
            return 0.0
        probability *= p
    return probability


def propagate_deterministic(
    diff: StateDiff, rounds: int, start_round: int = GIMLI_ROUNDS
) -> Optional[DifferentialTrail]:
    """Propagate ``diff`` with probability 1 for ``rounds`` rounds, or fail."""
    current = tuple(int(w) & _MASK32 for w in diff)
    trail = DifferentialTrail((current,))
    for r in range(start_round, start_round - rounds, -1):
        cols = []
        for col in _columns(current):
            out = spbox_deterministic_output(col)
            if out is None:
                return None
            cols.append(out)
        current = _apply_swap(_from_columns(cols), r)
        trail = trail.extend(current, 1.0)
    return trail


def safe_column_diffs() -> List[ColumnDiff]:
    """All non-zero column differences supported on the safe bit set."""
    s0_options = [0, 1 << 7]
    s1_options = [0, 1 << 21, 1 << 22, (1 << 21) | (1 << 22)]
    s2_options = [0, 1 << 31]
    diffs = [
        (a, b, c)
        for a in s0_options
        for b in s1_options
        for c in s2_options
        if (a, b, c) != (0, 0, 0)
    ]
    return diffs


def find_weight_zero_trails(
    rounds: int,
    start_round: int = GIMLI_ROUNDS,
    max_active_columns: int = 2,
) -> List[DifferentialTrail]:
    """Complete search for probability-1 trails seeded in the safe set.

    Enumerates all state differences with at most ``max_active_columns``
    active columns, each drawn from :func:`safe_column_diffs`, and keeps
    those that propagate deterministically for ``rounds`` rounds.
    """
    if rounds < 1:
        raise SearchError(f"rounds must be positive, got {rounds}")
    column_options = safe_column_diffs()
    trails = []
    for active in range(1, max_active_columns + 1):
        for positions in itertools.combinations(range(4), active):
            for choice in itertools.product(column_options, repeat=active):
                cols = [(0, 0, 0)] * 4
                for pos, col in zip(positions, choice):
                    cols[pos] = col
                trail = propagate_deterministic(
                    _from_columns(cols), rounds, start_round
                )
                if trail is not None:
                    trails.append(trail)
    return trails


def _position_tables(col_diff: ColumnDiff) -> List[Dict[Tuple, int]]:
    """Per position, map each achievable ``(g1, g2, g3)`` combo to its count."""
    da, db, dc = col_diff
    dx = rotl32(da & _MASK32, 24)
    dy = rotl32(db & _MASK32, 9)
    dz = dc & _MASK32
    tables = []
    for i in range(32):
        dxi, dyi, dzi = (dx >> i) & 1, (dy >> i) & 1, (dz >> i) & 1
        counts: Dict[Tuple, int] = {}
        for bits in range(8):
            x, y, z = bits & 1, (bits >> 1) & 1, (bits >> 2) & 1
            g1 = ((y ^ dyi) & (z ^ dzi)) ^ (y & z)
            g2 = ((x ^ dxi) | (z ^ dzi)) ^ (x | z)
            g3 = ((x ^ dxi) & (y ^ dyi)) ^ (x & y)
            key = (g1, g2, g3)
            counts[key] = counts.get(key, 0) + 1
        tables.append(counts)
    return tables


def column_transitions(
    col_diff: ColumnDiff, variants: int = 1
) -> List[Tuple[ColumnDiff, float]]:
    """Best (and near-best) SP-box output differences for ``col_diff``.

    Per bit position the disturbance-bit choices are independent, so the
    globally optimal output difference is assembled from per-position
    argmax choices — an *exactly* optimal one-round transition.  With
    ``variants > 1``, additional outputs are generated by flipping the
    single cheapest position to its second-best choice, giving the beam
    search alternatives to explore.
    """
    da, db, dc = (w & _MASK32 for w in col_diff)
    dx = rotl32(da, 24)
    dy = rotl32(db, 9)
    tables = _position_tables((da, db, dc))

    # For each position pick the marginal best over consumed g bits.
    best_choice: List[Tuple[Tuple, int]] = []
    second_choice: List[Optional[Tuple[Tuple, int]]] = []
    for i, counts in enumerate(tables):
        consumed = (i + 2 < 32, i + 1 < 32, i + 3 < 32)

        def project(key):
            return tuple(k if used else None for k, used in zip(key, consumed))

        merged: Dict[Tuple, int] = {}
        for key, count in counts.items():
            pk = project(key)
            merged[pk] = merged.get(pk, 0) + count
        ranked = sorted(merged.items(), key=lambda kv: -kv[1])
        best_choice.append(ranked[0])
        second_choice.append(ranked[1] if len(ranked) > 1 else None)

    def assemble(choices: List[Tuple[Tuple, int]]) -> Tuple[ColumnDiff, float]:
        bc = bb = ba = 0
        probability = 1.0
        for i, (key, count) in enumerate(choices):
            g1, g2, g3 = key
            if g1 is not None:
                bc |= g1 << (i + 2)
            if g2 is not None:
                bb |= g2 << (i + 1)
            if g3 is not None:
                ba |= g3 << (i + 3)
            probability *= count / 8.0
        dz = dc
        bc = (bc ^ dx ^ ((dz << 1) & _MASK32)) & _MASK32
        bb = (bb ^ dy ^ dx) & _MASK32
        ba = (ba ^ dz ^ dy) & _MASK32
        return (ba, bb, bc), probability

    results = [assemble(best_choice)]
    if variants > 1:
        # Rank positions by how cheap their second-best alternative is.
        alternatives = []
        for i, second in enumerate(second_choice):
            if second is None or second[1] == 0:
                continue
            penalty = best_choice[i][1] / second[1]
            alternatives.append((penalty, i, second))
        alternatives.sort(key=lambda item: item[0])
        for _, i, second in alternatives[: variants - 1]:
            choices = list(best_choice)
            choices[i] = second
            results.append(assemble(choices))
    return results


def greedy_trail(
    seed: StateDiff, rounds: int, start_round: int = GIMLI_ROUNDS
) -> DifferentialTrail:
    """Extend ``seed`` by locally optimal SP-box transitions per round."""
    current = tuple(int(w) & _MASK32 for w in seed)
    trail = DifferentialTrail((current,))
    for r in range(start_round, start_round - rounds, -1):
        cols = []
        probability = 1.0
        for col in _columns(current):
            (out, p), = column_transitions(col, variants=1)
            cols.append(out)
            probability *= p
        current = _apply_swap(_from_columns(cols), r)
        trail = trail.extend(current, probability)
    return trail


def beam_search_trail(
    seeds: Iterable[StateDiff],
    rounds: int,
    start_round: int = GIMLI_ROUNDS,
    beam_width: int = 32,
    variants: int = 3,
) -> DifferentialTrail:
    """Beam search over near-optimal per-column transitions.

    Returns the lowest-weight trail found.  Weights are exact for the
    returned trail; global optimality is not guaranteed.
    """
    beam: List[Tuple[float, int, DifferentialTrail]] = []
    tiebreak = itertools.count()
    for seed in seeds:
        diff = tuple(int(w) & _MASK32 for w in seed)
        beam.append((0.0, next(tiebreak), DifferentialTrail((diff,))))
    if not beam:
        raise SearchError("beam search needs at least one seed difference")

    for r in range(start_round, start_round - rounds, -1):
        # Keep, per reached difference, only the lowest-weight trail.
        best_by_diff: Dict[StateDiff, Tuple[float, int, DifferentialTrail]] = {}
        for weight, _, trail in beam:
            per_column = [
                column_transitions(col, variants=variants)
                for col in _columns(trail.output_difference)
            ]
            for combo in itertools.product(*per_column):
                probability = 1.0
                cols = []
                for out, p in combo:
                    probability *= p
                    cols.append(out)
                if probability == 0.0:
                    continue
                new_diff = _apply_swap(_from_columns(cols), r)
                new_trail = trail.extend(new_diff, probability)
                current = best_by_diff.get(new_diff)
                if current is None or new_trail.weight < current[0]:
                    best_by_diff[new_diff] = (
                        new_trail.weight,
                        next(tiebreak),
                        new_trail,
                    )
        if not best_by_diff:
            raise SearchError("beam search ran out of viable transitions")
        beam = heapq.nsmallest(beam_width, best_by_diff.values())
    return min(beam, key=lambda item: item[0])[2]


def default_seeds(max_columns: int = 1) -> List[StateDiff]:
    """Reasonable seed set: safe-set diffs plus all single-bit differences."""
    seeds: List[StateDiff] = []
    for positions in itertools.combinations(range(4), max_columns):
        for choice in itertools.product(safe_column_diffs(), repeat=max_columns):
            cols = [(0, 0, 0)] * 4
            for pos, col in zip(positions, choice):
                cols[pos] = col
            seeds.append(_from_columns(cols))
    for word in range(12):
        for bit in range(32):
            diff = [0] * 12
            diff[word] = 1 << bit
            seeds.append(tuple(diff))
    return seeds


def exhibit_table1_weights(
    max_rounds: int = 4,
    beam_width: int = 24,
    variants: int = 3,
    start_round: int = GIMLI_ROUNDS,
) -> Dict[int, float]:
    """Best exhibited trail weight per round count (heuristic upper bounds)."""
    seeds = default_seeds()
    results: Dict[int, float] = {}
    for rounds in range(1, max_rounds + 1):
        weight_zero = find_weight_zero_trails(rounds, start_round)
        if weight_zero:
            results[rounds] = 0.0
            continue
        trail = beam_search_trail(
            seeds, rounds, start_round, beam_width=beam_width, variants=variants
        )
        results[rounds] = trail.weight
    return results
