"""Tests for data-parallel training: bit-identical for any worker count."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.nn import Dense, Dropout, ReLU, Sequential, Softmax
from repro.nn.model import (
    DATA_PARALLEL_SHARD_ROWS,
    _tree_reduce,
    data_parallel_from_env,
)


def make_data(rng, n=256):
    x0 = rng.normal(loc=-1.5, size=(n // 2, 6))
    x1 = rng.normal(loc=+1.5, size=(n // 2, 6))
    x = np.concatenate([x0, x1])
    y = np.concatenate(
        [np.zeros(n // 2, dtype=int), np.ones(n // 2, dtype=int)]
    )
    order = rng.permutation(x.shape[0])
    return x[order], y[order]


def train(layers_fn, data_parallel, rng_factory, loss=None, n=256,
          epochs=2, batch_size=96):
    gen = rng_factory(11)
    x, y = make_data(gen, n=n)
    model = Sequential(layers_fn()).build((6,), rng_factory(5))
    model.compile(**({} if loss is None else {"loss": loss}))
    history = model.fit(
        x, y, epochs=epochs, batch_size=batch_size, rng=rng_factory(6),
        data_parallel=data_parallel,
    )
    params, _ = model._gather()
    records = {k: v for k, v in history.records.items() if k != "time"}
    return [p.copy() for p in params], records


def fused_layers():
    return [Dense(16), ReLU(), Dropout(0.25), Dense(2), Softmax()]


def plain_layers():
    return [Dense(16), ReLU(), Dense(2), Softmax()]


class TestTreeReduce:
    def test_matches_sum_for_scalars(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert _tree_reduce(values) == 15.0

    def test_single_element(self):
        assert _tree_reduce([7.5]) == 7.5

    def test_deterministic_pairing(self):
        # The reduction is a fixed balanced tree over shard order, so
        # the floating-point result is a function of the inputs alone.
        rng = np.random.default_rng(3)
        values = list(rng.normal(size=13))
        assert _tree_reduce(list(values)) == _tree_reduce(list(values))


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_fused_softmax_cce_with_dropout(self, rng_factory, workers):
        base_params, base_hist = train(fused_layers, 1, rng_factory)
        params, hist = train(fused_layers, workers, rng_factory)
        assert hist == base_hist
        for a, b in zip(base_params, params):
            assert np.array_equal(a, b)  # bit-identical, not allclose

    @pytest.mark.parametrize("workers", [2, 4])
    def test_non_fused_loss(self, rng_factory, workers):
        base_params, base_hist = train(
            plain_layers, 1, rng_factory, loss="mse"
        )
        params, hist = train(plain_layers, workers, rng_factory, loss="mse")
        assert hist == base_hist
        for a, b in zip(base_params, params):
            assert np.array_equal(a, b)

    def test_partial_final_shard(self, rng_factory):
        # n chosen so the last shard of the last batch is ragged
        n = DATA_PARALLEL_SHARD_ROWS * 3 + 17
        base_params, _ = train(plain_layers, 1, rng_factory, n=n,
                               batch_size=n)
        params, _ = train(plain_layers, 3, rng_factory, n=n, batch_size=n)
        for a, b in zip(base_params, params):
            assert np.array_equal(a, b)


class TestKnobs:
    def test_env_knob_matches_explicit(self, rng_factory, monkeypatch):
        explicit_params, explicit_hist = train(fused_layers, 2, rng_factory)
        monkeypatch.setenv("REPRO_DATA_PARALLEL", "2")
        env_params, env_hist = train(fused_layers, None, rng_factory)
        assert env_hist == explicit_hist
        for a, b in zip(explicit_params, env_params):
            assert np.array_equal(a, b)

    def test_env_unset_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATA_PARALLEL", raising=False)
        assert data_parallel_from_env() is None

    def test_env_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_PARALLEL", "two")
        with pytest.raises(TrainingError):
            data_parallel_from_env()
        monkeypatch.setenv("REPRO_DATA_PARALLEL", "0")
        with pytest.raises(TrainingError):
            data_parallel_from_env()

    def test_invalid_worker_count_rejected(self, rng_factory):
        with pytest.raises(TrainingError):
            train(plain_layers, 0, rng_factory)
