"""Difference-search latency harness: writes ``BENCH_search.json``.

Times the two layers of ``repro.search``: the bias-scoring oracle
(single-candidate score, batched population score, and the derived
scores-per-second throughput) and a full evolutionary search on
ToySpeck — the whole automated offline phase on the toy cipher, which
is the latency a scenario author experiences per
``python -m repro.search`` invocation.  Entries follow the shared
``BENCH_<suite>.json`` schema (``name`` / ``mean_s`` / ``stddev_s`` /
``rounds``), so ``check_regression.py`` gates on the means exactly as
it does for the other suites.

Usage::

    PYTHONPATH=src python benchmarks/bench_search.py [--quick] [--output-dir DIR]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

BENCH_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(BENCH_DIR.parent / "src"))

from repro.obs import log as obs_log  # noqa: E402
from repro.search import (  # noqa: E402
    BiasScoringOracle,
    SearchConfig,
    evolve_differences,
)
from repro.search.config import get_scenario_builder  # noqa: E402

ORACLE_SAMPLES = 2048
POPULATION = 64


def _time(fn, rounds, warmup):
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return samples


def _entry(name, samples, **extras):
    entry = {
        "name": name,
        "mean_s": statistics.fmean(samples),
        "stddev_s": statistics.pstdev(samples),
        "rounds": len(samples),
    }
    entry.update(extras)
    return entry


def _fresh_oracle(seed=0):
    builder = get_scenario_builder("toyspeck")
    return BiasScoringOracle(
        builder.prototype(rounds=3),
        n_samples=ORACLE_SAMPLES,
        rng=seed,
        workers=1,
    )


def _population(rng):
    # distinct non-zero 16-bit candidates so nothing memoises away
    masks = set()
    while len(masks) < POPULATION:
        candidate = rng.integers(0, 256, size=2, dtype=np.uint8)
        if candidate.any():
            masks.add(candidate.tobytes())
    return np.frombuffer(b"".join(sorted(masks)), dtype=np.uint8).reshape(
        POPULATION, 2
    )


def run(quick: bool) -> dict:
    # Quick mode cuts rounds, never shapes: entry names must match the
    # committed full-mode baseline so check_regression compares them.
    score_rounds = 4 if quick else 30
    search_rounds = 2 if quick else 8
    warmup = 1 if quick else 2
    rng = np.random.default_rng(0x5EA7)
    entries = []

    # single-candidate score latency (fresh oracle each round: the
    # memo cache would otherwise turn rounds 2+ into dict lookups)
    oracles = iter([_fresh_oracle(seed) for seed in range(score_rounds + warmup)])
    delta = np.array([0x00, 0x40], dtype=np.uint8)
    samples = _time(lambda: next(oracles).score(delta), score_rounds, warmup)
    entries.append(_entry("oracle_score_single", samples, samples_per_score=ORACLE_SAMPLES))

    # batched population score + throughput
    population = _population(rng)
    oracles = iter([_fresh_oracle(seed) for seed in range(score_rounds + warmup)])
    samples = _time(
        lambda: next(oracles).score_batch(population), score_rounds, warmup
    )
    mean = statistics.fmean(samples)
    entries.append(
        _entry(
            "oracle_score_batch64",
            samples,
            candidates=POPULATION,
            scores_per_second=POPULATION / mean,
        )
    )

    # full evolutionary search on the toy cipher (seed varies per round
    # so the oracle memo never short-circuits a later round)
    config = SearchConfig(
        population_size=24,
        generations=4,
        elite=6,
        top_k=4,
        n_samples=ORACLE_SAMPLES,
    )
    seeds = iter(range(search_rounds + warmup))
    samples = _time(
        lambda: evolve_differences(_fresh_oracle(next(seeds)), config),
        search_rounds,
        warmup,
    )
    entries.append(
        _entry(
            "search_toyspeck_full",
            samples,
            population_size=config.population_size,
            generations=config.generations,
        )
    )

    return {
        "suite": "search",
        "quick": bool(quick),
        "oracle_samples": ORACLE_SAMPLES,
        "benchmarks": entries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="few-round smoke timings"
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=BENCH_DIR,
        help="where to write BENCH_search.json (default: benchmarks/)",
    )
    args = parser.parse_args(argv)
    obs_log.configure(level="warning")  # timings, not heartbeats
    report = run(args.quick)
    args.output_dir.mkdir(parents=True, exist_ok=True)
    out_path = args.output_dir / "BENCH_search.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    for entry in report["benchmarks"]:
        rate = entry.get("scores_per_second")
        note = f"  ({rate:.0f} scores/s)" if rate else ""
        print(f"{entry['name']}: {entry['mean_s'] * 1e3:.3f} ms{note}")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
