"""Tests for GIFT-64 and the Gift16 scaled SPN."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.gift import (
    GIFT64_PERM,
    GIFT64_PERM_INV,
    GIFT_SBOX,
    GIFT_SBOX_INV,
    Gift16,
    Gift64,
    GiftSbox,
    gift16_bit_permutation,
    round_constants,
)
from repro.errors import CipherError, ShapeError


class TestSbox:
    def test_table_matches_paper_string(self):
        """§2.1 quotes the S-box as the hex string 1A4C6F392DB7508E."""
        assert "".join(f"{v:X}" for v in GIFT_SBOX) == "1A4C6F392DB7508E"

    def test_is_permutation(self):
        assert sorted(GIFT_SBOX) == list(range(16))

    def test_inverse(self):
        for x in range(16):
            assert GIFT_SBOX_INV[GIFT_SBOX[x]] == x

    def test_class_forward_inverse(self):
        for x in range(16):
            assert GiftSbox.inverse(GiftSbox.forward(x)) == x

    def test_batched_lookup(self):
        arr = np.arange(16, dtype=np.uint8)
        assert list(GiftSbox.forward(arr)) == list(GIFT_SBOX)


class TestBitPermutation:
    def test_is_permutation(self):
        assert sorted(GIFT64_PERM) == list(range(64))

    def test_inverse_table(self):
        for i in range(64):
            assert GIFT64_PERM_INV[GIFT64_PERM[i]] == i

    def test_spreads_sbox_outputs(self):
        """Each S-box's 4 output bits land in 4 different S-boxes."""
        for box in range(16):
            targets = {GIFT64_PERM[4 * box + b] // 4 for b in range(4)}
            assert len(targets) == 4


class TestRoundConstants:
    def test_known_prefix(self):
        assert round_constants(6) == [0x01, 0x03, 0x07, 0x0F, 0x1F, 0x3E]

    def test_six_bit_range(self):
        assert all(0 <= c < 64 for c in round_constants(48))

    def test_no_short_cycle(self):
        constants = round_constants(28)
        assert len(set(constants)) == 28


class TestGift64:
    KEY = 0x00112233445566778899AABBCCDDEEFF

    def test_roundtrip(self):
        cipher = Gift64()
        for pt in (0, 1, 0x0123456789ABCDEF, (1 << 64) - 1):
            assert cipher.decrypt(cipher.encrypt(pt, self.KEY), self.KEY) == pt

    def test_key_matters(self):
        cipher = Gift64()
        assert cipher.encrypt(5, self.KEY) != cipher.encrypt(5, self.KEY ^ 1)

    def test_rounds_matter(self):
        assert Gift64(rounds=4).encrypt(5, self.KEY) != Gift64(rounds=5).encrypt(
            5, self.KEY
        )

    def test_deterministic(self):
        assert Gift64().encrypt(7, self.KEY) == Gift64().encrypt(7, self.KEY)

    def test_invalid_inputs(self):
        with pytest.raises(CipherError):
            Gift64().encrypt(1 << 64, self.KEY)
        with pytest.raises(CipherError):
            Gift64().encrypt(0, 1 << 128)
        with pytest.raises(CipherError):
            Gift64(rounds=0)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**128 - 1))
    def test_roundtrip_random(self, pt, key):
        cipher = Gift64(rounds=6)
        assert cipher.decrypt(cipher.encrypt(pt, key), key) == pt


class TestGift16:
    def test_wiring_is_gift_like(self):
        perm = gift16_bit_permutation()
        assert sorted(perm) == list(range(16))
        for box in range(4):
            targets = {perm[4 * box + b] // 4 for b in range(4)}
            assert len(targets) == 4

    def test_encrypt_shape(self, rng):
        cipher = Gift16(rounds=4)
        pts = rng.integers(0, 1 << 16, size=(10, 1), dtype=np.uint16)
        keys = rng.integers(0, 1 << 16, size=(10, 4), dtype=np.uint16)
        out = cipher.encrypt(pts, keys)
        assert out.shape == (10, 1)

    def test_bijective_for_fixed_key(self):
        cipher = Gift16(rounds=3)
        values = np.arange(1 << 16, dtype=np.uint16)
        keys = np.tile(
            np.array([0x1234, 0x5678, 0x9ABC], dtype=np.uint16), (1 << 16, 1)
        )
        out = cipher.encrypt(values, keys)
        assert len(np.unique(out)) == 1 << 16

    def test_key_xor_commutes_with_difference(self, rng):
        """Differences are unaffected by the round keys (Markov)."""
        cipher = Gift16(rounds=5)
        pts = rng.integers(0, 1 << 16, size=(64,), dtype=np.uint16)
        keys_a = rng.integers(0, 1 << 16, size=(64, 5), dtype=np.uint16)
        delta = np.uint16(0x0011)
        out_a = cipher.encrypt(pts, keys_a)
        out_b = cipher.encrypt(pts ^ delta, keys_a)
        # Same keys: well-defined differences.
        diff = out_a ^ out_b
        assert diff.shape == (64, 1)

    def test_shape_validation(self, rng):
        cipher = Gift16(rounds=2)
        with pytest.raises(ShapeError):
            cipher.encrypt(
                rng.integers(0, 9, size=(4, 2), dtype=np.uint16),
                rng.integers(0, 9, size=(4, 2), dtype=np.uint16),
            )
        with pytest.raises(ShapeError):
            cipher.encrypt(
                rng.integers(0, 9, size=(4,), dtype=np.uint16),
                rng.integers(0, 9, size=(4, 3), dtype=np.uint16),
            )

    def test_too_many_rounds(self):
        with pytest.raises(CipherError):
            Gift16(rounds=9)
