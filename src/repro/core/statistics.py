"""Statistical support for the distinguisher decision (paper §3.1).

The paper computes the expected accuracy against a RANDOM oracle via the
binomial expectation ``E = sum_i i * Pr(i)`` with
``Pr(i) = C(t, i) (t-1)^(t-i) / t^t`` and notes ``E/t = 1/t``; the
decision rule compares the online accuracy ``a'`` against the training
accuracy ``a`` and this baseline.  The helpers here make those
judgements quantitative: exact binomial p-values, a midpoint decision
threshold, the distinguishing advantage, and the online sample count
needed for a target error probability.
"""

from __future__ import annotations

import math

from scipy import stats

from repro.errors import DistinguisherError


def expected_random_accuracy(t: int) -> float:
    """The paper's ``E/t`` formula, evaluated exactly.

    ``Pr(i) = C(t, i) (t-1)^(t-i) / t^t`` is the probability that a
    uniform guesser gets exactly ``i`` of ``t`` classes right;
    ``E = Σ i Pr(i) = 1`` so ``E/t = 1/t``.  The explicit sum is kept
    (rather than returning ``1/t`` directly) because reproducing the
    formula is part of reproducing §3.1; the test suite checks it
    collapses to ``1/t``.
    """
    if t < 2:
        raise DistinguisherError(f"the game needs t >= 2 classes, got {t}")
    total = 0.0
    for i in range(t + 1):
        prob = math.comb(t, i) * (t - 1) ** (t - i) / t**t
        total += i * prob
    return total / t


def advantage(accuracy: float, t: int) -> float:
    """Distinguishing advantage of an accuracy over the ``1/t`` baseline."""
    if not 0.0 <= accuracy <= 1.0:
        raise DistinguisherError(f"accuracy must be in [0, 1], got {accuracy}")
    return accuracy - 1.0 / t


def binomial_pvalue(correct: int, total: int, null_probability: float) -> float:
    """One-sided exact p-value for ``correct`` successes under ``H0: p = p0``.

    Small values reject the hypothesis that the oracle behaves randomly.
    """
    if total <= 0:
        raise DistinguisherError(f"total must be positive, got {total}")
    if not 0 <= correct <= total:
        raise DistinguisherError(
            f"correct must lie in [0, {total}], got {correct}"
        )
    if not 0.0 < null_probability < 1.0:
        raise DistinguisherError(
            f"null probability must be in (0, 1), got {null_probability}"
        )
    # P(X >= correct) under Binomial(total, p0).
    return float(stats.binom.sf(correct - 1, total, null_probability))


def decision_threshold(training_accuracy: float, t: int) -> float:
    """Midpoint between the trained accuracy ``a`` and the random ``1/t``.

    Algorithm 2 concludes CIPHER when ``a' ≈ a`` and RANDOM when
    ``a' ≈ 1/t``; the midpoint is the equal-margin boundary between the
    two hypotheses.
    """
    baseline = 1.0 / t
    if training_accuracy <= baseline:
        raise DistinguisherError(
            f"training accuracy {training_accuracy:.4f} does not exceed the "
            f"random baseline {baseline:.4f}; Algorithm 2 aborts in this case"
        )
    return 0.5 * (training_accuracy + baseline)


def required_online_samples(
    training_accuracy: float,
    t: int,
    error_probability: float = 0.01,
) -> int:
    """Online samples needed to separate CIPHER from RANDOM.

    Gaussian two-hypothesis sizing: with ``p1 = a`` (cipher) and
    ``p0 = 1/t`` (random), the midpoint threshold errs with probability
    ``<= error_probability`` on both sides once

    ``n >= ((z sqrt(p0 q0) + z sqrt(p1 q1)) / (p1 - p0))^2``.

    This is the quantity behind the paper's ``2^14.3`` online
    complexity for the 8-round Gimli distinguishers.
    """
    if not 0.0 < error_probability < 0.5:
        raise DistinguisherError(
            f"error probability must be in (0, 0.5), got {error_probability}"
        )
    p0 = 1.0 / t
    p1 = training_accuracy
    if p1 <= p0:
        raise DistinguisherError(
            f"training accuracy {p1:.4f} does not exceed the baseline {p0:.4f}"
        )
    z = float(stats.norm.isf(error_probability))
    numerator = z * math.sqrt(p0 * (1 - p0)) + z * math.sqrt(p1 * (1 - p1))
    n = (numerator / (p1 - p0)) ** 2
    return int(math.ceil(n))


def accuracy_confidence_interval(
    correct: int, total: int, confidence: float = 0.95
) -> tuple:
    """Wilson score interval for an observed accuracy."""
    if total <= 0:
        raise DistinguisherError(f"total must be positive, got {total}")
    if not 0.0 < confidence < 1.0:
        raise DistinguisherError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    z = float(stats.norm.isf((1.0 - confidence) / 2.0))
    phat = correct / total
    denom = 1.0 + z**2 / total
    center = (phat + z**2 / (2 * total)) / denom
    half = (
        z
        * math.sqrt(phat * (1 - phat) / total + z**2 / (4 * total**2))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)
