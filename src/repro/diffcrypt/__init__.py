"""Classical differential-cryptanalysis substrate.

This package provides everything the paper *compares against*: S-box
DDT/LAT analysis, differential trails and their Markov-assumption
probability (paper Eq. 2), an exact differential-probability engine for
the Gimli SP-box, trail search for Table 1, the Markov-cipher
definitions of §2.1, and the Albrecht–Leander all-in-one distinguisher
that the neural models simulate.
"""

from repro.diffcrypt.allinone import (
    AllInOneDistribution,
    bayes_accuracy,
    gift16_markov_distribution,
    toyspeck_markov_distribution,
)
from repro.diffcrypt.markov import (
    figure1_demonstration,
    markov_violation_toygift,
)
from repro.diffcrypt.optimal_trails import (
    gift16_optimal_weight,
    gift16_trail_vs_allinone,
    gift16_weight_vector,
)
from repro.diffcrypt.sbox import SBox
from repro.diffcrypt.spbox import (
    spbox_differential_probability,
    spbox_deterministic_output,
    spbox_monte_carlo_probability,
)
from repro.diffcrypt.trail import DifferentialTrail, GIMLI_OPTIMAL_WEIGHTS
from repro.diffcrypt.trail_search import (
    find_weight_zero_trails,
    greedy_trail,
    round_differential_probability,
)

__all__ = [
    "AllInOneDistribution",
    "DifferentialTrail",
    "GIMLI_OPTIMAL_WEIGHTS",
    "SBox",
    "bayes_accuracy",
    "figure1_demonstration",
    "find_weight_zero_trails",
    "gift16_markov_distribution",
    "gift16_optimal_weight",
    "gift16_trail_vs_allinone",
    "gift16_weight_vector",
    "greedy_trail",
    "markov_violation_toygift",
    "round_differential_probability",
    "spbox_deterministic_output",
    "spbox_differential_probability",
    "spbox_monte_carlo_probability",
    "toyspeck_markov_distribution",
]
