"""Optimizers: SGD with momentum and Adam (the paper's choice, §1).

Both optimizers keep persistent per-parameter state buffers (moments,
velocities, one scratch array) and update them strictly in place: a
step performs zero array allocations once the buffers exist.  The
arithmetic is ordered to be bit-identical to the textbook out-of-place
formulation (asserted by the kernel-equivalence tests), so the in-place
rewrite is purely a memory-traffic optimisation.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import TrainingError


class Optimizer:
    """Base class: stateful parameter updates keyed by parameter identity."""

    def update(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        """Apply one in-place update step to every parameter."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        if learning_rate <= 0:
            raise TrainingError(f"learning rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}
        self._scratch: Dict[int, np.ndarray] = {}

    def update(self, params, grads):
        if len(params) != len(grads):
            raise TrainingError("parameter and gradient lists differ in length")
        for index, (param, grad) in enumerate(zip(params, grads)):
            scratch = self._scratch.get(index)
            if scratch is None or scratch.shape != param.shape:
                scratch = np.empty_like(param)
                self._scratch[index] = scratch
            if self.momentum:
                velocity = self._velocity.get(index)
                if velocity is None:
                    velocity = np.zeros_like(param)
                    self._velocity[index] = velocity
                # velocity = momentum * velocity - lr * grad, in place.
                np.multiply(velocity, self.momentum, out=velocity)
                np.multiply(grad, self.learning_rate, out=scratch)
                np.subtract(velocity, scratch, out=velocity)
                param += velocity
            else:
                np.multiply(grad, self.learning_rate, out=scratch)
                param -= scratch


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with Keras default hyper-parameters."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-7,
    ):
        if learning_rate <= 0:
            raise TrainingError(f"learning rate must be positive, got {learning_rate}")
        if not 0.0 <= beta_1 < 1.0 or not 0.0 <= beta_2 < 1.0:
            raise TrainingError("beta parameters must lie in [0, 1)")
        self.learning_rate = float(learning_rate)
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._num: Dict[int, np.ndarray] = {}
        self._den: Dict[int, np.ndarray] = {}
        self._step = 0

    def update(self, params, grads):
        if len(params) != len(grads):
            raise TrainingError("parameter and gradient lists differ in length")
        self._step += 1
        bias_1 = 1.0 - self.beta_1**self._step
        bias_2 = 1.0 - self.beta_2**self._step
        for index, (param, grad) in enumerate(zip(params, grads)):
            m = self._m.get(index)
            if m is None:
                m = np.zeros_like(param)
                v = np.zeros_like(param)
                num = np.empty_like(param)
                den = np.empty_like(param)
                self._m[index] = m
                self._v[index] = v
                self._num[index] = num
                self._den[index] = den
            else:
                v = self._v[index]
                num = self._num[index]
                den = self._den[index]
            # m = beta_1 * m + (1 - beta_1) * grad
            np.multiply(m, self.beta_1, out=m)
            np.multiply(grad, 1.0 - self.beta_1, out=num)
            np.add(m, num, out=m)
            # v = beta_2 * v + (1 - beta_2) * grad**2
            np.multiply(v, self.beta_2, out=v)
            np.multiply(grad, grad, out=num)
            np.multiply(num, 1.0 - self.beta_2, out=num)
            np.add(v, num, out=v)
            # param -= lr * (m / bias_1) / (sqrt(v / bias_2) + eps)
            np.divide(v, bias_2, out=den)
            np.sqrt(den, out=den)
            np.add(den, self.epsilon, out=den)
            np.divide(m, bias_1, out=num)
            np.multiply(num, self.learning_rate, out=num)
            np.divide(num, den, out=num)
            param -= num


OPTIMIZERS = {"sgd": SGD, "adam": Adam}


def get_optimizer(spec) -> Optimizer:
    """Resolve an optimizer from an instance or a Keras-style string name."""
    if isinstance(spec, Optimizer):
        return spec
    try:
        return OPTIMIZERS[spec]()
    except KeyError:
        known = ", ".join(sorted(OPTIMIZERS))
        raise TrainingError(f"unknown optimizer {spec!r}; known: {known}") from None
