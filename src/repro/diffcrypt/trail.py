"""Differential trails and their (Markov-assumption) probability.

A trail fixes the difference entering every round; under the Markov
assumption its probability is the product of the per-round transition
probabilities (paper Eq. 2).  The paper's §2.1 point is exactly that
this product is *wrong* for sub-key-free primitives — the trail object
therefore stores per-round probabilities explicitly so exact and
Markov-product numbers can be compared side by side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.errors import CipherError

#: Designers' optimal differential trail weights for round-reduced Gimli
#: (paper Table 1, obtained with SAT/SMT by the Gimli team).  Index by
#: round count.
GIMLI_OPTIMAL_WEIGHTS = {1: 0, 2: 0, 3: 2, 4: 6, 5: 12, 6: 22, 7: 36, 8: 52}


@dataclass(frozen=True)
class DifferentialTrail:
    """A differential characteristic: differences plus round probabilities.

    ``differences`` has ``rounds + 1`` entries (input difference first);
    ``round_probabilities`` has one entry per round.
    """

    differences: Tuple[Tuple[int, ...], ...]
    round_probabilities: Tuple[float, ...] = field(default=())

    def __post_init__(self):
        if len(self.differences) < 1:
            raise CipherError("a trail needs at least an input difference")
        if self.round_probabilities and len(self.round_probabilities) != self.rounds:
            raise CipherError(
                f"expected {self.rounds} round probabilities, "
                f"got {len(self.round_probabilities)}"
            )
        if any(not 0.0 <= p <= 1.0 for p in self.round_probabilities):
            raise CipherError("round probabilities must lie in [0, 1]")

    @property
    def rounds(self) -> int:
        """Number of rounds the trail covers."""
        return len(self.differences) - 1

    @property
    def input_difference(self) -> Tuple[int, ...]:
        """The difference entering round 1."""
        return self.differences[0]

    @property
    def output_difference(self) -> Tuple[int, ...]:
        """The difference after the last round."""
        return self.differences[-1]

    @property
    def probability(self) -> float:
        """Markov-assumption probability: the product of round probabilities."""
        prob = 1.0
        for p in self.round_probabilities:
            prob *= p
        return prob

    @property
    def weight(self) -> float:
        """``-log2`` of the Markov probability (``inf`` if impossible)."""
        prob = self.probability
        return math.inf if prob == 0.0 else -math.log2(prob)

    def extend(
        self, next_difference: Sequence[int], probability: float
    ) -> "DifferentialTrail":
        """Return a new trail with one more round appended."""
        return DifferentialTrail(
            self.differences + (tuple(int(w) for w in next_difference),),
            self.round_probabilities + (float(probability),),
        )

    def data_complexity(self, constant: float = 1.0) -> float:
        """Chosen-plaintext pairs needed to observe the trail once in
        expectation, ``constant / probability`` (the paper's ``> 2^52``
        argument for 8-round Gimli)."""
        prob = self.probability
        if prob == 0.0:
            return math.inf
        return constant / prob

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DifferentialTrail(rounds={self.rounds}, weight={self.weight:.2f})"
        )
