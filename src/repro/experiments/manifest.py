"""Run manifests: a machine-readable record of one experiment run.

:func:`run_with_manifest` wraps :func:`~repro.experiments.registry
.run_experiment` in a root span, captures every span the run produced
(the table runners open one per grid cell), and writes two files into
``run_dir``::

    <name>_result.json     the experiment's result dict, verbatim
    <name>_manifest.json   run metadata + per-cell spans

The manifest carries the experiment name, wall-clock start/duration,
the scalar keyword arguments, the requested *and* resolved worker
count, every ``REPRO_*`` environment knob, the Python/platform
fingerprint, the span list (name, start, duration, parent, attrs) and a
``cells`` digest (one wall-clock entry per ``*.cell`` span) — enough to
compare two runs of the same table without re-deriving anything from
logs.  Tracing is enabled for the duration of the call if it was not
already on; spans collected *before* the call are untouched.

Both files are written atomically (temp file + rename), so a run
directory never holds a truncated result — even when the process is
killed mid-write, which is exactly when a resumable run directory is
read back.

``python -m repro.experiments <name> --run-dir DIR`` routes through
this module.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.core.parallel import resolve_workers
from repro.jobs import atomic_write_text
from repro.obs import agg as obs_agg
from repro.obs import context as obs_context
from repro.obs import events as obs_events
from repro.obs import trace

#: Manifest schema version, bumped on incompatible layout changes.
#: v2: atomic writes, ``workers`` (requested/resolved), ``cells``.
#: v3: ``run_id`` + ``obs`` (merged trace / Prometheus artefacts,
#: contributing processes) — the run is now the unit of telemetry.
MANIFEST_VERSION = 3


def _scalar_args(kwargs: Dict) -> Dict:
    """The JSON-safe scalar subset of an experiment's keyword args."""
    return {
        key: value
        for key, value in kwargs.items()
        if isinstance(value, (bool, int, float, str)) or value is None
    }


def _repro_env() -> Dict[str, str]:
    return {
        key: value
        for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_")
    }


def _compute_manifest() -> Dict:
    """The resolved compute substrate: backend, BLAS control, kernels.

    ``env`` above records what was *requested*; this records what the
    process actually *resolved* — which backend ``REPRO_BACKEND`` named,
    whether the BLAS thread-count symbols were found, and whether the
    compiled int8 kernel passed its load-time self-test — so two
    manifests can be compared for compute-substrate drift, not just
    knob drift.
    """
    from repro.nn.backend import blas, get_backend, qkernel

    return {
        "backend": type(get_backend()).__name__,
        "blas_threads_controllable": blas.controllable(),
        "quant_mode": qkernel.quant_mode(),
        "quant_kernel_available": qkernel.available(),
    }


def _cell_digest(spans: List[Dict], queue_dir=None) -> List[Dict]:
    """Per-cell wall-clock entries for this run.

    Primary source: the run's ``*.cell`` spans, one per grid cell that
    executed in this process.  Cells dispatched to pool workers trace in
    the *worker's* buffer (lost to the parent), so a queued run falls
    back to the queue's job records, whose ``duration_s`` is the same
    wall-clock measured inside the worker — and also covers cells
    completed by *earlier* invocations of a resumed run.
    """
    cells = []
    for record in spans:
        if not record.get("name", "").endswith(".cell"):
            continue
        cells.append(
            {
                "span": record["name"],
                "attrs": record.get("attrs", {}),
                "wall_clock_s": record["dur_us"] / 1e6,
                "started_us": record["start_us"],
            }
        )
    if cells or queue_dir is None:
        return cells
    from repro.jobs import JobQueue

    for record in JobQueue(queue_dir).jobs():
        if record.get("duration_s") is None:
            continue
        spec = record.get("spec") or {}
        cells.append(
            {
                "span": "queue.job",
                "attrs": {
                    key: value
                    for key, value in spec.items()
                    if key not in ("experiment", "seed") and value is not None
                },
                "wall_clock_s": record["duration_s"],
                "status": record.get("status"),
                "attempts": record.get("attempts"),
            }
        )
    return cells


def _worker_manifest(kwargs: Dict) -> Dict:
    """Requested vs machine-resolved worker count for this run."""
    from repro.experiments.config import get_workers

    requested = kwargs.get("workers", get_workers())
    return {
        "requested": requested,
        "resolved": resolve_workers(requested),
    }


def run_with_manifest(name: str, run_dir, **kwargs) -> Tuple[Dict, Path]:
    """Run experiment ``name`` and write result + manifest into ``run_dir``.

    Returns ``(result, manifest_path)``.  Keyword arguments are passed
    through to the experiment function unchanged.
    """
    from repro.experiments.registry import run_experiment

    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    was_enabled = trace.is_enabled()
    if not was_enabled:
        trace.enable()
    before = len(trace.finished_spans())
    started_unix = time.time()
    start = time.perf_counter()
    # The run context propagates the run id into pool workers (which
    # flush their spans/metrics under run_dir/obs/) and routes run
    # events — cell lifecycle, fit epoch ticks — into events.jsonl.
    with obs_context.run_context(run_dir, trace=True) as ctx:
        obs_events.emit("run.start", experiment=name, run_id=ctx.run_id)
        try:
            with trace.span(f"experiment.{name}"):
                result = run_experiment(name, **kwargs)
        except BaseException as exc:
            obs_events.emit(
                "run.failed", experiment=name, run_id=ctx.run_id,
                error_type=type(exc).__name__,
                duration_s=round(time.perf_counter() - start, 3),
            )
            raise
        finally:
            duration = time.perf_counter() - start
            spans = trace.finished_spans()[before:]
            if not was_enabled:
                trace.disable()
        obs_events.emit(
            "run.done", experiment=name, run_id=ctx.run_id,
            duration_s=round(duration, 3),
        )
        # Flush the parent's own telemetry next to the workers' and
        # merge everything into one Chrome trace + one Prometheus
        # snapshot for the whole run.
        obs_context.flush_main(spans, ctx=ctx)
        merged = obs_agg.merge_run(run_dir)
    result_path = run_dir / f"{name}_result.json"
    atomic_write_text(
        result_path, json.dumps(result, indent=2, default=str) + "\n"
    )
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "experiment": name,
        "run_id": ctx.run_id,
        "started_unix": round(started_unix, 3),
        "duration_s": duration,
        "args": _scalar_args(kwargs),
        "workers": _worker_manifest(kwargs),
        "env": _repro_env(),
        "compute": _compute_manifest(),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "result_file": result_path.name,
        "cells": _cell_digest(spans, queue_dir=kwargs.get("queue_dir")),
        "spans": spans,
        "dropped_spans": trace.dropped_spans(),
        "obs": {
            "trace_file": merged["trace_path"].name,
            "metrics_file": merged["metrics_path"].name,
            "events_file": obs_events.EVENTS_FILENAME,
            "merged_spans": merged["spans"],
            "processes": merged["processes"],
        },
    }
    manifest_path = run_dir / f"{name}_manifest.json"
    atomic_write_text(
        manifest_path, json.dumps(manifest, indent=2, default=str) + "\n"
    )
    return result, manifest_path
