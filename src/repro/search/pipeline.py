"""End-to-end pipeline: search → train → register.

One declarative :class:`~repro.search.config.ScenarioSpec` drives the
whole chain the paper performs by hand:

1. **Search** (optional): run the evolutionary bias search over the
   spec's scenario family and take the global top-``num_differences``
   masks as the class differences.  Hand-given ``differences`` skip the
   search — or seed it, when both are present.
2. **Train**: the standard offline phase of
   :class:`~repro.core.distinguisher.MLDistinguisher` on the built
   scenario (sharded generation and the dataset cache apply unchanged —
   the scenario fingerprint covers the discovered difference set, so
   searched scenarios can never collide with paper scenarios in
   ``REPRO_DATASET_CACHE``).
3. **Register** (optional): persist the trained model in a
   :class:`~repro.serve.ModelRegistry`; the manifest's ``search``
   section records the discovered differences, their bias scores and
   the search budget, so a served model is auditable back to the
   difference set it was trained on.

Every stage reports through :mod:`repro.obs` spans and the process
metrics registry.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.distinguisher import MLDistinguisher
from repro.errors import SearchError
from repro.jobs import bind_run, run_cells
from repro.nn.architectures import build_mlp
from repro.obs import log as obs_log
from repro.obs.trace import span
from repro.search.config import ScenarioSpec
from repro.search.evolve import SearchConfig, SearchResult, evolve_differences
from repro.search.oracle import BiasScoringOracle

_log = obs_log.get_logger("repro.search")

#: Default offline budget of the pipeline's training stage (small: the
#: CLI is a scenario generator, not a paper-scale table run).
DEFAULT_TRAIN_SAMPLES = 12_000
DEFAULT_TRAIN_EPOCHS = 3
DEFAULT_HIDDEN = (64, 128)


def run_search(
    spec: ScenarioSpec, workers: Optional[int] = None
) -> SearchResult:
    """The search stage alone: ranked differences for ``spec``."""
    if spec.search is None:
        raise SearchError(f"spec {spec.name!r} has no 'search' section")
    config = SearchConfig.from_env(workers=workers, **spec.search)
    prototype = spec.prototype()
    oracle = BiasScoringOracle(
        prototype,
        n_samples=config.n_samples,
        rng=config.seed,
        workers=config.workers,
    )
    seeds = None
    if spec.differences is not None:
        seeds = np.asarray(
            spec.differences, dtype=prototype.difference_masks.dtype
        )
    allowed = spec.builder.allowed_bits(**spec.params)
    top_k = max(config.top_k, spec.num_differences)
    config = SearchConfig.from_env(
        workers=workers, **{**spec.search, "top_k": top_k}
    )
    return evolve_differences(oracle, config, allowed=allowed, seeds=seeds)


def run_search_pipeline(
    spec: ScenarioSpec,
    registry=None,
    workers: Optional[int] = None,
    verbose: bool = False,
) -> dict:
    """Run the full search → train → register chain for one spec.

    ``registry`` is a :class:`~repro.serve.ModelRegistry` (or ``None``
    to skip registration).  Returns a JSON-ready summary with the
    difference set actually used, the search digest (when a search
    ran), the training report, and the registered model id (when a
    registry was given).
    """
    result = None
    with span("search.pipeline", scenario=spec.scenario, spec=spec.name):
        if spec.search is not None:
            result = run_search(spec, workers=workers)
            masks = result.top(min(spec.num_differences,
                                   result.ranked_masks.shape[0]))
            if masks.shape[0] < 2:
                raise SearchError(
                    f"search returned {masks.shape[0]} usable difference(s); "
                    "a scenario needs at least 2"
                )
        else:
            masks = spec.differences
        scenario = spec.build_scenario(masks)

        train = dict(spec.train)
        num_samples = int(train.get("num_samples", DEFAULT_TRAIN_SAMPLES))
        epochs = int(train.get("epochs", DEFAULT_TRAIN_EPOCHS))
        hidden = list(train.get("hidden", DEFAULT_HIDDEN))
        seed = train.get("seed", 0)
        distinguisher = MLDistinguisher(
            scenario,
            model=build_mlp(hidden, "relu", num_classes=scenario.num_classes),
            epochs=epochs,
            batch_size=int(train.get("batch_size", 128)),
            rng=seed,
            workers=workers,
        )
        with span("search.train", samples=num_samples):
            report = distinguisher.train(
                num_samples,
                significance=float(train.get("significance", 1e-3)),
                verbose=verbose,
            )

        summary = {
            "name": spec.name,
            "scenario": spec.scenario,
            "params": dict(spec.params),
            "differences": np.asarray(scenario.difference_masks).tolist(),
            "search": result.summary() if result is not None else None,
            "training": {
                "validation_accuracy": report.validation_accuracy,
                "training_accuracy": report.training_accuracy,
                "num_samples": report.num_samples,
                "num_classes": report.num_classes,
            },
        }
        if registry is not None:
            record = registry.register(
                distinguisher.model,
                spec.register.get("name", spec.name),
                scenario=scenario,
                report=report,
                search=result.summary() if result is not None else None,
            )
            summary["model_id"] = record.model_id
            summary["version"] = record.version
            _log.info(
                "search.registered",
                name=record.name,
                model_id=record.model_id[:12],
            )
    return summary


# -- sweeps ------------------------------------------------------------------


def load_sweep(paths: Sequence[str]) -> List[dict]:
    """Read sweep scenarios from JSON config files.

    Each file holds either one scenario dict or a list of them; the
    concatenation (in argument order) is the sweep.  Every raw dict is
    validated through :meth:`ScenarioSpec.from_dict` here — a typo in
    scenario 7 of 9 should fail the sweep up front, not after six
    trainings — but the *raw* dicts are returned: they are the
    JSON-able job specs the queue fingerprints.
    """
    raws: List[dict] = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
        except FileNotFoundError:
            raise SearchError(f"no scenario config at {path!r}") from None
        except json.JSONDecodeError as exc:
            raise SearchError(f"invalid JSON in {path!r}: {exc}") from None
        entries = loaded if isinstance(loaded, list) else [loaded]
        for raw in entries:
            ScenarioSpec.from_dict(raw)  # validate eagerly
            raws.append(raw)
    if not raws:
        raise SearchError("sweep config files name no scenarios")
    names = [str(raw.get("name") or raw["scenario"]) for raw in raws]
    if len(set(names)) != len(names):
        raise SearchError(
            f"sweep scenario names must be unique, got {names}"
        )
    return raws


def _run_sweep_job(payload: Dict) -> dict:
    """One sweep scenario end-to-end (module-level: pickles into pools).

    The payload carries only JSON-able state (the raw spec dict and the
    registry path), so the job reruns identically on resume; scenario
    and registry objects are constructed inside the worker.  Oracle and
    dataset generation run with one in-cell worker — pool children
    cannot fork grandchildren — which is result-invariant.
    """
    spec = ScenarioSpec.from_dict(payload["raw"])
    registry = None
    if payload["registry_dir"] is not None:
        from repro.serve import ModelRegistry

        registry = ModelRegistry(payload["registry_dir"])
    with span("search.sweep.cell", spec=spec.name):
        return run_search_pipeline(
            spec,
            registry=registry,
            workers=payload["cell_workers"],
            verbose=payload["verbose"],
        )


def run_sweep(
    raws: Sequence[dict],
    registry_dir: Optional[str] = None,
    workers: Optional[int] = None,
    queue_dir=None,
    verbose: bool = False,
) -> List[dict]:
    """Run a sweep of scenario configs, optionally resumable.

    Each scenario is an independent cell: with ``workers`` they run in
    that many processes, and with ``queue_dir`` each becomes a
    persistent job keyed by the fingerprint of its raw config dict —
    ``python -m repro.search cfg1.json cfg2.json --resume DIR`` after an
    interruption re-runs only the scenarios that never finished (every
    spec carries its own seeds, so replayed summaries are bit-identical
    to a straight-through sweep).  Returns the summaries in config
    order.
    """
    raws = list(raws)
    if queue_dir is not None:
        bind_run(
            queue_dir,
            "search-sweep",
            {"registry": registry_dir is not None},
            0,
        )
    # Every cell samples with exactly one sharded worker: the sharded
    # generator is worker-count-invariant but *differs* from the legacy
    # single-stream path (workers=None), so pinning it makes sweep
    # summaries identical whatever ``--workers`` each (re-)invocation
    # used — the property the queue's bit-identical-resume contract
    # rests on.  (Pool children could not fork grandchildren anyway.)
    payloads = [
        {
            "raw": raw,
            "registry_dir": registry_dir,
            "cell_workers": 1,
            "verbose": verbose and workers in (None, 1),
        }
        for raw in raws
    ]
    return run_cells(
        _run_sweep_job,
        payloads,
        specs=raws,
        workers=workers,
        label="search.sweep",
        queue_dir=queue_dir,
    )
