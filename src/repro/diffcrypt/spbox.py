"""Exact differential probability of the 96-bit Gimli SP-box.

The SP-box on one column ``(a, b, c)`` first rotates ``x = a <<< 24``,
``y = b <<< 9``, ``z = c`` and then outputs

    ``c' = x ^ (z << 1) ^ ((y & z) << 2)``
    ``b' = y ^ x ^ ((x | z) << 1)``
    ``a' = z ^ y ^ ((x & y) << 3)``

Because the rotations are linear and every nonlinear term is a bitwise
AND/OR *shifted upward*, the XOR-difference condition decomposes per bit
position: position ``i`` of the inputs contributes three "disturbance"
bits

    ``g1_i = Δ(y & z)_i``  (consumed by ``c'`` at position ``i + 2``)
    ``g2_i = Δ(x | z)_i``  (consumed by ``b'`` at position ``i + 1``)
    ``g3_i = Δ(x & y)_i``  (consumed by ``a'`` at position ``i + 3``)

and for a fixed (input, output) difference pair each consumed ``g`` bit
is *forced* to a specific value, while bits shifted out of the word are
unconstrained.  Since ``(x_i, y_i, z_i)`` are independent uniform bits
across positions, the exact differential probability is the product of
32 per-position probabilities, each obtained by enumerating the eight
values of ``(x_i, y_i, z_i)``.

This gives a closed-form exact DP for a 96-bit map — the quantity
SAT/SMT solvers optimise over in the designers' Table 1 — verified here
against Monte-Carlo simulation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import CipherError
from repro.utils.bitops import rotl32

_MASK32 = 0xFFFFFFFF


def _check_diff(diff: Tuple[int, int, int]) -> Tuple[int, int, int]:
    if len(diff) != 3:
        raise CipherError(f"column difference must have 3 words, got {len(diff)}")
    return tuple(int(w) & _MASK32 for w in diff)


def _rotated(diff: Tuple[int, int, int]) -> Tuple[int, int, int]:
    da, db, dc = diff
    return rotl32(da, 24), rotl32(db, 9), dc


def _position_probability(
    dx: int, dy: int, dz: int,
    r1: Optional[int], r2: Optional[int], r3: Optional[int],
) -> float:
    """Probability over ``(x, y, z) in {0,1}^3`` that all forced
    disturbance bits take their required values (``None`` = don't care)."""
    good = 0
    for bits in range(8):
        x, y, z = bits & 1, (bits >> 1) & 1, (bits >> 2) & 1
        g1 = ((y ^ dy) & (z ^ dz)) ^ (y & z)
        g2 = ((x ^ dx) | (z ^ dz)) ^ (x | z)
        g3 = ((x ^ dx) & (y ^ dy)) ^ (x & y)
        if r1 is not None and g1 != r1:
            continue
        if r2 is not None and g2 != r2:
            continue
        if r3 is not None and g3 != r3:
            continue
        good += 1
    return good / 8.0


def spbox_differential_probability(
    input_diff: Tuple[int, int, int], output_diff: Tuple[int, int, int]
) -> float:
    """Exact ``P(input_diff -> output_diff)`` for one SP-box column.

    Differences are given in state coordinates ``(Δs0, Δs1, Δs2)``;
    the probability is over a uniform column.
    """
    dx, dy, dz = _rotated(_check_diff(input_diff))
    ba, bb, bc = _check_diff(output_diff)

    # Linear sanity at positions where no disturbance bit is consumed.
    # c'_j has no g-term for j < 2, b'_j none for j < 1, a'_j none for j < 3.
    for j in range(2):
        want = ((dx >> j) & 1) ^ ((dz >> (j - 1)) & 1 if j >= 1 else 0)
        if ((bc >> j) & 1) != want:
            return 0.0
    if ((bb >> 0) & 1) != (((dy >> 0) & 1) ^ ((dx >> 0) & 1)):
        return 0.0
    for j in range(3):
        if ((ba >> j) & 1) != (((dz >> j) & 1) ^ ((dy >> j) & 1)):
            return 0.0

    probability = 1.0
    for i in range(32):
        r1 = r2 = r3 = None
        j1 = i + 2
        if j1 < 32:
            r1 = ((bc >> j1) & 1) ^ ((dx >> j1) & 1) ^ ((dz >> (j1 - 1)) & 1)
        j2 = i + 1
        if j2 < 32:
            r2 = ((bb >> j2) & 1) ^ ((dy >> j2) & 1) ^ ((dx >> j2) & 1)
        j3 = i + 3
        if j3 < 32:
            r3 = ((ba >> j3) & 1) ^ ((dz >> j3) & 1) ^ ((dy >> j3) & 1)
        p = _position_probability(
            (dx >> i) & 1, (dy >> i) & 1, (dz >> i) & 1, r1, r2, r3
        )
        if p == 0.0:
            return 0.0
        probability *= p
    return probability


def spbox_deterministic_output(
    input_diff: Tuple[int, int, int]
) -> Optional[Tuple[int, int, int]]:
    """The unique probability-1 output difference, or ``None``.

    A difference propagates deterministically through the SP-box iff at
    every position whose disturbance bits are consumed, those bits are
    constant over the eight ``(x, y, z)`` values — e.g. when the active
    input bits sit high enough that every affected nonlinear term is
    shifted out of the word.
    """
    dx, dy, dz = _rotated(_check_diff(input_diff))
    bc = bb = ba = 0
    for i in range(32):
        bits = [
            (
                ((y ^ ((dy >> i) & 1)) & (z ^ ((dz >> i) & 1))) ^ (y & z),
                ((x ^ ((dx >> i) & 1)) | (z ^ ((dz >> i) & 1))) ^ (x | z),
                ((x ^ ((dx >> i) & 1)) & (y ^ ((dy >> i) & 1))) ^ (x & y),
            )
            for bitsv in range(8)
            for x, y, z in [(bitsv & 1, (bitsv >> 1) & 1, (bitsv >> 2) & 1)]
        ]
        g1_values = {b[0] for b in bits}
        g2_values = {b[1] for b in bits}
        g3_values = {b[2] for b in bits}
        if i + 2 < 32:
            if len(g1_values) > 1:
                return None
            bc |= next(iter(g1_values)) << (i + 2)
        if i + 1 < 32:
            if len(g2_values) > 1:
                return None
            bb |= next(iter(g2_values)) << (i + 1)
        if i + 3 < 32:
            if len(g3_values) > 1:
                return None
            ba |= next(iter(g3_values)) << (i + 3)
    shift = lambda v, k: (v << k) & _MASK32  # noqa: E731 - local helper
    bc ^= dx ^ shift(dz, 1)
    bb ^= dy ^ dx
    ba ^= dz ^ dy
    return ba, bb, bc


def spbox_apply(column: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """Apply the SP-box to one concrete column (scalar, for testing)."""
    a, b, c = _check_diff(column)
    x = rotl32(a, 24)
    y = rotl32(b, 9)
    z = c
    new_c = (x ^ ((z << 1) & _MASK32) ^ (((y & z) << 2) & _MASK32)) & _MASK32
    new_b = (y ^ x ^ (((x | z) << 1) & _MASK32)) & _MASK32
    new_a = (z ^ y ^ (((x & y) << 3) & _MASK32)) & _MASK32
    return new_a, new_b, new_c


def spbox_monte_carlo_probability(
    input_diff: Tuple[int, int, int],
    output_diff: Tuple[int, int, int],
    samples: int = 1 << 16,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo estimate of the SP-box DP (cross-check for the exact DP)."""
    gen = rng if rng is not None else np.random.default_rng()
    da, db, dc = _check_diff(input_diff)
    ba, bb, bc = _check_diff(output_diff)
    cols = gen.integers(0, 1 << 32, size=(samples, 3), dtype=np.uint64).astype(
        np.uint32
    )
    a, b, c = cols[:, 0], cols[:, 1], cols[:, 2]

    def batch_spbox(av, bv, cv):
        x = (av << np.uint32(24)) | (av >> np.uint32(8))
        y = (bv << np.uint32(9)) | (bv >> np.uint32(23))
        z = cv
        nc = x ^ (z << np.uint32(1)) ^ ((y & z) << np.uint32(2))
        nb = y ^ x ^ ((x | z) << np.uint32(1))
        na = z ^ y ^ ((x & y) << np.uint32(3))
        return na, nb, nc

    oa, ob, oc = batch_spbox(a, b, c)
    pa, pb, pc = batch_spbox(
        a ^ np.uint32(da), b ^ np.uint32(db), c ^ np.uint32(dc)
    )
    hits = ((oa ^ pa) == np.uint32(ba)) & ((ob ^ pb) == np.uint32(bb)) & (
        (oc ^ pc) == np.uint32(bc)
    )
    return float(hits.mean())
