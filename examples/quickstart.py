"""Quickstart: train an ML differential distinguisher on Gimli-Hash.

Runs the paper's Algorithm 2 end to end on a 6-round Gimli-Hash
scenario (message-byte differences at positions 4 and 12), then plays
the distinguishing game against both a real cipher oracle and a random
oracle.  Takes ~15 seconds on a laptop.

Usage::

    python examples/quickstart.py [--rounds 6] [--samples 20000]
"""

import argparse
import time

from repro import GimliHashScenario, MLDistinguisher
from repro.core.statistics import required_online_samples


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=6,
                        help="round-reduced Gimli rounds (paper: 6, 7, 8)")
    parser.add_argument("--samples", type=int, default=20_000,
                        help="offline training samples")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"== Offline phase: {args.rounds}-round Gimli-Hash, "
          f"{args.samples} samples ==")
    scenario = GimliHashScenario(rounds=args.rounds)
    distinguisher = MLDistinguisher(scenario, epochs=5, rng=args.seed)

    start = time.perf_counter()
    report = distinguisher.train(num_samples=args.samples)
    print(f"training accuracy   : {report.training_accuracy:.4f}")
    print(f"validation accuracy : {report.validation_accuracy:.4f} "
          f"(random baseline {report.baseline:.4f})")
    print(f"advantage           : {report.advantage:+.4f}")
    print(f"offline complexity  : 2^{report.offline_log2:.1f} samples, "
          f"{time.perf_counter() - start:.1f}s")

    n_online = max(
        512,
        required_online_samples(report.validation_accuracy, 2,
                                error_probability=0.01),
    )
    print(f"\n== Online phase: {n_online} samples per oracle ==")
    for name, oracle in [
        ("cipher oracle", scenario.cipher_oracle()),
        ("random oracle", scenario.random_oracle(rng=args.seed + 1)),
    ]:
        result = distinguisher.test(oracle, n_online)
        print(f"{name}: accuracy {result.accuracy:.4f} "
              f"(threshold {result.threshold:.4f}) -> {result.verdict}")


if __name__ == "__main__":
    main()
