"""Cross-module property tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.gimli import gimli_permute_batch
from repro.ciphers.toygift import ToyGift
from repro.core.scenario import GimliHashScenario, ToySpeckScenario
from repro.diffcrypt.sbox import SBox
from repro.diffcrypt.spbox import spbox_apply, spbox_differential_probability
from repro.nn.layers import Softmax
from repro.nn.losses import one_hot

nibble_table = st.permutations(list(range(16)))


class TestSboxInvariants:
    @settings(max_examples=15, deadline=None)
    @given(nibble_table)
    def test_ddt_row_sums(self, table):
        sbox = SBox(table)
        assert (sbox.ddt.sum(axis=1) == 16).all()

    @settings(max_examples=15, deadline=None)
    @given(nibble_table)
    def test_ddt_of_inverse_is_transpose(self, table):
        sbox = SBox(table)
        assert (sbox.inverse.ddt == sbox.ddt.T).all()

    @settings(max_examples=10, deadline=None)
    @given(nibble_table)
    def test_uniformity_even_and_bounded(self, table):
        sbox = SBox(table)
        uniformity = sbox.differential_uniformity
        assert uniformity % 2 == 0
        assert 2 <= uniformity <= 16

    @settings(max_examples=10, deadline=None)
    @given(nibble_table)
    def test_lat_parseval(self, table):
        sbox = SBox(table)
        assert ((sbox.lat.astype(np.int64) ** 2).sum(axis=1) == 64).all()


class TestSpboxInvariants:
    word = st.integers(0, 2**32 - 1)

    @settings(max_examples=20, deadline=None)
    @given(word, word, word, word, word, word)
    def test_observed_diff_has_positive_probability(self, a, b, c, da, db, dc):
        o1 = spbox_apply((a, b, c))
        o2 = spbox_apply((a ^ da, b ^ db, c ^ dc))
        dout = tuple(x ^ y for x, y in zip(o1, o2))
        assert spbox_differential_probability((da, db, dc), dout) > 0.0

    @settings(max_examples=10, deadline=None)
    @given(word, word, word)
    def test_zero_diff_to_zero(self, a, b, c):
        o1 = spbox_apply((a, b, c))
        o2 = spbox_apply((a, b, c))
        assert o1 == o2


class TestPermutationInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 2**32 - 1), min_size=12, max_size=12),
           st.integers(1, 24))
    def test_gimli_xor_linearity_fails(self, state, rounds):
        """Gimli is nonlinear: P(x ^ y) != P(x) ^ P(y) in general — a
        sanity property that would expose an accidentally-linearised
        implementation whenever any nonlinear term activates."""
        arr = np.array(state, dtype=np.uint32)
        other = arr ^ np.uint32(0xDEADBEEF)
        lhs = gimli_permute_batch(arr ^ other, rounds)
        rhs = gimli_permute_batch(arr, rounds) ^ gimli_permute_batch(other, rounds)
        # Not a hard guarantee for every input, but overwhelmingly true;
        # tolerate the measure-zero case by checking a bundle.
        if (lhs == rhs).all():
            arr2 = arr ^ np.uint32(1)
            lhs2 = gimli_permute_batch(arr2 ^ other, rounds)
            rhs2 = gimli_permute_batch(arr2, rounds) ^ gimli_permute_batch(
                other, rounds
            )
            assert (lhs2 != rhs2).any()


class TestScenarioInvariants:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 8), st.integers(5, 40))
    def test_dataset_balanced_and_binary(self, rounds, n_per_class):
        scenario = GimliHashScenario(rounds=rounds)
        x, y = scenario.generate_dataset(n_per_class, rng=rounds)
        assert (np.bincount(y, minlength=2) == n_per_class).all()
        assert set(np.unique(x)).issubset({0.0, 1.0})

    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 6))
    def test_toyspeck_dataset_deterministic(self, rounds):
        scenario = ToySpeckScenario(rounds=rounds)
        a = scenario.generate_dataset(10, rng=42)
        b = scenario.generate_dataset(10, rng=42)
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()


class TestToyGiftInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.permutations(list(range(8))))
    def test_any_wiring_is_bijective(self, wiring):
        toy = ToyGift(wiring)
        outputs = {toy.encrypt(v) for v in range(256)}
        assert len(outputs) == 256

    @settings(max_examples=10, deadline=None)
    @given(st.permutations(list(range(8))), st.integers(1, 255))
    def test_exact_probability_is_multiple_of_1_over_256(self, wiring, _seed):
        toy = ToyGift(wiring)
        prob = toy.characteristic_probability_exact()
        assert abs(prob * 256 - round(prob * 256)) < 1e-9


class TestNNInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 6), st.integers(2, 5))
    def test_softmax_rows_normalised(self, n, classes):
        rng = np.random.default_rng(n * 10 + classes)
        out = Softmax().forward(rng.normal(size=(n, classes)) * 10)
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out >= 0).all()

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=30))
    def test_one_hot_roundtrip(self, labels):
        encoded = one_hot(np.array(labels), 4)
        assert list(encoded.argmax(axis=1)) == labels
        assert (encoded.sum(axis=1) == 1).all()
