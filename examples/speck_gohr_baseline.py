"""Gohr's CRYPTO'19 real-vs-random game on SPECK-32/64 (paper §2.3).

Trains MLP distinguishers that tell real ciphertext pairs (encryptions
of ``P`` and ``P ^ 0x0040/0000`` under one key) from random pairs, for a
sweep of round counts, and prints the accuracy decay.  Gohr's deep
residual networks reach 8 rounds; this plain-MLP baseline shows the same
qualitative curve at lower depth, which is all the paper's background
section relies on.

Usage::

    python examples/speck_gohr_baseline.py [--samples 40000]
"""

import argparse
import time

from repro.experiments.speck_baseline import run_speck_baseline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=40_000)
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--rounds", type=int, nargs="+", default=[3, 4, 5, 6])
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    start = time.perf_counter()
    result = run_speck_baseline(
        rounds=tuple(args.rounds),
        num_samples=args.samples,
        epochs=args.epochs,
        rng=args.seed,
    )
    print(f"input difference: {result['delta']:#010x} (Gohr's choice)")
    print(f"{'rounds':>6}  {'accuracy':>8}")
    for row in result["rows"]:
        print(f"{row['rounds']:>6}  {row['measured']:>8.4f}")
    print(f"\n({time.perf_counter() - start:.1f}s total; accuracy decays "
          f"toward 0.5 as rounds increase — Gohr's Table 2 shape)")


if __name__ == "__main__":
    main()
