"""Benchmark: the key-recovery extension (paper §6 open problem).

Gohr-style last-round-subkey recovery on 4-round SPECK-32/64: a 3-round
neural distinguisher scores candidate final subkeys after one-round
decryption.  Success metric: the true subkey's rank in the candidate
list — anything far above random (expected rank = half the candidates)
turns the distinguisher into key recovery.

Also quantifies, exactly on Gift16, the single-trail vs all-in-one gap
the paper's method exploits.
"""

from conftest import run_once

from repro.core.key_recovery import SpeckKeyRecovery
from repro.experiments.report import format_table

SECRET_KEY = (0x1918, 0x1110, 0x0908, 0x0100)


def test_speck_last_round_key_recovery(benchmark):
    def run():
        recovery = SpeckKeyRecovery(attack_rounds=4, epochs=4, rng=5)
        accuracy = recovery.train_distinguisher(40_000)
        result = recovery.attack(
            SECRET_KEY, n_pairs=256, candidate_bits=12, rng=3
        )
        return accuracy, result

    accuracy, result = run_once(benchmark, run)
    total = len(result.candidates)
    rank = result.true_key_rank
    print(f"\n3-round distinguisher accuracy : {accuracy:.4f}")
    print(f"true subkey rank               : {rank} of {total} "
          f"(random expectation: {total // 2})")
    print(f"keyspace reduction             : {total / max(1, rank + 1):.0f}x")
    assert accuracy > 0.85
    # The true subkey lands in the top 1% of candidates.
    assert rank < total * 0.01


def test_gift16_single_trail_vs_allinone(benchmark):
    from repro.diffcrypt.linear import gift16_cryptanalytic_panorama

    def run():
        return [
            gift16_cryptanalytic_panorama(rounds, (0x0001, 0x0010))
            for rounds in (2, 3, 4)
        ]

    rows = run_once(benchmark, run)
    print()
    print(format_table(
        ["rounds", "differential trail (log2 data)",
         "linear trail (log2 data)", "all-in-one Bayes acc",
         "all-in-one online (log2 data)"],
        [[r["rounds"], r["differential_trail_log2"],
          r["linear_trail_log2"], r["allinone_bayes_accuracy"],
          r["allinone_online_log2"]] for r in rows],
        title="Gift16: single-trail methods vs all-in-one (all exact)",
    ))
    # The paper's core claim, exact at this scale: at depth, the
    # all-in-one distinguisher needs less data than the optimal single
    # differential or linear trail.
    deepest = rows[-1]
    assert deepest["allinone_online_log2"] < deepest["differential_trail_log2"]
    assert deepest["allinone_online_log2"] < deepest["linear_trail_log2"]
