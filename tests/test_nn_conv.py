"""Tests for Conv1D and pooling layers."""

import numpy as np
import pytest

from nn_helpers import layer_gradient_check
from repro.errors import LayerError
from repro.nn.conv import Conv1D, GlobalAveragePool1D, MaxPool1D


class TestConv1D:
    def test_valid_output_shape(self, rng):
        layer = Conv1D(5, 3, padding="valid")
        layer.build((10, 2), rng)
        out = layer.forward(rng.normal(size=(4, 10, 2)))
        assert out.shape == (4, 8, 5)
        assert layer.output_shape((10, 2)) == (8, 5)

    def test_same_output_shape(self, rng):
        layer = Conv1D(5, 3, padding="same")
        layer.build((10, 2), rng)
        out = layer.forward(rng.normal(size=(4, 10, 2)))
        assert out.shape == (4, 10, 5)

    def test_param_count(self, rng):
        layer = Conv1D(7, 3)
        layer.build((10, 4), rng)
        assert layer.count_params() == 3 * 4 * 7 + 7

    def test_identity_kernel(self, rng):
        """Kernel size 1 with identity weights reproduces the input."""
        layer = Conv1D(2, 1, use_bias=False)
        layer.build((5, 2), rng)
        layer.params[0][...] = np.eye(2)[np.newaxis]
        x = rng.normal(size=(3, 5, 2))
        assert np.allclose(layer.forward(x), x)

    def test_known_convolution(self, rng):
        """A kernel of ones computes windowed sums."""
        layer = Conv1D(1, 2, use_bias=False)
        layer.build((4, 1), rng)
        layer.params[0][...] = 1.0
        x = np.array([[[1.0], [2.0], [3.0], [4.0]]])
        out = layer.forward(x)
        assert np.allclose(out[0, :, 0], [3.0, 5.0, 7.0])

    def test_gradients_valid(self, rng):
        x = rng.normal(size=(3, 8, 2))
        assert layer_gradient_check(Conv1D(4, 3, padding="valid"), x, rng) < 1e-5

    def test_gradients_same(self, rng):
        x = rng.normal(size=(3, 8, 2))
        assert layer_gradient_check(Conv1D(4, 3, padding="same"), x, rng) < 1e-5

    def test_invalid_padding(self):
        with pytest.raises(LayerError):
            Conv1D(4, 3, padding="full")

    def test_kernel_too_large(self, rng):
        with pytest.raises(LayerError):
            Conv1D(4, 11).build((10, 2), rng)

    def test_needs_3d_input_shape(self, rng):
        with pytest.raises(LayerError):
            Conv1D(4, 3).build((10,), rng)


class TestMaxPool1D:
    def test_forward(self):
        layer = MaxPool1D(2)
        x = np.array([[[1.0], [5.0], [2.0], [3.0]]])
        out = layer.forward(x, training=True)
        assert np.allclose(out[0, :, 0], [5.0, 3.0])

    def test_backward_routes_to_argmax(self):
        layer = MaxPool1D(2)
        x = np.array([[[1.0], [5.0], [2.0], [3.0]]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[1.0], [2.0]]]))
        assert np.allclose(grad[0, :, 0], [0.0, 1.0, 0.0, 2.0])

    def test_trims_ragged_tail(self, rng):
        layer = MaxPool1D(3)
        out = layer.forward(rng.normal(size=(2, 10, 4)), training=True)
        assert out.shape == (2, 3, 4)

    def test_gradients(self, rng):
        # Use well-separated values so argmax ties cannot occur.
        x = rng.permutation(np.arange(48, dtype=np.float64)).reshape(2, 12, 2)
        assert layer_gradient_check(MaxPool1D(2), x, rng) < 1e-5

    def test_invalid_pool(self):
        with pytest.raises(LayerError):
            MaxPool1D(0)

    def test_output_shape(self):
        assert MaxPool1D(2).output_shape((10, 3)) == (5, 3)


class TestGlobalAveragePool:
    def test_forward(self):
        x = np.array([[[1.0, 2.0], [3.0, 4.0]]])
        out = GlobalAveragePool1D().forward(x)
        assert np.allclose(out, [[2.0, 3.0]])

    def test_gradients(self, rng):
        x = rng.normal(size=(3, 6, 4))
        assert layer_gradient_check(GlobalAveragePool1D(), x, rng) < 1e-5

    def test_output_shape(self):
        assert GlobalAveragePool1D().output_shape((9, 5)) == (5,)
