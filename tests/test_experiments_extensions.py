"""Smoke tests for the extension experiments in the registry."""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestPanorama:
    def test_runs_and_orders(self):
        result = run_experiment("panorama", rounds=(2, 3))
        assert result["experiment"] == "panorama"
        assert len(result["rows"]) == 2
        for row in result["rows"]:
            assert row["differential_trail_log2"] > 0
            assert row["linear_trail_log2"] > 0


class TestKeyRecoveryExperiment:
    def test_small_run(self):
        result = run_experiment(
            "key-recovery",
            train_samples=12_000,
            n_pairs=96,
            candidate_bits=6,
            rng=5,
        )
        row = result["rows"][0]
        assert row["distinguisher_accuracy"] > 0.85
        assert row["candidates"] == 64
        # True key well inside the top half.
        assert row["true_key_rank"] < 16


class TestRegistryCompleteness:
    def test_new_entries_registered(self):
        assert "panorama" in EXPERIMENTS
        assert "key-recovery" in EXPERIMENTS

    def test_every_entry_callable(self):
        for name, func in EXPERIMENTS.items():
            assert callable(func), name


class TestCliListsExtensions:
    def test_argparse_accepts_panorama(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["panorama"]) == 0
        out = capsys.readouterr().out
        assert "panorama" in out

    def test_argparse_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])
