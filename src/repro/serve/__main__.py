"""CLI entry point: ``python -m repro.serve --registry DIR``.

Starts the HTTP serving endpoint over a model registry directory and
blocks until interrupted (SIGINT triggers a graceful shutdown: pending
requests drain before the process exits).
"""

from __future__ import annotations

import argparse

from repro.serve.http import create_server


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve registered distinguishers over HTTP"
    )
    parser.add_argument(
        "--registry",
        default="./serve-registry",
        help="model registry directory (default: ./serve-registry)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8151)
    parser.add_argument(
        "--max-batch", type=int, default=None,
        help="micro-batch row cap (default: REPRO_SERVE_MAX_BATCH or 256)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=None,
        help="batch coalescing window (default: REPRO_SERVE_MAX_WAIT_MS or 2.0)",
    )
    args = parser.parse_args(argv)
    server = create_server(
        args.registry,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
    )
    server.start()
    models = len(server.service.registry.list())
    print(f"serving {models} model(s) from {args.registry} at {server.url}")
    print("endpoints: /healthz /v1/models /v1/metrics /v1/classify /v1/distinguish")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        print("shutting down (draining pending requests)...")
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
