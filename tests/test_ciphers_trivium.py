"""Tests for Trivium: scalar/batch parity, state loading, keystream."""

import numpy as np
import pytest

from repro.ciphers.trivium import (
    FULL_WARMUP,
    IV_BITS,
    KEY_BITS,
    STATE_BITS,
    Trivium,
    clock,
    keystream,
    load_state,
)
from repro.errors import CipherError, ShapeError


def _bits(rng, n):
    return [int(b) for b in rng.integers(0, 2, size=n)]


class TestLoadState:
    def test_layout(self, rng):
        key = _bits(rng, KEY_BITS)
        iv = _bits(rng, IV_BITS)
        state = load_state(key, iv)
        assert len(state) == STATE_BITS
        assert state[:KEY_BITS] == key
        assert state[93:93 + IV_BITS] == iv
        assert state[285:288] == [1, 1, 1]
        # Unfilled positions are zero.
        assert state[KEY_BITS:93] == [0] * (93 - KEY_BITS)

    def test_wrong_sizes(self):
        with pytest.raises(CipherError):
            load_state([0] * 79, [0] * 80)
        with pytest.raises(CipherError):
            load_state([0] * 80, [0] * 81)


class TestClock:
    def test_preserves_length(self):
        state = [0] * STATE_BITS
        new, z = clock(state)
        assert len(new) == STATE_BITS
        assert z in (0, 1)

    def test_shift_structure(self, rng):
        state = _bits(rng, STATE_BITS)
        new, _ = clock(state)
        # Register A shifted: old bits 0..91 appear at 1..92.
        assert new[1:93] == state[0:92]
        assert new[94:177] == state[93:176]
        assert new[178:288] == state[177:287]


class TestKeystream:
    def test_deterministic(self, rng):
        key = _bits(rng, KEY_BITS)
        iv = _bits(rng, IV_BITS)
        assert keystream(key, iv, 32, warmup=64) == keystream(key, iv, 32, warmup=64)

    def test_iv_sensitivity(self, rng):
        key = _bits(rng, KEY_BITS)
        iv = _bits(rng, IV_BITS)
        iv2 = list(iv)
        iv2[0] ^= 1
        assert keystream(key, iv, 64, warmup=FULL_WARMUP) != keystream(
            key, iv2, 64, warmup=FULL_WARMUP
        )

    def test_batch_matches_scalar(self, rng):
        keys = rng.integers(0, 2, size=(3, KEY_BITS), dtype=np.uint8)
        ivs = rng.integers(0, 2, size=(3, IV_BITS), dtype=np.uint8)
        batch = Trivium(warmup=128).keystream_batch(keys, ivs, 24)
        for i in range(3):
            scalar = keystream(
                [int(b) for b in keys[i]], [int(b) for b in ivs[i]], 24, warmup=128
            )
            assert scalar == [int(b) for b in batch[i]]

    def test_batch_shapes(self, rng):
        keys = rng.integers(0, 2, size=(5, KEY_BITS), dtype=np.uint8)
        ivs = rng.integers(0, 2, size=(5, IV_BITS), dtype=np.uint8)
        out = Trivium(warmup=16).keystream_batch(keys, ivs, 10)
        assert out.shape == (5, 10)
        assert set(np.unique(out)).issubset({0, 1})

    def test_shape_validation(self, rng):
        t = Trivium(warmup=0)
        with pytest.raises(ShapeError):
            t.keystream_batch(
                np.zeros((2, 79), dtype=np.uint8), np.zeros((2, 80), dtype=np.uint8), 4
            )
        with pytest.raises(ShapeError):
            t.keystream_batch(
                np.zeros((2, 80), dtype=np.uint8), np.zeros((3, 80), dtype=np.uint8), 4
            )

    def test_negative_warmup(self):
        with pytest.raises(CipherError):
            Trivium(warmup=-1)

    def test_keystream_balanced_after_full_warmup(self, rng):
        """Full-warm-up keystream should look balanced."""
        keys = rng.integers(0, 2, size=(8, KEY_BITS), dtype=np.uint8)
        ivs = rng.integers(0, 2, size=(8, IV_BITS), dtype=np.uint8)
        ks = Trivium(warmup=FULL_WARMUP).keystream_batch(keys, ivs, 128)
        density = ks.mean()
        assert 0.4 < density < 0.6
