"""Per-call BLAS thread-domain control (train vs serve).

numpy's OpenBLAS owns one process-wide thread pool; the right size
differs by workload.  Training wants every core on its large GEMMs,
while a serving process running the micro-batching engine next to
request threads usually wants BLAS pinned to fewer cores so matmul
worker threads don't fight the HTTP handlers.

Two environment knobs set per-domain thread counts:

* ``REPRO_BLAS_THREADS_TRAIN`` — applied around ``Sequential.fit``;
* ``REPRO_BLAS_THREADS_SERVE`` — applied around each fused engine
  predict (:class:`~repro.serve.engine.MicroBatchEngine`).

Unset knobs make :func:`thread_domain` a shared no-op context manager
(zero overhead on the hot path).  Thread-count changes never alter
results — OpenBLAS GEMM output is identical for any pool size — so
these knobs, like every other ``REPRO_*`` knob, only move wall-clock.

The control handle is resolved lazily by scanning the loaded shared
objects for an OpenBLAS with a ``*set_num_threads*`` entry point
(stock ``openblas_set_num_threads`` and the suffixed scipy-openblas
builds).  No OpenBLAS (or a static/MKL numpy) degrades to the no-op.
"""

from __future__ import annotations

import contextlib
import ctypes
import os
import re
import threading
from typing import Optional, Tuple

from repro.errors import TrainingError

TRAIN_THREADS_ENV_VAR = "REPRO_BLAS_THREADS_TRAIN"
SERVE_THREADS_ENV_VAR = "REPRO_BLAS_THREADS_SERVE"

_DOMAIN_ENV_VARS = {
    "train": TRAIN_THREADS_ENV_VAR,
    "serve": SERVE_THREADS_ENV_VAR,
}

#: Candidate (set, get) symbol pairs, stock OpenBLAS first, then the
#: suffixed scipy-openblas wheels numpy/scipy bundle.
_SYMBOL_PAIRS = (
    ("openblas_set_num_threads", "openblas_get_num_threads"),
    ("openblas_set_num_threads64_", "openblas_get_num_threads64_"),
    ("scipy_openblas_set_num_threads64_", "scipy_openblas_get_num_threads64_"),
    ("scipy_openblas_set_num_threads_64_", "scipy_openblas_get_num_threads_64_"),
)

_lock = threading.Lock()
_resolved = False
_set_fn = None
_get_fn = None


def _candidate_libraries():
    """Paths of loaded shared objects that look like an OpenBLAS."""
    paths = []
    try:
        with open("/proc/self/maps", "r", encoding="utf-8") as maps:
            seen = set()
            for line in maps:
                match = re.search(r"(/\S+openblas\S*\.so[^\s]*)", line, re.I)
                if match and match.group(1) not in seen:
                    seen.add(match.group(1))
                    paths.append(match.group(1))
    except OSError:
        pass
    return paths


def _resolve() -> Tuple[Optional[object], Optional[object]]:
    """Find (set_num_threads, get_num_threads) in the loaded BLAS."""
    global _resolved, _set_fn, _get_fn
    with _lock:
        if _resolved:
            return _set_fn, _get_fn
        _resolved = True
        # numpy must be imported for its BLAS to be mapped; every caller
        # of this module already did so transitively.
        for path in _candidate_libraries():
            try:
                lib = ctypes.CDLL(path)
            except OSError:
                continue
            for set_name, get_name in _SYMBOL_PAIRS:
                set_fn = getattr(lib, set_name, None)
                get_fn = getattr(lib, get_name, None)
                if set_fn is None or get_fn is None:
                    continue
                set_fn.argtypes = [ctypes.c_int]
                set_fn.restype = None
                get_fn.argtypes = []
                get_fn.restype = ctypes.c_int
                _set_fn, _get_fn = set_fn, get_fn
                return _set_fn, _get_fn
    return None, None


def controllable() -> bool:
    """True when the loaded BLAS exposes a thread-count control."""
    set_fn, _ = _resolve()
    return set_fn is not None


def get_blas_threads() -> Optional[int]:
    """The current BLAS pool size, or ``None`` when uncontrollable."""
    _, get_fn = _resolve()
    return int(get_fn()) if get_fn is not None else None


def set_blas_threads(count: int) -> bool:
    """Set the BLAS pool size; returns False when uncontrollable."""
    if count < 1:
        raise TrainingError(f"BLAS thread count must be >= 1, got {count}")
    set_fn, _ = _resolve()
    if set_fn is None:
        return False
    set_fn(int(count))
    return True


def domain_threads(domain: str) -> Optional[int]:
    """The configured thread count for ``domain``, or ``None`` if unset."""
    try:
        env_var = _DOMAIN_ENV_VARS[domain]
    except KeyError:
        known = ", ".join(sorted(_DOMAIN_ENV_VARS))
        raise TrainingError(
            f"unknown BLAS thread domain {domain!r}; known: {known}"
        ) from None
    raw = os.environ.get(env_var, "")
    if not raw:
        return None
    try:
        count = int(raw)
    except ValueError:
        raise TrainingError(
            f"{env_var} must be a positive integer, got {raw!r}"
        ) from None
    if count < 1:
        raise TrainingError(
            f"{env_var} must be a positive integer, got {count}"
        )
    return count


@contextlib.contextmanager
def _pinned(count: int):
    previous = get_blas_threads()
    if previous is None or not set_blas_threads(count):
        yield
        return
    try:
        yield
    finally:
        set_blas_threads(previous)


class _NoopContext:
    """Shared reentrant no-op for unset domains (no allocation per call)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NOOP = _NoopContext()


def thread_domain(domain: str):
    """Context manager applying the domain's configured pool size.

    With the domain's knob unset (the default) this is a shared no-op
    object; otherwise the BLAS pool is resized on entry and restored to
    its previous size on exit.
    """
    count = domain_threads(domain)
    if count is None:
        return _NOOP
    return _pinned(count)
