"""Tests for the live sweep dashboard over a partial (killed) run dir.

The directory under test mimics a ``kill -9``'d Table 2 sweep: some
cells done (with stored results), one mid-flight, one pending, one
failed — no ``<name>_result.json``, no manifest.  That is exactly the
directory the dashboard exists for.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.jobs.queue import JobQueue
from repro.obs import events as obs_events
from repro.obs.dashboard import (
    DashboardServer,
    collect_dashboard,
    main,
    render_dashboard_html,
    render_watch,
)


@pytest.fixture
def killed_run(tmp_path):
    """A run directory whose process died mid-grid."""
    queue = JobQueue(tmp_path / "queue" / "table2")
    queue.bind("table2", {"rounds": [3, 4]}, 7)
    specs = [
        {"experiment": "table2", "target": target, "rounds": rounds,
         "seed": 7}
        for target in ("hash", "cipher") for rounds in (3, 4)
    ] + [{"experiment": "table2", "target": "hash", "rounds": 5, "seed": 7}]
    ids = [queue.submit(spec, index=i) for i, spec in enumerate(specs)]
    queue.mark_done(
        ids[0],
        {"target": "hash", "rounds": 3, "measured": 0.97, "paper": 0.52},
        1.2, 1,
    )
    queue.mark_done(
        ids[1],
        {"target": "hash", "rounds": 4, "measured": 0.61, "paper": 0.51},
        1.4, 1,
    )
    queue.update(ids[2], status="running")
    queue.mark_failed(ids[3], error="boom", error_type="ValueError",
                      duration_s=0.3, attempts=2)
    # ids[4] stays pending.
    obs_events.emit("run.start", run_dir=tmp_path, experiment="table2")
    obs_events.emit("cell.done", run_dir=tmp_path, job_id=ids[0],
                    duration_s=1.2)
    obs_events.emit("cell.done", run_dir=tmp_path, job_id=ids[1],
                    duration_s=1.4)
    return tmp_path


class TestCollect:
    def test_progress_and_eta_from_partial_queue(self, killed_run):
        data = collect_dashboard(killed_run)
        assert len(data["experiments"]) == 1
        exp = data["experiments"][0]
        assert exp["name"] == "table2"
        assert exp["complete"] is False
        progress = exp["progress"]
        assert progress["total"] == 5
        assert progress["done"] == 2
        assert progress["failed"] == 1
        assert progress["remaining"] == 2  # pending + running
        assert progress["median_cell_s"] == pytest.approx(1.3)
        # ETA = median * remaining / workers (no manifest => 1 worker).
        assert progress["eta_s"] == pytest.approx(2.6)
        assert progress["cells_per_min"] > 0

    def test_accuracy_so_far_tables(self, killed_run):
        exp = collect_dashboard(killed_run)["experiments"][0]
        assert exp["partial_tables"] is True
        titles = [t["title"] for t in exp["tables"]]
        assert "Accuracy (paper layout)" in titles
        all_rows = next(t for t in exp["tables"] if t["title"] == "All rows")
        assert len(all_rows["rows"]) == 2  # only the done cells

    def test_events_tail(self, killed_run):
        data = collect_dashboard(killed_run)
        assert data["event_counts"]["cell.done"] == 2
        assert data["events_tail"][-1]["event"] == "cell.done"

    def test_empty_directory(self, tmp_path):
        data = collect_dashboard(tmp_path)
        assert data["experiments"] == []
        assert data["event_counts"] == {}


class TestRender:
    def test_html_shows_statuses_and_partial_rows(self, killed_run):
        page = render_dashboard_html(collect_dashboard(killed_run))
        assert "rows so far" in page
        assert "status-failed" in page
        assert "status-running" in page
        assert "http-equiv='refresh'" in page
        assert "ValueError" in page

    def test_watch_text(self, killed_run):
        text = render_watch(collect_dashboard(killed_run))
        assert "table2: 2/5 cells done" in text
        assert "ETA" in text
        assert "events:" in text

    def test_watch_text_empty_dir(self, tmp_path):
        assert "(no experiments yet)" in render_watch(
            collect_dashboard(tmp_path)
        )


class TestHttp:
    @pytest.fixture
    def served(self, killed_run):
        server = DashboardServer(killed_run, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()

    def test_index_renders_html(self, served):
        with urllib.request.urlopen(served.url + "/") as resp:
            assert resp.status == 200
            assert b"Sweep dashboard" in resp.read()

    def test_api_status(self, served):
        with urllib.request.urlopen(served.url + "/api/status") as resp:
            data = json.loads(resp.read())
        assert data["experiments"][0]["progress"]["done"] == 2

    def test_api_events_limit(self, served):
        with urllib.request.urlopen(served.url + "/api/events?n=1") as resp:
            data = json.loads(resp.read())
        assert len(data["events"]) == 1
        assert data["events"][0]["event"] == "cell.done"

    def test_unknown_path_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(served.url + "/nope")
        assert excinfo.value.code == 404


class TestCli:
    def test_once_writes_html(self, killed_run, tmp_path, capsys):
        out = tmp_path / "dash.html"
        assert main([
            "--run-dir", str(killed_run), "--once", "--out", str(out)
        ]) == 0
        assert "rows so far" in out.read_text()

    def test_once_prints_watch_text(self, killed_run, capsys):
        assert main(["--run-dir", str(killed_run), "--once"]) == 0
        assert "cells done" in capsys.readouterr().out
