"""Run-scoped trace context, propagated across process boundaries.

Per-process observability (:mod:`repro.obs.trace`,
:mod:`repro.obs.metrics`) loses everything produced inside pool
workers: each worker keeps its own span buffer and metrics registry,
and both evaporate when the pool is torn down.  This module makes a
*run* — one ``--run-dir`` invocation — the unit of telemetry instead:

* :func:`run_context` binds a :class:`RunContext` (run id, run
  directory, origin pid) as the process-ambient context.  Everything
  that wants run-level telemetry — the event bus
  (:mod:`repro.obs.events`), worker flushing, the manifest writer —
  reads it via :func:`current`.
* :class:`ContextTask` wraps the function dispatched to
  :mod:`multiprocessing` pool workers by
  :func:`repro.core.parallel.run_grid` and
  :func:`~repro.core.parallel.generate_dataset_sharded`.  On the first
  task a worker executes for a given run it discards the span buffer
  and registry contents inherited over ``fork`` (they are the parent's,
  already flushed parent-side), re-enables tracing, and installs the
  context; after *every* task it appends the spans the task produced to
  ``<run_dir>/obs/worker-<pid>.spans.jsonl`` and atomically rewrites
  ``<run_dir>/obs/worker-<pid>.metrics.json`` with a cumulative
  registry dump.
* :func:`flush_main` writes the parent's own spans and registry dump
  under the same layout (``main-<pid>.*``), so the deterministic merger
  (:mod:`repro.obs.agg`) sees one uniform set of per-process sinks.

File names carry the writing pid, so concurrent workers never share a
file and no cross-process locking is needed; appends within one file
come from one process, sequentially.  The layout survives resumed runs:
each invocation's processes add files, none overwrite another's.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

#: Subdirectory of the run dir holding per-process telemetry sinks.
OBS_DIRNAME = "obs"


@dataclass(frozen=True)
class RunContext:
    """Identity of one observed run, shared by every process in it."""

    run_id: str
    run_dir: str
    origin_pid: int
    trace: bool = True


_current: Optional[RunContext] = None

#: ``(run_id, pid)`` of the last worker initialisation, so a pool worker
#: resets its inherited telemetry exactly once per run.
_worker_key = None


def new_run_id() -> str:
    """A unique, sortable run id (timestamp + pid + random suffix)."""
    stamp = time.strftime("%Y%m%dT%H%M%S")
    return f"{stamp}-{os.getpid():x}-{os.urandom(3).hex()}"


def current() -> Optional[RunContext]:
    """The ambient run context of this process (``None`` outside runs)."""
    return _current


def set_current(ctx: Optional[RunContext]) -> None:
    """Install ``ctx`` as the ambient context (``None`` clears it)."""
    global _current
    _current = ctx


class run_context:
    """Context manager binding a :class:`RunContext` for a run directory.

    ``trace`` records whether span collection is on for this run; pool
    workers re-enable tracing from it (a ``spawn``-style child would not
    inherit the module flag).  Nesting restores the previous context on
    exit, so a run inside a run (tests) is safe.
    """

    def __init__(self, run_dir, run_id: Optional[str] = None,
                 trace: Optional[bool] = None):
        from repro.obs import trace as obs_trace

        self.ctx = RunContext(
            run_id=run_id or new_run_id(),
            run_dir=str(Path(run_dir)),
            origin_pid=os.getpid(),
            trace=obs_trace.is_enabled() if trace is None else bool(trace),
        )
        self._previous: Optional[RunContext] = None

    def __enter__(self) -> RunContext:
        self._previous = current()
        set_current(self.ctx)
        return self.ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_current(self._previous)
        return False


def obs_dir(run_dir) -> Path:
    """The per-process sink directory under ``run_dir`` (created lazily)."""
    return Path(run_dir) / OBS_DIRNAME


# -- flushing ---------------------------------------------------------------


def _span_records(spans: List[dict], ctx: RunContext, role: str) -> List[dict]:
    pid = os.getpid()
    out = []
    for record in spans:
        enriched = dict(record)
        enriched["pid"] = pid
        enriched["role"] = role
        enriched["run_id"] = ctx.run_id
        out.append(enriched)
    return out


def _flush(ctx: RunContext, role: str, spans: List[dict], registry) -> None:
    """Append ``spans`` and rewrite the registry dump for this process.

    Span lines append (one JSON object per line, one writer per file);
    the metrics dump is cumulative, so it is atomically *replaced* on
    every flush — the last write is the process's complete registry.
    """
    from repro.obs.agg import atomic_write_text

    sink = obs_dir(ctx.run_dir)
    sink.mkdir(parents=True, exist_ok=True)
    pid = os.getpid()
    if spans:
        lines = "".join(
            json.dumps(record, sort_keys=True, default=str) + "\n"
            for record in _span_records(spans, ctx, role)
        )
        with open(sink / f"{role}-{pid}.spans.jsonl", "a",
                  encoding="utf-8") as handle:
            handle.write(lines)
    dump = registry.dump() if registry is not None else {"series": []}
    if dump["series"]:
        dump["pid"] = pid
        dump["role"] = role
        dump["run_id"] = ctx.run_id
        atomic_write_text(
            sink / f"{role}-{pid}.metrics.json",
            json.dumps(dump, sort_keys=True) + "\n",
        )


def flush_main(spans: List[dict], ctx: Optional[RunContext] = None,
               registry=None) -> None:
    """Flush the parent process's spans + registry into the run dir.

    Called by the manifest writer with the spans it already collected
    for the run; ``registry`` defaults to the process-wide
    :data:`repro.obs.metrics.REGISTRY`.
    """
    from repro.obs import metrics as obs_metrics

    ctx = ctx if ctx is not None else current()
    if ctx is None:
        return
    _flush(ctx, "main", spans,
           registry if registry is not None else obs_metrics.REGISTRY)


def ensure_worker(ctx: Optional[RunContext]) -> bool:
    """Prepare this pool worker for run-scoped telemetry (idempotent).

    Returns ``True`` when running in a worker process (pid differs from
    the context's origin).  The first call per ``(run, pid)`` discards
    the span buffer and clears the metrics registry inherited over
    ``fork`` — both are the parent's state, flushed by the parent
    itself — then enables tracing per the context and installs it as
    ambient so :func:`repro.obs.events.emit` works inside the worker.
    """
    global _worker_key
    if ctx is None or os.getpid() == ctx.origin_pid:
        return False
    key = (ctx.run_id, os.getpid())
    if _worker_key != key:
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        obs_trace.drain()
        obs_metrics.REGISTRY.reset()
        if ctx.trace and not obs_trace.is_enabled():
            obs_trace.enable()
        _worker_key = key
    set_current(ctx)
    return True


def flush_worker(ctx: Optional[RunContext]) -> None:
    """Flush this worker's spans + registry snapshot after one task."""
    if ctx is None or os.getpid() == ctx.origin_pid:
        return
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    _flush(ctx, "worker", obs_trace.drain(), obs_metrics.REGISTRY)


class ContextTask:
    """Picklable wrapper installing a run context around a pool task.

    ``run_grid`` wraps the cell function in one of these when a run
    context is ambient at dispatch time; the wrapper travels to the
    worker (the context is three strings and two scalars), initialises
    the worker on arrival, runs the task, and flushes the worker's
    telemetry — even when the task raises, so a failing cell's spans
    still reach the run directory.
    """

    __slots__ = ("fn", "ctx")

    def __init__(self, fn, ctx: RunContext):
        self.fn = fn
        self.ctx = ctx

    def __call__(self, payload):
        ensure_worker(self.ctx)
        try:
            return self.fn(payload)
        finally:
            flush_worker(self.ctx)
