"""Parallel, shard-deterministic dataset generation.

Generating the paper's ``2^17.6``-sample training sets is embarrassingly
parallel — every base input is independent — but a naive fork-join over
one RNG stream would make the dataset depend on the worker count.  This
module shards the work instead:

* ``n_per_class`` is cut into fixed-size shards (:data:`DEFAULT_SHARD_SIZE`
  base inputs each) **independent of the worker count**;
* a root :class:`numpy.random.SeedSequence` derived from the caller's
  ``rng`` spec is ``spawn``-ed into one child per shard plus one reserved
  child for the final shuffle;
* each shard runs the ordinary
  :meth:`~repro.core.scenario.DifferentialScenario.generate_dataset`
  (unshuffled) on its own child stream;
* shard outputs are re-grouped by class and concatenated in shard order,
  then shuffled once with the reserved stream.

Because the shard plan and every stream are functions of the seed alone,
``workers=1`` and ``workers=N`` produce bit-identical ``(x, y)`` arrays;
the worker count only decides how many shards run concurrently.  The
scenario object must be picklable (all built-in scenarios are); shards
are dispatched over a :mod:`multiprocessing` pool when ``workers > 1``
and run in-process otherwise.
"""

from __future__ import annotations

import multiprocessing
import os
import statistics
import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import DatasetCache, dataset_cache_key
from repro.errors import DistinguisherError
from repro.obs import context as obs_context
from repro.obs import events as obs_events
from repro.obs import log as obs_log
from repro.obs.trace import span
from repro.utils.rng import RngLike

_log = obs_log.get_logger("repro.parallel")

#: Warn when a cell has been in flight longer than this multiple of the
#: median completed-cell duration (``REPRO_OBS_STALL_FACTOR``; <= 0
#: disables the detector).
DEFAULT_STALL_FACTOR = 4.0

#: How often the parent polls the pool while waiting for the next cell
#: (``REPRO_OBS_STALL_POLL_S``); also the stall-warning granularity.
DEFAULT_STALL_POLL_S = 1.0

#: Completed-cell durations needed before the median is trusted.
MIN_STALL_SAMPLES = 3


def stall_factor_from_env() -> float:
    """``REPRO_OBS_STALL_FACTOR`` (default 4.0; values <= 0 disable)."""
    raw = os.environ.get("REPRO_OBS_STALL_FACTOR", "")
    if not raw:
        return DEFAULT_STALL_FACTOR
    try:
        return float(raw)
    except ValueError:
        raise DistinguisherError(
            f"REPRO_OBS_STALL_FACTOR must be a float, got {raw!r}"
        ) from None


def stall_poll_from_env() -> float:
    """``REPRO_OBS_STALL_POLL_S`` (default 1.0 s; must be positive)."""
    raw = os.environ.get("REPRO_OBS_STALL_POLL_S", "")
    if not raw:
        return DEFAULT_STALL_POLL_S
    try:
        value = float(raw)
    except ValueError:
        raise DistinguisherError(
            f"REPRO_OBS_STALL_POLL_S must be a float, got {raw!r}"
        ) from None
    if value <= 0:
        raise DistinguisherError(
            f"REPRO_OBS_STALL_POLL_S must be positive, got {value}"
        )
    return value


def _context_task(fn: Callable) -> Callable:
    """Wrap ``fn`` for pool dispatch when a run context is ambient.

    The wrapper propagates the run id into the worker and flushes the
    worker's spans + metrics into the run directory after every task
    (see :class:`repro.obs.context.ContextTask`).  Without an ambient
    context the function passes through untouched — the historical
    pickling surface.
    """
    ctx = obs_context.current()
    if ctx is None:
        return fn
    return obs_context.ContextTask(fn, ctx)

#: Base inputs per shard.  Chosen so one shard is large enough to keep
#: the vectorised cipher kernels efficient but small enough that a
#: typical worker pool stays busy; part of the determinism contract —
#: changing it changes the generated dataset.
DEFAULT_SHARD_SIZE = 4096


def seed_sequence_from(rng: RngLike) -> np.random.SeedSequence:
    """A :class:`~numpy.random.SeedSequence` for any accepted seed form.

    Integers and seed sequences map deterministically; a generator
    contributes entropy drawn from its stream (so repeated calls
    differ, matching :func:`repro.utils.rng.derive_rng`); ``None``
    pulls OS entropy.
    """
    if isinstance(rng, np.random.SeedSequence):
        return rng
    if isinstance(rng, np.random.Generator):
        entropy = [int(s) for s in rng.integers(0, 2**63 - 1, size=4)]
        return np.random.SeedSequence(entropy)
    return np.random.SeedSequence(rng)


def shard_sizes(n: int, shard_size: int = DEFAULT_SHARD_SIZE) -> List[int]:
    """Split ``n`` base inputs into full shards plus one remainder shard."""
    if n <= 0:
        raise DistinguisherError(f"n must be positive, got {n}")
    if shard_size <= 0:
        raise DistinguisherError(f"shard_size must be positive, got {shard_size}")
    full, remainder = divmod(n, shard_size)
    sizes = [shard_size] * full
    if remainder:
        sizes.append(remainder)
    return sizes


def _run_shard(job) -> Tuple[np.ndarray, np.ndarray]:
    scenario, shard_n, seed_seq = job
    shard_rng = np.random.Generator(np.random.PCG64(seed_seq))
    return scenario.generate_dataset(shard_n, rng=shard_rng, shuffle=False)


def generate_dataset_sharded(
    scenario,
    n_per_class: int,
    rng: RngLike = None,
    shuffle: bool = True,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    cache: Optional[DatasetCache] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shard-deterministic ``(features, labels)`` for ``scenario``.

    Bit-identical for every ``workers`` value given the same seed and
    ``shard_size``; see the module docstring for the construction.

    ``cache`` defaults to the directory named by the
    ``REPRO_DATASET_CACHE`` environment variable (no caching when
    unset).  The key covers the scenario fingerprint, every generation
    parameter and the root seed material, so a hit is bit-identical to a
    fresh run; when ``rng`` is a live generator its entropy draw happens
    before the lookup, leaving the caller's stream state independent of
    hit or miss.
    """
    workers = int(workers)
    if workers < 1:
        raise DistinguisherError(f"workers must be >= 1, got {workers}")
    sizes = shard_sizes(n_per_class, shard_size)
    root = seed_sequence_from(rng)
    if cache is None:
        cache = DatasetCache.from_env()
    key = None
    if cache is not None:
        key = dataset_cache_key(scenario, n_per_class, shard_size, shuffle, root)
        cached = cache.load(key)
        if cached is not None:
            _log.debug(
                "data.cache_hit", n_per_class=n_per_class, key=key[:12]
            )
            return cached
    children = root.spawn(len(sizes) + 1)
    jobs = [(scenario, size, child) for size, child in zip(sizes, children)]
    with span("data.generate", shards=len(jobs), n_per_class=n_per_class,
              workers=workers):
        results = []
        if workers == 1 or len(jobs) == 1:
            for index, job in enumerate(jobs):
                results.append(_run_shard(job))
                _log.debug("data.shard", done=index + 1, total=len(jobs))
        else:
            # ``imap`` (order-preserving, like ``map``) so each shard's
            # completion surfaces as a liveness heartbeat as it lands.
            with multiprocessing.get_context().Pool(
                processes=min(workers, len(jobs))
            ) as pool:
                shard_fn = _context_task(_run_shard)
                for index, result in enumerate(pool.imap(shard_fn, jobs)):
                    results.append(result)
                    _log.debug("data.shard", done=index + 1, total=len(jobs))
    # Each unshuffled shard is grouped by class (t blocks of shard_n
    # rows); regroup so the full dataset has the same class-major layout
    # regardless of how the shards were scheduled.
    features: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    for class_index in range(scenario.num_classes):
        for (x, y), shard_n in zip(results, sizes):
            rows = slice(class_index * shard_n, (class_index + 1) * shard_n)
            features.append(x[rows])
            labels.append(y[rows])
    x = np.concatenate(features, axis=0)
    y = np.concatenate(labels, axis=0)
    if shuffle:
        shuffler = np.random.Generator(np.random.PCG64(children[-1]))
        order = shuffler.permutation(x.shape[0])
        x, y = x[order], y[order]
    if cache is not None and key is not None:
        cache.store(key, x, y)
    return x, y


def run_grid(
    fn: Callable,
    payloads: Sequence,
    workers: Optional[int] = None,
    label: str = "grid",
    on_result: Optional[Callable] = None,
    duration_of: Optional[Callable] = None,
) -> List:
    """Map ``fn`` over independent grid cells, optionally in worker
    processes.

    The experiment tables train one model per (cipher, rounds, network)
    cell; every cell is handed its own pre-derived seed material, so the
    cells are independent and their results order-preserving —
    ``run_grid`` is then an order-preserving ``pool.imap`` (with an
    in-process fallback) that logs a heartbeat as each cell completes.
    ``fn`` and each payload must be picklable (module-level functions
    and plain tuples).  Unlike dataset sharding, the worker count is not
    clamped to the CPU count: cells spend much of their wall-clock in
    BLAS and cipher kernels, so modest oversubscription is harmless and
    keeps ``workers=N`` semantics identical across machines.

    ``on_result(index, result)`` is invoked in the parent, in cell
    order, as each result lands — the job runner uses it to persist
    cell outcomes immediately instead of after the whole grid.

    When an observability run context is ambient
    (:func:`repro.obs.context.current`), the dispatched function is
    wrapped so each pool worker flushes its spans and metrics into the
    run directory, and the parent watches for stalls while it waits: a
    cell in flight longer than ``REPRO_OBS_STALL_FACTOR`` times the
    median completed-cell duration (``duration_of(result)`` when the
    caller can extract one, inter-completion gaps otherwise) raises a
    warn-level log line plus a ``cell.stall`` run event — instead of
    silence until the cell completes.

    Cells run inside pool workers must not spawn pools of their own
    (``multiprocessing`` daemonic children cannot fork grandchildren),
    so grid-parallel table runners generate their datasets with
    ``workers=1``.
    """
    payloads = list(payloads)
    if workers is None:
        workers = 1
    workers = int(workers)
    if workers < 1:
        raise DistinguisherError(f"workers must be >= 1, got {workers}")
    # Per-cell completion heartbeats (``label`` names the grid in the
    # event stream) give long table runs visible liveness; ``imap`` is
    # order-preserving like ``map``, so results are unchanged.
    results: List = []
    with span(f"{label}.run", cells=len(payloads), workers=workers):
        if workers == 1 or len(payloads) <= 1:
            for index, payload in enumerate(payloads):
                results.append(fn(payload))
                if on_result is not None:
                    on_result(index, results[-1])
                _log.info(
                    f"{label}.cell", done=index + 1, total=len(payloads)
                )
        else:
            task = _context_task(fn)
            stall_factor = stall_factor_from_env()
            poll_s = stall_poll_from_env()
            durations: List[float] = []
            with multiprocessing.get_context().Pool(
                processes=min(workers, len(payloads))
            ) as pool:
                iterator = pool.imap(task, payloads)
                last_done = time.perf_counter()
                for index in range(len(payloads)):
                    result = _next_with_stall_watch(
                        iterator, label, index, len(payloads), durations,
                        last_done, stall_factor, poll_s,
                    )
                    now = time.perf_counter()
                    measured = None
                    if duration_of is not None:
                        measured = duration_of(result)
                    durations.append(
                        float(measured) if measured is not None
                        else now - last_done
                    )
                    last_done = now
                    results.append(result)
                    if on_result is not None:
                        on_result(index, result)
                    _log.info(
                        f"{label}.cell", done=index + 1, total=len(payloads)
                    )
    return results


def _next_with_stall_watch(
    iterator,
    label: str,
    index: int,
    total: int,
    durations: List[float],
    waiting_since: float,
    stall_factor: float,
    poll_s: float,
):
    """``iterator.next()`` with a stall warning while the parent waits.

    Polls the pool's order-preserving iterator; once the wait for the
    next cell exceeds ``stall_factor`` times the median completed-cell
    duration (given ``MIN_STALL_SAMPLES`` completions), emits one
    warn-level log line and one ``cell.stall`` run event, then keeps
    waiting.  ``stall_factor <= 0`` waits without polling — exactly the
    historical blocking behaviour.
    """
    if stall_factor <= 0:
        return iterator.next()
    warned = False
    while True:
        try:
            return iterator.next(timeout=poll_s)
        except multiprocessing.TimeoutError:
            if warned or len(durations) < MIN_STALL_SAMPLES:
                continue
            waited = time.perf_counter() - waiting_since
            median_s = statistics.median(durations)
            if waited <= stall_factor * median_s:
                continue
            warned = True
            _log.warning(
                f"{label}.stall",
                waiting_s=round(waited, 3),
                median_cell_s=round(median_s, 3),
                factor=stall_factor,
                done=index,
                total=total,
            )
            obs_events.emit(
                "cell.stall",
                label=label,
                waiting_s=round(waited, 3),
                median_cell_s=round(median_s, 3),
                factor=stall_factor,
                done=index,
                total=total,
            )


def resolve_workers(workers: Optional[int] = None) -> int:
    """Clamp a requested worker count to the machine (``None`` -> 1)."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 1:
        raise DistinguisherError(f"workers must be >= 1, got {workers}")
    return min(workers, multiprocessing.cpu_count())
