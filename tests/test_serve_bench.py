"""The serve load harness emits a schema-valid ``BENCH_serve.json``."""

import importlib.util
import json
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_module(name):
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


runner = _load_module("run_benchmarks")
bench_serve = _load_module("bench_serve")


class TestBenchServe:
    def test_quick_run_emits_schema_valid_artifact(self, tmp_path):
        out_path = bench_serve.run(quick=True, output_dir=tmp_path)
        assert out_path.name == "BENCH_serve.json"
        runner.validate_bench_file(out_path)  # the shared schema gate
        report = json.loads(out_path.read_text())
        assert report["suite"] == "serve"
        assert report["quick"] is True
        names = {entry["name"] for entry in report["benchmarks"]}
        assert any(name.startswith("serve_engine_classify") for name in names)
        assert any(name.startswith("serve_http_classify") for name in names)
        assert any(name.startswith("serve_http_distinguish") for name in names)
        for entry in report["benchmarks"]:
            # Serving extras ride along on the standard schema.
            assert entry["p50_s"] <= entry["p95_s"] <= entry["p99_s"]
            assert entry["throughput_rps"] > 0
        engine_entry = next(
            entry
            for entry in report["benchmarks"]
            if entry["name"].startswith("serve_engine")
        )
        assert engine_entry["batch_size_histogram"]
        assert sum(engine_entry["batch_size_histogram"].values()) > 0

    def test_suite_is_wired_into_the_regression_gate(self):
        assert "serve" in runner.SCRIPT_SUITES
        assert "serve" in runner.ALL_SUITES
        assert runner.SCRIPT_SUITES["serve"].exists()
