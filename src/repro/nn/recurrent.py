"""LSTM layer with full backpropagation through time.

The paper's §5.1 compares LSTM networks against MLPs and CNNs for the
distinguisher task (they learn, but train roughly 10x slower than the
MLPs — a ratio this numpy implementation reproduces for free).

Gate layout follows Keras: one kernel ``W (features, 4*units)``, one
recurrent kernel ``U (units, 4*units)`` and one bias ``b (4*units,)``,
with gate order ``[input, forget, cell, output]``.  The forget-gate bias
is initialised to one (the Keras ``unit_forget_bias`` default).

Hot-path layout (see DESIGN.md §6):

* the input projection ``x @ W`` is hoisted out of the timestep loop
  into one ``(batch*steps, features) @ W`` matmul up front;
* all internal caches are **time-major** (``(steps, batch, ...)``) and
  the gate activations are stored gate-major (``(steps, 4, batch,
  units)``), so every per-timestep slice the loops touch is contiguous
  — elementwise ufuncs on strided column views run ~2x slower on this
  substrate, and the step loops are pure elementwise work plus one
  GEMM;
* ``tanh(c)`` is cached by the forward pass so backward never
  recomputes it, and the ``t == 0`` recurrent GEMMs are skipped
  entirely (``h_-1`` is zero, so they contribute nothing);
* the backward timestep loop performs only the unavoidable recurrence
  work (``dz_t`` and ``dh_next = dz_t @ U.T``); the kernel, recurrent
  and bias gradients are accumulated *after* the loop as single stacked
  matmuls written into the persistent ``self.grads`` buffers.

Scratch buffers persist across steps (re-allocated only when the batch
shape or dtype changes), so a steady-state training step allocates only
its output array.  The per-element arithmetic order matches the
pre-vectorised implementation exactly, so forward activations are
bit-identical in float64; the stacked weight-gradient reductions sum in
a different order and match to float tolerance
(``tests/test_nn_seq_kernels.py`` pins both).

When ``return_sequences`` is true the output is a ``(batch, steps,
units)`` transposed view of a freshly allocated time-major array; a
stacked LSTM therefore hands its successor (and, on the way down, the
successor hands its ``x`` gradient back) in a layout whose per-step
slices are already contiguous.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import LayerError
from repro.nn.initializers import get_initializer
from repro.nn.layers import Layer, scratch_buffer, scratch_zeros


class LSTM(Layer):
    """Long Short-Term Memory layer over ``(batch, steps, features)`` input."""

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_initializer: str = "glorot_uniform",
    ):
        super().__init__()
        if units <= 0:
            raise LayerError(f"LSTM units must be positive, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.kernel_initializer = kernel_initializer
        self._cache: Optional[dict] = None
        self._scratch: Dict[str, np.ndarray] = {}

    def build(self, input_shape, rng):
        if len(input_shape) != 2:
            raise LayerError(
                f"LSTM expects (steps, features) inputs, got {input_shape}; "
                "use Reshape to shape flat bit vectors into sequences"
            )
        _steps, features = input_shape
        init = get_initializer(self.kernel_initializer)
        kernel = init((features, 4 * self.units), rng).astype(self.dtype, copy=False)
        recurrent = init((self.units, 4 * self.units), rng).astype(
            self.dtype, copy=False
        )
        bias = np.zeros(4 * self.units, dtype=self.dtype)
        bias[self.units:2 * self.units] = 1.0  # forget-gate bias
        self.params = [kernel, recurrent, bias]
        self.grads = [np.zeros_like(p) for p in self.params]
        self.built = True

    def _project_inputs(self, x, n, steps, features):
        """Time-major input copy and the hoisted ``x @ W`` projection.

        Returns ``(xT, xp)`` — both ``(steps, batch, ...)`` scratch.
        When ``x`` is the transposed view handed over by a lower LSTM,
        its backing array is reused without copying.
        """
        kernel = self.params[0]
        xv = x.transpose(1, 0, 2)
        if xv.flags.c_contiguous:
            # x is the transposed view handed over by a lower LSTM: its
            # backing array is already time-major, use it as-is.
            xT = xv
        else:
            xT = scratch_buffer(
                self._scratch, "xT", (steps, n, features), x.dtype
            )
            np.copyto(xT, xv)
        xp = scratch_buffer(self._scratch, "xp", (steps, n, 4 * self.units), x.dtype)
        self.backend.matmul(
            xT.reshape(steps * n, features),
            kernel,
            out=xp.reshape(steps * n, 4 * self.units),
        )
        return xT, xp

    def forward(self, x, training=False):
        _kernel, recurrent, bias = self.params
        n, steps, features = x.shape
        u = self.units
        dtype = x.dtype
        buf = self._scratch
        xT, xp = self._project_inputs(x, n, steps, features)
        z = scratch_buffer(buf, "z", (n, 4 * u), dtype)
        ig = scratch_buffer(buf, "ig", (n, u), dtype)
        zeros_u = scratch_zeros(buf, "zeros_u", (n, u), dtype)
        # When the sequence itself is the output it must be freshly
        # allocated (callers may hold onto it); otherwise the time-major
        # state history is persistent scratch and only the final step is
        # copied out.
        if self.return_sequences:
            hs = np.empty((steps, n, u), dtype=dtype)
        else:
            hs = scratch_buffer(buf, "hs", (steps, n, u), dtype)
        if training:
            gates = scratch_buffer(buf, "gates", (steps, 4, n, u), dtype)
            c_all = scratch_buffer(buf, "c", (steps, n, u), dtype)
            tanh_c = scratch_buffer(buf, "tanh_c", (steps, n, u), dtype)
        else:
            gates = scratch_buffer(buf, "g_step", (1, 4, n, u), dtype)
            c_all = scratch_buffer(buf, "c_step", (1, n, u), dtype)
            tanh_c = scratch_buffer(buf, "tanh_step", (1, n, u), dtype)
        c_prev = zeros_u
        for t in range(steps):
            s = t if training else 0
            g_t = gates[s]
            c_t = c_all[s]
            tanh_t = tanh_c[s]
            # z = (x_t @ W) + (h @ U) + b in the reference operand order.
            # h_-1 is exactly zero, so the t == 0 recurrent GEMM (and the
            # add of its all-zero result) is skipped outright.
            if t == 0:
                np.add(xp[0], bias, out=z)
            else:
                self.backend.matmul(hs[t - 1], recurrent, out=z)
                np.add(xp[t], z, out=z)
                np.add(z, bias, out=z)
            # Gate activations, strided column reads but contiguous
            # gate-major writes (and in-place from there on).
            self.backend.lstm_gates(z, g_t, u)
            # c = f * c_prev + i * g
            np.multiply(g_t[1], c_prev, out=c_t)
            np.multiply(g_t[0], g_t[2], out=ig)
            np.add(c_t, ig, out=c_t)
            # h = o * tanh(c)
            np.tanh(c_t, out=tanh_t)
            np.multiply(g_t[3], tanh_t, out=hs[t])
            c_prev = c_t
        if training:
            self._cache = {
                "shape": (n, steps, features),
                "xT": xT,
                "gates": gates,
                "c": c_all,
                "tanh_c": tanh_c,
                "hs": hs,
                "zeros_u": zeros_u,
            }
        else:
            self._cache = None
        if self.return_sequences:
            return hs.transpose(1, 0, 2)
        return np.array(hs[steps - 1])

    def backward(self, grad):
        if self._cache is None:
            raise LayerError("backward called without a training forward pass")
        kernel, recurrent, _bias = self.params
        cache = self._cache
        n, steps, features = cache["shape"]
        xT = cache["xT"]
        gates = cache["gates"]
        c_all = cache["c"]
        tanh_c = cache["tanh_c"]
        hs = cache["hs"]
        zeros_u = cache["zeros_u"]
        u = self.units
        dtype = hs.dtype
        buf = self._scratch

        rec_T = recurrent.T
        dz_all = scratch_buffer(buf, "dz", (steps, n, 4 * u), dtype)
        dh = scratch_buffer(buf, "dh", (n, u), dtype)
        dh_next = scratch_buffer(buf, "dh_next", (n, u), dtype)
        dc = scratch_buffer(buf, "dc", (n, u), dtype)
        dc_next = scratch_buffer(buf, "dc_next", (n, u), dtype)
        s1 = scratch_buffer(buf, "s1", (n, u), dtype)
        s2 = scratch_buffer(buf, "s2", (n, u), dtype)
        do = scratch_buffer(buf, "do", (n, u), dtype)
        dh_next[...] = 0.0
        dc_next[...] = 0.0

        for t in range(steps - 1, -1, -1):
            g_t = gates[t]
            i = g_t[0]
            f = g_t[1]
            g = g_t[2]
            o = g_t[3]
            tanh_t = tanh_c[t]
            c_prev = c_all[t - 1] if t > 0 else zeros_u

            if self.return_sequences:
                # When the upstream gradient arrived as a transposed view
                # of a time-major array (a stacked LSTM's x gradient),
                # this slice is contiguous for free.
                np.add(grad[:, t, :], dh_next, out=dh)
            elif t == steps - 1:
                np.add(grad, dh_next, out=dh)
            else:
                dh, dh_next = dh_next, dh
            # do = dh * tanh(c); dc = dh * o * (1 - tanh(c)^2) + dc_next
            np.multiply(dh, tanh_t, out=do)
            np.multiply(dh, o, out=s1)
            np.multiply(tanh_t, tanh_t, out=s2)
            np.subtract(1.0, s2, out=s2)
            np.multiply(s1, s2, out=s1)
            np.add(s1, dc_next, out=dc)
            # Gate pre-activation gradients, written straight into the
            # stacked dz buffer: dz_i = (dc*g) * i * (1-i), etc.
            dz_t = dz_all[t]
            np.multiply(dc, g, out=s1)
            np.multiply(s1, i, out=s1)
            np.subtract(1.0, i, out=s2)
            np.multiply(s1, s2, out=dz_t[:, :u])
            np.multiply(dc, c_prev, out=s1)
            np.multiply(s1, f, out=s1)
            np.subtract(1.0, f, out=s2)
            np.multiply(s1, s2, out=dz_t[:, u:2 * u])
            np.multiply(dc, i, out=s1)
            np.multiply(g, g, out=s2)
            np.subtract(1.0, s2, out=s2)
            np.multiply(s1, s2, out=dz_t[:, 2 * u:3 * u])
            np.multiply(do, o, out=s1)
            np.subtract(1.0, o, out=s2)
            np.multiply(s1, s2, out=dz_t[:, 3 * u:])
            if t > 0:
                # dc_next = dc * f; dh_next = dz_t @ U.T — not needed on
                # the last (t == 0) iteration.
                np.multiply(dc, f, out=dc_next)
                self.backend.matmul(dz_t, rec_T, out=dh_next)

        # Weight gradients as single stacked matmuls over all timesteps,
        # written into the persistent self.grads buffers.  h_-1 is zero,
        # so the recurrent-kernel gradient needs only steps 1..T-1.
        dz2 = dz_all.reshape(steps * n, 4 * u)
        self.backend.matmul(
            xT.reshape(steps * n, features).T, dz2, out=self.grads[0]
        )
        if steps > 1:
            self.backend.matmul(
                hs[:-1].reshape((steps - 1) * n, u).T,
                dz_all[1:].reshape((steps - 1) * n, 4 * u),
                out=self.grads[1],
            )
        else:
            self.grads[1][...] = 0.0
        self.backend.colsum(dz2, out=self.grads[2])
        if self.skip_input_grad:
            return None
        x_grad = np.empty((steps, n, features), dtype=dtype)
        self.backend.matmul(dz2, kernel.T, out=x_grad.reshape(steps * n, features))
        return x_grad.transpose(1, 0, 2)

    def output_shape(self, input_shape):
        steps, _features = input_shape
        if self.return_sequences:
            return (steps, self.units)
        return (self.units,)

    def get_config(self):
        return {
            "units": self.units,
            "return_sequences": self.return_sequences,
            "kernel_initializer": self.kernel_initializer,
        }
