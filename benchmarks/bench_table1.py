"""Benchmark: regenerate Table 1 (optimal Gimli trail weights).

Exhibits probability-1 trails for 1-2 rounds (matching the designers'
weight 0), a weight-2 trail at 3 rounds (matching their optimum) and a
beam-search upper bound at 4 rounds; designers' SAT/SMT weights are
carried as reference for 5-8 rounds (see DESIGN.md's substitution note).
"""

from conftest import run_once

from repro.diffcrypt.trail import GIMLI_OPTIMAL_WEIGHTS
from repro.experiments.report import format_table
from repro.experiments.table1 import run_table1


def test_table1(benchmark):
    result = run_once(
        benchmark, run_table1, max_search_rounds=4, verify_samples=1 << 12, rng=1
    )
    rows = [
        [row["rounds"], row["paper"],
         "-" if row["measured"] is None else row["measured"],
         "-" if row["empirical_probability"] is None
         else row["empirical_probability"]]
        for row in result["rows"]
    ]
    print()
    print(format_table(
        ["rounds", "designers' weight", "exhibited weight", "MC probability"],
        rows,
        title="Table 1 (optimal differential trail weights, round-reduced Gimli)",
    ))
    by_round = {row["rounds"]: row for row in result["rows"]}
    # Shape assertions: exhibit the optimum for 1-3 rounds, an upper
    # bound within 2x for 4 rounds.
    assert by_round[1]["measured"] == GIMLI_OPTIMAL_WEIGHTS[1]
    assert by_round[2]["measured"] == GIMLI_OPTIMAL_WEIGHTS[2]
    assert by_round[3]["measured"] == GIMLI_OPTIMAL_WEIGHTS[3]
    assert GIMLI_OPTIMAL_WEIGHTS[4] <= by_round[4]["measured"] <= (
        2 * GIMLI_OPTIMAL_WEIGHTS[4]
    )
    # Weight-0 trails hold with certainty on the real permutation.
    assert by_round[2]["empirical_probability"] == 1.0
