"""Benchmark: §4/§6 complexity accounting and the cube-root claim.

Checks the paper's arithmetic: 2^17.6 offline / 2^14.3 online against
the designers' 2^52 single-trail bound, and the statistical sizing that
justifies the online budget.
"""

from conftest import run_once

from repro.core.complexity import cube_root_summary, gimli8_paper_complexity
from repro.core.statistics import required_online_samples
from repro.experiments.report import format_table


def test_cube_root_comparison(benchmark):
    summary = run_once(benchmark, cube_root_summary, 8)
    rows = [
        ["classical trail (log2)", summary["classical_log2"]],
        ["ML offline (log2)", summary["ml_offline_log2"]],
        ["ML online (log2)", summary["ml_online_log2"]],
        ["cube root of classical (log2)", summary["cube_root_log2"]],
        ["online / classical exponent ratio", summary["online_exponent_ratio"]],
    ]
    print()
    print(format_table(["quantity", "value"], rows,
                       title="§6 complexity comparison (8-round Gimli)"))
    assert summary["classical_log2"] == 52.0
    # The paper's "around cube root" claim.
    assert abs(summary["offline_exponent_ratio"] - 1 / 3) < 0.08
    assert summary["online_exponent_ratio"] < 1 / 3


def test_online_budget_consistent_with_accuracy(benchmark):
    """The paper's 2^14.3 online budget sits between what its two
    8-round accuracies require at 1% error: enough for Gimli-Hash
    (0.5219), tight for Gimli-Cipher (0.5099)."""

    def sizing():
        return (
            required_online_samples(0.5219, 2, error_probability=0.01),
            required_online_samples(0.5099, 2, error_probability=0.01),
        )

    needed_hash, needed_cipher = run_once(benchmark, sizing)
    paper_online = gimli8_paper_complexity().online_samples
    print(f"\nonline samples @1% error: hash(0.5219) needs {needed_hash}, "
          f"cipher(0.5099) needs {needed_cipher}; paper budget "
          f"{paper_online:.0f}")
    assert needed_hash <= paper_online <= needed_cipher
