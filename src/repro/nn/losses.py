"""Loss functions.

The paper's classifiers end in a softmax layer and train on categorical
cross-entropy (Keras defaults); the losses here therefore consume
*probabilities* by default, with a ``from_logits`` switch that fuses the
softmax for numerical stability when no explicit softmax layer is used.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError, TrainingError
from repro.nn.backend import Backend, get_backend

_EPS = 1e-12


class Loss:
    """Base class: ``__call__`` returns ``(loss_value, grad_wrt_predictions)``."""

    def __init__(self):
        self.backend: Backend = get_backend()

    def set_backend(self, backend) -> None:
        """Route this loss's compute through ``backend`` (name or instance)."""
        self.backend = get_backend(backend)

    def __call__(self, y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[float, np.ndarray]:
        raise NotImplementedError


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float64) -> np.ndarray:
    """Encode integer labels as one-hot rows (``dtype`` columns)."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ShapeError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


class CategoricalCrossentropy(Loss):
    """Multi-class cross-entropy.

    With ``from_logits=True`` the softmax is applied internally and the
    gradient simplifies to ``(softmax(x) - y) / n``.
    """

    def __init__(self, from_logits: bool = False):
        super().__init__()
        self.from_logits = bool(from_logits)

    def __call__(self, y_true, y_pred):
        if y_true.shape != y_pred.shape:
            raise ShapeError(
                f"label shape {y_true.shape} != prediction shape {y_pred.shape}"
            )
        n = y_true.shape[0]
        if n == 0:
            raise TrainingError("cannot evaluate a loss on an empty batch")
        be = self.backend
        if self.from_logits:
            shifted = y_pred - y_pred.max(axis=-1, keepdims=True)
            log_probs = shifted - be.log(be.exp(shifted).sum(axis=-1, keepdims=True))
            loss = -(y_true * log_probs).sum() / n
            grad = (be.exp(log_probs) - y_true) / n
            return float(loss), grad
        clipped = be.clip(y_pred, _EPS, 1.0)
        loss = -(y_true * be.log(clipped)).sum() / n
        grad = -(y_true / clipped) / n
        return float(loss), grad

    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        """Loss value only — used by the fused softmax+CCE training path,
        where the gradient ``(p - y) / n`` is formed directly and the
        Jacobian-product gradient above would be wasted work."""
        if y_true.shape != y_pred.shape:
            raise ShapeError(
                f"label shape {y_true.shape} != prediction shape {y_pred.shape}"
            )
        n = y_true.shape[0]
        if n == 0:
            raise TrainingError("cannot evaluate a loss on an empty batch")
        be = self.backend
        if self.from_logits:
            shifted = y_pred - y_pred.max(axis=-1, keepdims=True)
            log_probs = shifted - be.log(be.exp(shifted).sum(axis=-1, keepdims=True))
            return float(-(y_true * log_probs).sum() / n)
        clipped = be.clip(y_pred, _EPS, 1.0)
        return float(-(y_true * be.log(clipped)).sum() / n)


class BinaryCrossentropy(Loss):
    """Two-class cross-entropy on a single probability column."""

    def __call__(self, y_true, y_pred):
        if y_true.shape != y_pred.shape:
            raise ShapeError(
                f"label shape {y_true.shape} != prediction shape {y_pred.shape}"
            )
        n = y_true.shape[0]
        if n == 0:
            raise TrainingError("cannot evaluate a loss on an empty batch")
        be = self.backend
        clipped = be.clip(y_pred, _EPS, 1.0 - _EPS)
        loss = -(
            y_true * be.log(clipped) + (1.0 - y_true) * be.log(1.0 - clipped)
        ).sum() / n
        grad = (clipped - y_true) / (clipped * (1.0 - clipped)) / n
        return float(loss), grad


class MeanSquaredError(Loss):
    """Mean squared error (used by Gohr's residual networks)."""

    def __call__(self, y_true, y_pred):
        if y_true.shape != y_pred.shape:
            raise ShapeError(
                f"label shape {y_true.shape} != prediction shape {y_pred.shape}"
            )
        n = y_true.size
        if n == 0:
            raise TrainingError("cannot evaluate a loss on an empty batch")
        diff = y_pred - y_true
        loss = float((diff**2).sum() / n)
        grad = 2.0 * diff / n
        return loss, grad


LOSSES = {
    "categorical_crossentropy": CategoricalCrossentropy,
    "binary_crossentropy": BinaryCrossentropy,
    "mse": MeanSquaredError,
}


def get_loss(spec) -> Loss:
    """Resolve a loss from an instance or a Keras-style string name."""
    if isinstance(spec, Loss):
        return spec
    try:
        return LOSSES[spec]()
    except KeyError:
        known = ", ".join(sorted(LOSSES))
        raise TrainingError(f"unknown loss {spec!r}; known: {known}") from None
