"""Observability overhead harness: writes ``BENCH_obs.json``.

Answers the one question the obs layer must keep answerable: *what does
instrumentation cost?*  Two headline entries time the paper's MLP III
compiled float32 train step (same shape as the ``BENCH_nn_ops.json``
rows) with observability fully **off** versus fully **on** (JSON
logging to a null sink, tracing enabled, the per-layer profiler
attached, a span plus a debug log line per step).  The off entry is the
<2% acceptance gate against the nn_ops baseline; the on entry bounds
the worst-case cost of running fully instrumented.

A set of micro entries then times the individual primitives (disabled
log call, JSON log line, disabled span, enabled span, counter
increment, histogram observation) so a regression can be attributed to
one pillar rather than "obs got slower".  Two aggregation entries time
the cross-process path: one worker flush (per-pid spans append +
atomic metrics dump) and the deterministic merge of a 16-cell grid's
sinks into ``trace_merged.json`` / ``metrics_merged.prom``.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick] [--output-dir DIR]
"""

from __future__ import annotations

import argparse
import io
import json
import statistics
import time
from pathlib import Path

import numpy as np

BENCH_DIR = Path(__file__).resolve().parent


class _NullStream(io.TextIOBase):
    """A text sink that swallows writes (keeps log cost, drops the I/O)."""

    def write(self, text):  # noqa: A003 - io.TextIOBase signature
        return len(text)


def _time_rounds(fn, rounds: int, iterations: int):
    """Per-iteration seconds for ``rounds`` timed batches of ``fn``."""
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        samples.append((time.perf_counter() - start) / iterations)
    return samples


def _entry(name: str, samples) -> dict:
    return {
        "name": name,
        "mean_s": statistics.fmean(samples),
        "stddev_s": statistics.pstdev(samples),
        "rounds": len(samples),
    }


def _build_model():
    from repro.nn import Adam, CategoricalCrossentropy
    from repro.nn.architectures import mlp_iii

    model = mlp_iii()
    model.build((128,), rng=0)
    model.compile(loss=CategoricalCrossentropy(), optimizer=Adam(), dtype="float32")
    return model


def _train_batch(rng):
    from repro.nn.losses import one_hot

    x = (rng.random((256, 128)) > 0.5).astype(np.float32)
    y = one_hot(rng.integers(0, 2, 256), 2).astype(np.float32)
    return x, y


def run(quick: bool, output_dir: Path) -> Path:
    from repro.obs import log as obs_log
    from repro.obs import metrics as obs_metrics
    from repro.obs import profile as obs_profile
    from repro.obs import trace as obs_trace

    rng = np.random.default_rng(0x0B5)
    rounds = 3 if quick else 7
    step_iters = 2 if quick else 10
    micro_iters = 2_000 if quick else 50_000

    benchmarks = []

    # -- headline: MLP III compiled float32 train step -------------------
    model = _build_model()
    x, y = _train_batch(rng)

    # Off: the default state — log off, no trace, no profiler.
    obs_log.configure(mode="off")
    obs_trace.disable()
    for _ in range(2):  # warm scratch buffers / BLAS threads
        model.train_on_batch(x, y)
    samples = _time_rounds(
        lambda: model.train_on_batch(x, y), rounds, step_iters
    )
    benchmarks.append(
        _entry("obs_off_mlp_iii_train_step[batch=256,float32]", samples)
    )

    # On: every pillar at once — JSON log line + enabled span per step,
    # per-layer profiler timing every forward/backward, live histogram.
    sink = _NullStream()
    obs_log.configure(mode="json", level="debug", stream=sink)
    obs_trace.enable()
    model._profiler = obs_profile.LayerProfiler()
    logger = obs_log.get_logger("bench.obs")
    registry = obs_metrics.MetricsRegistry()
    step_seconds = registry.histogram("bench_step_seconds")

    def instrumented_step():
        with obs_trace.span("bench.step", batch=256):
            start = time.perf_counter()
            loss_value = model.train_on_batch(x, y)
            step_seconds.observe(time.perf_counter() - start)
            logger.debug("bench.step", loss=float(loss_value))

    instrumented_step()  # warm
    samples = _time_rounds(instrumented_step, rounds, step_iters)
    benchmarks.append(
        _entry("obs_on_mlp_iii_train_step[batch=256,float32]", samples)
    )
    model._profiler = None
    obs_trace.drain()

    # -- micro: per-primitive costs ---------------------------------------
    obs_log.configure(mode="off")
    off_logger = obs_log.get_logger("bench.obs.off")
    samples = _time_rounds(
        lambda: off_logger.debug("noop", value=1), rounds, micro_iters
    )
    benchmarks.append(_entry("obs_log_disabled_call", samples))

    obs_log.configure(mode="json", level="debug", stream=sink)
    samples = _time_rounds(
        lambda: logger.debug("line", value=1.0, label="x"), rounds, micro_iters
    )
    benchmarks.append(_entry("obs_log_json_line", samples))

    obs_trace.disable()

    def disabled_span():
        with obs_trace.span("noop"):
            pass

    samples = _time_rounds(disabled_span, rounds, micro_iters)
    benchmarks.append(_entry("obs_span_disabled", samples))

    obs_trace.enable()

    def enabled_span():
        with obs_trace.span("bench.micro"):
            pass

    samples = []
    for _ in range(rounds):
        obs_trace.drain()  # keep the buffer off its cap between rounds
        samples.extend(_time_rounds(enabled_span, 1, micro_iters))
    benchmarks.append(_entry("obs_span_enabled", samples))
    obs_trace.drain()
    obs_trace.disable()

    counter = registry.counter("bench_counter_total")
    samples = _time_rounds(counter.inc, rounds, micro_iters)
    benchmarks.append(_entry("obs_counter_inc", samples))

    histogram = registry.histogram("bench_histogram_seconds")
    samples = _time_rounds(
        lambda: histogram.observe(0.0042), rounds, micro_iters
    )
    benchmarks.append(_entry("obs_histogram_observe", samples))

    obs_log.configure(mode="off")

    # -- aggregation path: worker flush + 16-cell merge --------------------
    benchmarks.extend(_aggregation_entries(rounds, quick))

    report = {"suite": "obs", "quick": bool(quick), "benchmarks": benchmarks}
    output_dir.mkdir(parents=True, exist_ok=True)
    out_path = output_dir / "BENCH_obs.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return out_path


def _aggregation_entries(rounds: int, quick: bool):
    """Cost of the cross-process path: one worker flush, one grid merge.

    The flush entry is what every pool worker pays once per cell batch
    (spans JSONL append + atomic metrics dump); the merge entry is the
    parent's end-of-run cost of collating a 16-cell grid's worth of
    sinks (4 worker processes, 4 cells each) plus the event bus into
    ``trace_merged.json`` / ``metrics_merged.prom``.
    """
    import shutil
    import tempfile

    from repro.obs import agg as obs_agg
    from repro.obs import context as obs_context
    from repro.obs import events as obs_events
    from repro.obs import metrics as obs_metrics

    del quick  # entry names must match the committed baseline's
    spans_per_flush = 32
    entries = []

    def make_spans(count, pid):
        return [
            {
                "name": "bench.cell",
                "start_us": 1_000 * i,
                "dur_us": 900,
                "tid": 1,
                "pid": pid,
                "attrs": {"cell": i},
            }
            for i in range(count)
        ]

    def make_registry():
        registry = obs_metrics.MetricsRegistry()
        registry.counter("bench_cells_total").inc(4)
        registry.histogram("bench_cell_seconds").observe(0.9)
        return registry

    # Worker flush: spans append + metrics dump into a fresh run dir.
    flush_dir = Path(tempfile.mkdtemp(prefix="bench-obs-flush-"))
    try:
        ctx = obs_context.RunContext(
            run_id="bench", run_dir=str(flush_dir), origin_pid=0
        )
        spans = make_spans(spans_per_flush, pid=1000)
        registry = make_registry()
        samples = _time_rounds(
            lambda: obs_context._flush(ctx, "worker", spans, registry),
            rounds,
            5,
        )
        entries.append(
            _entry(f"obs_worker_flush[spans={spans_per_flush}]", samples)
        )
    finally:
        shutil.rmtree(flush_dir, ignore_errors=True)

    # Merge: 4 workers x 4 cells + a main process + an event bus.  Sink
    # files are synthesized directly (one per fake pid) because a real
    # ``_flush`` names files after *this* process's pid.
    merge_dir = Path(tempfile.mkdtemp(prefix="bench-obs-merge-"))
    try:
        sink = obs_context.obs_dir(merge_dir)
        sink.mkdir(parents=True, exist_ok=True)

        def write_process(role, pid, cells):
            lines = "".join(
                json.dumps(
                    {**record, "role": role, "run_id": "bench"},
                    sort_keys=True,
                ) + "\n"
                for record in make_spans(cells, pid)
            )
            (sink / f"{role}-{pid}.spans.jsonl").write_text(lines)
            dump = make_registry().dump()
            dump.update(pid=pid, role=role, run_id="bench")
            (sink / f"{role}-{pid}.metrics.json").write_text(
                json.dumps(dump, sort_keys=True) + "\n"
            )

        write_process("main", 1, 4)
        for worker in range(4):
            write_process("worker", 2000 + worker, 4)
        for i in range(16):
            obs_events.emit(
                "cell.done", run_dir=merge_dir, job_id=f"cell{i}",
                duration_s=0.9,
            )
        samples = _time_rounds(
            lambda: obs_agg.merge_run(merge_dir), rounds, 5
        )
        entries.append(_entry("obs_merge_16cell_grid", samples))
    finally:
        shutil.rmtree(merge_dir, ignore_errors=True)
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="few rounds/iterations (fast, noisy)"
    )
    parser.add_argument("--output-dir", type=Path, default=BENCH_DIR)
    args = parser.parse_args(argv)
    out_path = run(args.quick, args.output_dir)
    report = json.loads(out_path.read_text())
    for entry in report["benchmarks"]:
        scale, unit = (1e3, "ms") if entry["mean_s"] > 1e-4 else (1e6, "us")
        print(
            f"{entry['name']}: mean {entry['mean_s'] * scale:.3f} {unit} "
            f"over {entry['rounds']} rounds"
        )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
