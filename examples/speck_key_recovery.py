"""Key recovery on round-reduced SPECK — the paper's §6 open problem.

The paper stops at distinguishing ("our model does not have a key
recovery functionality"); Gohr's CRYPTO'19 attack shows the missing
step, reproduced here: train an ``r``-round neural distinguisher, then
recover the final round key of ``r+1``-round SPECK by scoring every
candidate subkey on one-round-decrypted ciphertext pairs.

Usage::

    python examples/speck_key_recovery.py [--pairs 256] [--bits 12]

``--bits 16`` sweeps the full 2^16 subkey space (~2 minutes on CPU);
smaller values sweep the low bits with the rest assumed known.
"""

import argparse
import time

from repro.core.key_recovery import SpeckKeyRecovery

SECRET_KEY = (0x1918, 0x1110, 0x0908, 0x0100)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4,
                        help="total rounds of the attacked cipher")
    parser.add_argument("--pairs", type=int, default=256,
                        help="chosen-plaintext pairs collected online")
    parser.add_argument("--bits", type=int, default=12,
                        help="subkey bits swept (16 = full space)")
    parser.add_argument("--train-samples", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    print(f"== Training a {args.rounds - 1}-round distinguisher ==")
    recovery = SpeckKeyRecovery(
        attack_rounds=args.rounds, epochs=4, rng=args.seed
    )
    start = time.perf_counter()
    accuracy = recovery.train_distinguisher(args.train_samples)
    print(f"distinguisher accuracy: {accuracy:.4f} "
          f"({time.perf_counter() - start:.1f}s)")

    true_subkey = recovery.last_round_key(SECRET_KEY, args.rounds)
    print(f"\n== Attacking {args.rounds}-round SPECK "
          f"(secret last subkey {true_subkey:#06x}) ==")
    start = time.perf_counter()
    result = recovery.attack(
        SECRET_KEY, n_pairs=args.pairs, candidate_bits=args.bits, rng=3
    )
    total = len(result.candidates)
    print(f"swept {total} candidates with {args.pairs} pairs "
          f"({time.perf_counter() - start:.1f}s)")
    print(f"best candidate : {result.best:#06x} "
          f"(score {result.scores[0]:.4f})")
    print(f"true subkey    : rank {result.true_key_rank} of {total} "
          f"(random expectation {total // 2})")
    reduction = total / max(1, result.true_key_rank + 1)
    print(f"keyspace reduction over brute force: {reduction:.0f}x")


if __name__ == "__main__":
    main()
