"""The paper's §4 Gimli-Cipher experiment, reproduced end to end.

Nonce-respecting setting: fresh 256-bit key per sample, nonce pairs
differing in byte 4 (class 0) or byte 12 (class 1), one padded
associated-data block, zero first message block, and a *total* round
budget over the two permutation calls before the first ciphertext block
``c0``.  After training, the script reports the complexity comparison
against the designers' optimal trail (paper §6: roughly the cube root).

Usage::

    python examples/gimli_cipher_distinguisher.py --rounds 8 --samples 180000

At the defaults (6 rounds, 30k samples) this takes well under a minute;
the paper's 8-round headline needs the larger budget shown above.
"""

import argparse
import math
import time

from repro import GimliCipherScenario, MLDistinguisher
from repro.core.complexity import DistinguisherComplexity
from repro.diffcrypt.trail import GIMLI_OPTIMAL_WEIGHTS
from repro.nn.architectures import mlp_ii


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=6,
                        help="total rounds before c0 (paper: 6, 7, 8)")
    parser.add_argument("--samples", type=int, default=30_000)
    parser.add_argument("--online", type=int, default=4_000)
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    scenario = GimliCipherScenario(total_rounds=args.rounds)
    distinguisher = MLDistinguisher(
        scenario, model=mlp_ii(), epochs=args.epochs, batch_size=256,
        rng=args.seed,
    )

    print(f"== Training on {args.rounds}-round Gimli-Cipher "
          f"({args.samples} samples) ==")
    start = time.perf_counter()
    report = distinguisher.train(num_samples=args.samples)
    print(f"validation accuracy : {report.validation_accuracy:.4f} "
          f"({time.perf_counter() - start:.1f}s)")

    print(f"\n== Distinguishing game ({args.online} online samples) ==")
    cipher_result = distinguisher.test(scenario.cipher_oracle(), args.online)
    random_result = distinguisher.test(
        scenario.random_oracle(rng=args.seed + 1), args.online
    )
    print(f"cipher oracle -> {cipher_result.verdict} "
          f"(accuracy {cipher_result.accuracy:.4f}, "
          f"p-value {cipher_result.p_value:.2e})")
    print(f"random oracle -> {random_result.verdict} "
          f"(accuracy {random_result.accuracy:.4f})")

    weight = GIMLI_OPTIMAL_WEIGHTS.get(args.rounds)
    if weight is not None and weight > 0:
        complexity = DistinguisherComplexity(
            offline_samples=report.num_samples,
            online_samples=cipher_result.num_samples,
        )
        print(f"\n== Complexity vs the designers' optimal trail ==")
        print(f"classical single-trail distinguisher : 2^{weight} pairs")
        print(f"this run, offline                    : "
              f"2^{complexity.offline_log2:.1f} samples")
        print(f"this run, online                     : "
              f"2^{complexity.online_log2:.1f} samples")
        print(f"log2 saving online                   : "
              f"{complexity.speedup_over_trail(weight):.1f} bits "
              f"(cube root would be 2^{weight / 3:.1f})")
    elif weight == 0:
        print("\n(rounds <= 2 have probability-1 trails; the classical "
              "distinguisher is already free)")


if __name__ == "__main__":
    main()
