"""Plain-text rendering of experiment results, paper-vs-measured."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_render(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _render(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def paper_vs_measured(
    rows: Sequence[Dict],
    key: str,
    paper_field: str = "paper",
    measured_field: str = "measured",
) -> List[Dict]:
    """Annotate result rows with the measured-minus-paper delta."""
    annotated = []
    for row in rows:
        entry = dict(row)
        paper = row.get(paper_field)
        measured = row.get(measured_field)
        if isinstance(paper, (int, float)) and isinstance(measured, (int, float)):
            entry["delta"] = measured - paper
        annotated.append(entry)
    del key
    return annotated
