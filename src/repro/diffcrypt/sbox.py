"""S-box analysis: DDT, LAT, uniformity, branch number.

These are the "existing methods" the paper's introduction contrasts the
ML distinguisher against — the differential branch number and the DDT
entries that feed MILP/SAT trail search.
"""

from __future__ import annotations

from functools import cached_property
from typing import Sequence, Tuple

import numpy as np

from repro.errors import CipherError
from repro.utils.bitops import hamming_weight, parity


class SBox:
    """An n-bit to n-bit S-box with standard differential/linear metrics."""

    def __init__(self, table: Sequence[int]):
        size = len(table)
        if size == 0 or size & (size - 1):
            raise CipherError(f"S-box size must be a power of two, got {size}")
        self.table = tuple(int(v) for v in table)
        self.bits = size.bit_length() - 1
        if any(not 0 <= v < size for v in self.table):
            raise CipherError("S-box entries must fit the input width")

    @property
    def size(self) -> int:
        """Number of table entries (``2^bits``)."""
        return len(self.table)

    @cached_property
    def is_permutation(self) -> bool:
        """Whether the S-box is bijective."""
        return sorted(self.table) == list(range(self.size))

    @cached_property
    def inverse(self) -> "SBox":
        """The inverse S-box (requires a permutation)."""
        if not self.is_permutation:
            raise CipherError("only permutation S-boxes have an inverse")
        inv = [0] * self.size
        for i, v in enumerate(self.table):
            inv[v] = i
        return SBox(inv)

    @cached_property
    def ddt(self) -> np.ndarray:
        """Difference distribution table: ``ddt[a, b] = #{x : S(x)^S(x^a)=b}``."""
        arr = np.array(self.table, dtype=np.int64)
        x = np.arange(self.size, dtype=np.int64)
        table = np.zeros((self.size, self.size), dtype=np.int64)
        for a in range(self.size):
            b = arr[x] ^ arr[x ^ a]
            np.add.at(table[a], b, 1)
        return table

    @cached_property
    def lat(self) -> np.ndarray:
        """Linear approximation table (correlation counts, bias form).

        ``lat[a, b] = #{x : <a,x> = <b,S(x)>} - size/2``.
        """
        table = np.zeros((self.size, self.size), dtype=np.int64)
        for a in range(self.size):
            for b in range(self.size):
                count = sum(
                    1
                    for x in range(self.size)
                    if parity(x & a) == parity(self.table[x] & b)
                )
                table[a, b] = count - self.size // 2
        return table

    @property
    def differential_uniformity(self) -> int:
        """Maximum DDT entry outside the trivial ``(0, 0)`` transition."""
        ddt = self.ddt.copy()
        ddt[0, 0] = 0
        return int(ddt.max())

    def differential_probability(self, delta_in: int, delta_out: int) -> float:
        """``P(delta_in -> delta_out)`` over a uniform input."""
        return float(self.ddt[delta_in, delta_out]) / self.size

    def differential_weight(self, delta_in: int, delta_out: int) -> float:
        """``-log2`` of the transition probability (``inf`` for impossible)."""
        prob = self.differential_probability(delta_in, delta_out)
        return float("inf") if prob == 0.0 else -float(np.log2(prob))

    def valid_input_pairs(
        self, delta_in: int, delta_out: int
    ) -> Tuple[Tuple[int, int], ...]:
        """All ordered inputs ``x`` with ``S(x) ^ S(x ^ delta_in) = delta_out``.

        Returns ``(x, S(x))`` pairs — the tuples §2.1 of the paper
        enumerates for the Figure 1 example.
        """
        return tuple(
            (x, self.table[x])
            for x in range(self.size)
            if self.table[x] ^ self.table[x ^ delta_in] == delta_out
        )

    @cached_property
    def differential_branch_number(self) -> int:
        """``min over (a != 0, b) with ddt[a, b] > 0 of wt(a) + wt(b)``."""
        best = 2 * self.bits
        ddt = self.ddt
        for a in range(1, self.size):
            wa = hamming_weight(a)
            for b in range(self.size):
                if ddt[a, b]:
                    best = min(best, wa + hamming_weight(b))
        return int(best)

    @cached_property
    def fixed_points(self) -> Tuple[int, ...]:
        """Inputs with ``S(x) = x``."""
        return tuple(x for x in range(self.size) if self.table[x] == x)

    def __call__(self, value: int) -> int:
        return self.table[int(value) & (self.size - 1)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        hex_table = "".join(f"{v:x}" for v in self.table)
        return f"SBox({hex_table})"
