"""Tests for the linear-cryptanalysis substrate."""

import math

import numpy as np
import pytest

from repro.ciphers.gift import GIFT_SBOX
from repro.diffcrypt.linear import (
    correlation_table,
    gift16_best_linear_trail,
    gift16_cryptanalytic_panorama,
    gift16_linear_weight_vector,
    linear_weight_table,
)
from repro.diffcrypt.sbox import SBox
from repro.errors import SearchError


class TestCorrelationTable:
    def test_trivial_entry(self):
        table = correlation_table()
        assert table[0, 0] == 1.0
        assert np.allclose(table[0, 1:], 0.0)
        assert np.allclose(table[1:, 0], 0.0)

    def test_matches_lat(self):
        """Correlation = LAT bias * 2 / size."""
        table = correlation_table()
        lat = SBox(GIFT_SBOX).lat
        assert np.allclose(table, 2.0 * lat / 16.0)

    def test_parseval(self):
        """Rows of the squared correlation table sum to 1 (Parseval)."""
        table = correlation_table()
        assert np.allclose((table**2).sum(axis=1), 1.0)

    def test_gift_max_correlation(self):
        """The GIFT S-box has linearity 8, i.e. max |c| = 1/2."""
        table = np.abs(correlation_table())
        table[0, 0] = 0.0
        assert table.max() == pytest.approx(0.5)


class TestWeightTable:
    def test_best_nontrivial_weight_is_one(self):
        weights = linear_weight_table()
        weights[0, 0] = math.inf
        assert weights.min() == pytest.approx(1.0)

    def test_zero_correlation_is_inf(self):
        table = correlation_table()
        weights = linear_weight_table()
        zero = np.argwhere(table == 0.0)
        a, b = zero[0]
        assert math.isinf(weights[a, b])


class TestBestTrails:
    def test_one_round(self):
        summary = gift16_best_linear_trail(1)
        assert summary.weight == pytest.approx(1.0)
        assert summary.correlation == pytest.approx(0.5)
        assert summary.data_complexity == pytest.approx(4.0)

    def test_weights_nondecreasing(self):
        previous = 0.0
        for rounds in (1, 2, 3, 4):
            weight = gift16_best_linear_trail(rounds).weight
            assert weight >= previous - 1e-9
            previous = weight

    def test_fixed_mask_never_beats_global(self):
        global_best = gift16_best_linear_trail(3).weight
        fixed = float(gift16_linear_weight_vector(3, input_mask=0x0001).min())
        assert fixed >= global_best - 1e-9

    def test_invalid_args(self):
        with pytest.raises(SearchError):
            gift16_linear_weight_vector(0)
        with pytest.raises(SearchError):
            gift16_linear_weight_vector(1, input_mask=0)


class TestPanorama:
    def test_all_three_costs_present(self):
        row = gift16_cryptanalytic_panorama(3)
        assert row["differential_trail_log2"] > 0
        assert row["linear_trail_log2"] > 0
        assert row["allinone_online_log2"] > 0

    def test_allinone_beats_single_trails_at_depth(self):
        """At 4 rounds the exact all-in-one needs less data than either
        single-trail method — the gap the ML model taps into."""
        row = gift16_cryptanalytic_panorama(4)
        assert row["allinone_online_log2"] < row["differential_trail_log2"]
        assert row["allinone_online_log2"] < row["linear_trail_log2"]
