"""Tests for the bias-scoring oracle of :mod:`repro.search`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SearchError
from repro.search.config import get_scenario_builder
from repro.search.oracle import BiasScoringOracle


def _toyspeck_oracle(rounds=3, n_samples=1024, workers=1, rng=0):
    builder = get_scenario_builder("toyspeck")
    return BiasScoringOracle(
        builder.prototype(rounds=rounds),
        n_samples=n_samples,
        rng=rng,
        workers=workers,
    )


class TestScoring:
    def test_score_in_unit_interval(self):
        oracle = _toyspeck_oracle()
        score = oracle.score(np.array([0x00, 0x40], dtype=np.uint8))
        assert 0.0 <= score <= 1.0

    def test_deterministic_under_fixed_seed(self):
        delta = np.array([0x20, 0x00], dtype=np.uint8)
        a = _toyspeck_oracle(rng=7).score(delta)
        b = _toyspeck_oracle(rng=7).score(delta)
        assert a == b

    def test_seed_changes_samples(self):
        delta = np.array([0x20, 0x00], dtype=np.uint8)
        a = _toyspeck_oracle(rng=1, n_samples=256).score(delta)
        b = _toyspeck_oracle(rng=2, n_samples=256).score(delta)
        assert a != b

    def test_worker_invariant(self):
        delta = np.array([0x00, 0x40], dtype=np.uint8)
        serial = _toyspeck_oracle(workers=1, n_samples=2048).score(delta)
        sharded = _toyspeck_oracle(workers=4, n_samples=2048).score(delta)
        assert serial == sharded

    def test_memoised(self):
        oracle = _toyspeck_oracle()
        delta = np.array([0x00, 0x40], dtype=np.uint8)
        first = oracle.score(delta)
        evaluations = oracle.evaluations
        second = oracle.score(delta)
        assert first == second
        assert oracle.evaluations == evaluations  # cache hit, no new work

    def test_batch_matches_single(self):
        oracle = _toyspeck_oracle()
        batch = np.array([[0x00, 0x40], [0x20, 0x00]], dtype=np.uint8)
        scores = oracle.score_batch(batch)
        assert scores.shape == (2,)
        assert scores[0] == oracle.score(batch[0])
        assert scores[1] == oracle.score(batch[1])

    def test_bias_profile_shape(self):
        oracle = _toyspeck_oracle()
        profile = oracle.bias_profile(np.array([0x00, 0x40], dtype=np.uint8))
        assert profile.shape == (oracle.prototype.feature_bits,)
        assert np.all((profile >= 0.0) & (profile <= 1.0))

    def test_noise_floor(self):
        oracle = _toyspeck_oracle(n_samples=1024)
        assert oracle.noise_floor() == pytest.approx(
            np.sqrt(2.0 / (np.pi * 1024))
        )


class TestValidation:
    def test_rejects_zero_difference(self):
        oracle = _toyspeck_oracle()
        with pytest.raises(SearchError):
            oracle.score(np.zeros(2, dtype=np.uint8))

    def test_rejects_wrong_width(self):
        oracle = _toyspeck_oracle()
        with pytest.raises(SearchError):
            oracle.score(np.array([1, 2, 3], dtype=np.uint8))

    def test_rejects_live_generator_seed(self):
        builder = get_scenario_builder("toyspeck")
        with pytest.raises(SearchError):
            BiasScoringOracle(
                builder.prototype(rounds=3), rng=np.random.default_rng(0)
            )


class TestPaperDifferencesRank:
    """Satellite: the paper's hand-picked deltas score in the top-k."""

    def test_toyspeck_paper_delta_beats_random_pool(self):
        # delta1 = 0x0040 (Table: ToySpeck) must rank in the top 25% of
        # a pool of random same-weight candidates at a low round count.
        oracle = _toyspeck_oracle(rounds=2, n_samples=2048)
        paper = np.array([0x00, 0x40], dtype=np.uint8)
        paper_score = oracle.score(paper)
        rng = np.random.default_rng(99)
        pool = []
        while len(pool) < 32:
            candidate = np.zeros(2, dtype=np.uint8)
            word, bit = rng.integers(0, 2), rng.integers(0, 8)
            candidate[word] = np.uint8(1 << bit)
            if candidate.tobytes() != paper.tobytes():
                pool.append(oracle.score(candidate))
        better = sum(1 for s in pool if s > paper_score)
        assert paper_score > oracle.noise_floor()
        assert better <= len(pool) // 4

    def test_gimli_hash_paper_delta_above_noise(self):
        # The paper flips the LSBs of message bytes 4 and 12; at a low
        # round count both must produce bias the oracle can see.
        builder = get_scenario_builder("gimli-hash")
        oracle = BiasScoringOracle(
            builder.prototype(rounds=2), n_samples=512, rng=0, workers=1
        )
        byte4 = np.array([0, 1, 0, 0], dtype=np.uint32)
        byte12 = np.array([0, 0, 0, 1], dtype=np.uint32)
        floor = oracle.noise_floor()
        assert oracle.score(byte4) > floor
        assert oracle.score(byte12) > floor
