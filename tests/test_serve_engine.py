"""Tests for the micro-batching inference engine."""

import threading
import time

import numpy as np
import pytest

from repro.errors import EngineOverloaded, ServeError, ServeTimeout
from repro.nn import Dense, ReLU, Sequential, Softmax
from repro.serve import MicroBatchEngine, ServeMetrics


def make_model(rng, features=12, classes=3, dtype="float32"):
    model = Sequential([Dense(16), ReLU(), Dense(classes), Softmax()])
    return model.build((features,), rng).compile(dtype=dtype)


class TestCoalescing:
    def test_batched_results_bit_identical_to_unbatched_predict(self, rng):
        """Acceptance: micro-batched output == one unbatched predict call.

        The engine is started *after* submission so all five requests
        coalesce into a single fused predict over their concatenation,
        which must be bit-identical to ``predict_proba`` on the same
        rows in the same order.
        """
        model = make_model(rng)
        x = np.random.default_rng(1).random((40, 12)).astype(np.float32)
        engine = MicroBatchEngine(
            model, max_batch=64, max_wait_ms=50.0, autostart=False
        )
        futures = [engine.submit(x[begin:begin + 8]) for begin in range(0, 40, 8)]
        engine.start()
        batched = np.concatenate([future.result(timeout=10) for future in futures])
        engine.stop()
        unbatched = model.predict_proba(x, batch_size=x.shape[0])
        assert np.array_equal(batched, unbatched)

    def test_rows_routed_to_the_right_request(self, rng):
        model = make_model(rng)
        rows = np.random.default_rng(2).random((10, 12)).astype(np.float32)
        engine = MicroBatchEngine(
            model, max_batch=32, max_wait_ms=50.0, autostart=False
        )
        futures = [engine.submit(rows[i]) for i in range(10)]
        engine.start()
        results = [future.result(timeout=10) for future in futures]
        engine.stop()
        reference = model.predict_proba(rows, batch_size=10)
        for i, result in enumerate(results):
            assert result.shape == (1, 3)
            assert np.allclose(result[0], reference[i], atol=1e-6)

    def test_single_oversized_request_still_served(self, rng):
        model = make_model(rng)
        x = np.random.default_rng(3).random((50, 12)).astype(np.float32)
        with MicroBatchEngine(model, max_batch=8, max_wait_ms=1.0) as engine:
            probabilities = engine.classify(x)
        assert probabilities.shape == (50, 3)

    def test_batch_sizes_recorded(self, rng):
        model = make_model(rng)
        metrics = ServeMetrics()
        x = np.ones((4, 12), dtype=np.float32)
        engine = MicroBatchEngine(
            model, max_batch=64, max_wait_ms=50.0, metrics=metrics,
            autostart=False,
        )
        futures = [engine.submit(x) for _ in range(3)]
        engine.start()
        for future in futures:
            future.result(timeout=10)
        engine.stop()
        snapshot = metrics.snapshot()
        assert snapshot["batches"]["count"] == 1
        assert snapshot["batches"]["max_size"] == 12
        assert snapshot["requests"]["count"] == 3
        assert snapshot["requests"]["rows"] == 12


class TestFlowControl:
    def test_backpressure_raises_engine_overloaded(self, rng):
        model = make_model(rng)
        engine = MicroBatchEngine(
            model, max_batch=4, max_wait_ms=1.0, max_queue=2, autostart=False
        )
        x = np.ones((1, 12), dtype=np.float32)
        engine.submit(x)
        engine.submit(x)
        with pytest.raises(EngineOverloaded, match="queue is full"):
            engine.submit(x)
        assert engine.metrics.snapshot()["requests"]["rejected"] == 1
        engine.start()
        engine.stop()  # drains the two accepted requests

    def test_expired_request_gets_serve_timeout(self, rng):
        model = make_model(rng)
        engine = MicroBatchEngine(
            model, max_batch=4, max_wait_ms=1.0, autostart=False
        )
        x = np.ones((1, 12), dtype=np.float32)
        future = engine.submit(x, timeout_s=0.01)
        time.sleep(0.05)  # deadline passes while the worker is not running
        engine.start()
        with pytest.raises(ServeTimeout):
            future.result(timeout=10)
        assert engine.metrics.snapshot()["requests"]["timeouts"] == 1
        engine.stop()

    def test_stop_without_drain_fails_pending(self, rng):
        model = make_model(rng)
        engine = MicroBatchEngine(model, autostart=False)
        future = engine.submit(np.ones((1, 12), dtype=np.float32))
        engine.stop(drain=False)
        with pytest.raises(ServeError, match="without draining"):
            future.result(timeout=10)

    def test_submit_after_stop_rejected(self, rng):
        model = make_model(rng)
        engine = MicroBatchEngine(model)
        engine.stop()
        with pytest.raises(ServeError, match="stopped"):
            engine.submit(np.ones((1, 12), dtype=np.float32))


class TestValidation:
    def test_wrong_feature_width_rejected(self, rng):
        model = make_model(rng)
        with MicroBatchEngine(model) as engine:
            with pytest.raises(ServeError, match="model expects"):
                engine.submit(np.ones((2, 5), dtype=np.float32))

    def test_empty_request_rejected(self, rng):
        model = make_model(rng)
        with MicroBatchEngine(model) as engine:
            with pytest.raises(ServeError, match="at least one row"):
                engine.submit(np.empty((0, 12), dtype=np.float32))

    def test_unbuilt_model_rejected(self):
        with pytest.raises(ServeError, match="build"):
            MicroBatchEngine(Sequential([Dense(4)]))

    def test_1d_request_is_one_row(self, rng):
        model = make_model(rng)
        with MicroBatchEngine(model) as engine:
            assert engine.classify(np.ones(12, dtype=np.float32)).shape == (1, 3)


class TestEnvKnobs:
    def test_env_defaults_respected(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "37")
        monkeypatch.setenv("REPRO_SERVE_MAX_WAIT_MS", "7.5")
        engine = MicroBatchEngine(make_model(rng), autostart=False)
        assert engine.max_batch == 37
        assert engine.max_wait_s == pytest.approx(7.5e-3)
        engine.stop()

    def test_explicit_args_override_env(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "37")
        engine = MicroBatchEngine(make_model(rng), max_batch=8, autostart=False)
        assert engine.max_batch == 8
        engine.stop()

    def test_malformed_env_rejected(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "lots")
        with pytest.raises(ServeError, match="REPRO_SERVE_MAX_BATCH"):
            MicroBatchEngine(make_model(rng), autostart=False)


class TestConcurrency:
    def test_many_threads_all_answered_consistently(self, rng):
        model = make_model(rng)
        x = np.random.default_rng(5).random((64, 12)).astype(np.float32)
        reference = model.predict_proba(x, batch_size=64)
        results = {}
        errors = []

        with MicroBatchEngine(model, max_batch=16, max_wait_ms=1.0) as engine:
            def worker(i):
                try:
                    results[i] = engine.classify(x[i:i + 1])
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(64)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        for i in range(64):
            assert np.allclose(results[i][0], reference[i], atol=1e-5)
