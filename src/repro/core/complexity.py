"""Data-complexity accounting (paper §4 and §6).

The paper's headline comparison: the designers' optimal 8-round Gimli
trail has weight 52, so a classical single-trail distinguisher needs
``> 2^52`` chosen inputs, while the ML distinguisher used ``2^17.6``
offline samples and ``2^14.3`` online samples — roughly the *cube root*
of the classical complexity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.diffcrypt.trail import GIMLI_OPTIMAL_WEIGHTS
from repro.errors import DistinguisherError


def log2_samples(count: float) -> float:
    """``log2`` of a sample count (the paper reports complexities this way)."""
    if count <= 0:
        raise DistinguisherError(f"sample count must be positive, got {count}")
    return math.log2(count)


@dataclass(frozen=True)
class DistinguisherComplexity:
    """Offline/online data complexity of an ML distinguisher run."""

    offline_samples: float
    online_samples: float

    @property
    def offline_log2(self) -> float:
        """``log2`` of the offline (training) data complexity."""
        return log2_samples(self.offline_samples)

    @property
    def online_log2(self) -> float:
        """``log2`` of the online (testing) data complexity."""
        return log2_samples(self.online_samples)

    def speedup_over_trail(self, trail_weight: float) -> float:
        """``log2`` factor saved versus a weight-``w`` classical trail.

        A single-trail distinguisher needs ``~2^w`` online pairs; the
        ML distinguisher needs ``online_samples``.
        """
        return trail_weight - self.online_log2

    def complexity_exponent_ratio(self, trail_weight: float) -> float:
        """Ratio of the online exponent to the trail weight.

        The paper's cube-root claim is this ratio being close to 1/3
        for 8-round Gimli (``14.3 / 52 ≈ 0.28``; using the offline
        figure, ``17.6 / 52 ≈ 0.34``).
        """
        if trail_weight <= 0:
            raise DistinguisherError(
                f"trail weight must be positive, got {trail_weight}"
            )
        return self.online_log2 / trail_weight


def gimli8_paper_complexity() -> DistinguisherComplexity:
    """The complexities the paper reports for the 8-round Gimli results."""
    return DistinguisherComplexity(
        offline_samples=2.0**17.6, online_samples=2.0**14.3
    )


def classical_trail_complexity(rounds: int) -> float:
    """``2^w`` for the designers' optimal trail weight at ``rounds``."""
    try:
        weight = GIMLI_OPTIMAL_WEIGHTS[rounds]
    except KeyError:
        raise DistinguisherError(
            f"no published optimal weight for {rounds} rounds (have "
            f"{sorted(GIMLI_OPTIMAL_WEIGHTS)})"
        ) from None
    return 2.0**weight


def cube_root_summary(rounds: int = 8) -> dict:
    """The §6 comparison for a given round count, as a report dict."""
    classical = classical_trail_complexity(rounds)
    ml = gimli8_paper_complexity()
    return {
        "rounds": rounds,
        "classical_log2": math.log2(classical),
        "ml_offline_log2": ml.offline_log2,
        "ml_online_log2": ml.online_log2,
        "offline_exponent_ratio": ml.offline_log2 / math.log2(classical),
        "online_exponent_ratio": ml.online_log2 / math.log2(classical),
        "cube_root_log2": math.log2(classical) / 3.0,
    }
