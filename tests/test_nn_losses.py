"""Tests for loss functions: values and gradients."""

import numpy as np
import pytest

from repro.errors import ShapeError, TrainingError
from repro.nn.losses import (
    BinaryCrossentropy,
    CategoricalCrossentropy,
    MeanSquaredError,
    get_loss,
    one_hot,
)


def numeric_loss_grad(loss, y_true, y_pred, eps=1e-7):
    grad = np.zeros_like(y_pred)
    for idx in np.ndindex(y_pred.shape):
        plus = y_pred.copy()
        plus[idx] += eps
        minus = y_pred.copy()
        minus[idx] -= eps
        grad[idx] = (loss(y_true, plus)[0] - loss(y_true, minus)[0]) / (2 * eps)
    return grad


class TestOneHot:
    def test_encoding(self):
        enc = one_hot(np.array([0, 2, 1]), 3)
        assert enc.shape == (3, 3)
        assert list(enc.argmax(axis=1)) == [0, 2, 1]

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ShapeError):
            one_hot(np.array([-1]), 3)

    def test_requires_1d(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 2)


class TestCategoricalCrossentropy:
    def test_perfect_prediction_near_zero(self):
        loss = CategoricalCrossentropy()
        y = one_hot(np.array([0, 1]), 2)
        value, _ = loss(y, y * 0.9999 + 0.00005)
        assert value < 1e-3

    def test_uniform_prediction_log_t(self):
        loss = CategoricalCrossentropy()
        y = one_hot(np.array([0, 1, 2, 3]), 4)
        pred = np.full((4, 4), 0.25)
        value, _ = loss(y, pred)
        assert value == pytest.approx(np.log(4.0))

    def test_gradient_matches_numeric(self, rng):
        loss = CategoricalCrossentropy()
        y = one_hot(np.array([0, 2, 1]), 3)
        pred = rng.dirichlet(np.ones(3), size=3)
        _, grad = loss(y, pred)
        assert np.allclose(grad, numeric_loss_grad(loss, y, pred), atol=1e-4)

    def test_from_logits_gradient(self, rng):
        loss = CategoricalCrossentropy(from_logits=True)
        y = one_hot(np.array([1, 0]), 2)
        logits = rng.normal(size=(2, 2))
        _, grad = loss(y, logits)
        assert np.allclose(grad, numeric_loss_grad(loss, y, logits), atol=1e-5)

    def test_from_logits_equals_softmax_then_cce(self, rng):
        from repro.nn.layers import Softmax

        logits = rng.normal(size=(5, 4))
        y = one_hot(rng.integers(0, 4, 5), 4)
        a, _ = CategoricalCrossentropy(from_logits=True)(y, logits)
        b, _ = CategoricalCrossentropy()(y, Softmax().forward(logits))
        assert a == pytest.approx(b, abs=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            CategoricalCrossentropy()(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_empty_batch(self):
        with pytest.raises(TrainingError):
            CategoricalCrossentropy()(np.zeros((0, 2)), np.zeros((0, 2)))

    def test_clipping_handles_zero_probability(self):
        loss = CategoricalCrossentropy()
        y = one_hot(np.array([0]), 2)
        value, grad = loss(y, np.array([[0.0, 1.0]]))
        assert np.isfinite(value)
        assert np.isfinite(grad).all()


class TestBinaryCrossentropy:
    def test_symmetric(self):
        loss = BinaryCrossentropy()
        a, _ = loss(np.array([[1.0]]), np.array([[0.8]]))
        b, _ = loss(np.array([[0.0]]), np.array([[0.2]]))
        assert a == pytest.approx(b)

    def test_gradient_matches_numeric(self, rng):
        loss = BinaryCrossentropy()
        y = rng.integers(0, 2, size=(4, 1)).astype(np.float64)
        pred = rng.uniform(0.1, 0.9, size=(4, 1))
        _, grad = loss(y, pred)
        assert np.allclose(grad, numeric_loss_grad(loss, y, pred), atol=1e-5)


class TestMeanSquaredError:
    def test_zero_on_match(self, rng):
        y = rng.normal(size=(3, 2))
        value, grad = MeanSquaredError()(y, y.copy())
        assert value == 0.0
        assert (grad == 0).all()

    def test_gradient_matches_numeric(self, rng):
        loss = MeanSquaredError()
        y = rng.normal(size=(3, 2))
        pred = rng.normal(size=(3, 2))
        _, grad = loss(y, pred)
        assert np.allclose(grad, numeric_loss_grad(loss, y, pred), atol=1e-5)


class TestGetLoss:
    def test_by_name(self):
        assert isinstance(get_loss("mse"), MeanSquaredError)
        assert isinstance(
            get_loss("categorical_crossentropy"), CategoricalCrossentropy
        )

    def test_instance_passthrough(self):
        loss = MeanSquaredError()
        assert get_loss(loss) is loss

    def test_unknown(self):
        with pytest.raises(TrainingError):
            get_loss("nope")
