"""Structured JSON-lines logging with levels and bound context.

A log *event* is a flat dict: timestamp, level, logger name, event
name, the logger's bound context, and per-call fields.  How it is
rendered is a process-wide configuration, not a per-call concern:

* ``text`` (default) — one human-readable line per event on the
  console stream (``[repro.nn] train.epoch epoch=1/5 loss=0.6931``),
  floats shortened for reading;
* ``json`` — one JSON object per line, every field verbatim, for
  machine consumption;
* ``off`` — nothing is rendered and the per-call cost collapses to a
  level comparison.

Environment knobs (read once at import; :func:`configure` and
:func:`configure_from_env` override at runtime):

* ``REPRO_LOG`` — ``json`` | ``text`` | ``off`` (default ``text``);
* ``REPRO_LOG_LEVEL`` — ``debug`` | ``info`` | ``warning`` | ``error``
  (default ``info``; per-shard/per-batch heartbeats are ``debug``);
* ``REPRO_LOG_FILE`` — path of an *always JSON-lines* file sink,
  appended to in addition to the console renderer (inactive when the
  mode is ``off``).

Loggers are cheap immutable handles: :func:`get_logger` returns one,
:meth:`Logger.bind` derives one with extra context.  Emission is
serialised by a module lock so concurrent threads never interleave
half-lines.
"""

from __future__ import annotations

import io
import json
import os
import sys
import threading
import time
from typing import Dict, Optional

from repro.errors import ReproError

MODE_ENV_VAR = "REPRO_LOG"
LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"
FILE_ENV_VAR = "REPRO_LOG_FILE"

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_MODES = ("text", "json", "off")

_lock = threading.Lock()
_mode: str = "text"
_threshold: int = LEVELS["info"]
_stream = None  # None -> sys.stdout at emit time (test-friendly)
_file_path: Optional[str] = None
_file_handle: Optional[io.TextIOBase] = None


def level_number(level: str) -> int:
    """The numeric value of a level name (raises on unknown names)."""
    try:
        return LEVELS[level]
    except KeyError:
        known = ", ".join(sorted(LEVELS))
        raise ReproError(f"unknown log level {level!r}; known: {known}") from None


def configure(
    mode: Optional[str] = None,
    level: Optional[str] = None,
    stream=None,
    file: Optional[str] = None,
) -> None:
    """Override the process logging configuration.

    Only the arguments passed change; ``file=""`` closes the file sink.
    ``stream`` replaces the console stream (pass ``sys.stdout`` /
    a ``StringIO``; ``None`` keeps the current one).
    """
    global _mode, _threshold, _stream, _file_path, _file_handle
    with _lock:
        if mode is not None:
            if mode not in _MODES:
                raise ReproError(
                    f"{MODE_ENV_VAR} must be one of {_MODES}, got {mode!r}"
                )
            _mode = mode
        if level is not None:
            _threshold = level_number(level)
        if stream is not None:
            _stream = stream
        if file is not None:
            if _file_handle is not None:
                _file_handle.close()
                _file_handle = None
            _file_path = file or None


def configure_from_env() -> None:
    """(Re-)read ``REPRO_LOG`` / ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_FILE``."""
    mode = os.environ.get(MODE_ENV_VAR, "") or "text"
    if mode not in _MODES:
        raise ReproError(
            f"{MODE_ENV_VAR} must be one of {_MODES}, got {mode!r}"
        )
    level = os.environ.get(LEVEL_ENV_VAR, "") or "info"
    level_number(level)  # validate before committing anything
    configure(mode=mode, level=level, file=os.environ.get(FILE_ENV_VAR, ""))


def enabled(level: str) -> bool:
    """Whether an event at ``level`` would currently be emitted."""
    return _mode != "off" and LEVELS.get(level, 0) >= _threshold


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}" if 1e-4 <= abs(value) < 1e6 or value == 0.0 else f"{value:.3e}"
    return str(value)


def _render_text(record: dict) -> str:
    fields = " ".join(
        f"{key}={_format_value(value)}"
        for key, value in record.items()
        if key not in ("ts", "level", "logger", "event")
    )
    line = f"[{record['logger']}] {record['event']}"
    return f"{line} {fields}" if fields else line


def _emit(record: dict) -> None:
    global _file_handle
    with _lock:
        if _mode == "off":  # re-check: configuration may have raced
            return
        if _mode == "json":
            line = json.dumps(record, default=str)
        else:
            line = _render_text(record)
        stream = _stream if _stream is not None else sys.stdout
        stream.write(line + "\n")
        stream.flush()
        if _file_path is not None:
            if _file_handle is None:
                _file_handle = open(_file_path, "a", encoding="utf-8")
            _file_handle.write(json.dumps(record, default=str) + "\n")
            _file_handle.flush()


class Logger:
    """An immutable named handle with bound context fields."""

    __slots__ = ("name", "context")

    def __init__(self, name: str, context: Optional[dict] = None):
        self.name = name
        self.context = dict(context) if context else {}

    def bind(self, **context) -> "Logger":
        """A derived logger whose events carry these extra fields."""
        return Logger(self.name, {**self.context, **context})

    def log(self, level: str, event: str, **fields) -> None:
        """Emit one event; a no-op below the threshold or when off."""
        if _mode == "off" or LEVELS.get(level, 0) < _threshold:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        record.update(self.context)
        record.update(fields)
        _emit(record)

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


_loggers: Dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    """The (cached) context-free logger for ``name``."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers.setdefault(name, Logger(name))
    return logger


configure_from_env()
