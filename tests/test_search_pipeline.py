"""Tests for the declarative scenario config, pipeline and CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import SearchError
from repro.search.config import (
    SCENARIO_BUILDERS,
    ScenarioBuilder,
    ScenarioSpec,
    get_scenario_builder,
    register_scenario_builder,
)
from repro.search.pipeline import run_search, run_search_pipeline

FAST_SEARCH = {
    "population_size": 12,
    "generations": 2,
    "elite": 4,
    "n_samples": 512,
    "seed": 0,
}
FAST_TRAIN = {
    "num_samples": 2000,
    "epochs": 2,
    "hidden": [16],
    "seed": 0,
    "significance": 0.2,
}


def _spec(**overrides):
    raw = {
        "name": "toyspeck-test",
        "scenario": "toyspeck",
        "params": {"rounds": 2},
        "search": dict(FAST_SEARCH),
        "train": dict(FAST_TRAIN),
    }
    raw.update(overrides)
    return ScenarioSpec.from_dict(raw)


class TestScenarioSpec:
    def test_minimal_with_differences(self):
        spec = ScenarioSpec.from_dict(
            {"scenario": "toyspeck", "differences": [[0x00, 0x40], [0x20, 0x00]]}
        )
        assert spec.name == "toyspeck"
        assert spec.differences.shape == (2, 2)
        assert spec.search is None

    def test_requires_differences_or_search(self):
        with pytest.raises(SearchError, match="differences"):
            ScenarioSpec.from_dict({"scenario": "toyspeck"})

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SearchError, match="unknown scenario"):
            ScenarioSpec.from_dict({"scenario": "nope", "search": {}})

    def test_rejects_unknown_top_level_key(self):
        with pytest.raises(SearchError, match="unknown scenario-config keys"):
            ScenarioSpec.from_dict(
                {"scenario": "toyspeck", "search": {}, "bogus": 1}
            )

    def test_rejects_unknown_search_key(self):
        with pytest.raises(SearchError, match="unknown search keys"):
            ScenarioSpec.from_dict(
                {"scenario": "toyspeck", "search": {"pop": 4}}
            )

    def test_rejects_unknown_train_key(self):
        with pytest.raises(SearchError, match="unknown train keys"):
            ScenarioSpec.from_dict(
                {"scenario": "toyspeck", "search": {}, "train": {"lr": 0.1}}
            )

    def test_rejects_1d_differences(self):
        with pytest.raises(SearchError, match="2-D"):
            ScenarioSpec.from_dict(
                {"scenario": "toyspeck", "differences": [1, 2]}
            )

    def test_from_json_roundtrip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"scenario": "toyspeck", "search": FAST_SEARCH})
        )
        spec = ScenarioSpec.from_json(str(path))
        assert spec.scenario == "toyspeck"

    def test_from_json_missing_file(self, tmp_path):
        with pytest.raises(SearchError, match="no scenario config"):
            ScenarioSpec.from_json(str(tmp_path / "nope.json"))

    def test_builder_registry_rejects_duplicates(self):
        builder = SCENARIO_BUILDERS["toyspeck"]
        with pytest.raises(SearchError, match="already registered"):
            register_scenario_builder(builder)

    def test_every_builder_has_working_prototype(self):
        for name in SCENARIO_BUILDERS:
            prototype = get_scenario_builder(name).prototype()
            assert prototype.difference_masks.ndim == 2, name
            assert prototype.num_classes >= 2, name


class TestRunSearch:
    def test_search_stage_alone(self):
        result = run_search(_spec())
        assert result.ranked_masks.shape[0] >= 2
        assert result.best_score > 0

    def test_spec_without_search_section_raises(self):
        spec = ScenarioSpec.from_dict(
            {"scenario": "toyspeck", "differences": [[0x00, 0x40], [0x20, 0x00]]}
        )
        with pytest.raises(SearchError, match="no 'search' section"):
            run_search(spec)


class TestPipeline:
    def test_fixed_differences_skip_search(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "fixed",
                "scenario": "toyspeck",
                "params": {"rounds": 2},
                "differences": [[0x00, 0x40], [0x20, 0x00]],
                "train": dict(FAST_TRAIN),
            }
        )
        summary = run_search_pipeline(spec)
        assert summary["search"] is None
        assert summary["differences"] == [[0x00, 0x40], [0x20, 0x00]]
        assert 0.0 <= summary["training"]["validation_accuracy"] <= 1.0

    def test_search_then_train_then_register(self, tmp_path):
        from repro.serve import ModelRegistry

        registry = ModelRegistry(str(tmp_path / "registry"))
        summary = run_search_pipeline(_spec(), registry=registry)
        assert summary["search"] is not None
        assert "model_id" in summary

        record = registry.resolve("toyspeck-test")
        manifest = record.manifest
        # the manifest records the discovered difference set
        assert manifest["search"]["ranked_differences"]
        assert manifest["scenario"]["input_differences"] == summary["differences"]
        assert record.summary()["searched"] is True

        model, _record = registry.load("toyspeck-test")
        probe = np.zeros((3, manifest["input_shape"][0]), dtype=np.float32)
        assert model.forward(probe).shape == (3, 2)


class TestCLI:
    def test_search_only_json(self, capsys):
        from repro.search.__main__ import main

        code = main(
            [
                "--scenario", "toyspeck", "--rounds", "2",
                "--population", "12", "--generations", "2",
                "--samples", "512", "--seed", "0",
                "--search-only", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "evolutionary-bias"
        assert len(payload["ranked_differences"]) >= 2

    def test_config_file_end_to_end(self, tmp_path, capsys):
        from repro.search.__main__ import main

        config = {
            "name": "cli-e2e",
            "scenario": "toyspeck",
            "params": {"rounds": 2},
            "search": FAST_SEARCH,
            "train": FAST_TRAIN,
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(config))
        code = main(
            [str(path), "--registry", str(tmp_path / "reg"), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model_id"]
        assert payload["search"]["ranked_differences"]

    def test_error_reported_not_raised(self, tmp_path, capsys):
        from repro.search.__main__ import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"scenario": "nope", "search": {}}))
        code = main([str(path), "--search-only"])
        assert code == 1
        assert "unknown scenario" in capsys.readouterr().err
