"""Content-addressed, versioned store for trained distinguishers.

The offline phase produces a trained :class:`~repro.nn.model.Sequential`
plus the numbers the online phase needs (the training accuracy ``a``,
the class count ``t``, the decision threshold ``(a + 1/t) / 2``).  The
registry persists all of it as two sibling files per model under one
directory::

    <root>/<model_id>.npz    # Sequential.save weights+architecture
    <root>/<model_id>.json   # manifest (scenario fingerprint, accuracy, ...)
    <root>/pins.json         # name -> model_id overrides

``model_id`` is the SHA-256 over the model's architecture config and
raw parameter bytes, so registering the same trained model twice is
idempotent, two different trainings never collide, and an artifact can
be verified against its id.  Within a human-readable ``name`` (e.g.
``"gimli-hash-r8"``) versions count up monotonically; ``latest(name)``
returns the newest and ``pin(name, model_id)`` freezes resolution to a
known-good version until ``unpin``.

All writes are atomic (temp file + ``os.replace``), so a crashed or
concurrent registration never leaves a half-written artifact visible.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cache import scenario_fingerprint
from repro.core.statistics import decision_threshold
from repro.errors import RegistryError
from repro.nn.model import Sequential
from repro.nn.quant import QUANT_FORMAT_VERSION, QuantizedSequential

#: Bump when the manifest layout changes incompatibly.
MANIFEST_VERSION = 1


def model_digest(model: Sequential) -> str:
    """SHA-256 content address of a built model (architecture + weights)."""
    if model.input_shape is None:
        raise RegistryError("build the model before registering it")
    config = {
        "input_shape": list(model.input_shape),
        "dtype": model.dtype.name,
        "layers": [
            {"class": layer.name, "config": layer.get_config()}
            for layer in model.layers
        ],
    }
    digest = hashlib.sha256()
    digest.update(json.dumps(config, sort_keys=True).encode())
    for layer in model.layers:
        for param in layer.params:
            digest.update(str(param.dtype).encode())
            digest.update(str(param.shape).encode())
            digest.update(np.ascontiguousarray(param).tobytes())
    return digest.hexdigest()


def _scenario_manifest(scenario) -> dict:
    """The scenario facts the online phase needs, JSON-ready."""
    fingerprint = hashlib.sha256(
        repr(scenario_fingerprint(scenario)).encode()
    ).hexdigest()
    manifest = {
        "class": type(scenario).__qualname__,
        "fingerprint_sha256": fingerprint,
        "num_classes": int(scenario.num_classes),
        "feature_bits": int(scenario.feature_bits),
    }
    masks = getattr(scenario, "difference_masks", None)
    if masks is not None:
        manifest["input_differences"] = np.asarray(masks).tolist()
        manifest["word_width"] = int(scenario.word_width)
    return manifest


def _training_manifest(report) -> dict:
    """Accept a ``TrainingReport`` or a plain dict with the same keys."""
    if isinstance(report, dict):
        required = ("validation_accuracy", "num_classes")
        for key in required:
            if key not in report:
                raise RegistryError(f"training report dict is missing {key!r}")
        return {
            "training_accuracy": float(
                report.get("training_accuracy", report["validation_accuracy"])
            ),
            "validation_accuracy": float(report["validation_accuracy"]),
            "num_samples": int(report.get("num_samples", 0)),
            "num_classes": int(report["num_classes"]),
        }
    return {
        "training_accuracy": float(report.training_accuracy),
        "validation_accuracy": float(report.validation_accuracy),
        "num_samples": int(report.num_samples),
        "num_classes": int(report.num_classes),
    }


@dataclass(frozen=True)
class ModelRecord:
    """One registered model: its id, manifest, and on-disk paths."""

    model_id: str
    manifest: dict
    model_path: str
    manifest_path: str

    @property
    def name(self) -> str:
        return self.manifest["name"]

    @property
    def version(self) -> int:
        return int(self.manifest["version"])

    @property
    def threshold(self) -> Optional[float]:
        """The paper's decision threshold ``(a + 1/t) / 2``, if trained."""
        return self.manifest.get("threshold")

    @property
    def num_classes(self) -> Optional[int]:
        training = self.manifest.get("training")
        if training:
            return int(training["num_classes"])
        scenario = self.manifest.get("scenario")
        return int(scenario["num_classes"]) if scenario else None

    def summary(self) -> dict:
        """The manifest subset listed by ``GET /v1/models``."""
        training = self.manifest.get("training") or {}
        scenario = self.manifest.get("scenario") or {}
        quantization = self.manifest.get("quantization") or {}
        return {
            "model_id": self.model_id,
            "name": self.name,
            "version": self.version,
            "scenario": scenario.get("class"),
            "num_classes": self.num_classes,
            "validation_accuracy": training.get("validation_accuracy"),
            "threshold": self.threshold,
            "input_shape": self.manifest.get("input_shape"),
            "quantization": quantization.get("scheme"),
            "searched": bool(self.manifest.get("search")),
        }


class ModelRegistry:
    """A directory of content-addressed, versioned model artifacts."""

    def __init__(self, root: str):
        if not root:
            raise RegistryError("registry root must be a directory path")
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def _model_path(self, model_id: str) -> str:
        return os.path.join(self.root, f"{model_id}.npz")

    def _manifest_path(self, model_id: str) -> str:
        return os.path.join(self.root, f"{model_id}.json")

    @property
    def _pins_path(self) -> str:
        return os.path.join(self.root, "pins.json")

    def _write_atomic(self, path: str, payload: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- registration ------------------------------------------------------

    def register(
        self,
        model: Sequential,
        name: str,
        scenario=None,
        report=None,
        search: Optional[dict] = None,
        extra: Optional[dict] = None,
    ) -> ModelRecord:
        """Persist ``model`` under ``name`` and return its record.

        ``scenario`` (a :class:`DifferentialScenario`) and ``report``
        (a :class:`TrainingReport` or equivalent dict) enrich the
        manifest with the online-phase parameters; both are optional so
        untrained or externally-trained models can still be served.
        ``search`` (a JSON-ready dict, e.g.
        :meth:`repro.search.SearchResult.summary`) records how the
        model's input differences were *discovered* — the
        ``repro.search`` pipeline passes it so a served model is
        auditable back to its difference search.  Registering a model
        whose content digest already exists is idempotent and returns
        the existing record unchanged.
        """
        if not name or "/" in name or name != name.strip():
            raise RegistryError(f"invalid model name {name!r}")
        model_id = model_digest(model)
        existing = self._read_manifest(model_id)
        if existing is not None:
            return ModelRecord(
                model_id,
                existing,
                self._model_path(model_id),
                self._manifest_path(model_id),
            )
        manifest: dict = {
            "manifest_version": MANIFEST_VERSION,
            "model_id": model_id,
            "name": name,
            "version": self._next_version(name),
            "created_unix": time.time(),
            "input_shape": list(model.input_shape or ()),
            "dtype": model.dtype.name,
            "loss": None,
            "optimizer": None,
            "metrics": list(model.metric_names),
            "param_count": model.count_params(),
            "scenario": _scenario_manifest(scenario) if scenario is not None else None,
            "training": _training_manifest(report) if report is not None else None,
        }
        if model.loss is not None and model.optimizer is not None:
            manifest["loss"] = type(model.loss).__name__
            manifest["optimizer"] = type(model.optimizer).__name__
        if manifest["training"] is not None:
            training = manifest["training"]
            manifest["threshold"] = decision_threshold(
                training["validation_accuracy"], training["num_classes"]
            )
        else:
            manifest["threshold"] = None
        if search:
            manifest["search"] = dict(search)
        if extra:
            manifest["extra"] = dict(extra)

        # Weights first, manifest last: a manifest is the commit record,
        # so a visible manifest always points at complete weights.  The
        # temp name must end in ".npz" or np.savez appends the suffix
        # itself and the replace would move an empty file.
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp.npz")
        os.close(fd)
        try:
            model.save(tmp)
            os.replace(tmp, self._model_path(model_id))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._write_atomic(
            self._manifest_path(model_id),
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
        )
        return ModelRecord(
            model_id,
            manifest,
            self._model_path(model_id),
            self._manifest_path(model_id),
        )

    def register_quantized(
        self,
        quantized: QuantizedSequential,
        parent_ref: str,
        holdout=None,
        name: Optional[str] = None,
        extra: Optional[dict] = None,
    ) -> ModelRecord:
        """Persist a quantized variant next to its float parent.

        ``parent_ref`` is the registered parent's id or name; the
        variant's manifest inherits the parent's scenario, training
        report and decision threshold (the online phase thresholds the
        same statistic either way) and adds a ``quantization`` section
        recording the scheme, the parent id, and — when ``holdout`` is
        a ``(features, labels)`` pair — the held-out accuracies of both
        models and their delta in percentage points, so the cost of the
        quantization is pinned in the artifact itself.  ``name``
        defaults to ``"<parent name>-<scheme>"``.  Idempotent on the
        variant's content digest, like :meth:`register`.
        """
        parent_model, parent = self.load(parent_ref)
        model_id = quantized.digest()
        existing = self._read_manifest(model_id)
        if existing is not None:
            return ModelRecord(
                model_id,
                existing,
                self._model_path(model_id),
                self._manifest_path(model_id),
            )
        name = name or f"{parent.name}-{quantized.scheme}"
        if "/" in name or name != name.strip():
            raise RegistryError(f"invalid model name {name!r}")
        quantization = {
            "scheme": quantized.scheme,
            "format_version": QUANT_FORMAT_VERSION,
            "parent_id": parent.model_id,
        }
        if holdout is not None:
            features, labels = holdout
            quantized_accuracy = quantized.accuracy(features, labels)
            labels = np.asarray(labels)
            parent_accuracy = float(
                (parent_model.predict_classes(features) == labels).mean()
            )
            quantization["holdout_accuracy"] = quantized_accuracy
            quantization["parent_holdout_accuracy"] = parent_accuracy
            quantization["accuracy_delta_pp"] = (
                (quantized_accuracy - parent_accuracy) * 100.0
            )
        manifest: dict = {
            "manifest_version": MANIFEST_VERSION,
            "model_id": model_id,
            "name": name,
            "version": self._next_version(name),
            "created_unix": time.time(),
            "input_shape": list(quantized.input_shape),
            "dtype": "float32",
            "loss": parent.manifest.get("loss"),
            "optimizer": parent.manifest.get("optimizer"),
            "metrics": list(parent.manifest.get("metrics", [])),
            "param_count": quantized.count_params(),
            "scenario": parent.manifest.get("scenario"),
            "training": parent.manifest.get("training"),
            "threshold": parent.manifest.get("threshold"),
            "quantization": quantization,
        }
        if extra:
            manifest["extra"] = dict(extra)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp.npz")
        os.close(fd)
        try:
            quantized.save(tmp)
            os.replace(tmp, self._model_path(model_id))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._write_atomic(
            self._manifest_path(model_id),
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
        )
        return ModelRecord(
            model_id,
            manifest,
            self._model_path(model_id),
            self._manifest_path(model_id),
        )

    def _next_version(self, name: str) -> int:
        versions = [
            record.version for record in self.list() if record.name == name
        ]
        return max(versions, default=0) + 1

    # -- lookup ------------------------------------------------------------

    def _read_manifest(self, model_id: str) -> Optional[dict]:
        try:
            with open(self._manifest_path(model_id), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(
                f"corrupt manifest for model {model_id!r}: {exc}"
            ) from None

    def list(self) -> List[ModelRecord]:
        """All registered models, sorted by ``(name, version)``."""
        records = []
        for entry in os.listdir(self.root):
            if not entry.endswith(".json") or entry == "pins.json":
                continue
            model_id = entry[: -len(".json")]
            manifest = self._read_manifest(model_id)
            if manifest is None:
                continue
            records.append(
                ModelRecord(
                    model_id,
                    manifest,
                    self._model_path(model_id),
                    self._manifest_path(model_id),
                )
            )
        records.sort(key=lambda record: (record.name, record.version))
        return records

    def get(self, model_id: str) -> ModelRecord:
        """The record for an exact content-address id."""
        manifest = self._read_manifest(model_id)
        if manifest is None:
            raise RegistryError(f"no model with id {model_id!r}")
        return ModelRecord(
            model_id,
            manifest,
            self._model_path(model_id),
            self._manifest_path(model_id),
        )

    def latest(self, name: str) -> ModelRecord:
        """The highest-version model registered under ``name``."""
        named = [record for record in self.list() if record.name == name]
        if not named:
            raise RegistryError(f"no model registered under name {name!r}")
        return named[-1]

    def resolve(self, ref: str) -> ModelRecord:
        """Resolve a model id, or a name via its pin, or the latest version."""
        if os.path.exists(self._manifest_path(ref)):
            return self.get(ref)
        pins = self._read_pins()
        if ref in pins:
            return self.get(pins[ref])
        return self.latest(ref)

    def load(self, ref: str) -> Tuple[Sequential, ModelRecord]:
        """Load ``(model, record)`` for an id or name.

        Quantized variants (manifest carries a ``quantization``
        section) come back as :class:`QuantizedSequential`, which
        exposes the same inference surface the engine and HTTP service
        consume, so callers route to either transparently.
        """
        record = self.resolve(ref)
        loader = (
            QuantizedSequential.load
            if record.manifest.get("quantization")
            else Sequential.load
        )
        try:
            model = loader(record.model_path)
        except FileNotFoundError:
            raise RegistryError(
                f"manifest for {record.model_id!r} exists but its weights "
                f"file is missing"
            ) from None
        return model, record

    # -- pins --------------------------------------------------------------

    def _read_pins(self) -> Dict[str, str]:
        try:
            with open(self._pins_path, "r", encoding="utf-8") as fh:
                return dict(json.load(fh))
        except FileNotFoundError:
            return {}
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(f"corrupt pins file: {exc}") from None

    def pin(self, name: str, model_id: str) -> None:
        """Freeze ``name`` to resolve to ``model_id`` until unpinned."""
        self.get(model_id)  # must exist
        pins = self._read_pins()
        pins[name] = model_id
        self._write_atomic(
            self._pins_path, (json.dumps(pins, indent=2, sort_keys=True) + "\n").encode()
        )

    def unpin(self, name: str) -> None:
        """Remove a pin; resolution falls back to ``latest(name)``."""
        pins = self._read_pins()
        if name not in pins:
            raise RegistryError(f"no pin for name {name!r}")
        del pins[name]
        self._write_atomic(
            self._pins_path, (json.dumps(pins, indent=2, sort_keys=True) + "\n").encode()
        )

    def pins(self) -> Dict[str, str]:
        """The current ``name -> model_id`` pin table."""
        return self._read_pins()
