"""Table 2: neural distinguisher accuracy on round-reduced Gimli.

The paper reports, for ``2^17.6`` offline samples and 20 epochs:

=======  ==========  ============
Rounds   Gimli-Hash  Gimli-Cipher
=======  ==========  ============
6        0.9689      0.9528
7        0.7229      0.6340
8        0.5219      0.5099
=======  ==========  ============

This experiment retrains both scenario families for the same round
counts and additionally runs the *online* phase against both a cipher
and a random oracle (the part of Algorithm 2 Table 2 doesn't show),
reporting the verdicts.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.distinguisher import MLDistinguisher
from repro.core.scenario import GimliCipherScenario, GimliHashScenario
from repro.errors import DistinguisherAborted
from repro.experiments.config import default_scale, get_dtype, get_workers
from repro.nn.architectures import mlp_ii
from repro.utils.rng import derive_rng, make_rng

#: Accuracies printed in the paper's Table 2.
PAPER_TABLE2 = {
    ("hash", 6): 0.9689,
    ("hash", 7): 0.7229,
    ("hash", 8): 0.5219,
    ("cipher", 6): 0.9528,
    ("cipher", 7): 0.6340,
    ("cipher", 8): 0.5099,
}

#: Minimum offline samples per round count.  The 8-round signal is a
#: ~1% accuracy edge; certifying it needs close to the paper's own
#: 2^17.6 budget, so scaled-down runs are floored here (an 8-round run
#: with 10k samples would not be the paper's experiment at all).
#: An explicit ``offline_samples`` argument overrides the floor.
ROUND_MIN_SAMPLES = {8: 180_000}

#: Minimum online samples and epochs per round count, same rationale
#: (the paper's own online budget is 2^14.3 ≈ 20k).
ROUND_MIN_ONLINE = {8: 1 << 14}
ROUND_MIN_EPOCHS = {8: 5}


def _make_scenario(target: str, rounds: int):
    if target == "hash":
        return GimliHashScenario(rounds=rounds)
    if target == "cipher":
        return GimliCipherScenario(total_rounds=rounds)
    raise ValueError(f"unknown target {target!r}; expected 'hash' or 'cipher'")


def run_table2(
    rounds: Sequence[int] = (6, 7, 8),
    targets: Sequence[str] = ("hash", "cipher"),
    offline_samples: Optional[int] = None,
    online_samples: Optional[int] = None,
    epochs: Optional[int] = None,
    run_online: bool = True,
    rng=None,
    workers: Optional[int] = None,
    dtype: Optional[str] = None,
) -> Dict:
    """Regenerate Table 2 (accuracy per round count and target).

    Defaults come from ``REPRO_SCALE``; pass explicit sizes to override.
    ``workers``/``dtype`` default to ``REPRO_WORKERS``/``REPRO_DTYPE``.
    Each row reports the offline validation accuracy plus — when
    ``run_online`` — the online accuracies and verdicts against the
    cipher and a random oracle.
    """
    scale = default_scale()
    offline = offline_samples if offline_samples is not None else scale.offline_samples
    online = online_samples if online_samples is not None else scale.online_samples
    n_epochs = epochs if epochs is not None else scale.table2_epochs
    workers = workers if workers is not None else get_workers()
    dtype = dtype if dtype is not None else get_dtype()
    generator = make_rng(rng)
    rows = []
    for target in targets:
        for r in rounds:
            scenario = _make_scenario(target, r)
            distinguisher = MLDistinguisher(
                scenario,
                model=mlp_ii(),
                epochs=n_epochs,
                batch_size=256,
                rng=derive_rng(generator, target, r),
                workers=workers,
                dtype=dtype,
            )
            row_offline = offline
            row_online = online
            row_epochs = n_epochs
            if offline_samples is None:
                row_offline = max(offline, ROUND_MIN_SAMPLES.get(r, 0))
            if online_samples is None:
                row_online = max(online, ROUND_MIN_ONLINE.get(r, 0))
            if epochs is None:
                row_epochs = max(n_epochs, ROUND_MIN_EPOCHS.get(r, 0))
                distinguisher.epochs = row_epochs
            row = {
                "target": target,
                "rounds": r,
                "paper": PAPER_TABLE2.get((target, r)),
                "offline_samples": row_offline,
            }
            try:
                report = distinguisher.train(
                    num_samples=row_offline, significance=0.05
                )
            except DistinguisherAborted:
                row.update(
                    {"measured": 0.5, "aborted": True}
                )
                rows.append(row)
                continue
            row.update(
                {
                    "measured": report.validation_accuracy,
                    "aborted": False,
                }
            )
            if run_online:
                cipher_result = distinguisher.test(
                    scenario.cipher_oracle(), row_online
                )
                random_result = distinguisher.test(
                    scenario.random_oracle(rng=derive_rng(generator, "ro", target, r)),
                    row_online,
                )
                row.update(
                    {
                        "online_samples": row_online,
                        "cipher_accuracy": cipher_result.accuracy,
                        "cipher_verdict": cipher_result.verdict,
                        "random_accuracy": random_result.accuracy,
                        "random_verdict": random_result.verdict,
                    }
                )
            rows.append(row)
    return {
        "experiment": "table2",
        "offline_samples": offline,
        "epochs": n_epochs,
        "rows": rows,
    }
