"""Tests for the related-key differential scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.related_key import (
    SpeckRelatedKeyScenario,
    ToySpeckRelatedKeyScenario,
    _masks_from_deltas,
)
from repro.errors import DistinguisherError


class TestMaskPacking:
    def test_plaintext_packs_msw_first(self):
        masks = _masks_from_deltas([(0x0040_0000, 0)], 2, 4, 16)
        assert masks[0].tolist() == [0x0040, 0, 0, 0, 0, 0]

    def test_key_packs_msw_first(self):
        masks = _masks_from_deltas([(0, 0x0001_0000_0000_0000)], 2, 4, 16)
        assert masks[0].tolist() == [0, 0, 0x0001, 0, 0, 0]

    def test_key_lsw_is_last_word(self):
        masks = _masks_from_deltas([(0, 1)], 2, 4, 16)
        assert masks[0].tolist() == [0, 0, 0, 0, 0, 1]

    def test_rejects_oversized_plaintext_delta(self):
        with pytest.raises(DistinguisherError, match="plaintext difference"):
            _masks_from_deltas([(1 << 32, 0)], 2, 4, 16)

    def test_rejects_oversized_key_delta(self):
        with pytest.raises(DistinguisherError, match="key difference"):
            _masks_from_deltas([(0, 1 << 64)], 2, 4, 16)


class TestScenarioShape:
    @pytest.mark.parametrize(
        "cls,width,feature_bits",
        [
            (ToySpeckRelatedKeyScenario, 8, 16),
            (SpeckRelatedKeyScenario, 16, 32),
        ],
    )
    def test_dimensions(self, cls, width, feature_bits):
        scenario = cls(rounds=3)
        assert scenario.input_words == 6
        assert scenario.output_words == 2
        assert scenario.word_width == width
        assert scenario.feature_bits == feature_bits
        assert scenario.difference_masks.shape == (2, 6)

    def test_rejects_bad_rounds(self):
        with pytest.raises(DistinguisherError, match="rounds"):
            ToySpeckRelatedKeyScenario(rounds=0)

    def test_split_masks(self):
        scenario = ToySpeckRelatedKeyScenario(rounds=3)
        plaintext, key = scenario.split_masks()
        assert plaintext.shape == (2, 2)
        assert key.shape == (2, 4)
        assert int(key[1, 3]) == 1  # the pure key-difference class

    def test_explicit_masks_override_deltas(self):
        masks = np.zeros((2, 6), dtype=np.uint8)
        masks[0, 0] = 0x80
        masks[1, 5] = 0x01
        scenario = ToySpeckRelatedKeyScenario(rounds=3, masks=masks)
        assert np.array_equal(scenario.difference_masks, masks)


class TestDifferentialGame:
    def test_dataset_generation(self):
        scenario = ToySpeckRelatedKeyScenario(rounds=3)
        X, y = scenario.generate_dataset(128, rng=0)
        assert X.shape == (256, scenario.feature_bits)
        assert set(np.unique(y)) == {0, 1}
        assert X.dtype == np.float32
        assert np.isin(X, (0.0, 1.0)).all()

    def test_key_difference_changes_ciphertext(self):
        # a pure key difference must actually flip ciphertext bits
        scenario = ToySpeckRelatedKeyScenario(rounds=3)
        rng = np.random.default_rng(0)
        inputs = scenario.sample_base_inputs(64, rng)
        base = scenario.pipeline(inputs)
        key_mask = scenario.difference_masks[1]
        shifted = scenario.pipeline(inputs ^ key_mask)
        assert np.any(base != shifted)

    def test_zero_key_half_matches_single_key_game(self):
        # with a zero key difference, both queries use the same key, so
        # the output difference equals the classic chosen-plaintext one
        scenario = ToySpeckRelatedKeyScenario(rounds=2)
        rng = np.random.default_rng(1)
        inputs = scenario.sample_base_inputs(32, rng)
        plaintext_mask = scenario.difference_masks[0]
        assert np.all(plaintext_mask[scenario.block_words:] == 0)

        base = scenario.pipeline(inputs)
        shifted = scenario.pipeline(inputs ^ plaintext_mask)
        from repro.ciphers.toyspeck import encrypt_batch

        plain = inputs[:, :2]
        keys = inputs[:, 2:]
        expected = encrypt_batch(plain ^ plaintext_mask[:2], keys, 2)
        assert np.array_equal(shifted, expected)
        assert np.any(base != shifted)

    def test_distinguisher_compatible(self):
        from repro.core.distinguisher import MLDistinguisher

        scenario = ToySpeckRelatedKeyScenario(rounds=1)
        distinguisher = MLDistinguisher(scenario, epochs=2, rng=0)
        report = distinguisher.train(2000, significance=0.5)
        assert 0.0 <= report.validation_accuracy <= 1.0

    def test_speck_matches_reference_vector(self):
        # pipeline() must agree with the SPECK batch API on the halves
        scenario = SpeckRelatedKeyScenario(rounds=5)
        rng = np.random.default_rng(2)
        inputs = scenario.sample_base_inputs(16, rng)
        from repro.ciphers.speck import encrypt_batch

        expected = encrypt_batch(inputs[:, :2], inputs[:, 2:], 5)
        assert np.array_equal(scenario.pipeline(inputs), expected)


class TestSearchIntegration:
    def test_bias_oracle_accepts_related_key_masks(self):
        from repro.search.oracle import BiasScoringOracle

        scenario = ToySpeckRelatedKeyScenario(rounds=2)
        oracle = BiasScoringOracle(scenario, n_samples=512, rng=0, workers=1)
        key_delta = np.zeros(6, dtype=np.uint8)
        key_delta[5] = 1
        assert oracle.score(key_delta) > 0.0

    def test_fingerprint_distinguishes_key_and_plaintext_difference(self):
        from repro.core.cache import scenario_fingerprint

        plain = np.zeros((2, 6), dtype=np.uint8)
        plain[0, 1], plain[1, 0] = 0x40, 0x20
        keyed = np.zeros((2, 6), dtype=np.uint8)
        keyed[0, 1], keyed[1, 5] = 0x40, 0x01
        a = ToySpeckRelatedKeyScenario(rounds=2, masks=plain)
        b = ToySpeckRelatedKeyScenario(rounds=2, masks=keyed)
        assert scenario_fingerprint(a) != scenario_fingerprint(b)
