"""The bias-scoring oracle: a milliseconds-cheap fitness for differences.

Training a distinguisher to evaluate one candidate difference (AutoND's
observation, and ours) is thousands of times more expensive than
necessary at the search stage: at the rounds where a difference is
*selectable* at all, most of the neural network's accuracy is explained
by per-bit marginals of the output difference — exactly what the
:class:`~repro.core.bias_baseline.BitBiasClassifier` reads off.  The
search therefore scores a candidate ``δ`` by the mean absolute bias of
the output-difference bits::

    score(δ) = mean_j | 2 · P[bit_j(C ⊕ C_δ) = 1] − 1 |

estimated over a small fixed sample bank.  A random function scores at
the sampling noise floor (≈ ``sqrt(2 / (π n))`` per bit); a useful
difference at low rounds scores an order of magnitude above it.

Determinism and worker-invariance
---------------------------------

The oracle draws one *sample bank* per instance — base inputs and
per-sample context, derived from the constructor seed alone, cut into
fixed-size shards exactly like :mod:`repro.core.parallel` cuts dataset
generation.  A candidate's score is a pure function of ``(seed,
n_samples, shard_size, δ)``:

* every shard's inputs come from its own spawned
  :class:`~numpy.random.SeedSequence` child, so the bank does not
  depend on how many workers computed it;
* per-shard bit counts are exact ``int64`` sums, reduced in shard
  order — addition of integers is associative, so the total (and the
  score) is bit-identical for every ``workers`` value;
* scores are memoised per candidate, so re-scoring survivors across
  evolutionary generations is a dictionary hit.

Scoring ``k`` candidates costs ``k + 1`` batched pipeline calls per
shard (the base ciphertexts are computed once and shared), which on the
toy ciphers is well under a millisecond per candidate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.parallel import run_grid, seed_sequence_from, shard_sizes
from repro.errors import SearchError
from repro.obs import log as obs_log
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.utils.encoding import words_to_bits

_log = obs_log.get_logger("repro.search")

#: Default evaluation budget per candidate (samples in the bank).
DEFAULT_SAMPLES = 2048

#: Samples per shard of the bank.  Part of the determinism contract,
#: like :data:`repro.core.parallel.DEFAULT_SHARD_SIZE`: changing it
#: changes every score.
DEFAULT_SHARD_SIZE = 1024


def _count_shard(job):
    """Per-shard bit counts for a batch of candidates.

    ``job`` is ``(prototype, shard_n, seed_child, candidates)``;
    returns an ``(k, feature_bits)`` int64 matrix of ones-counts of the
    output-difference bits, plus the base-vs-candidate sample count.
    Module-level so the grid runner can pickle it into pool workers.
    """
    prototype, shard_n, seed_child, candidates = job
    rng = np.random.Generator(np.random.PCG64(seed_child))
    inputs = prototype.sample_base_inputs(shard_n, rng)
    context = prototype.sample_context(shard_n, rng)
    base_out = prototype.pipeline(inputs, context)
    counts = np.empty((candidates.shape[0], prototype.feature_bits), dtype=np.int64)
    for row, delta in enumerate(candidates):
        out = prototype.pipeline(inputs ^ delta.astype(inputs.dtype), context)
        bits = words_to_bits(base_out ^ out, prototype.word_width)
        counts[row] = bits.sum(axis=0, dtype=np.int64)
    return counts


class BiasScoringOracle:
    """Scores candidate input differences against one scenario family.

    ``prototype`` is any :class:`~repro.core.scenario.DifferentialScenario`
    of the target family — only its sampling (``sample_base_inputs`` /
    ``sample_context``), its ``pipeline`` and its geometry are used; its
    own difference masks are irrelevant.  ``rng`` must be a fixed seed
    (int or :class:`~numpy.random.SeedSequence`) for reproducible
    scores; ``workers`` shards the sample bank across processes without
    changing any score.
    """

    def __init__(
        self,
        prototype,
        n_samples: int = DEFAULT_SAMPLES,
        rng=0,
        workers: Optional[int] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
    ):
        if n_samples <= 0:
            raise SearchError(f"n_samples must be positive, got {n_samples}")
        if isinstance(rng, np.random.Generator):
            raise SearchError(
                "pass a fixed seed (int or SeedSequence), not a live "
                "generator: oracle scores must be reproducible"
            )
        self.prototype = prototype
        self.n_samples = int(n_samples)
        self.shard_size = int(shard_size)
        self.workers = workers
        self._sizes = shard_sizes(self.n_samples, self.shard_size)
        self._children = seed_sequence_from(rng).spawn(len(self._sizes))
        self._cache: Dict[bytes, float] = {}
        self._count_cache: Dict[bytes, np.ndarray] = {}
        self.evaluations = 0

    # -- scoring -------------------------------------------------------------

    @property
    def input_words(self) -> int:
        return self.prototype.input_words

    @property
    def word_width(self) -> int:
        return self.prototype.word_width

    def _as_candidates(self, candidates) -> np.ndarray:
        arr = np.asarray(
            candidates, dtype=self.prototype.difference_masks.dtype
        )
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2 or arr.shape[1] != self.prototype.input_words:
            raise SearchError(
                f"candidates must have shape (k, {self.prototype.input_words}), "
                f"got {np.asarray(candidates).shape}"
            )
        if any((row == 0).all() for row in arr):
            raise SearchError("candidate differences must be non-zero")
        return arr

    def _counts_for(self, fresh: np.ndarray) -> None:
        """Fill the memo tables for every row of ``fresh``."""
        jobs = [
            (self.prototype, shard_n, child, fresh)
            for shard_n, child in zip(self._sizes, self._children)
        ]
        workers = 1 if self.workers is None else int(self.workers)
        with span(
            "search.score", candidates=fresh.shape[0], shards=len(jobs)
        ):
            shard_counts = run_grid(
                _count_shard, jobs, workers=workers, label="search.score"
            )
        totals = np.zeros(
            (fresh.shape[0], self.prototype.feature_bits), dtype=np.int64
        )
        for counts in shard_counts:
            totals += counts
        probabilities = totals / float(self.n_samples)
        biases = np.abs(2.0 * probabilities - 1.0)
        REGISTRY.counter("repro_search_scored_total").inc(fresh.shape[0])
        self.evaluations += fresh.shape[0]
        for row, delta in enumerate(fresh):
            key = delta.tobytes()
            self._count_cache[key] = totals[row]
            self._cache[key] = float(biases[row].mean())

    def score_batch(self, candidates) -> np.ndarray:
        """Scores for a ``(k, input_words)`` candidate batch (memoised)."""
        arr = self._as_candidates(candidates)
        missing: List[int] = []
        seen: Dict[bytes, int] = {}
        for row in range(arr.shape[0]):
            key = arr[row].tobytes()
            if key not in self._cache and key not in seen:
                seen[key] = row
                missing.append(row)
        if missing:
            self._counts_for(arr[missing])
        return np.array(
            [self._cache[arr[row].tobytes()] for row in range(arr.shape[0])]
        )

    def score(self, candidate) -> float:
        """The bias score of a single difference."""
        return float(self.score_batch(candidate)[0])

    def bias_profile(self, candidate) -> np.ndarray:
        """Per-bit ``P[bit_j = 1]`` estimates for one difference."""
        arr = self._as_candidates(candidate)
        self.score_batch(arr)
        return self._count_cache[arr[0].tobytes()] / float(self.n_samples)

    def score_set(self, masks) -> float:
        """Distinguishability of a difference *set* (the paper's ``t`` classes).

        The single-difference score measures cipher-vs-random signal;
        a ``t``-class distinguisher additionally needs the classes to be
        separable from each other.  This returns the bottleneck pairwise
        separation: the minimum over class pairs of the mean absolute
        gap between their per-bit probability profiles (the statistic
        :meth:`~repro.core.bias_baseline.BitBiasClassifier.bias_profile`
        exposes after training).
        """
        arr = self._as_candidates(masks)
        if arr.shape[0] < 2:
            raise SearchError("a difference set needs at least 2 classes")
        self.score_batch(arr)
        profiles = np.stack(
            [
                self._count_cache[arr[row].tobytes()] / float(self.n_samples)
                for row in range(arr.shape[0])
            ]
        )
        worst = np.inf
        for a in range(arr.shape[0]):
            for b in range(a + 1, arr.shape[0]):
                gap = float(np.abs(profiles[a] - profiles[b]).mean())
                worst = min(worst, gap)
        return worst

    def noise_floor(self) -> float:
        """Expected score of a useless difference (pure sampling noise).

        For ``n`` samples the per-bit bias estimate ``|2p̂ − 1|`` of a
        fair bit has mean ``sqrt(2 / (π n))``; the mean over bits
        concentrates tightly around it.  Scores within ~2x of this floor
        carry no usable signal.
        """
        return float(np.sqrt(2.0 / (np.pi * self.n_samples)))
