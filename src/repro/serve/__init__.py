"""Online-phase serving: turn trained distinguishers into a service.

The paper's online phase is service-shaped — a trained classifier
answers streams of oracle queries and accumulates an accuracy-based
CIPHER/RANDOM verdict.  This package supplies the missing deployment
layer on top of :mod:`repro.nn` and :mod:`repro.core`:

* :mod:`repro.serve.registry` — content-addressed, versioned model
  store (``.npz`` weights + JSON manifest with the online-phase
  parameters);
* :mod:`repro.serve.engine` — micro-batching inference engine (bounded
  queue, coalesced fused predicts, backpressure, per-request timeouts);
* :mod:`repro.serve.sessions` — Algorithm 2's online loop as an
  incremental session API;
* :mod:`repro.serve.http` / :mod:`repro.serve.client` — stdlib JSON
  HTTP server and client (``/v1/models``, ``/v1/classify``,
  ``/v1/distinguish``, ``/healthz``);
* :mod:`repro.serve.metrics` — latency percentiles, throughput, batch
  shape telemetry (``GET /v1/metrics``, ``BENCH_serve.json``).

Quickstart::

    from repro.serve import ModelRegistry, ServeServer, ServeClient

    registry = ModelRegistry("./registry")
    registry.register(distinguisher.model, "gimli-hash-r8",
                      scenario=scenario, report=report)
    with ServeServer(registry) as server:
        client = ServeClient(server.url)
        state = client.run_online_phase(
            "gimli-hash-r8", scenario, scenario.cipher_oracle(), 4000)
        print(state["verdict"])
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.engine import MicroBatchEngine
from repro.serve.http import ServeServer, ServeService, create_server
from repro.serve.metrics import ServeMetrics, percentile
from repro.serve.registry import ModelRecord, ModelRegistry, model_digest
from repro.serve.sessions import OnlineSession, SessionStore

__all__ = [
    "MicroBatchEngine",
    "ModelRecord",
    "ModelRegistry",
    "OnlineSession",
    "ServeClient",
    "ServeClientError",
    "ServeMetrics",
    "ServeServer",
    "ServeService",
    "SessionStore",
    "create_server",
    "model_digest",
    "percentile",
]
