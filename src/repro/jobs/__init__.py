"""Persistent job-queue orchestration for experiment grids.

The experiments and search layers submit every grid cell as a
payload-complete job through a directory-backed queue
(:mod:`repro.jobs.queue`), and a runner (:mod:`repro.jobs.runner`)
executes the unfinished ones in worker processes with per-job retries —
so ``python -m repro.experiments table2 --resume DIR`` after a kill
completes only the missing cells and returns rows bit-identical to an
uninterrupted run.
"""

from repro.jobs.queue import (
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    JobQueue,
    atomic_write_json,
    atomic_write_text,
    jsonify,
    spec_fingerprint,
)
from repro.jobs.runner import JobRunner, bind_run, run_cells

__all__ = [
    "DONE",
    "FAILED",
    "PENDING",
    "RUNNING",
    "JobQueue",
    "JobRunner",
    "atomic_write_json",
    "atomic_write_text",
    "bind_run",
    "jsonify",
    "run_cells",
    "spec_fingerprint",
]
