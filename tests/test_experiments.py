"""Tests for the experiment harness (fast, tiny configurations)."""

import os

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import (
    PAPER_OFFLINE_SAMPLES,
    PAPER_ONLINE_SAMPLES,
    ExperimentScale,
    get_scale,
)
from repro.experiments.figure1 import run_figure1
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.report import format_table, paper_vs_measured
from repro.experiments.table1 import run_table1, verify_trail_empirically
from repro.experiments.table2 import PAPER_TABLE2, run_table2
from repro.experiments.table3 import run_table3


class TestConfig:
    def test_paper_sample_counts(self):
        assert PAPER_OFFLINE_SAMPLES == pytest.approx(2**17.6, rel=1e-4)
        assert PAPER_ONLINE_SAMPLES == pytest.approx(2**14.3, rel=1e-4)

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert get_scale() == 0.5

    def test_scale_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale() == 0.05

    def test_scale_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "two")
        with pytest.raises(ExperimentError):
            get_scale()
        monkeypatch.setenv("REPRO_SCALE", "1.5")
        with pytest.raises(ExperimentError):
            get_scale()

    def test_scaled_budgets_have_floors(self):
        tiny = ExperimentScale(0.001)
        assert tiny.offline_samples >= 2000
        assert tiny.online_samples >= 500
        assert tiny.table2_epochs >= 3

    def test_full_scale_matches_paper(self):
        full = ExperimentScale(1.0)
        assert full.offline_samples == PAPER_OFFLINE_SAMPLES
        assert full.table3_samples == 1 << 17


class TestRegistry:
    def test_all_experiments_registered(self):
        for name in (
            "table1", "table2", "table3", "figure1",
            "speck-baseline", "toyspeck-allinone", "complexity",
        ):
            assert name in EXPERIMENTS

    def test_unknown_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("table9")

    def test_complexity_runs(self):
        result = run_experiment("complexity")
        assert result["rows"][0]["classical_log2"] == 52.0


class TestFigure1:
    def test_reproduces_every_paper_number(self):
        result = run_figure1()
        assert result["exact_probability"] == result["paper_exact_probability"]
        assert result["markov_probability"] == result["paper_markov_probability"]
        assert result["round1_probability"] == result["paper_round1_probability"]
        assert result["ddt_upper"] == 4
        assert result["ddt_lower"] == 2
        assert result["upper_valid_inputs"] == [0, 2, 4, 6]
        assert result["lower_valid_inputs"] == [0xD, 0xE]


class TestTable1:
    def test_low_rounds(self):
        result = run_table1(max_search_rounds=2, verify_samples=1 << 10, rng=1)
        rows = {row["rounds"]: row for row in result["rows"]}
        assert rows[1]["measured"] == 0.0
        assert rows[2]["measured"] == 0.0
        # Weight-0 trails verify empirically with probability 1.
        assert rows[1]["empirical_probability"] == 1.0
        assert rows[2]["empirical_probability"] == 1.0
        # Unsearched rounds still carry the reference weight.
        assert rows[8]["paper"] == 52
        assert rows[8]["measured"] is None

    def test_verify_trail_empirically_rejects_garbage(self, rng):
        from repro.diffcrypt.trail import DifferentialTrail

        bogus = DifferentialTrail(
            (tuple([1] + [0] * 11), tuple([1] + [0] * 11)), (1.0,)
        )
        prob = verify_trail_empirically(bogus, samples=256, rng=rng)
        assert prob < 0.05


class TestTable2:
    def test_small_run_shape(self):
        result = run_table2(
            rounds=(4,),
            targets=("hash",),
            offline_samples=3000,
            online_samples=600,
            epochs=2,
            rng=3,
        )
        assert len(result["rows"]) == 1
        row = result["rows"][0]
        assert row["measured"] > 0.8  # 4 rounds: strong signal
        assert row["cipher_verdict"] == "CIPHER"
        assert row["random_verdict"] == "RANDOM"

    def test_paper_reference_values(self):
        assert PAPER_TABLE2[("hash", 8)] == 0.5219
        assert PAPER_TABLE2[("cipher", 8)] == 0.5099

    def test_unknown_target(self):
        with pytest.raises(ValueError):
            run_table2(rounds=(4,), targets=("permutation",), offline_samples=100)


class TestTable3:
    def test_two_network_run(self):
        result = run_table3(
            networks=("MLP II", "MLP IV"),
            total_rounds=4,
            num_samples=2000,
            epochs=1,
            rng=4,
        )
        assert len(result["rows"]) == 2
        by_name = {row["network"]: row for row in result["rows"]}
        assert by_name["MLP II"]["parameters"] == 150658
        assert by_name["MLP II"]["training_time_s"] > 0
        # 4 rounds with even one epoch should beat random noticeably.
        assert by_name["MLP II"]["measured"] > 0.6


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 0.5], ["x", 2.0]], title="T")
        assert "T" in text and "0.5000" in text and "x" in text

    def test_paper_vs_measured_delta(self):
        rows = paper_vs_measured(
            [{"paper": 0.5, "measured": 0.6}], key="accuracy"
        )
        assert rows[0]["delta"] == pytest.approx(0.1)

    def test_missing_fields_tolerated(self):
        rows = paper_vs_measured([{"paper": None, "measured": 0.6}], key="x")
        assert "delta" not in rows[0]


class TestMainEntry:
    def test_cli_figure1(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out

    def test_cli_unknown_experiment(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["tableX"])
