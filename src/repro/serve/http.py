"""Stdlib-only HTTP JSON front-end for the serving subsystem.

Endpoints (all JSON in / JSON out):

* ``GET  /healthz``        — liveness: model count, uptime, rolling
  SLO verdict (``?verbose=1`` attaches the full error-rate/p99
  evaluation; breaches log ``serve.slo_breach`` events).
* ``GET  /v1/models``      — registry listing (manifest summaries).
* ``GET  /v1/metrics``     — the shared :class:`ServeMetrics` snapshot;
  ``?format=prometheus`` renders the backing
  :class:`~repro.obs.metrics.MetricsRegistry` as Prometheus text
  exposition instead (serve counters/histograms plus the per-route
  ``repro_http_requests_total`` / ``repro_http_request_duration_seconds``
  series recorded by this handler).
* ``POST /v1/classify``    — ``{"model": <id|name>, "features": [[...]]}``
  → labels plus per-class probability vectors, served through the
  micro-batching engine.
* ``POST /v1/distinguish`` — incremental online phase.  The first call
  (no ``"session"``) creates an :class:`OnlineSession` from the model's
  manifest (threshold, sample budget) and returns its id; subsequent
  calls feed ``{"features": [[...]], "labels": [...]}`` batches and
  return the running accuracy, progress, and — once the budget is met —
  the CIPHER/RANDOM verdict.

Error mapping: 400 for malformed requests, 404 for unknown models or
sessions, 503 with ``Retry-After`` when the engine sheds load, 504 when
a request times out in the queue.  The server is a stdlib
``ThreadingHTTPServer``; :meth:`ServeServer.stop` performs a graceful
shutdown (stop accepting, drain the engines, join the serving thread).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.errors import (
    EngineOverloaded,
    RegistryError,
    ReproError,
    ServeError,
    ServeTimeout,
)
from repro.obs import events as obs_events
from repro.obs import log as obs_log
from repro.serve.engine import MicroBatchEngine
from repro.serve.metrics import ServeMetrics, SloPolicy
from repro.serve.registry import ModelRecord, ModelRegistry
from repro.serve.sessions import SessionStore

_log = obs_log.get_logger("repro.serve")

#: Reject request bodies larger than this (64 MiB ~ 2^17 float rows).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Paths whose route label is their own name; everything else is
#: grouped under "other" so unknown paths can't explode label
#: cardinality in the metrics registry.
KNOWN_ROUTES = frozenset(
    ("/healthz", "/v1/models", "/v1/metrics", "/v1/classify", "/v1/distinguish")
)


class _HttpError(Exception):
    """Internal: carries an HTTP status + message to the handler."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServeService:
    """Registry + per-model engines + sessions behind the HTTP handler."""

    def __init__(
        self,
        registry: ModelRegistry,
        max_batch: Optional[int] = None,
        max_wait_ms: Optional[float] = None,
        max_queue: int = 1024,
        metrics: Optional[ServeMetrics] = None,
    ):
        self.registry = registry
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.sessions = SessionStore()
        self._max_batch = max_batch
        self._max_wait_ms = max_wait_ms
        self._max_queue = max_queue
        self._engines: Dict[str, MicroBatchEngine] = {}
        self._lock = threading.Lock()
        self._started = time.monotonic()

    def engine_for(self, ref: str) -> Tuple[MicroBatchEngine, ModelRecord]:
        """The (lazily created) engine serving the referenced model."""
        try:
            record = self.registry.resolve(ref)
        except RegistryError as exc:
            raise _HttpError(404, str(exc)) from None
        with self._lock:
            engine = self._engines.get(record.model_id)
            if engine is None:
                model, _ = self.registry.load(record.model_id)
                engine = MicroBatchEngine(
                    model,
                    max_batch=self._max_batch,
                    max_wait_ms=self._max_wait_ms,
                    max_queue=self._max_queue,
                    metrics=self.metrics,
                )
                self._engines[record.model_id] = engine
        return engine, record

    def stop(self) -> None:
        """Drain and stop every model engine."""
        with self._lock:
            engines = list(self._engines.values())
            self._engines.clear()
        for engine in engines:
            engine.stop(drain=True)

    # -- endpoint bodies ---------------------------------------------------

    def healthz(self, verbose: bool = False) -> dict:
        """Liveness plus rolling-window SLO verdict.

        The SLO (error rate and p99 latency over the recent HTTP
        window, thresholds from ``REPRO_OBS_SLO_*``) is evaluated on
        every call; a breach degrades the reported status and emits a
        ``serve.slo_breach`` structured log line + run event.  The full
        verdict is attached only with ``?verbose=1``.
        """
        slo = SloPolicy.from_env().evaluate(self.metrics)
        if slo["status"] == "breached":
            _log.warning(
                "serve.slo_breach",
                breaches=",".join(slo["breaches"]),
                error_rate=round(slo["error_rate"], 4),
                p99_ms=round(slo["p99_ms"], 2),
                samples=slo["samples"],
            )
            obs_events.emit(
                "serve.slo_breach",
                breaches=slo["breaches"],
                error_rate=round(slo["error_rate"], 6),
                p99_ms=round(slo["p99_ms"], 3),
                samples=slo["samples"],
            )
        payload = {
            "status": "degraded" if slo["status"] == "breached" else "ok",
            "models": len(self.registry.list()),
            "sessions": len(self.sessions),
            "uptime_s": time.monotonic() - self._started,
        }
        if verbose:
            payload["slo"] = slo
        return payload

    def list_models(self) -> dict:
        return {"models": [record.summary() for record in self.registry.list()]}

    @staticmethod
    def _parse_features(body: dict) -> np.ndarray:
        features = body.get("features")
        if features is None:
            raise _HttpError(400, "request body needs a 'features' array")
        try:
            array = np.asarray(features, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"malformed 'features': {exc}") from None
        if array.ndim == 1:
            array = array[None, :]
        if array.ndim != 2 or array.shape[0] == 0:
            raise _HttpError(
                400, f"'features' must be a non-empty 2-D array, got shape "
                f"{array.shape}"
            )
        return array

    def _classify_rows(self, body: dict) -> Tuple[np.ndarray, ModelRecord]:
        ref = body.get("model")
        if not ref:
            raise _HttpError(400, "request body needs a 'model' id or name")
        engine, record = self.engine_for(str(ref))
        features = self._parse_features(body)
        timeout_s = body.get("timeout_s")
        try:
            probabilities = engine.classify(features, timeout_s=timeout_s)
        except EngineOverloaded as exc:
            raise _HttpError(503, str(exc)) from None
        except ServeTimeout as exc:
            raise _HttpError(504, str(exc)) from None
        except ServeError as exc:
            raise _HttpError(400, str(exc)) from None
        return probabilities, record

    def classify(self, body: dict) -> dict:
        probabilities, record = self._classify_rows(body)
        return {
            "model": record.model_id,
            "labels": probabilities.argmax(axis=1).tolist(),
            "probabilities": probabilities.tolist(),
        }

    def distinguish(self, body: dict) -> dict:
        session_id = body.get("session")
        if session_id is not None:
            try:
                session = self.sessions.get(str(session_id))
            except ServeError as exc:
                raise _HttpError(404, str(exc)) from None
        else:
            session = self._create_session(body)
        if body.get("features") is None:
            return session.state()
        labels = body.get("labels")
        if labels is None:
            raise _HttpError(
                400, "distinguish updates need 'labels' (the δ-class of "
                "each query row)"
            )
        probabilities, _ = self._classify_rows(body)
        predicted = probabilities.argmax(axis=1)
        try:
            return session.update(predicted, np.asarray(labels))
        except ServeError as exc:
            raise _HttpError(400, str(exc)) from None

    def _create_session(self, body: dict):
        ref = body.get("model")
        if not ref:
            raise _HttpError(400, "request body needs a 'model' id or name")
        try:
            record = self.registry.resolve(str(ref))
        except RegistryError as exc:
            raise _HttpError(404, str(exc)) from None
        training = record.manifest.get("training")
        training_accuracy = body.get("training_accuracy")
        if training_accuracy is None:
            if not training:
                raise _HttpError(
                    400,
                    f"model {record.model_id!r} has no training manifest; "
                    "pass 'training_accuracy' explicitly",
                )
            training_accuracy = training["validation_accuracy"]
        num_classes = record.num_classes or 2
        try:
            return self.sessions.create(
                training_accuracy=float(training_accuracy),
                num_classes=int(body.get("num_classes", num_classes)),
                target_samples=body.get("target_samples"),
                error_probability=float(body.get("error_probability", 0.01)),
                threshold=body.get("threshold"),
            )
        except (ReproError, TypeError, ValueError) as exc:
            raise _HttpError(400, str(exc)) from None


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ServeService:
        return self.server.service  # type: ignore[attr-defined]

    # Silence the default per-request stderr logging.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        del format, args

    def _send_json(self, status: int, payload: dict, headers=()) -> None:
        self._send_bytes(
            status, json.dumps(payload).encode(), "application/json", headers
        )

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_bytes(status, text.encode(), content_type, ())

    def _send_bytes(self, status, body, content_type, headers) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _HttpError(400, "POST body must be non-empty JSON")
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"body of {length} bytes exceeds the {MAX_BODY_BYTES} cap"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise _HttpError(400, "JSON body must be an object")
        return body

    def _record(self, method: str, route: str, started: float) -> None:
        """Per-route request counter + latency histogram (obs registry)."""
        latency_s = time.perf_counter() - started
        status = getattr(self, "_status", 500)
        registry = self.service.metrics.registry
        registry.counter(
            "repro_http_requests_total",
            method=method,
            route=route,
            status=str(status),
        ).inc()
        registry.histogram(
            "repro_http_request_duration_seconds", route=route
        ).observe(latency_s)
        if route != "/healthz":
            # Health polling must not dilute (or constitute) the SLO
            # window it is reporting on.
            self.service.metrics.record_http(status, latency_s)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        started = time.perf_counter()
        parts = urlsplit(self.path)
        route = parts.path if parts.path in KNOWN_ROUTES else "other"
        try:
            if parts.path == "/healthz":
                query = parse_qs(parts.query)
                verbose = query.get("verbose", ["0"])[-1] in (
                    "1", "true", "yes"
                )
                self._send_json(200, self.service.healthz(verbose=verbose))
            elif parts.path == "/v1/models":
                self._send_json(200, self.service.list_models())
            elif parts.path == "/v1/metrics":
                query = parse_qs(parts.query)
                wire_format = query.get("format", ["json"])[-1]
                if wire_format == "prometheus":
                    self._send_text(
                        200,
                        self.service.metrics.registry.to_prometheus(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                elif wire_format == "json":
                    self._send_json(200, self.service.metrics.snapshot())
                else:
                    self._send_json(
                        400,
                        {"error": f"unknown metrics format {wire_format!r}; "
                         "expected 'json' or 'prometheus'"},
                    )
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except _HttpError as exc:
            self._send_json(exc.status, {"error": str(exc)})
        except Exception as exc:  # never leak a stack trace as a hang
            self._send_json(500, {"error": f"internal error: {exc}"})
        finally:
            self._record("GET", route, started)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        started = time.perf_counter()
        parts = urlsplit(self.path)
        route = parts.path if parts.path in KNOWN_ROUTES else "other"
        try:
            body = self._read_body()
            if parts.path == "/v1/classify":
                self._send_json(200, self.service.classify(body))
            elif parts.path == "/v1/distinguish":
                self._send_json(200, self.service.distinguish(body))
            else:
                self._send_json(404, {"error": f"unknown path {self.path!r}"})
        except _HttpError as exc:
            headers = (("Retry-After", "1"),) if exc.status == 503 else ()
            self._send_json(exc.status, {"error": str(exc)}, headers)
        except Exception as exc:
            self._send_json(500, {"error": f"internal error: {exc}"})
        finally:
            self._record("POST", route, started)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: ServeService):
        super().__init__(address, _Handler)
        self.service = service


class ServeServer:
    """A running HTTP serving endpoint with graceful shutdown.

    ``port=0`` binds an ephemeral loopback port (the resolved address is
    on :attr:`address`), which is what the tests and the load harness
    use.  Use as a context manager or call :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: Optional[int] = None,
        max_wait_ms: Optional[float] = None,
        max_queue: int = 1024,
        metrics: Optional[ServeMetrics] = None,
    ):
        self.service = ServeService(
            registry,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            metrics=metrics,
        )
        self._server = _Server((host, port), self.service)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServeServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain engines, join."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join()
            self._thread = None
        self._server.server_close()
        self.service.stop()

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def create_server(registry_root: str, host: str = "127.0.0.1", port: int = 0, **kwargs) -> ServeServer:
    """Convenience: a :class:`ServeServer` over a registry directory."""
    return ServeServer(ModelRegistry(registry_root), host=host, port=port, **kwargs)
