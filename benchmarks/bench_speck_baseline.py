"""Benchmark: §2.3 background — Gohr-style SPECK + exact all-in-one.

Reproduced shapes:

* the real-vs-random SPECK distinguisher accuracy decays with rounds
  (strong at 3-4 rounds, weak by 6 — Gohr's residual networks reach
  farther, our MLP baseline shows the same qualitative curve);
* on ToySpeck, the ML accuracy approaches but never exceeds the exact
  all-in-one Bayes ceiling — the relationship Gohr established for
  SPECK-32/64 with a 34 GB DDT precomputation.
"""

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.speck_baseline import (
    run_speck_baseline,
    run_toyspeck_allinone,
)


def test_speck_real_vs_random(benchmark):
    result = run_once(benchmark, run_speck_baseline, rounds=(3, 4, 5, 6), rng=2)
    rows = [[row["rounds"], row["measured"]] for row in result["rows"]]
    print()
    print(format_table(
        ["rounds", "accuracy"],
        rows,
        title="SPECK-32/64 real-vs-random MLP distinguisher (Gohr's game)",
    ))
    by_round = {row["rounds"]: row["measured"] for row in result["rows"]}
    assert by_round[3] > 0.9
    assert by_round[4] > by_round[6]
    assert by_round[6] < 0.75


def test_toyspeck_ml_vs_allinone(benchmark):
    result = run_once(benchmark, run_toyspeck_allinone, rounds=(2, 3, 4), rng=3)
    rows = [
        [row["rounds"], row["bayes_accuracy"], row["measured"],
         row["advantage_vs_random"]]
        for row in result["rows"]
    ]
    print()
    print(format_table(
        ["rounds", "Bayes ceiling (exact all-in-one)", "ML accuracy",
         "TV advantage"],
        rows,
        title="ToySpeck: ML distinguisher vs exact all-in-one baseline",
    ))
    for row in result["rows"]:
        assert row["measured"] <= row["bayes_accuracy"] + 0.03
    by_round = {row["rounds"]: row for row in result["rows"]}
    # At 2 rounds the ML model should essentially reach the ceiling.
    assert by_round[2]["measured"] > 0.95 * by_round[2]["bayes_accuracy"]
    # Decay with rounds.
    assert by_round[4]["bayes_accuracy"] <= by_round[2]["bayes_accuracy"] + 1e-9
