"""Benchmark: regenerate Figure 1 / §2.1 (non-Markov toy demonstration).

Asserts the exact reproduction of every number the paper quotes:
characteristic probability 2^-6 by enumeration vs 2^-9 under the Markov
assumption (Eq. 2), the DDT entries, and the valid input tuples.
"""

from conftest import run_once

from repro.experiments.figure1 import run_figure1
from repro.experiments.report import format_table


def test_figure1(benchmark):
    result = run_once(benchmark, run_figure1)
    rows = [
        ["exact probability", result["paper_exact_probability"],
         result["exact_probability"]],
        ["markov probability", result["paper_markov_probability"],
         result["markov_probability"]],
        ["round-1 probability", result["paper_round1_probability"],
         result["round1_probability"]],
        ["DDT(2->5)", 4, result["ddt_upper"]],
        ["DDT(3->8)", 2, result["ddt_lower"]],
    ]
    print()
    print(format_table(["quantity", "paper", "measured"], rows,
                       title="Figure 1 (non-Markov toy cipher)"))
    assert result["exact_probability"] == result["paper_exact_probability"]
    assert result["markov_probability"] == result["paper_markov_probability"]
    assert result["round1_probability"] == result["paper_round1_probability"]
    assert result["upper_valid_inputs"] == [0, 2, 4, 6]
    assert result["lower_valid_inputs"] == [0xD, 0xE]
